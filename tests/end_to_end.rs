//! Cross-crate integration: full beam-management stacks against the
//! simulator, checking the paper's headline orderings hold end-to-end.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmwave_array::geometry::ArrayGeometry;
use mmwave_baselines::single_reactive::ReactiveConfig;
use mmwave_baselines::strategy::{BeamStrategy, MmReliableStrategy};
use mmwave_baselines::{OracleMrt, SingleBeamReactive};
use mmwave_channel::channel::UeReceiver;
use mmwave_phy::mcs::McsTable;
use mmwave_sim::metrics::RunResult;
use mmwave_sim::scenario::{self, Scenario};

fn run(sc: &Scenario, seed: u64, mut strategy: Box<dyn BeamStrategy>) -> RunResult {
    let mut sim = sc.simulator(seed);
    sim.run_with_warmup(
        strategy.as_mut(),
        sc.duration_s,
        sc.tick_period_s,
        sc.name,
        sc.warmup_s,
    )
}

fn mmreliable() -> Box<dyn BeamStrategy> {
    Box::new(MmReliableStrategy::new(MmReliableController::new(
        MmReliableConfig::paper_default(),
    )))
}

fn reactive() -> Box<dyn BeamStrategy> {
    Box::new(SingleBeamReactive::new(ReactiveConfig::default()))
}

#[test]
fn mmreliable_beats_reactive_on_reliability_under_mobility_and_blockage() {
    // The paper's core end-to-end claim (Fig. 18b), on a handful of seeds.
    let mut wins = 0;
    let n = 3;
    for seed in 0..n {
        let sc = scenario::mobile_blockage(seed);
        let r_mm = run(&sc, seed, mmreliable());
        let r_re = run(&sc, seed, reactive());
        if r_mm.reliability() >= r_re.reliability() {
            wins += 1;
        }
    }
    assert!(wins >= n - 1, "mmReliable won only {wins}/{n} seeds");
}

#[test]
fn oracle_upper_bounds_everyone() {
    let sc = scenario::mobile_blockage(11);
    let oracle = run(
        &sc,
        11,
        Box::new(OracleMrt::ideal(
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
        )),
    );
    let mm = run(&sc, 11, mmreliable());
    assert!(oracle.reliability() >= mm.reliability() - 1e-9);
    assert!(oracle.mean_snr_db() >= mm.mean_snr_db() - 0.5);
    assert_eq!(oracle.probes, 0, "the genie needs no probes");
}

#[test]
fn mmreliable_survives_walker_crossing() {
    // Fig. 16 end-to-end: the walker blocks NLOS then LOS; the multi-beam
    // link must never drop below the outage threshold for long.
    let sc = scenario::static_walker();
    let r = run(&sc, 16, mmreliable());
    assert!(
        r.reliability() > 0.9,
        "mmReliable reliability under walker: {}",
        r.reliability()
    );
    // The single-beam reactive baseline suffers visibly more.
    let r_re = run(&sc, 16, reactive());
    assert!(
        r.reliability() > r_re.reliability(),
        "mm {} vs reactive {}",
        r.reliability(),
        r_re.reliability()
    );
}

#[test]
fn throughput_reliability_product_favors_mmreliable() {
    let mcs = McsTable::nr_table();
    let mut mm_total = 0.0;
    let mut re_total = 0.0;
    for seed in 20..23 {
        let sc = scenario::mixed_mobility_blockage(seed);
        mm_total += run(&sc, seed, mmreliable()).throughput_reliability_product(&mcs);
        re_total += run(&sc, seed, reactive()).throughput_reliability_product(&mcs);
    }
    assert!(
        mm_total > re_total,
        "product: mmReliable {mm_total:.0} vs reactive {re_total:.0}"
    );
}

#[test]
fn probing_overhead_ordering_matches_fig18d() {
    // mmReliable's maintenance overhead must undercut the reactive scan
    // overhead whenever re-scans actually happen.
    let sc = scenario::mobile_blockage(31);
    let r_mm = run(&sc, 31, mmreliable());
    let r_re = run(&sc, 31, reactive());
    assert!(
        r_mm.probing_overhead() < 0.10,
        "mmReliable overhead {}",
        r_mm.probing_overhead()
    );
    assert!(r_re.probing_overhead() > r_mm.probing_overhead() * 0.5);
}

#[test]
fn run_record_is_internally_consistent() {
    let sc = scenario::mobile_blockage(41);
    let r = run(&sc, 41, mmreliable());
    // Samples tile the full (warmup + measurement) window.
    let total: f64 = r.samples.iter().map(|s| s.dur_s).sum();
    assert!(
        (total - sc.warmup_s - sc.duration_s).abs() < 5e-3,
        "total {total}"
    );
    // Measured window matches the scenario duration.
    assert!((r.duration_s() - sc.duration_s).abs() < 5e-3);
    // Reliability is a fraction.
    assert!((0.0..=1.0).contains(&r.reliability()));
    // Samples are in time order.
    for w in r.samples.windows(2) {
        assert!(w[1].t_s >= w[0].t_s);
    }
}
