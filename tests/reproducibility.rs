//! Determinism: every experiment in the workspace is exactly reproducible
//! from its seed — the property the whole evaluation pipeline rests on.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmwave_baselines::single_reactive::ReactiveConfig;
use mmwave_baselines::strategy::MmReliableStrategy;
use mmwave_baselines::SingleBeamReactive;
use mmwave_channel::sampling::sample_indoor;
use mmwave_dsp::rng::Rng64;
use mmwave_sim::runner::run_many;
use mmwave_sim::scenario;

#[test]
fn identical_seeds_identical_runs() {
    let go = |seed: u64| {
        let sc = scenario::mobile_blockage(seed);
        let mut sim = sc.simulator(seed);
        let mut s =
            MmReliableStrategy::new(MmReliableController::new(MmReliableConfig::paper_default()));
        let r = sim.run_with_warmup(&mut s, 0.3, sc.tick_period_s, sc.name, sc.warmup_s);
        (
            r.reliability().to_bits(),
            r.mean_snr_db().to_bits(),
            r.probes,
            r.samples.len(),
        )
    };
    assert_eq!(go(5), go(5));
}

#[test]
fn different_seeds_differ() {
    let go = |seed: u64| {
        let sc = scenario::mobile_blockage(seed);
        let mut sim = sc.simulator(seed);
        let mut s = SingleBeamReactive::new(ReactiveConfig::default());
        let r = sim.run_with_warmup(&mut s, 0.4, sc.tick_period_s, sc.name, sc.warmup_s);
        r.mean_snr_db()
    };
    assert_ne!(go(100), go(101));
}

#[test]
fn runner_thread_count_does_not_change_results() {
    let go = |threads: usize| {
        run_many(
            4,
            900,
            threads,
            |_| {
                let mut sc = scenario::translation_1s();
                sc.duration_s = 0.2;
                sc
            },
            || Box::new(SingleBeamReactive::new(ReactiveConfig::default())),
        )
        .iter()
        .map(|r| (r.reliability().to_bits(), r.probes))
        .collect::<Vec<_>>()
    };
    assert_eq!(go(1), go(4));
}

#[test]
fn measurement_study_is_seeded() {
    let a = sample_indoor(&mut Rng64::seed(3), 100);
    let b = sample_indoor(&mut Rng64::seed(3), 100);
    assert_eq!(a, b);
}

#[test]
fn strategy_state_does_not_leak_between_runs() {
    // Two fresh strategies on the same scenario must behave identically —
    // i.e. no hidden global state anywhere in the stack.
    let sc = scenario::static_walker();
    let go = || {
        let mut sim = sc.simulator(77);
        let mut s =
            MmReliableStrategy::new(MmReliableController::new(MmReliableConfig::paper_default()));
        let r = sim.run_with_warmup(&mut s, 0.3, sc.tick_period_s, sc.name, sc.warmup_s);
        (r.reliability().to_bits(), r.probes)
    };
    assert_eq!(go(), go());
}
