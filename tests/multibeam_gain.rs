//! Cross-crate integration: the constructive multi-beam SNR law (paper
//! §3.2, Eq. 9) through the full estimation stack — noisy probes, CFO
//! impairments, quantized hardware weights.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmreliable::frontend::SnapshotFrontEnd;
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::steering::single_beam;
use mmwave_channel::channel::{GeometricChannel, UeReceiver};
use mmwave_channel::path::{Path, PathKind};
use mmwave_dsp::complex::{c64, Complex64};
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::{db_from_pow, FC_28GHZ};
use mmwave_phy::chanest::ChannelSounder;

/// Two-path channel with a given relative amplitude δ, near-equal delays
/// (phase-stable across the band, as in the paper's bench measurements).
fn two_path(delta: f64, sigma: f64) -> GeometricChannel {
    let base = 1.2e-4; // ≈ 7 m free-space amplitude
    GeometricChannel::new(
        vec![
            Path::new(0.0, 0.0, c64(base, 0.0), 23.3, PathKind::Los),
            Path::new(
                30.0,
                -30.0,
                Complex64::from_polar(base * delta, sigma),
                23.8,
                PathKind::Reflected { wall: 0 },
            ),
        ],
        FC_28GHZ,
    )
}

fn establish(ch: GeometricChannel, seed: u64) -> (MmReliableController, SnapshotFrontEnd) {
    let mut fe = SnapshotFrontEnd::new(
        ch,
        ChannelSounder::paper_indoor(),
        ArrayGeometry::paper_8x8(),
        UeReceiver::Omni,
        Rng64::seed(seed),
    );
    let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
    ctl.establish(&mut fe);
    (ctl, fe)
}

#[test]
fn one_plus_delta_squared_law_through_the_stack() {
    // The established multi-beam's gain over a single beam should track
    // 10·log10(1 + δ²) across reflector strengths (within estimation noise
    // and hardware quantization).
    for delta in [0.3, 0.5, 0.7] {
        let (ctl, fe) = establish(two_path(delta, 1.1), 77);
        let geom = ctl.config().geom;
        let rx = UeReceiver::Omni;
        let p_multi = fe
            .channel
            .received_power(&geom, &ctl.current_weights(), &rx);
        let p_single = fe
            .channel
            .received_power(&geom, &single_beam(&geom, 0.0), &rx);
        let gain = db_from_pow(p_multi / p_single);
        let law = db_from_pow(1.0 + delta * delta);
        assert!(
            (gain - law).abs() < 0.6,
            "δ = {delta}: measured {gain:.2} dB vs law {law:.2} dB"
        );
    }
}

#[test]
fn multibeam_never_loses_to_single_beam() {
    // Eq. 9's qualitative claim: with optimal parameters the multi-beam
    // SNR exceeds the single-beam SNR even for weak multipath. Both sides
    // go through the same hardware quantizer (the controller always
    // quantizes), so the comparison is apples to apples.
    for (delta, sigma, seed) in [(0.2, 0.3, 1u64), (0.4, -2.0, 2), (0.9, 2.9, 3)] {
        let (ctl, fe) = establish(two_path(delta, sigma), seed);
        let geom = ctl.config().geom;
        let rx = UeReceiver::Omni;
        let quantizer = ctl.config().quantizer;
        // Single-beam reference at the controller's own trained angle (the
        // codebook grid is 1.9° — both schemes share that granularity).
        let ref_angle = ctl.multibeam().unwrap().component(0).angle_deg;
        let p_multi = fe
            .channel
            .received_power(&geom, &ctl.current_weights(), &rx);
        let p_single = fe.channel.received_power(
            &geom,
            &quantizer.quantize(&single_beam(&geom, ref_angle)),
            &rx,
        );
        // δ = 0.2 sits below the viability window (−14 dB < −11 dB), so
        // the controller correctly degenerates to a single beam there.
        assert!(
            p_multi > p_single * 0.995,
            "δ={delta} σ={sigma}: multi {p_multi} < single {p_single}"
        );
        if delta >= 0.4 {
            assert!(
                p_multi > p_single * 1.05,
                "δ={delta}: expected a real combining gain, got {p_multi} vs {p_single}"
            );
        }
    }
}

#[test]
fn estimated_multibeam_close_to_oracle() {
    let (ctl, fe) = establish(two_path(0.6, -1.4), 9);
    let geom = ctl.config().geom;
    let rx = UeReceiver::Omni;
    let p_multi = fe
        .channel
        .received_power(&geom, &ctl.current_weights(), &rx);
    let p_oracle = fe.channel.optimal_power(&geom, &rx);
    assert!(
        p_multi > 0.85 * p_oracle,
        "estimated multi-beam at {:.0}% of oracle",
        100.0 * p_multi / p_oracle
    );
}

#[test]
fn establishment_probe_budget_matches_paper() {
    use mmreliable::frontend::LinkFrontEnd;
    let (ctl, fe) = establish(two_path(0.6, 0.4), 13);
    let k = ctl.multibeam().unwrap().num_beams();
    // 64 SSB training + 2(K−1) CSI-RS probes + 1 baseline probe.
    assert_eq!(fe.probes_used(), 64 + 2 * (k - 1) + 1);
}

#[test]
fn quantized_weights_unit_trp() {
    let (ctl, _) = establish(two_path(0.5, 0.0), 21);
    let w = ctl.current_weights();
    assert!((w.norm() - 1.0).abs() < 1e-9, "TRP must stay conserved");
}
