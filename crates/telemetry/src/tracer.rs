//! The [`Tracer`] handle threaded through simulator, strategy, and
//! controller.
//!
//! A tracer is either *disabled* — a `None`, the default everywhere, in
//! which case every call is a branch on an `Option` and nothing else —
//! or an `Arc<Mutex<..>>` around one sink plus one latency histogram per
//! [`Stage`]. Handles clone cheaply, so the simulator can hand the same
//! tracer to the strategy and the controller; a run is single-threaded,
//! so the mutex is uncontended and exists only to keep the handle `Send`
//! for campaign workers.
//!
//! The allocation contract: with a sink whose `wants_events()` is false
//! (i.e. [`NullSink`](crate::sink::NullSink)), no call on a tracer
//! allocates — spans record into fixed-size histogram arrays and slot
//! records are `Copy` structs that are dropped without being boxed. The
//! counting-allocator test in `crates/sim` enforces this.

use crate::hist::{LatencyHist, StageSummary};
use crate::sink::{SlotTrace, TelemetrySink, TraceEvent};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Timed pipeline stages, one latency histogram each.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// One `BeamStrategy::on_tick` call (maintenance round included).
    TickCompute,
    /// One front-end probe: channel sounding + SNR evaluation.
    ProbeHandling,
    /// Super-resolution path fitting inside the controller.
    SuperresFit,
    /// Multi-beam weight synthesis + quantisation.
    WeightSynthesis,
    /// One data slot: snapshot, weights, radiated pattern, true SNR.
    DataSlot,
}

/// Number of [`Stage`] variants (histogram array length).
pub const STAGE_COUNT: usize = 5;

impl Stage {
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::TickCompute,
        Stage::ProbeHandling,
        Stage::SuperresFit,
        Stage::WeightSynthesis,
        Stage::DataSlot,
    ];

    pub fn index(self) -> usize {
        match self {
            Stage::TickCompute => 0,
            Stage::ProbeHandling => 1,
            Stage::SuperresFit => 2,
            Stage::WeightSynthesis => 3,
            Stage::DataSlot => 4,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Stage::TickCompute => "tick-compute",
            Stage::ProbeHandling => "probe-handling",
            Stage::SuperresFit => "superres-fit",
            Stage::WeightSynthesis => "weight-synthesis",
            Stage::DataSlot => "data-slot",
        }
    }
}

/// Per-run latency summary: one percentile digest per stage. Always
/// present on `RunResult` (all-zero when telemetry was off), mirroring
/// the `RunCounters` convention.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunLatency {
    pub stages: [StageSummary; STAGE_COUNT],
}

impl RunLatency {
    pub fn stage(&self, s: Stage) -> &StageSummary {
        &self.stages[s.index()]
    }

    /// Tick-compute digest — the headline number.
    pub fn tick(&self) -> &StageSummary {
        self.stage(Stage::TickCompute)
    }

    /// True when no stage recorded anything (telemetry off).
    pub fn is_empty(&self) -> bool {
        self.stages.iter().all(|s| s.count == 0)
    }
}

struct Inner {
    sink: Box<dyn TelemetrySink>,
    hists: [LatencyHist; STAGE_COUNT],
    /// Slots offered to `slot()` so far; drives decimation.
    slots_seen: u64,
}

/// Cheap-clone tracing handle; `Tracer::default()` is disabled.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Inner>>>,
    /// Copied out of the sink at construction so hot-path callers can
    /// gate event *construction* without taking the lock.
    want_events: bool,
    /// Keep every `decimation`-th slot record (≥ 1).
    decimation: u64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("want_events", &self.want_events)
            .field("decimation", &self.decimation)
            .finish()
    }
}

/// Opaque start-of-span token from [`Tracer::begin`]. Zero-cost when the
/// tracer is disabled.
#[must_use = "pass the clock back to Tracer::end"]
#[derive(Clone, Copy, Debug)]
pub struct SpanClock(Option<Instant>);

/// A plain wall-clock stopwatch for callers outside the [`Tracer`] span
/// API — e.g. the fleet scheduler timing one handler pass per shard into
/// a [`LatencyHist`]. Wall-clock readings must never feed back into
/// simulation state (they are excluded from digests), so components under
/// the determinism lint use this wrapper instead of naming `Instant`
/// directly; keeping the clock behind this one type makes that rule
/// auditable.
#[derive(Clone, Copy, Debug)]
pub struct StopWatch(Instant);

impl StopWatch {
    /// Starts (or restarts — just overwrite) the stopwatch.
    // xtask-allow(determinism-taint): the stopwatch feeds latency histograms and timing fields only; journal digests and fingerprints are computed over simulation outputs, never over these wall-clock readings
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Nanoseconds since [`StopWatch::start`], saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Tracer {
    /// The no-op tracer: every call is a single branch.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A tracer feeding `sink`, keeping every `decimation`-th slot
    /// record (0 is treated as 1 = keep all).
    pub fn new(sink: Box<dyn TelemetrySink>, decimation: u64) -> Self {
        let want_events = sink.wants_events();
        Self {
            inner: Some(Arc::new(Mutex::new(Inner {
                sink,
                hists: std::array::from_fn(|_| LatencyHist::new()),
                slots_seen: 0,
            }))),
            want_events,
            decimation: decimation.max(1),
        }
    }

    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether the sink keeps events. Callers use this to skip building
    /// `String`/`Vec` payloads that would be dropped anyway.
    pub fn wants_events(&self) -> bool {
        self.inner.is_some() && self.want_events
    }

    /// Start timing a stage. Free when disabled.
    pub fn begin(&self) -> SpanClock {
        SpanClock(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Finish a span: record the wall-clock duration into the stage's
    /// histogram and (if the sink keeps events) emit a span event
    /// attributed to simulated time `t_s`.
    pub fn end(&self, clock: SpanClock, stage: Stage, t_s: f64) {
        let (Some(t0), Some(shared)) = (clock.0, self.inner.as_ref()) else {
            return;
        };
        let dur_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut inner = shared.lock().expect("tracer poisoned");
        inner.hists[stage.index()].record(dur_ns);
        if self.want_events {
            inner.sink.record(TraceEvent::Span { stage, t_s, dur_ns });
        }
    }

    /// Offer one per-slot sample; kept every `decimation`-th time. The
    /// argument is `Copy`, so a discarded sample costs nothing.
    pub fn slot(&self, sample: SlotTrace) {
        let Some(shared) = self.inner.as_ref() else {
            return;
        };
        let mut inner = shared.lock().expect("tracer poisoned");
        let keep = inner.slots_seen % self.decimation == 0;
        inner.slots_seen += 1;
        if keep && self.want_events {
            inner.sink.record(TraceEvent::Slot(sample));
        }
    }

    /// Emit a non-slot event (round, probe, lifecycle, decision).
    /// Callers building heap payloads should gate on [`wants_events`]
    /// first; this method re-checks and drops otherwise.
    pub fn event(&self, ev: TraceEvent) {
        let Some(shared) = self.inner.as_ref() else {
            return;
        };
        if !self.want_events {
            return;
        }
        shared.lock().expect("tracer poisoned").sink.record(ev);
    }

    /// Percentile digests of everything recorded so far.
    pub fn latency(&self) -> RunLatency {
        let Some(shared) = self.inner.as_ref() else {
            return RunLatency::default();
        };
        let inner = shared.lock().expect("tracer poisoned");
        RunLatency {
            stages: std::array::from_fn(|i| inner.hists[i].summary()),
        }
    }

    /// Clone of the raw per-stage histograms (for campaign merging).
    pub fn histograms(&self) -> [LatencyHist; STAGE_COUNT] {
        let Some(shared) = self.inner.as_ref() else {
            return std::array::from_fn(|_| LatencyHist::new());
        };
        let inner = shared.lock().expect("tracer poisoned");
        inner.hists.clone()
    }

    /// Pull buffered events out of the sink (oldest first).
    pub fn drain_events(&self) -> Vec<TraceEvent> {
        match self.inner.as_ref() {
            Some(shared) => shared.lock().expect("tracer poisoned").sink.drain(),
            None => Vec::new(),
        }
    }

    /// Persist anything the sink buffers.
    // xtask-allow(hot-path-panic): a poisoned tracer lock means another thread already panicked mid-trace; propagating loudly is the correct response
    pub fn flush(&self) -> Result<(), String> {
        match self.inner.as_ref() {
            Some(shared) => shared.lock().expect("tracer poisoned").sink.flush(),
            None => Ok(()),
        }
    }

    /// Events the sink discarded for capacity.
    pub fn dropped(&self) -> u64 {
        match self.inner.as_ref() {
            Some(shared) => shared.lock().expect("tracer poisoned").sink.dropped(),
            None => 0,
        }
    }

    /// Clear histograms and the decimation counter for a fresh run,
    /// keeping the sink (and whatever it already holds).
    pub fn reset(&self) {
        if let Some(shared) = self.inner.as_ref() {
            let mut inner = shared.lock().expect("tracer poisoned");
            for h in inner.hists.iter_mut() {
                h.clear();
            }
            inner.slots_seen = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{NullSink, RingBufferSink};

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert!(!t.wants_events());
        let c = t.begin();
        t.end(c, Stage::TickCompute, 0.0);
        t.slot(SlotTrace {
            slot: 0,
            t_s: 0.0,
            snr_db: 0.0,
            blockage_db: 0.0,
            probing: false,
            outage: false,
        });
        assert!(t.latency().is_empty());
        assert!(t.drain_events().is_empty());
        assert!(t.flush().is_ok());
    }

    #[test]
    fn null_sink_fills_histograms_but_keeps_no_events() {
        let t = Tracer::new(Box::new(NullSink), 1);
        assert!(t.enabled());
        assert!(!t.wants_events());
        for _ in 0..10 {
            let c = t.begin();
            t.end(c, Stage::WeightSynthesis, 0.125);
        }
        let lat = t.latency();
        assert_eq!(lat.stage(Stage::WeightSynthesis).count, 10);
        assert_eq!(lat.tick().count, 0);
        assert!(t.drain_events().is_empty());
    }

    #[test]
    fn decimation_keeps_every_nth_slot() {
        let t = Tracer::new(Box::new(RingBufferSink::new(1024)), 4);
        for n in 0..20u64 {
            t.slot(SlotTrace {
                slot: n,
                t_s: n as f64,
                snr_db: 10.0,
                blockage_db: 0.0,
                probing: false,
                outage: false,
            });
        }
        let kept: Vec<u64> = t
            .drain_events()
            .into_iter()
            .map(|e| match e {
                TraceEvent::Slot(s) => s.slot,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(kept, [0, 4, 8, 12, 16]);
    }

    #[test]
    fn clones_share_state_and_reset_clears_it() {
        let t = Tracer::new(Box::new(RingBufferSink::new(16)), 1);
        let t2 = t.clone();
        let c = t2.begin();
        t2.end(c, Stage::SuperresFit, 1.0);
        assert_eq!(t.latency().stage(Stage::SuperresFit).count, 1);
        t.reset();
        assert!(t.latency().is_empty());
    }
}
