//! Trace events and the pluggable sink they flow into.
//!
//! A [`Tracer`](crate::tracer::Tracer) owns exactly one boxed
//! [`TelemetrySink`]. The sink decides the cost model:
//!
//! * [`NullSink`] — discards everything and tells the tracer up front
//!   (via [`TelemetrySink::wants_events`]) not to even *construct*
//!   events, so the hot path stays allocation-free (histograms still
//!   fill; they are fixed arrays).
//! * [`RingBufferSink`] — a bounded in-memory ring, owned by one run on
//!   one worker thread (never shared, so no locking beyond the tracer's
//!   own uncontended mutex); drained post-run by the campaign supervisor.
//! * [`JsonlSink`] — renders events to JSON lines and persists them with
//!   the same tmp-file + atomic-rename discipline as the campaign
//!   journal, so a crash never leaves a torn trace.

use crate::json::{fmt_f64_json, json_escape};
use crate::tracer::Stage;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// Per-slot link telemetry sampled from the simulator's run loop at the
/// configured decimation. All scalars — constructing one never allocates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlotTrace {
    pub slot: u64,
    pub t_s: f64,
    /// True post-beamforming SNR for a data slot; NaN for probing slots
    /// (rendered as JSON `null`).
    pub snr_db: f64,
    /// Deepest per-path blockage on the channel snapshot, dB.
    pub blockage_db: f64,
    /// This slot was spent probing rather than carrying data.
    pub probing: bool,
    /// Data-slot SNR fell below the outage threshold.
    pub outage: bool,
}

/// One telemetry event. Everything the trace pipeline moves is one of
/// these; sinks and exporters pattern-match on the variants.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Decimated per-slot sample from `LinkSimulator`'s run loop.
    Slot(SlotTrace),
    /// A timed stage span: wall-clock duration attributed to sim time.
    Span { stage: Stage, t_s: f64, dur_ns: u64 },
    /// One controller maintenance round: lifecycle state, per-beam SNR
    /// estimates, and the classification it acted on.
    Round {
        t_s: f64,
        state: &'static str,
        verdict: &'static str,
        per_beam_db: Vec<f64>,
    },
    /// Outcome of a single probe as seen by the controller.
    Probe {
        t_s: f64,
        kind: &'static str,
        snr_db: f64,
    },
    /// A lifecycle transition out of `LinkLifecycle::apply`.
    Lifecycle {
        t_s: f64,
        from: &'static str,
        to: &'static str,
        cause: String,
    },
    /// A retry/backoff or fallback decision, free-form.
    Decision { t_s: f64, what: String },
}

impl TraceEvent {
    /// Simulated time the event is attributed to.
    pub fn t_s(&self) -> f64 {
        match self {
            TraceEvent::Slot(s) => s.t_s,
            TraceEvent::Span { t_s, .. }
            | TraceEvent::Round { t_s, .. }
            | TraceEvent::Probe { t_s, .. }
            | TraceEvent::Lifecycle { t_s, .. }
            | TraceEvent::Decision { t_s, .. } => *t_s,
        }
    }

    /// Discriminant name as it appears in the JSONL `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Slot(_) => "slot",
            TraceEvent::Span { .. } => "span",
            TraceEvent::Round { .. } => "round",
            TraceEvent::Probe { .. } => "probe",
            TraceEvent::Lifecycle { .. } => "lifecycle",
            TraceEvent::Decision { .. } => "decision",
        }
    }

    /// Render as one JSON line tagged with the owning cell id.
    // xtask-allow(hot-path-closure): JSON rendering runs at drain/flush time in the opt-in observability export; it appears in the hot closure only through the call graph's method-name over-approximation (`record` resolves to every visible method of that name)
    pub fn to_json(&self, cell: &str) -> String {
        let head = format!(
            "{{\"cell\":\"{}\",\"kind\":\"{}\",\"t_s\":{}",
            json_escape(cell),
            self.kind(),
            fmt_f64_json(self.t_s())
        );
        let body = match self {
            TraceEvent::Slot(s) => format!(
                ",\"slot\":{},\"snr_db\":{},\"blockage_db\":{},\"probing\":{},\"outage\":{}",
                s.slot,
                fmt_f64_json(s.snr_db),
                fmt_f64_json(s.blockage_db),
                s.probing,
                s.outage
            ),
            TraceEvent::Span { stage, dur_ns, .. } => {
                format!(",\"stage\":\"{}\",\"dur_ns\":{}", stage.name(), dur_ns)
            }
            TraceEvent::Round {
                state,
                verdict,
                per_beam_db,
                ..
            } => {
                let beams: Vec<String> = per_beam_db.iter().map(|&v| fmt_f64_json(v)).collect();
                format!(
                    ",\"state\":\"{}\",\"verdict\":\"{}\",\"per_beam_db\":[{}]",
                    state,
                    verdict,
                    beams.join(",")
                )
            }
            TraceEvent::Probe { kind, snr_db, .. } => {
                format!(
                    ",\"probe\":\"{}\",\"snr_db\":{}",
                    kind,
                    fmt_f64_json(*snr_db)
                )
            }
            TraceEvent::Lifecycle {
                from, to, cause, ..
            } => format!(
                ",\"from\":\"{}\",\"to\":\"{}\",\"cause\":\"{}\"",
                from,
                to,
                json_escape(cause)
            ),
            TraceEvent::Decision { what, .. } => {
                format!(",\"what\":\"{}\"", json_escape(what))
            }
        };
        format!("{head}{body}}}")
    }
}

/// Where a tracer's events go. Implementations are owned by exactly one
/// run at a time; `Send` so the campaign can hand them to worker threads.
pub trait TelemetrySink: Send {
    /// Whether this sink keeps events at all. When `false` the tracer
    /// skips event construction entirely — the zero-overhead contract of
    /// [`NullSink`]. Histograms are unaffected (they live in the tracer).
    fn wants_events(&self) -> bool {
        true
    }

    /// Accept one event. Must not panic; bounded sinks drop instead.
    fn record(&mut self, ev: TraceEvent);

    /// Hand back buffered events (oldest first), leaving the sink empty.
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Persist anything buffered. No-op for in-memory sinks.
    fn flush(&mut self) -> Result<(), String> {
        Ok(())
    }

    /// Events discarded due to capacity limits.
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards every event; the tracer sees `wants_events() == false` and
/// never constructs one. This is the default sink for production runs:
/// latency histograms still fill, at the cost of two array increments.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn wants_events(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: TraceEvent) {}
}

/// Bounded in-memory ring. On overflow the *oldest* event is dropped —
/// the tail of a run is what post-mortems need most.
#[derive(Debug)]
pub struct RingBufferSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingBufferSink {
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TelemetrySink for RingBufferSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Renders events to cell-tagged JSON lines and persists them crash-
/// consistently: the full line set is rewritten to `<path>.tmp` and
/// atomically renamed over `<path>`, exactly like the campaign journal.
/// A reader therefore sees either the previous complete trace or the new
/// complete trace — never a torn line.
#[derive(Debug)]
pub struct JsonlSink {
    cell: String,
    path: PathBuf,
    lines: Vec<String>,
    /// Auto-flush after this many unflushed records (0 = only on demand).
    flush_every: usize,
    unflushed: usize,
}

impl JsonlSink {
    pub fn new(path: impl Into<PathBuf>, cell: impl Into<String>) -> Self {
        Self {
            cell: cell.into(),
            path: path.into(),
            lines: Vec::new(),
            flush_every: 256,
            unflushed: 0,
        }
    }

    /// Override the auto-flush cadence (records between rewrites).
    pub fn with_flush_every(mut self, n: usize) -> Self {
        self.flush_every = n;
        self
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    // xtask-allow(hot-path-closure): file export at flush time; in the hot closure only via the over-approximate `record` method edge, not any per-slot call
    fn write_all_lines(&self) -> Result<(), String> {
        let tmp = self.path.with_extension("jsonl.tmp");
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("create {}: {e}", dir.display()))?;
            }
        }
        let mut body = String::new();
        for l in &self.lines {
            body.push_str(l);
            body.push('\n');
        }
        std::fs::write(&tmp, body).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), self.path.display()))
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&mut self, ev: TraceEvent) {
        self.lines.push(ev.to_json(&self.cell));
        self.unflushed += 1;
        if self.flush_every > 0 && self.unflushed >= self.flush_every {
            // Mid-run persistence is best-effort; the explicit post-run
            // flush surfaces any error.
            let _ = self.flush();
        }
    }

    fn flush(&mut self) -> Result<(), String> {
        self.write_all_lines()?;
        self.unflushed = 0;
        Ok(())
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if self.unflushed > 0 {
            let _ = self.write_all_lines();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{field_str, field_u64, validate_json_line};

    fn slot(n: u64) -> TraceEvent {
        TraceEvent::Slot(SlotTrace {
            slot: n,
            t_s: n as f64 * 0.000_125,
            snr_db: 21.5,
            blockage_db: 0.0,
            probing: false,
            outage: false,
        })
    }

    #[test]
    fn every_variant_renders_valid_json() {
        let events = [
            slot(3),
            TraceEvent::Span {
                stage: Stage::TickCompute,
                t_s: 0.5,
                dur_ns: 1234,
            },
            TraceEvent::Round {
                t_s: 0.5,
                state: "Up",
                verdict: "AllGood",
                per_beam_db: vec![18.0, f64::NAN],
            },
            TraceEvent::Probe {
                t_s: 0.25,
                kind: "csi-rs",
                snr_db: 17.25,
            },
            TraceEvent::Lifecycle {
                t_s: 0.75,
                from: "Up",
                to: "Degraded",
                cause: "blockage \"deep\"\nline2".to_string(),
            },
            TraceEvent::Decision {
                t_s: 0.8,
                what: "retrain backoff 0.02s".to_string(),
            },
        ];
        for ev in &events {
            let line = ev.to_json("mobile-blockage|mmreliable|s7000|f-|r1");
            validate_json_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(field_str(&line, "kind").as_deref(), Some(ev.kind()));
            assert!(field_str(&line, "cell").is_some());
        }
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut s = RingBufferSink::new(3);
        for n in 0..5 {
            s.record(slot(n));
        }
        assert_eq!(s.dropped(), 2);
        let kept = s.drain();
        let slots: Vec<u64> = kept
            .iter()
            .map(|e| match e {
                TraceEvent::Slot(t) => t.slot,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(slots, [2, 3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn jsonl_sink_persists_atomically() {
        let dir =
            std::env::temp_dir().join(format!("mmwave-telemetry-test-{}", std::process::id()));
        let path = dir.join("trace.jsonl");
        let mut s = JsonlSink::new(&path, "cellA").with_flush_every(0);
        for n in 0..4 {
            s.record(slot(n));
        }
        s.flush().expect("flush");
        let body = std::fs::read_to_string(&path).expect("trace file");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 4);
        for (n, l) in lines.iter().enumerate() {
            validate_json_line(l).expect("valid line");
            assert_eq!(field_u64(l, "slot"), Some(n as u64));
        }
        assert!(!path.with_extension("jsonl.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
