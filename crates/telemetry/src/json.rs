//! Minimal JSON helpers: escaping, a strict line validator, and top-level
//! field extraction.
//!
//! The trace pipeline hand-writes its JSONL (the container has no serde),
//! so the validator here is the other half of the contract: CI and the
//! soak binary run every emitted line back through [`validate_json_line`]
//! before trusting a trace.

/// Escape a string for embedding inside a JSON string literal.
// xtask-allow(hot-path-closure): string building inside the opt-in JSON export; reached in the hot closure only via the over-approximate `record` method edge
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON value. JSON has no NaN/Infinity, so
/// non-finite values become `null` — readers treat that as "unknown".
// xtask-allow(hot-path-closure): string building inside the opt-in JSON export; reached in the hot closure only via the over-approximate `record` method edge
pub fn fmt_f64_json(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on an integral float prints without a dot; that is still
        // valid JSON, so leave it.
        s
    } else {
        "null".to_string()
    }
}

/// Strictly validate that `line` is one complete JSON value (no trailing
/// garbage). Returns the byte offset of the first error.
pub fn validate_json_line(line: &str) -> Result<(), String> {
    let mut p = Parser {
        b: line.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at offset {}", self.i)
    }

    fn value(&mut self) -> Result<(), String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if *c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.i += 1; // '{'
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.i += 1;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.i += 1; // '['
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        if self.b.get(self.i) != Some(&b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.i += 1;
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') | Some(b'\\') | Some(b'/') | Some(b'b') | Some(b'f')
                        | Some(b'n') | Some(b'r') | Some(b't') => self.i += 1,
                        Some(b'u') => {
                            for k in 1..=4 {
                                if !self
                                    .b
                                    .get(self.i + k)
                                    .is_some_and(|c| c.is_ascii_hexdigit())
                                {
                                    return Err(self.err("bad \\u escape"));
                                }
                            }
                            self.i += 5;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control char in string")),
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let mut digits = 0;
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            let mut frac = 0;
            while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.b.get(self.i), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        debug_assert!(self.i > start);
        Ok(())
    }
}

/// Extract the raw token of a top-level `"key": <token>` pair from a
/// single-line JSON object. Nested objects/arrays are skipped correctly;
/// strings are returned with their quotes.
pub fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let b = line.as_bytes();
    let needle = format!("\"{key}\"");
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'"' => {
                let start = i;
                i = skip_string(b, i)?;
                if depth == 1 && line[start..i] == *needle {
                    // Only a key if a ':' follows; a string *value* equal
                    // to the key name is skipped and the scan continues.
                    let mut j = i;
                    while j < b.len() && (b[j] as char).is_whitespace() {
                        j += 1;
                    }
                    if b.get(j) != Some(&b':') {
                        continue;
                    }
                    j += 1;
                    while j < b.len() && (b[j] as char).is_whitespace() {
                        j += 1;
                    }
                    let vstart = j;
                    let vend = skip_value(b, j)?;
                    return Some(line[vstart..vend].trim_end());
                }
            }
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth -= 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Extract and unescape a top-level string field.
pub fn field_str(line: &str, key: &str) -> Option<String> {
    let raw = field_raw(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Extract a top-level numeric field.
pub fn field_f64(line: &str, key: &str) -> Option<f64> {
    field_raw(line, key)?.parse().ok()
}

/// Extract a top-level integer field.
pub fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

fn skip_string(b: &[u8], mut i: usize) -> Option<usize> {
    debug_assert_eq!(b[i], b'"');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'"' => return Some(i + 1),
            b'\\' => i += 2,
            _ => i += 1,
        }
    }
    None
}

fn skip_value(b: &[u8], i: usize) -> Option<usize> {
    match b.get(i)? {
        b'"' => skip_string(b, i),
        b'{' | b'[' => {
            let mut depth = 0i32;
            let mut j = i;
            while j < b.len() {
                match b[j] {
                    b'"' => j = skip_string(b, j)?,
                    b'{' | b'[' => {
                        depth += 1;
                        j += 1;
                    }
                    b'}' | b']' => {
                        depth -= 1;
                        j += 1;
                        if depth == 0 {
                            return Some(j);
                        }
                    }
                    _ => j += 1,
                }
            }
            None
        }
        _ => {
            let mut j = i;
            while j < b.len() && !matches!(b[j], b',' | b'}' | b']') {
                j += 1;
            }
            Some(j)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_real_lines() {
        for line in [
            r#"{}"#,
            r#"{"a":1,"b":-2.5e-3,"c":"x\"y","d":[1,2,{"e":null}],"f":true}"#,
            r#"[1,2,3]"#,
            r#""just a string""#,
            r#"-0.125"#,
        ] {
            assert!(validate_json_line(line).is_ok(), "{line}");
        }
    }

    #[test]
    fn validator_rejects_garbage() {
        for line in [
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{"a" 1}"#,
            r#"{"scenario":"torn-partial-en"#,
            r#"{"a":01e}"#,
            r#"{"a":NaN}"#,
            r#"{"a":1} trailing"#,
            "",
        ] {
            assert!(validate_json_line(line).is_err(), "{line}");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let nasty = "quote \" backslash \\ newline \n tab \t ctrl \u{1}";
        let line = format!("{{\"v\":\"{}\"}}", json_escape(nasty));
        assert!(validate_json_line(&line).is_ok());
        assert_eq!(field_str(&line, "v").as_deref(), Some(nasty));
    }

    #[test]
    fn field_extraction_skips_nested_structures() {
        let line = r#"{"cell":"a,b","inner":{"cell":"WRONG","n":1},"t_s":0.125,"slot":42,"arr":[{"cell":"ALSO WRONG"}]}"#;
        assert_eq!(field_str(line, "cell").as_deref(), Some("a,b"));
        assert_eq!(field_f64(line, "t_s"), Some(0.125));
        assert_eq!(field_u64(line, "slot"), Some(42));
        assert_eq!(field_raw(line, "missing"), None);
        // A string *value* equal to the key name must not derail the scan.
        let tricky = r#"{"a":"cell","cell":7}"#;
        assert_eq!(field_u64(tricky, "cell"), Some(7));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(fmt_f64_json(f64::NAN), "null");
        assert_eq!(fmt_f64_json(f64::INFINITY), "null");
        assert_eq!(fmt_f64_json(1.5), "1.5");
    }
}
