//! `mmwave-telemetry`: the observability layer of the mmReliable
//! reproduction.
//!
//! Everything a run or a campaign can tell you about itself flows
//! through this crate:
//!
//! * [`tracer::Tracer`] — a cheap-clone handle threaded through
//!   `LinkSimulator`, `BeamStrategy`, and the controller. Disabled by
//!   default (one branch per call site); when enabled it times
//!   [`tracer::Stage`] spans into per-stage latency histograms and
//!   streams [`sink::TraceEvent`]s into a pluggable sink.
//! * [`hist::LatencyHist`] — fixed-bucket log-scale (HDR-style)
//!   histograms: 496 buckets cover the full `u64` ns range at ≤ 12.5 %
//!   relative error, and two histograms merge bucket-for-bucket, which
//!   is what lets the campaign aggregate thousands of cells.
//! * [`sink`] — `NullSink` (histograms only, provably allocation-free),
//!   `RingBufferSink` (bounded, per-worker, drained post-run), and
//!   `JsonlSink` (crash-consistent tmp+rename JSONL).
//! * [`metrics::MetricsRegistry`] — typed counters/gauges/histograms
//!   registered per resource (a UE, a worker, a campaign cell), with a
//!   Prometheus text exporter and a JSONL snapshot form that re-merges
//!   losslessly across workers and runs (`mmwave-admin metrics`).
//! * [`chrome`] — Chrome-trace-format export so a whole campaign loads
//!   in Perfetto as a flamegraph.
//! * [`json`] — the hand-rolled JSON escape/validate/extract helpers the
//!   trace pipeline and its CI validation share.
//!
//! The crate has no dependencies and its types are always available;
//! downstream crates gate only the *instrumentation call sites* behind
//! their `telemetry` cargo feature, mirroring the `perf-counters`
//! convention.

pub mod chrome;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod tracer;

pub use chrome::{chrome_trace_json, write_chrome_trace};
pub use hist::{LatencyHist, StageSummary, N_BUCKETS};
pub use json::{field_f64, field_raw, field_str, field_u64, json_escape, validate_json_line};
pub use metrics::{CounterId, GaugeId, HistId, MetricsRegistry, ResourceId};
pub use sink::{JsonlSink, NullSink, RingBufferSink, SlotTrace, TelemetrySink, TraceEvent};
pub use tracer::{RunLatency, SpanClock, Stage, StopWatch, Tracer, STAGE_COUNT};
