//! Chrome-trace-format export (loadable in `chrome://tracing` and
//! Perfetto).
//!
//! Mapping: each cell becomes one *process* (`pid`, named via
//! `process_name` metadata) so a campaign renders as a stack of lanes.
//! Stage spans are complete (`"ph":"X"`) events on the cell's compute
//! thread; their `ts` is **simulated** time (µs) while `dur` is the
//! measured **wall-clock** µs — the flamegraph shows where in the run's
//! timeline compute was spent and how much. SNR/blockage slot samples
//! become counter (`"ph":"C"`) tracks, and lifecycle transitions,
//! probes, and decisions become instant (`"ph":"i"`) markers.

use crate::json::{fmt_f64_json, json_escape};
use crate::sink::TraceEvent;
use std::path::Path;

const COMPUTE_TID: u32 = 1;
const EVENT_TID: u32 = 2;

fn us(t_s: f64) -> f64 {
    t_s * 1e6
}

/// Render `(cell id, events)` pairs as one Chrome-trace JSON document.
pub fn chrome_trace_json(cells: &[(String, Vec<TraceEvent>)]) -> String {
    let mut out = Vec::new();
    for (pid0, (cell, events)) in cells.iter().enumerate() {
        let pid = pid0 + 1;
        out.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(cell)
        ));
        out.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{COMPUTE_TID},\"args\":{{\"name\":\"compute\"}}}}"
        ));
        out.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{EVENT_TID},\"args\":{{\"name\":\"link events\"}}}}"
        ));
        for ev in events {
            match ev {
                TraceEvent::Span { stage, t_s, dur_ns } => out.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{COMPUTE_TID}}}",
                    stage.name(),
                    fmt_f64_json(us(*t_s)),
                    fmt_f64_json(*dur_ns as f64 / 1e3),
                )),
                TraceEvent::Slot(s) => {
                    if s.snr_db.is_finite() {
                        out.push(format!(
                            "{{\"name\":\"snr_db\",\"ph\":\"C\",\"ts\":{},\"pid\":{pid},\"args\":{{\"snr_db\":{}}}}}",
                            fmt_f64_json(us(s.t_s)),
                            fmt_f64_json(s.snr_db),
                        ));
                    }
                    out.push(format!(
                        "{{\"name\":\"blockage_db\",\"ph\":\"C\",\"ts\":{},\"pid\":{pid},\"args\":{{\"blockage_db\":{}}}}}",
                        fmt_f64_json(us(s.t_s)),
                        fmt_f64_json(s.blockage_db),
                    ));
                }
                TraceEvent::Lifecycle { t_s, from, to, .. } => out.push(format!(
                    "{{\"name\":\"{from}->{to}\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\"pid\":{pid},\"tid\":{EVENT_TID}}}",
                    fmt_f64_json(us(*t_s)),
                )),
                TraceEvent::Probe { t_s, kind, .. } => out.push(format!(
                    "{{\"name\":\"probe {kind}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{EVENT_TID}}}",
                    fmt_f64_json(us(*t_s)),
                )),
                TraceEvent::Round { t_s, verdict, .. } => out.push(format!(
                    "{{\"name\":\"round {verdict}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{EVENT_TID}}}",
                    fmt_f64_json(us(*t_s)),
                )),
                TraceEvent::Decision { t_s, what } => out.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{EVENT_TID}}}",
                    json_escape(what),
                    fmt_f64_json(us(*t_s)),
                )),
            }
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        out.join(",")
    )
}

/// Write the Chrome trace with tmp + atomic-rename (crash-consistent).
pub fn write_chrome_trace(path: &Path, cells: &[(String, Vec<TraceEvent>)]) -> Result<(), String> {
    let tmp = path.with_extension("json.tmp");
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(&tmp, chrome_trace_json(cells))
        .map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json_line;
    use crate::sink::SlotTrace;
    use crate::tracer::Stage;

    #[test]
    fn export_is_one_valid_json_document() {
        let cells = vec![
            (
                "mobile-blockage|mmreliable|s7000|f-|r1".to_string(),
                vec![
                    TraceEvent::Span {
                        stage: Stage::TickCompute,
                        t_s: 0.0,
                        dur_ns: 42_000,
                    },
                    TraceEvent::Slot(SlotTrace {
                        slot: 1,
                        t_s: 0.000_125,
                        snr_db: 19.0,
                        blockage_db: 0.0,
                        probing: false,
                        outage: false,
                    }),
                    TraceEvent::Slot(SlotTrace {
                        slot: 2,
                        t_s: 0.000_250,
                        snr_db: f64::NAN,
                        blockage_db: 12.0,
                        probing: true,
                        outage: false,
                    }),
                    TraceEvent::Lifecycle {
                        t_s: 0.5,
                        from: "Up",
                        to: "Degraded",
                        cause: "x".into(),
                    },
                    TraceEvent::Probe {
                        t_s: 0.25,
                        kind: "ssb",
                        snr_db: 15.0,
                    },
                    TraceEvent::Round {
                        t_s: 0.25,
                        state: "Up",
                        verdict: "Realign",
                        per_beam_db: vec![1.0],
                    },
                    TraceEvent::Decision {
                        t_s: 0.3,
                        what: "backoff \"x2\"".into(),
                    },
                ],
            ),
            ("second-cell".to_string(), vec![]),
        ];
        let doc = chrome_trace_json(&cells);
        validate_json_line(&doc).expect("valid chrome trace");
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("tick-compute"));
        // NaN SNR sample contributes no snr counter but keeps blockage.
        assert_eq!(doc.matches("\"name\":\"snr_db\"").count(), 1);
        assert_eq!(doc.matches("\"name\":\"blockage_db\"").count(), 2);
    }

    #[test]
    fn write_is_atomic() {
        let dir = std::env::temp_dir().join(format!("mmwave-chrome-test-{}", std::process::id()));
        let path = dir.join("trace.json");
        write_chrome_trace(&path, &[("c".to_string(), vec![])]).expect("write");
        let body = std::fs::read_to_string(&path).expect("read back");
        validate_json_line(&body).expect("valid");
        assert!(!path.with_extension("json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
