//! Fixed-bucket log-scale latency histograms (HDR-style).
//!
//! The bucket layout trades a small, fixed memory footprint for bounded
//! relative error: each power-of-two octave above 8 ns is split into
//! [`SUB`] linear sub-buckets, so any recorded value lands in a bucket
//! whose width is at most 1/8 of its magnitude (≤ 12.5 % relative
//! error). Values 0–7 get exact unit buckets. The layout covers the full
//! `u64` nanosecond range in [`N_BUCKETS`] = 496 counters, recording is
//! two shifts and an increment, and two histograms merge by element-wise
//! addition — the properties the campaign aggregator relies on.

/// Linear sub-buckets per power-of-two octave.
pub const SUB: usize = 8;
/// Total bucket count: 8 exact unit buckets + 61 octaves × 8 sub-buckets.
pub const N_BUCKETS: usize = 496;

/// A mergeable log-scale histogram of `u64` samples (nanoseconds by
/// convention, but nothing in the math assumes a unit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHist {
    counts: [u64; N_BUCKETS],
    count: u64,
    max_ns: u64,
    sum_ns: u128,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    pub fn new() -> Self {
        Self {
            counts: [0u64; N_BUCKETS],
            count: 0,
            max_ns: 0,
            sum_ns: 0,
        }
    }

    /// Bucket index for a value. Total over all of `u64`; monotone
    /// non-decreasing in `v`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB as u64 {
            v as usize
        } else {
            // e = position of the leading one bit, e >= 3.
            let e = 63 - v.leading_zeros() as usize;
            (e - 2) * SUB + ((v >> (e - 3)) & 7) as usize
        }
    }

    /// Inclusive `(lo, hi)` value range covered by bucket `b`.
    pub fn bucket_bounds(b: usize) -> (u64, u64) {
        assert!(b < N_BUCKETS, "bucket index out of range");
        if b < SUB {
            (b as u64, b as u64)
        } else {
            let e = b / SUB + 2;
            let sub = (b % SUB) as u64;
            let width = 1u64 << (e - 3);
            let lo = (SUB as u64 + sub) << (e - 3);
            (lo, lo + (width - 1))
        }
    }

    #[inline]
    pub fn record(&mut self, ns: u64) {
        let b = Self::bucket_index(ns);
        debug_assert!(b < self.counts.len());
        self.counts[b] = self.counts[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum_ns = self.sum_ns.saturating_add(ns as u128);
        if ns > self.max_ns {
            self.max_ns = ns;
        }
    }

    /// Fold `other` into `self`. Equivalent (bucket-for-bucket) to having
    /// recorded the union of both sample tapes into one histogram.
    ///
    /// All additions saturate, so a bucket pinned at `u64::MAX` stays
    /// pinned instead of wrapping — and because saturating addition of
    /// unsigned values is `min(true sum, MAX)`, merge order never changes
    /// the result: merging is commutative and associative even at the
    /// saturation boundary. Merging an empty histogram is a no-op
    /// (including `max_ns`, which an empty histogram holds at 0).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        if other.max_ns > self.max_ns {
            self.max_ns = other.max_ns;
        }
    }

    /// Rebuilds a histogram from exporter parts: sparse `(bucket, count)`
    /// pairs plus the exact sample sum and maximum the exporter carried
    /// alongside (neither is recoverable from bucket counts alone). Pairs
    /// with an out-of-range bucket index are ignored rather than panicking
    /// — snapshot files cross version boundaries. Repeated indices
    /// accumulate; the total count is the saturating sum of the pairs.
    pub fn from_parts(
        buckets: impl IntoIterator<Item = (usize, u64)>,
        sum_ns: u128,
        max_ns: u64,
    ) -> Self {
        let mut h = Self::new();
        for (b, n) in buckets {
            if b >= N_BUCKETS {
                continue;
            }
            h.counts[b] = h.counts[b].saturating_add(n);
            h.count = h.count.saturating_add(n);
        }
        h.sum_ns = sum_ns;
        h.max_ns = max_ns;
        h
    }

    pub fn clear(&mut self) {
        *self = Self::new();
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded value, exact (not bucket-quantised).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Exact sum of all recorded values (saturating at `u128::MAX`).
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Raw bucket counts, for exporters and tests.
    pub fn bucket_counts(&self) -> &[u64; N_BUCKETS] {
        &self.counts
    }

    /// Value at percentile `p` (0–100). Returns the upper bound of the
    /// bucket holding the rank-⌈p·n/100⌉ sample, tightened to the exact
    /// maximum when that bucket contains it — so the result always lies
    /// within the bounds of the bucket the true sample fell in.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let (_, hi) = Self::bucket_bounds(b);
                return if Self::bucket_index(self.max_ns) == b {
                    hi.min(self.max_ns)
                } else {
                    hi
                };
            }
        }
        self.max_ns
    }

    pub fn summary(&self) -> StageSummary {
        StageSummary {
            count: self.count,
            p50_ns: self.percentile_ns(50.0),
            p95_ns: self.percentile_ns(95.0),
            p99_ns: self.percentile_ns(99.0),
            max_ns: self.max_ns,
        }
    }
}

/// Percentile summary of one stage's latency histogram — the compact,
/// copyable form that rides on `RunResult`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageSummary {
    pub count: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            assert_eq!(LatencyHist::bucket_index(v), v as usize);
            assert_eq!(LatencyHist::bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        let probes = [
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            1_000,
            123_456,
            u32::MAX as u64,
            1u64 << 40,
            (1u64 << 40) + 12_345,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let b = LatencyHist::bucket_index(v);
            assert!(b < N_BUCKETS);
            let (lo, hi) = LatencyHist::bucket_bounds(b);
            assert!(lo <= v && v <= hi, "v={v} b={b} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn bucket_bounds_tile_the_u64_line() {
        // Consecutive buckets must abut exactly: hi(b) + 1 == lo(b+1).
        for b in 0..N_BUCKETS - 1 {
            let (_, hi) = LatencyHist::bucket_bounds(b);
            let (lo_next, _) = LatencyHist::bucket_bounds(b + 1);
            assert_eq!(hi + 1, lo_next, "gap/overlap at bucket {b}");
        }
        assert_eq!(LatencyHist::bucket_bounds(N_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[100u64, 1_000, 50_000, 1_000_000, 123_456_789] {
            let (lo, hi) = LatencyHist::bucket_bounds(LatencyHist::bucket_index(v));
            let width = (hi - lo) as f64;
            assert!(width / v as f64 <= 0.125, "v={v} width={width}");
        }
    }

    #[test]
    fn percentiles_and_max() {
        let mut h = LatencyHist::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max_ns(), 100_000);
        let p50 = h.percentile_ns(50.0);
        let (lo, hi) = LatencyHist::bucket_bounds(LatencyHist::bucket_index(50_000));
        assert!(p50 >= lo && p50 <= hi, "p50={p50} not in [{lo},{hi}]");
        assert_eq!(h.percentile_ns(100.0), 100_000);
        assert!(h.percentile_ns(0.0) >= 1000);
    }

    #[test]
    fn merge_matches_union() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut u = LatencyHist::new();
        for v in [3u64, 900, 12_000, 1 << 30] {
            a.record(v);
            u.record(v);
        }
        for v in [0u64, 900, 77, u64::MAX] {
            b.record(v);
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    /// Three deterministic sample tapes with different shapes, plus a
    /// histogram pre-loaded to the saturation boundary.
    fn merge_fixtures() -> [LatencyHist; 4] {
        let mut a = LatencyHist::new();
        for v in [3u64, 900, 12_000, 1 << 30] {
            a.record(v);
        }
        let mut b = LatencyHist::new();
        for v in [0u64, 900, 77, u64::MAX] {
            b.record(v);
        }
        let mut c = LatencyHist::new();
        for v in 1..=50u64 {
            c.record(v * 333);
        }
        // Near-saturated: one bucket and the totals pinned just below MAX,
        // so any further merge crosses the boundary.
        let sat = LatencyHist::from_parts(
            [(LatencyHist::bucket_index(900), u64::MAX - 1)],
            u128::MAX - 1,
            u64::MAX,
        );
        [a, b, c, sat]
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        for h in merge_fixtures() {
            let empty = LatencyHist::new();
            let mut lhs = h.clone();
            lhs.merge(&empty);
            assert_eq!(lhs, h, "h.merge(empty) must leave h unchanged");
            let mut rhs = LatencyHist::new();
            rhs.merge(&h);
            assert_eq!(rhs, h, "empty.merge(h) must equal h");
        }
    }

    #[test]
    fn merge_is_commutative() {
        let fx = merge_fixtures();
        for x in &fx {
            for y in &fx {
                let mut xy = x.clone();
                xy.merge(y);
                let mut yx = y.clone();
                yx.merge(x);
                assert_eq!(xy, yx);
            }
        }
    }

    #[test]
    fn merge_is_associative() {
        let fx = merge_fixtures();
        for x in &fx {
            for y in &fx {
                for z in &fx {
                    let mut left = x.clone();
                    left.merge(y);
                    left.merge(z);
                    let mut yz = y.clone();
                    yz.merge(z);
                    let mut right = x.clone();
                    right.merge(&yz);
                    assert_eq!(left, right);
                }
            }
        }
    }

    #[test]
    fn merge_saturates_at_bucket_max_instead_of_wrapping() {
        let b = LatencyHist::bucket_index(900);
        let sat = LatencyHist::from_parts([(b, u64::MAX - 1)], u128::MAX - 1, u64::MAX);
        let mut two = LatencyHist::new();
        two.record(900);
        two.record(900);
        let mut m = sat.clone();
        m.merge(&two);
        assert_eq!(m.bucket_counts()[b], u64::MAX);
        assert_eq!(m.count(), u64::MAX);
        assert_eq!(m.max_ns(), u64::MAX);
        // Recording into a pinned histogram saturates too.
        m.record(900);
        assert_eq!(m.bucket_counts()[b], u64::MAX);
        assert_eq!(m.count(), u64::MAX);
    }

    #[test]
    fn from_parts_roundtrips_bucket_counts() {
        let mut h = LatencyHist::new();
        for v in [5u64, 900, 900, 1 << 20] {
            h.record(v);
        }
        let sparse: Vec<(usize, u64)> = h
            .bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
            .collect();
        let r = LatencyHist::from_parts(sparse, 5 + 900 + 900 + (1u128 << 20), 1 << 20);
        assert_eq!(r, h);
        // Out-of-range indices are skipped, not a panic.
        let odd = LatencyHist::from_parts([(N_BUCKETS, 7), (N_BUCKETS + 40, 1)], 0, 0);
        assert!(odd.is_empty());
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHist::new();
        assert_eq!(h.percentile_ns(50.0), 0);
        assert_eq!(h.summary(), StageSummary::default());
        assert_eq!(h.mean_ns(), 0.0);
    }
}
