//! Per-resource metrics registry: typed counters, gauges, and latency
//! histograms, registered once per resource (a UE, a worker, a campaign
//! cell, a fleet) and updated through copyable integer handles.
//!
//! The split between *registration* (allocates: names are interned,
//! lookup maps grow) and *update* (an index into a `Vec`, no allocation,
//! no hashing) is the contract the hot paths rely on: a capture layer
//! registers everything it will ever touch up front, then updates
//! per pass at slot rate. In the byte-identity crates every call site
//! that touches a registry must sit under `#[cfg(feature =
//! "telemetry")]` — the `telemetry-hygiene` xtask lint enforces it — so
//! the feature-off build carries no registry at all and stays
//! bit-identical (the fingerprint harness proves it).
//!
//! Two export forms, both deterministic (sorted by metric name, then
//! resource name — never map iteration order):
//!
//! * [`MetricsRegistry::prometheus_text`] — the Prometheus text
//!   exposition format (counters, gauges, and summaries with
//!   p50/p95/p99 quantiles).
//! * [`MetricsRegistry::snapshot_jsonl`] — one self-contained JSON
//!   object per metric instance, suitable for appending to a snapshot
//!   file. Histograms serialize their sparse bucket counts plus the
//!   exact sum/max, so snapshots written by different workers (or
//!   different runs) re-merge losslessly through
//!   [`MetricsRegistry::absorb_line`]: counters add, gauges last-write
//!   win, histograms merge bucket-for-bucket.

use crate::hist::{LatencyHist, N_BUCKETS};
use crate::json::{field_raw, field_str, field_u64, fmt_f64_json, json_escape};
use std::collections::BTreeMap;

/// Handle to a registered resource (allocation-free to copy and use).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceId(usize);

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

#[derive(Clone, Debug)]
struct Slot<T> {
    resource: usize,
    metric: String,
    value: T,
}

/// The registry: all metric state for one capture scope.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    resources: Vec<String>,
    resource_index: BTreeMap<String, usize>,
    counters: Vec<Slot<u64>>,
    counter_index: BTreeMap<(usize, String), usize>,
    gauges: Vec<Slot<f64>>,
    gauge_index: BTreeMap<(usize, String), usize>,
    hists: Vec<Slot<LatencyHist>>,
    hist_index: BTreeMap<(usize, String), usize>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) a resource by name.
    pub fn resource(&mut self, name: &str) -> ResourceId {
        if let Some(&i) = self.resource_index.get(name) {
            return ResourceId(i);
        }
        let i = self.resources.len();
        self.resources.push(name.to_string());
        self.resource_index.insert(name.to_string(), i);
        ResourceId(i)
    }

    /// Registers (or finds) a counter under `resource`.
    pub fn counter(&mut self, resource: ResourceId, metric: &str) -> CounterId {
        let key = (resource.0, metric.to_string());
        if let Some(&i) = self.counter_index.get(&key) {
            return CounterId(i);
        }
        let i = self.counters.len();
        self.counters.push(Slot {
            resource: resource.0,
            metric: key.1.clone(),
            value: 0,
        });
        self.counter_index.insert(key, i);
        CounterId(i)
    }

    /// Registers (or finds) a gauge under `resource`.
    pub fn gauge(&mut self, resource: ResourceId, metric: &str) -> GaugeId {
        let key = (resource.0, metric.to_string());
        if let Some(&i) = self.gauge_index.get(&key) {
            return GaugeId(i);
        }
        let i = self.gauges.len();
        self.gauges.push(Slot {
            resource: resource.0,
            metric: key.1.clone(),
            value: 0.0,
        });
        self.gauge_index.insert(key, i);
        GaugeId(i)
    }

    /// Registers (or finds) a latency histogram under `resource`.
    pub fn histogram(&mut self, resource: ResourceId, metric: &str) -> HistId {
        let key = (resource.0, metric.to_string());
        if let Some(&i) = self.hist_index.get(&key) {
            return HistId(i);
        }
        let i = self.hists.len();
        self.hists.push(Slot {
            resource: resource.0,
            metric: key.1.clone(),
            value: LatencyHist::new(),
        });
        self.hist_index.insert(key, i);
        HistId(i)
    }

    /// Adds to a counter (saturating). Allocation-free.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        let v = &mut self.counters[id.0].value;
        *v = v.saturating_add(n);
    }

    /// Sets a counter to an absolute value (for publishing running
    /// totals accumulated elsewhere). Allocation-free.
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, v: u64) {
        self.counters[id.0].value = v;
    }

    /// Sets a gauge. Allocation-free.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].value = v;
    }

    /// Records one sample into a histogram. Allocation-free.
    #[inline]
    pub fn observe_ns(&mut self, id: HistId, ns: u64) {
        self.hists[id.0].value.record(ns);
    }

    /// Folds a whole histogram into a registered one.
    pub fn merge_hist(&mut self, id: HistId, h: &LatencyHist) {
        self.hists[id.0].value.merge(h);
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].value
    }

    /// Registered histogram contents.
    pub fn hist(&self, id: HistId) -> &LatencyHist {
        &self.hists[id.0].value
    }

    /// Looks up a counter without registering it.
    pub fn find_counter(&self, resource: &str, metric: &str) -> Option<CounterId> {
        let r = *self.resource_index.get(resource)?;
        self.counter_index
            .get(&(r, metric.to_string()))
            .map(|&i| CounterId(i))
    }

    /// Looks up a gauge without registering it.
    pub fn find_gauge(&self, resource: &str, metric: &str) -> Option<GaugeId> {
        let r = *self.resource_index.get(resource)?;
        self.gauge_index
            .get(&(r, metric.to_string()))
            .map(|&i| GaugeId(i))
    }

    /// Looks up a histogram without registering it.
    pub fn find_histogram(&self, resource: &str, metric: &str) -> Option<HistId> {
        let r = *self.resource_index.get(resource)?;
        self.hist_index
            .get(&(r, metric.to_string()))
            .map(|&i| HistId(i))
    }

    /// Registered resource names, insertion order.
    pub fn resources(&self) -> impl Iterator<Item = &str> {
        self.resources.iter().map(String::as_str)
    }

    /// All counters as `(resource, metric, value)`, sorted by metric
    /// then resource.
    pub fn counters(&self) -> Vec<(&str, &str, u64)> {
        let mut out: Vec<_> = self
            .counters
            .iter()
            .map(|s| {
                (
                    self.resources[s.resource].as_str(),
                    s.metric.as_str(),
                    s.value,
                )
            })
            .collect();
        out.sort_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0)));
        out
    }

    /// All gauges as `(resource, metric, value)`, sorted by metric then
    /// resource.
    pub fn gauges(&self) -> Vec<(&str, &str, f64)> {
        let mut out: Vec<_> = self
            .gauges
            .iter()
            .map(|s| {
                (
                    self.resources[s.resource].as_str(),
                    s.metric.as_str(),
                    s.value,
                )
            })
            .collect();
        out.sort_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0)));
        out
    }

    /// All histograms as `(resource, metric, hist)`, sorted by metric
    /// then resource.
    pub fn histograms(&self) -> Vec<(&str, &str, &LatencyHist)> {
        let mut out: Vec<_> = self
            .hists
            .iter()
            .map(|s| {
                (
                    self.resources[s.resource].as_str(),
                    s.metric.as_str(),
                    &s.value,
                )
            })
            .collect();
        out.sort_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0)));
        out
    }

    /// Total registered metric instances across all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Prometheus text exposition. Metric names are prefixed `mmwave_`
    /// and sanitised to `[a-zA-Z0-9_:]`; the resource rides in a
    /// `resource` label. Histograms export as summaries (p50/p95/p99
    /// quantiles plus `_count`/`_sum`). Output order is deterministic.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_header = String::new();
        let mut header = |out: &mut String, name: &str, kind: &str| {
            if last_header != name {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_header = name.to_string();
            }
        };
        for (res, metric, v) in self.counters() {
            let name = format!("mmwave_{}", prom_sanitize(metric));
            header(&mut out, &name, "counter");
            out.push_str(&format!(
                "{name}{{resource=\"{}\"}} {v}\n",
                prom_label_escape(res)
            ));
        }
        for (res, metric, v) in self.gauges() {
            let name = format!("mmwave_{}", prom_sanitize(metric));
            header(&mut out, &name, "gauge");
            out.push_str(&format!(
                "{name}{{resource=\"{}\"}} {}\n",
                prom_label_escape(res),
                fmt_f64_json(v)
            ));
        }
        for (res, metric, h) in self.histograms() {
            let name = format!("mmwave_{}", prom_sanitize(metric));
            header(&mut out, &name, "summary");
            let res = prom_label_escape(res);
            for (q, v) in [
                ("0.5", h.percentile_ns(50.0)),
                ("0.95", h.percentile_ns(95.0)),
                ("0.99", h.percentile_ns(99.0)),
            ] {
                out.push_str(&format!(
                    "{name}{{resource=\"{res}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!(
                "{name}_count{{resource=\"{res}\"}} {}\n",
                h.count()
            ));
            out.push_str(&format!(
                "{name}_sum{{resource=\"{res}\"}} {}\n",
                h.sum_ns()
            ));
        }
        out
    }

    /// One self-contained JSON object per metric instance, deterministic
    /// order, each line valid under `validate_json_line`. Histogram sum
    /// is a decimal string (it is a `u128`; JSON numbers lose precision
    /// past 2^53).
    pub fn snapshot_jsonl(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.len());
        for (res, metric, v) in self.counters() {
            out.push(format!(
                "{{\"kind\":\"counter\",\"resource\":\"{}\",\"metric\":\"{}\",\"value\":{v}}}",
                json_escape(res),
                json_escape(metric)
            ));
        }
        for (res, metric, v) in self.gauges() {
            out.push(format!(
                "{{\"kind\":\"gauge\",\"resource\":\"{}\",\"metric\":\"{}\",\"value\":{}}}",
                json_escape(res),
                json_escape(metric),
                fmt_f64_json(v)
            ));
        }
        for (res, metric, h) in self.histograms() {
            let mut buckets = String::from("[");
            let mut first = true;
            for (b, &c) in h.bucket_counts().iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    buckets.push(',');
                }
                first = false;
                buckets.push_str(&format!("[{b},{c}]"));
            }
            buckets.push(']');
            out.push(format!(
                "{{\"kind\":\"hist\",\"resource\":\"{}\",\"metric\":\"{}\",\"count\":{},\
                 \"sum_ns\":\"{}\",\"max_ns\":{},\"buckets\":{buckets}}}",
                json_escape(res),
                json_escape(metric),
                h.count(),
                h.sum_ns(),
                h.max_ns()
            ));
        }
        out
    }

    /// Folds one snapshot line into the registry, registering resource
    /// and metric as needed. Merge semantics: counters **add**, gauges
    /// **last-write-wins**, histograms **merge** bucket-for-bucket.
    /// Unknown `kind`s and malformed lines are typed errors (callers
    /// decide whether to warn-and-skip); unknown bucket indices inside a
    /// histogram are ignored for forward compatibility.
    pub fn absorb_line(&mut self, line: &str) -> Result<(), String> {
        let kind = field_str(line, "kind").ok_or("snapshot line missing \"kind\"")?;
        let res = field_str(line, "resource").ok_or("snapshot line missing \"resource\"")?;
        let metric = field_str(line, "metric").ok_or("snapshot line missing \"metric\"")?;
        let rid = self.resource(&res);
        match kind.as_str() {
            "counter" => {
                let v = field_u64(line, "value").ok_or("counter line missing \"value\"")?;
                let id = self.counter(rid, &metric);
                self.add(id, v);
            }
            "gauge" => {
                let v =
                    crate::json::field_f64(line, "value").ok_or("gauge line missing \"value\"")?;
                let id = self.gauge(rid, &metric);
                self.set_gauge(id, v);
            }
            "hist" => {
                let sum: u128 = field_str(line, "sum_ns")
                    .and_then(|s| s.parse().ok())
                    .ok_or("hist line missing \"sum_ns\"")?;
                let max = field_u64(line, "max_ns").ok_or("hist line missing \"max_ns\"")?;
                let raw = field_raw(line, "buckets").ok_or("hist line missing \"buckets\"")?;
                let pairs = parse_bucket_pairs(raw)?;
                let h = LatencyHist::from_parts(pairs, sum, max);
                let id = self.histogram(rid, &metric);
                self.merge_hist(id, &h);
            }
            other => return Err(format!("unknown snapshot metric kind {other:?}")),
        }
        Ok(())
    }
}

/// Parses `[[b,c],[b,c],...]` into `(bucket, count)` pairs. Out-of-range
/// bucket indices are dropped (forward compatibility with a layout that
/// grows buckets), malformed syntax is an error.
fn parse_bucket_pairs(raw: &str) -> Result<Vec<(usize, u64)>, String> {
    let inner = raw
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or("buckets is not an array")?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let body = rest
            .strip_prefix('[')
            .ok_or("bucket pair is not an array")?;
        let end = body.find(']').ok_or("unterminated bucket pair")?;
        let mut nums = body[..end].split(',');
        let b: usize = nums
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or("bad bucket index")?;
        let c: u64 = nums
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or("bad bucket count")?;
        if nums.next().is_some() {
            return Err("bucket pair has more than two elements".into());
        }
        if b < N_BUCKETS {
            out.push((b, c));
        }
        rest = body[end + 1..].trim().trim_start_matches(',').trim_start();
    }
    Ok(out)
}

/// Prometheus metric-name sanitisation: `[a-zA-Z0-9_:]`, others become
/// `_`.
fn prom_sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Prometheus label-value escaping: backslash, quote, newline.
fn prom_label_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json_line;

    #[test]
    fn register_update_and_read_back() {
        let mut reg = MetricsRegistry::new();
        let ue = reg.resource("ue0");
        let c = reg.counter(ue, "intents");
        let g = reg.gauge(ue, "time_in_state_s:steady");
        let h = reg.histogram(ue, "pass_latency_ns");
        reg.add(c, 3);
        reg.add(c, 4);
        reg.set_gauge(g, 1.25);
        reg.observe_ns(h, 900);
        reg.observe_ns(h, 12_000);
        assert_eq!(reg.counter_value(c), 7);
        assert_eq!(reg.gauge_value(g), 1.25);
        assert_eq!(reg.hist(h).count(), 2);
        // Registration is idempotent: same handle back.
        assert_eq!(reg.counter(ue, "intents"), c);
        assert_eq!(reg.resource("ue0"), ue);
        assert_eq!(reg.find_counter("ue0", "intents"), Some(c));
        assert_eq!(reg.find_counter("ue1", "intents"), None);
    }

    #[test]
    fn snapshot_lines_are_valid_json_and_roundtrip() {
        let mut reg = MetricsRegistry::new();
        let ue = reg.resource("ue\"odd\\name");
        let c = reg.counter(ue, "intents");
        reg.add(c, 42);
        let g = reg.gauge(ue, "reliability");
        reg.set_gauge(g, 0.995);
        let h = reg.histogram(ue, "pass_latency_ns");
        for v in [5u64, 900, 900, 1 << 33] {
            reg.observe_ns(h, v);
        }
        let lines = reg.snapshot_jsonl();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            validate_json_line(l).expect("snapshot line must be strict JSON");
        }
        let mut back = MetricsRegistry::new();
        for l in &lines {
            back.absorb_line(l).unwrap();
        }
        let c2 = back.find_counter("ue\"odd\\name", "intents").unwrap();
        assert_eq!(back.counter_value(c2), 42);
        let h2 = back
            .find_histogram("ue\"odd\\name", "pass_latency_ns")
            .unwrap();
        assert_eq!(back.hist(h2), reg.hist(h));
        // Absorbing the same counters again adds; gauges last-write-win.
        for l in &lines {
            back.absorb_line(l).unwrap();
        }
        assert_eq!(back.counter_value(c2), 84);
        let g2 = back.find_gauge("ue\"odd\\name", "reliability").unwrap();
        assert_eq!(back.gauge_value(g2), 0.995);
        assert_eq!(back.hist(h2).count(), 2 * reg.hist(h).count());
    }

    #[test]
    fn absorb_rejects_malformed_lines_without_panicking() {
        let mut reg = MetricsRegistry::new();
        for bad in [
            "",
            "not json",
            "{\"kind\":\"counter\"}",
            "{\"kind\":\"warp\",\"resource\":\"r\",\"metric\":\"m\"}",
            "{\"kind\":\"hist\",\"resource\":\"r\",\"metric\":\"m\",\"count\":1,\
             \"sum_ns\":\"1\",\"max_ns\":1,\"buckets\":[[nope]]}",
        ] {
            assert!(
                reg.absorb_line(bad).is_err(),
                "line must be rejected: {bad}"
            );
        }
        assert!(reg.is_empty() || reg.len() <= 2); // partial registration ok, no values folded
    }

    #[test]
    fn prometheus_text_is_deterministic_and_labelled() {
        let mut reg = MetricsRegistry::new();
        for res in ["ue1", "ue0"] {
            let r = reg.resource(res);
            let c = reg.counter(r, "intents");
            reg.add(c, 1);
        }
        let r = reg.resource("fleet");
        let h = reg.histogram(r, "pass latency (ns)");
        reg.observe_ns(h, 1000);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE mmwave_intents counter"));
        // Sorted by resource within a metric.
        let i0 = text.find("resource=\"ue0\"").unwrap();
        let i1 = text.find("resource=\"ue1\"").unwrap();
        assert!(i0 < i1);
        // Name sanitised, summary quantiles present.
        assert!(text.contains("# TYPE mmwave_pass_latency__ns_ summary"));
        assert!(text.contains("quantile=\"0.99\""));
        assert_eq!(text, reg.clone().prometheus_text());
    }

    #[test]
    fn bucket_pair_parser_handles_spacing_and_bounds() {
        assert_eq!(parse_bucket_pairs("[]").unwrap(), vec![]);
        assert_eq!(
            parse_bucket_pairs("[[1,2],[3,4]]").unwrap(),
            vec![(1, 2), (3, 4)]
        );
        assert_eq!(
            parse_bucket_pairs("[ [1, 2] , [9999, 4] ]").unwrap(),
            vec![(1, 2)] // out-of-range bucket dropped
        );
        assert!(parse_bucket_pairs("[[1,2,3]]").is_err());
        assert!(parse_bucket_pairs("nope").is_err());
    }
}
