//! Property-based tests for the log-scale latency histogram.
//!
//! Pins the three invariants campaign-level merging relies on:
//! merge-equals-union (recording two streams separately then merging is
//! indistinguishable from recording the concatenation), bucket
//! monotonicity (bucket index and bucket bounds never regress as values
//! grow), and percentile containment (a reported percentile always lies
//! within the bounds of a bucket that actually holds samples, and never
//! exceeds the exact recorded maximum).

use mmwave_telemetry::{LatencyHist, N_BUCKETS};
use proptest::prelude::*;

/// Any u64, octave-stratified: latencies span ns to minutes, so exercise
/// every magnitude rather than a uniform draw's top decade.
fn any_ns() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        64u64..100_000,
        100_000u64..10_000_000_000,
        0u64..u64::MAX,
        Just(u64::MAX),
    ]
}

fn values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any_ns(), 0..200)
}

proptest! {
    #[test]
    fn merge_equals_union(a in values(), b in values()) {
        let mut ha = LatencyHist::new();
        let mut hb = LatencyHist::new();
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        let mut merged = ha.clone();
        merged.merge(&hb);

        let mut union = LatencyHist::new();
        for &v in a.iter().chain(&b) {
            union.record(v);
        }
        prop_assert_eq!(merged.count(), union.count());
        prop_assert_eq!(merged.max_ns(), union.max_ns());
        prop_assert_eq!(merged.bucket_counts(), union.bucket_counts());
        prop_assert_eq!(merged.summary(), union.summary());
    }

    #[test]
    fn bucket_index_is_monotone_and_self_consistent(v in any_ns()) {
        let b = LatencyHist::bucket_index(v);
        prop_assert!(b < N_BUCKETS);
        let (lo, hi) = LatencyHist::bucket_bounds(b);
        prop_assert!(lo <= v && v <= hi, "value {v} outside bucket {b} [{lo}, {hi}]");
        // Monotone in the value: the next value never maps to an earlier
        // bucket.
        if v < u64::MAX {
            prop_assert!(LatencyHist::bucket_index(v + 1) >= b);
        }
        // Monotone in the bucket: bounds tile without overlap.
        if b + 1 < N_BUCKETS {
            let (lo_next, _) = LatencyHist::bucket_bounds(b + 1);
            prop_assert_eq!(hi + 1, lo_next);
        }
    }

    #[test]
    fn percentiles_stay_within_bucket_bounds(vs in values(), q in 0.0..1.0f64) {
        let mut h = LatencyHist::new();
        for &v in &vs {
            h.record(v);
        }
        if vs.is_empty() {
            prop_assert_eq!(h.percentile_ns(q), 0);
            return Ok(());
        }
        let p = h.percentile_ns(q);
        // Never above the exact recorded maximum...
        let max = *vs.iter().max().unwrap();
        prop_assert!(p <= max, "p{q}={p} above exact max {max}");
        // ...and always within a bucket that actually holds samples.
        let b = LatencyHist::bucket_index(p);
        let counts = h.bucket_counts();
        let nonempty = (0..N_BUCKETS).any(|i| {
            counts[i] > 0 && {
                let (lo, hi) = LatencyHist::bucket_bounds(i);
                lo <= p && p <= hi
            }
        });
        prop_assert!(nonempty, "p{q}={p} (bucket {b}) not inside any occupied bucket");
        // Quantile ordering: a higher q never reports a lower value.
        prop_assert!(h.percentile_ns(1.0) >= h.percentile_ns(q));
        prop_assert!(h.percentile_ns(q) >= h.percentile_ns(0.0));
    }

    #[test]
    fn summary_is_merge_stable_under_split(vs in values(), split in 0usize..200) {
        // Splitting one stream at any point and merging the halves is the
        // identity on every exported statistic.
        let cut = split.min(vs.len());
        let (left, right) = vs.split_at(cut);
        let mut hl = LatencyHist::new();
        let mut hr = LatencyHist::new();
        for &v in left {
            hl.record(v);
        }
        for &v in right {
            hr.record(v);
        }
        hl.merge(&hr);
        let mut whole = LatencyHist::new();
        for &v in &vs {
            whole.record(v);
        }
        prop_assert_eq!(hl.summary(), whole.summary());
        prop_assert_eq!(hl.mean_ns(), whole.mean_ns());
    }
}
