//! End-to-end coverage of the `mmwave-admin` logic over *real* journals:
//! a small campaign and a small fleet write journals through the
//! production paths, then the admin layer reads them back — rollup,
//! transition-tape history, self-replay diff, torn-line tolerance,
//! legacy 4-segment ids, and metrics snapshot merging.

use std::path::PathBuf;

use mmwave_bench::admin::{
    diff_journals, entry_id, history_report, merge_snapshots, scan_journal, self_replay_diff,
    status_report, CellDiff,
};
use mmwave_sim::campaign::{run_campaign, CampaignConfig, Job, JournalEntry};
use mmwave_sim::fleet::{run_fleet, FleetConfig};
use mmwave_sim::FaultSchedule;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mmwave-admin-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

fn campaign_journal(name: &str, seeds: std::ops::Range<u64>) -> PathBuf {
    let journal = tmp(name);
    let _ = std::fs::remove_file(&journal);
    let jobs: Vec<Job> = seeds
        .map(|s| {
            Job::from_registry("mobile-blockage", "mmreliable", s, FaultSchedule::none(), 1)
                .expect("registry job")
        })
        .collect();
    let cfg = CampaignConfig {
        threads: 1,
        journal: Some(journal.clone()),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&jobs, &cfg).expect("campaign");
    assert!(report.failures().is_empty());
    journal
}

#[test]
fn history_reproduces_the_validated_transition_tape() {
    let journal = campaign_journal("history.jsonl", 9000..9002);
    let scan = scan_journal(&journal).expect("scan");
    assert_eq!(scan.torn, 0);
    let id = entry_id(&scan.entries[0]);
    let report = history_report(&scan, &id).expect("history");
    assert!(report.contains("matches journal"), "{report}");
    // history_report already cross-checks the tape with
    // check_transition_tape; a run that acquires the link has at least
    // the Acquiring -> Steady edge.
    assert!(report.contains("acquiring"), "{report}");
    assert!(report.contains("cause=established"), "{report}");
    // Unknown and ambiguous resources error instead of panicking.
    assert!(history_report(&scan, "no-such-cell").is_err());
}

#[test]
fn self_replay_diff_of_a_fresh_journal_is_all_identical() {
    let journal = campaign_journal("self-replay.jsonl", 9100..9102);
    let scan = scan_journal(&journal).expect("scan");
    let report = self_replay_diff(&scan);
    assert!(report.all_identical(), "{}", report.render());
}

#[test]
fn diff_tolerates_torn_lines_and_legacy_four_segment_ids() {
    let journal = campaign_journal("diff-a.jsonl", 9200..9202);
    let text = std::fs::read_to_string(&journal).expect("journal text");
    let lines: Vec<String> = text.lines().map(str::to_string).collect();

    // Side B: same first cell but rewritten as a *legacy* line (no
    // impairment field, as written before the impairment layer), second
    // cell's digest perturbed, plus a torn trailing line.
    let legacy = lines[0].replace(",\"impairment\":\"none\"", "");
    assert!(!legacy.contains("impairment"), "{legacy}");
    assert!(JournalEntry::parse(&legacy).is_some(), "legacy line parses");
    let perturbed = {
        let mut e = JournalEntry::parse(&lines[1]).expect("line parses");
        e.digest ^= 1;
        e.to_json()
    };
    let b = tmp("diff-b.jsonl");
    std::fs::write(
        &b,
        format!("{legacy}\n{perturbed}\nnot json at all\n{{\"scenario\":\"torn"),
    )
    .expect("write b");

    let scan_a = scan_journal(&journal).expect("scan a");
    let scan_b = scan_journal(&b).expect("scan b");
    assert_eq!(scan_b.torn, 2);
    // No replay localization here: the perturbed digest belongs to the
    // same replayable cell, and localization would find the replays
    // bit-identical (the divergence is in the recording, not the cell).
    let report = diff_journals(&scan_a, &scan_b, false);
    assert!(!report.all_identical());
    let divergent: Vec<_> = report
        .rows
        .iter()
        .filter(|(_, d)| !matches!(d, CellDiff::Identical))
        .collect();
    assert_eq!(divergent.len(), 1, "{}", report.render());
    assert!(matches!(divergent[0].1, CellDiff::DivergentDigest { .. }));
    // The legacy line deduped onto the modern 4-segment id: cell 0 is
    // identical, not missing.
    assert!(report
        .rows
        .iter()
        .any(|(id, d)| id == &entry_id(&scan_a.entries[0]) && *d == CellDiff::Identical));

    // Torn-only journals diff without panicking.
    let torn_only = tmp("torn-only.jsonl");
    std::fs::write(&torn_only, "garbage\n{\"scenario\":\"half").expect("write torn");
    let scan_t = scan_journal(&torn_only).expect("scan torn");
    let report = diff_journals(&scan_a, &scan_t, true);
    assert!(report.rows.iter().all(|(_, d)| *d == CellDiff::OnlyInA));
}

#[test]
fn fleet_member_and_aggregate_lines_classify_correctly() {
    let journal = tmp("fleet.jsonl");
    let _ = std::fs::remove_file(&journal);
    let mut cfg = FleetConfig::new("static-walker", "single-beam-reactive", 2, 77);
    cfg.threads = 1;
    cfg.shards = 1;
    cfg.journal = Some(journal.clone());
    let report = run_fleet(&cfg).expect("fleet");
    assert_eq!(report.outcomes.len(), 2);

    let scan = scan_journal(&journal).expect("scan");
    let status = status_report(&scan);
    assert!(
        status.contains("0 single-link, 1 fleet aggregates, 2 fleet members"),
        "{status}"
    );
    assert!(
        status.contains("fleet:static-walker:2: 2 members journaled (2 ok), aggregate present"),
        "{status}"
    );

    // A member's tape replays through the fleet machinery; the
    // scenario-field shorthand resolves because it is unambiguous.
    let member = history_report(&scan, "fleet:static-walker:2:ue0").expect("member history");
    assert!(member.contains("matches journal"), "{member}");
    // The aggregate has no single tape and says so.
    let aggregate = history_report(&scan, "fleet:static-walker:2");
    assert!(aggregate.is_err());
    assert!(aggregate.unwrap_err().contains("fleet aggregate"));

    // Self-replay over members *and* the aggregate line is identical.
    let report = self_replay_diff(&scan);
    assert!(report.all_identical(), "{}", report.render());
}

#[test]
fn metrics_snapshots_merge_and_reexport() {
    let journal = tmp("metrics-journal.jsonl");
    let snapshot = tmp("metrics.jsonl");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&snapshot);
    let jobs: Vec<Job> = (9300..9302u64)
        .map(|s| {
            Job::from_registry("mobile-blockage", "mmreliable", s, FaultSchedule::none(), 1)
                .expect("registry job")
        })
        .collect();
    let cfg = CampaignConfig {
        threads: 1,
        journal: Some(journal),
        metrics: Some(snapshot.clone()),
        ..CampaignConfig::default()
    };
    run_campaign(&jobs, &cfg).expect("campaign");

    // Merging the snapshot with itself doubles counters (adds) but keeps
    // gauges (last write wins) — the documented re-merge semantics.
    let once = merge_snapshots(&[&snapshot]).expect("merge once");
    let twice = merge_snapshots(&[&snapshot, &snapshot]).expect("merge twice");
    let cells = once
        .find_counter("campaign", "cells")
        .map(|id| once.counter_value(id))
        .expect("campaign cells counter");
    assert_eq!(cells, 2);
    let cells2 = twice
        .find_counter("campaign", "cells")
        .map(|id| twice.counter_value(id))
        .expect("campaign cells counter");
    assert_eq!(cells2, 4);

    let prom = once.prometheus_text();
    assert!(prom.contains("# TYPE mmwave_cells counter"), "{prom}");
    assert!(prom.contains("resource=\"campaign\""), "{prom}");
    // Re-exported JSONL re-absorbs losslessly.
    let reexport = once.snapshot_jsonl();
    let mut again = mmwave_telemetry::MetricsRegistry::new();
    for line in &reexport {
        mmwave_telemetry::validate_json_line(line).expect("strict JSON");
        again.absorb_line(line).expect("reabsorb");
    }
    assert_eq!(again.snapshot_jsonl(), reexport);
}
