//! Campaign-driven sweeps for the figure and ablation binaries.
//!
//! [`supervised_run_many`] is the drop-in successor of
//! [`mmwave_sim::runner::run_many`] for long evaluation sweeps: the same
//! seeding (`base_seed + run_idx`) and bit-identical results, but the runs
//! execute under the campaign supervisor — per-run watchdog deadlines, one
//! retry for transient failures, and a terminal report that names the full
//! (scenario, strategy, seed) repro tuple of anything that still failed,
//! instead of an opaque join error three hours into a figure regeneration.

use mmwave_baselines::strategy::BeamStrategy;
use mmwave_sim::campaign::{closure_jobs, run_campaign, CampaignConfig};
use mmwave_sim::{RunResult, Scenario};
use std::sync::Arc;
use std::time::Duration;

/// A strategy factory shareable across campaign workers.
pub type SharedFactory = Arc<dyn Fn() -> Box<dyn BeamStrategy + Send> + Send + Sync>;

/// Plays `n_runs` seeded cells of one (scenario family × strategy) sweep
/// under the campaign supervisor and returns the run records in seed
/// order. Panics — naming every failed cell — if any cell fails after
/// supervision's retry; figure pipelines have no use for partial batches.
pub fn supervised_run_many<S>(
    n_runs: usize,
    base_seed: u64,
    threads: usize,
    scenario_label: &str,
    strategy_label: &str,
    scenario_fn: S,
    strategy_fn: SharedFactory,
) -> Vec<RunResult>
where
    S: Fn(u64) -> Scenario + Send + Sync + 'static,
{
    let jobs = closure_jobs(
        n_runs,
        base_seed,
        scenario_label,
        strategy_label,
        scenario_fn,
        move || strategy_fn(),
    );
    let cfg = CampaignConfig {
        threads,
        // Generous per-run watchdog: an honest run is seconds; anything
        // minutes long is hung.
        run_deadline: Some(Duration::from_secs(600)),
        max_attempts: 2,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&jobs, &cfg).expect("campaign setup");
    let failures = report.failures();
    if !failures.is_empty() {
        let lines: Vec<String> = failures
            .iter()
            .map(|(key, f)| format!("{key}: {:?}: {}", f.kind, f.message))
            .collect();
        panic!(
            "{} of {n_runs} supervised runs failed terminally:\n{}",
            lines.len(),
            lines.join("\n")
        );
    }
    report.results().into_iter().cloned().collect()
}
