//! `mmwave-admin` — the operator CLI over campaign journals and metrics
//! snapshots.
//!
//! ```text
//! mmwave-admin status  <journal>                      cell/fleet rollup
//! mmwave-admin history <resource> --journal <path>    lifecycle transition tape
//! mmwave-admin metrics <snapshot>... [--jsonl]        merge + dump registries
//! mmwave-admin tail    <journal> [--metrics <path>] [--once] [--interval-ms N]
//! mmwave-admin diff    <journal-a> <journal-b> [--no-locate]
//! mmwave-admin diff    <journal> --replay             journal vs its own replay
//! ```
//!
//! `diff` exits 0 only when every cell is bit-identical; every other
//! subcommand exits 0 unless its inputs are unreadable. All the logic
//! lives in `mmwave_bench::admin` where the test suite drives it
//! directly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mmwave_bench::admin::{
    diff_journals, entry_line, hist_summary, history_report, merge_snapshots, scan_journal,
    self_replay_diff, status_report, TailState,
};

const USAGE: &str = "usage: mmwave-admin <status|history|metrics|tail|diff> ...
  status  <journal>
  history <resource> --journal <path>
  metrics <snapshot.jsonl>... [--jsonl]
  tail    <journal> [--metrics <snapshot>] [--once] [--interval-ms N]
  diff    <journal-a> <journal-b> [--no-locate]
  diff    <journal> --replay";

fn fail(msg: &str) -> ExitCode {
    eprintln!("mmwave-admin: {msg}");
    ExitCode::FAILURE
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Positional (non-flag) arguments; flags listed in `valued` consume the
/// following argument.
fn positionals<'a>(args: &'a [String], valued: &[&str]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if valued.contains(&a.as_str()) {
            skip = true;
        } else if !a.starts_with("--") {
            out.push(a.as_str());
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return fail(USAGE);
    };
    let rest = &args[1..];
    match cmd {
        "status" => {
            let pos = positionals(rest, &[]);
            let [journal] = pos.as_slice() else {
                return fail("status takes exactly one journal path");
            };
            match scan_journal(Path::new(journal)) {
                Ok(scan) => {
                    print!("{}", status_report(&scan));
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "history" => {
            let pos = positionals(rest, &["--journal"]);
            let [resource] = pos.as_slice() else {
                return fail("history takes exactly one resource (a cell id or fleet member)");
            };
            let Some(journal) = flag_value(rest, "--journal") else {
                return fail("history needs --journal <path>");
            };
            let report =
                scan_journal(Path::new(journal)).and_then(|scan| history_report(&scan, resource));
            match report {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "metrics" => {
            let paths: Vec<PathBuf> = positionals(rest, &[])
                .into_iter()
                .map(PathBuf::from)
                .collect();
            if paths.is_empty() {
                return fail("metrics needs at least one snapshot path");
            }
            match merge_snapshots(&paths) {
                Ok(reg) => {
                    if rest.iter().any(|a| a == "--jsonl") {
                        for line in reg.snapshot_jsonl() {
                            println!("{line}");
                        }
                    } else {
                        print!("{}", reg.prometheus_text());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "tail" => {
            let pos = positionals(rest, &["--metrics", "--interval-ms"]);
            let [journal] = pos.as_slice() else {
                return fail("tail takes exactly one journal path");
            };
            let metrics = flag_value(rest, "--metrics").map(PathBuf::from);
            let once = rest.iter().any(|a| a == "--once");
            let interval_ms: u64 = flag_value(rest, "--interval-ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(500);
            tail_loop(Path::new(journal), metrics.as_deref(), once, interval_ms)
        }
        "diff" => {
            let pos = positionals(rest, &[]);
            let replay = rest.iter().any(|a| a == "--replay");
            let localize = !rest.iter().any(|a| a == "--no-locate");
            let report = match (pos.as_slice(), replay) {
                ([journal], true) => scan_journal(Path::new(journal)).map(|s| self_replay_diff(&s)),
                ([a, b], false) => match (scan_journal(Path::new(a)), scan_journal(Path::new(b))) {
                    (Ok(sa), Ok(sb)) => Ok(diff_journals(&sa, &sb, localize)),
                    (Err(e), _) | (_, Err(e)) => Err(e),
                },
                _ => {
                    return fail("diff takes two journals, or one journal with --replay");
                }
            };
            match report {
                Ok(r) => {
                    print!("{}", r.render());
                    if r.all_identical() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => fail(&e),
            }
        }
        _ => fail(USAGE),
    }
}

/// Follows a journal by byte offset, printing each completed entry as it
/// lands; a torn trailing line stays pending until its newline arrives.
/// With `--metrics`, reprints the merged histogram summary whenever the
/// snapshot file changes. `--once` drains what exists and returns — the
/// CI smoke uses it; interactively the loop runs until interrupted.
fn tail_loop(journal: &Path, metrics: Option<&Path>, once: bool, interval_ms: u64) -> ExitCode {
    let mut state = TailState::default();
    let mut offset = 0u64;
    let mut last_metrics = String::new();
    loop {
        match std::fs::read(journal) {
            Ok(bytes) => {
                if (bytes.len() as u64) < offset {
                    // Truncated/rotated: start over.
                    offset = 0;
                    state = TailState::default();
                    println!("-- journal truncated; following from the top --");
                }
                let chunk = String::from_utf8_lossy(&bytes[offset as usize..]).into_owned();
                offset = bytes.len() as u64;
                for e in state.feed(&chunk) {
                    println!("{}", entry_line(&e));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return fail(&format!("cannot read {}: {e}", journal.display())),
        }
        if let Some(m) = metrics {
            if let Ok(reg) = merge_snapshots(&[m]) {
                let summary = hist_summary(&reg);
                if !summary.is_empty() && summary != last_metrics {
                    print!("{summary}");
                    last_metrics = summary;
                }
            }
        }
        if once {
            if state.torn > 0 {
                println!("-- {} torn line(s) skipped --", state.torn);
            }
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}
