//! Prints a bitwise fingerprint of fixed-seed runs — a refactor guardrail.
//!
//! Hashes every sample's `(t_s, dur_s, snr_db)` bit pattern plus the probe
//! counters for one seeded run per strategy on `static_walker`. Two builds
//! that print the same fingerprints produce bit-identical `RunResult`s.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmwave_baselines::single_reactive::ReactiveConfig;
use mmwave_baselines::strategy::{BeamStrategy, MmReliableStrategy};
use mmwave_baselines::SingleBeamReactive;
use mmwave_sim::scenario;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100000001b3);
    }
}

fn main() {
    for name in ["single-beam reactive", "mmReliable"] {
        let mut s: Box<dyn BeamStrategy> = match name {
            "single-beam reactive" => Box::new(SingleBeamReactive::new(ReactiveConfig::default())),
            _ => Box::new(MmReliableStrategy::new(MmReliableController::new(
                MmReliableConfig::paper_default(),
            ))),
        };
        let sc = scenario::static_walker();
        let mut sim = sc.simulator(42);
        let r = sim.run_with_warmup(
            s.as_mut(),
            sc.duration_s,
            sc.tick_period_s,
            sc.name,
            sc.warmup_s,
        );
        let mut h = 0xcbf29ce484222325u64;
        for smp in &r.samples {
            fnv1a(&mut h, &smp.t_s.to_bits().to_le_bytes());
            fnv1a(&mut h, &smp.dur_s.to_bits().to_le_bytes());
            fnv1a(&mut h, &smp.snr_db.to_bits().to_le_bytes());
            fnv1a(&mut h, &[smp.probing as u8]);
        }
        fnv1a(&mut h, &(r.probes as u64).to_le_bytes());
        fnv1a(&mut h, &r.probe_airtime_s.to_bits().to_le_bytes());
        println!("{name}: {} samples, fingerprint {h:016x}", r.samples.len());
    }
}
