//! Hot-path throughput benchmark: slots simulated per wall-clock second.
//!
//! Replays the `static_walker` scenario (the paper's Fig. 16 workload)
//! under the single-beam reactive baseline and the full mmReliable stack,
//! measures simulated slots per second, and compares against the recorded
//! pre-refactor baseline (the allocating `channel_at`-per-consumer
//! dataflow, measured on the same scenario before the `SlotWorkspace` /
//! `ChannelSnapshot` refactor landed). Writes the comparison to
//! `results/BENCH_hotpath.json`.
//!
//! Usage:
//!
//! ```text
//! hotpath            # full run: best of 5 repetitions per strategy
//! hotpath --test     # CI smoke mode: 1 repetition, same JSON artifact
//! ```
//!
//! Build with `--features perf-counters` to include snapshot
//! rebuild/reuse counters in the artifact.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmwave_baselines::single_reactive::ReactiveConfig;
use mmwave_baselines::strategy::{BeamStrategy, MmReliableStrategy};
use mmwave_baselines::SingleBeamReactive;
use mmwave_sim::{scenario, RunCounters};
use std::time::Instant;

/// Pre-refactor slots/sec on `static_walker`, release build, measured on
/// the commit immediately before the zero-allocation hot path landed
/// (per-slot `channel_at` at every consumer + allocating csi/steering
/// kernels). Before/after were measured contemporaneously — interleaved
/// best-of rounds of the old and new binaries on the same single-core
/// container — so both sides see the same thermal/throttling state.
///
/// The two workloads stress different layers: the reactive baseline is
/// data-plane bound (the per-slot snapshot/CSI path this refactor
/// targets, ~6x), while mmReliable's wall time is dominated by
/// super-resolution grid-search trig inside its maintenance ticks, which
/// bit-identity forbids restructuring — its speedup comes only from the
/// shared slot path, scratch reuse, and cross-crate LTO (~1.4x).
const BASELINE_SLOTS_PER_SEC: [(&str, f64); 2] = [
    ("single-beam reactive", 110_716.0),
    ("mmReliable", 18_132.0),
];

struct Measurement {
    name: &'static str,
    slots: usize,
    best_slots_per_sec: f64,
    baseline_slots_per_sec: f64,
    counters: RunCounters,
}

fn make_strategy(name: &str) -> Box<dyn BeamStrategy> {
    match name {
        "single-beam reactive" => Box::new(SingleBeamReactive::new(ReactiveConfig::default())),
        "mmReliable" => Box::new(MmReliableStrategy::new(MmReliableController::new(
            MmReliableConfig::paper_default(),
        ))),
        other => panic!("unknown strategy {other}"),
    }
}

fn measure(name: &'static str, baseline: f64, reps: usize) -> Measurement {
    let mut best = 0.0f64;
    let mut slots = 0;
    let mut counters = RunCounters::default();
    for _ in 0..reps {
        let sc = scenario::static_walker();
        let mut sim = sc.simulator(42);
        let mut s = make_strategy(name);
        let t0 = Instant::now();
        let r = sim.run_with_warmup(
            s.as_mut(),
            sc.duration_s,
            sc.tick_period_s,
            sc.name,
            sc.warmup_s,
        );
        let dt = t0.elapsed().as_secs_f64();
        slots = r.samples.len();
        counters = r.counters;
        best = best.max(slots as f64 / dt);
    }
    Measurement {
        name,
        slots,
        best_slots_per_sec: best,
        baseline_slots_per_sec: baseline,
        counters,
    }
}

fn json_entry(m: &Measurement) -> String {
    let speedup = m.best_slots_per_sec / m.baseline_slots_per_sec;
    let counters = if m.counters == RunCounters::default() {
        String::new()
    } else {
        format!(
            r#",
      "counters": {{
        "data_slots": {},
        "ticks": {},
        "snapshot_rebuilds": {},
        "snapshot_reuses": {},
        "snr_evals": {}
      }}"#,
            m.counters.data_slots,
            m.counters.ticks,
            m.counters.snapshot_rebuilds,
            m.counters.snapshot_reuses,
            m.counters.snr_evals
        )
    };
    format!(
        r#"    {{
      "strategy": "{}",
      "slots": {},
      "slots_per_sec_before": {:.0},
      "slots_per_sec_after": {:.0},
      "speedup": {:.2}{}
    }}"#,
        m.name, m.slots, m.baseline_slots_per_sec, m.best_slots_per_sec, speedup, counters
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let reps = if smoke { 1 } else { 5 };
    let mode = if smoke { "smoke" } else { "full" };

    let mut entries = Vec::new();
    for (name, baseline) in BASELINE_SLOTS_PER_SEC {
        let m = measure(name, baseline, reps);
        println!(
            "{}: {} slots, {:.0} slots/sec (before: {:.0}, speedup {:.2}x)",
            m.name,
            m.slots,
            m.best_slots_per_sec,
            m.baseline_slots_per_sec,
            m.best_slots_per_sec / m.baseline_slots_per_sec
        );
        entries.push(json_entry(&m));
    }

    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"scenario\": \"static_walker\",\n  \"mode\": \"{}\",\n  \"profile\": \"{}\",\n  \"notes\": \"before/after measured contemporaneously (interleaved best-of rounds on one machine); reactive is data-plane (per-slot) bound, mmReliable is tick-compute (super-resolution grid-search trig) bound\",\n  \"results\": [\n{}\n  ]\n}}\n",
        mode,
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
        entries.join(",\n")
    );
    mmwave_bench::figures::write_csv("BENCH_hotpath.json", &json).expect("write artifact");
}
