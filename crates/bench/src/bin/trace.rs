//! Per-cell trace renderer for campaign journals.
//!
//! ```text
//! cargo run --release -p mmwave-bench --features telemetry --bin trace -- \
//!     <journal.jsonl> --cell <scenario//strategy//seed//fault> [--csv | --jsonl] [--decimation N]
//! cargo run --release -p mmwave-bench --features telemetry --bin trace -- --line '<journal json line>'
//! ```
//!
//! Composes with the `replay` binary's journal vocabulary: the selected
//! cell is re-run single-threaded from its journal line (same registry
//! rebuild, same tick budget) under a ring-buffered tracer, and the
//! captured trace is rendered:
//!
//! - **summary** (default): replay outcome + digest check, per-stage
//!   latency percentiles, event counts by kind, and every lifecycle
//!   transition / backoff decision in order.
//! - **`--csv`**: the decimated per-slot records as
//!   `slot,t_s,snr_db,blockage_db,probing,outage` rows.
//! - **`--jsonl`**: every captured event as cell-tagged JSON lines — the
//!   same schema the campaign's trace file uses.
//!
//! For a journaled *failure* the trace covers the slots leading up to the
//! reproduced crash. Exit code 0 on success, 1 when an `ok` cell's replay
//! digest diverges from the journal, 2 on usage errors.

use mmwave_sim::campaign::{
    compiled_features, load_journal, replay_cell_traced, JournalEntry, TelemetrySpec,
};
use mmwave_telemetry::{Stage, TraceEvent};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace <journal.jsonl> [--cell <scenario//strategy//seed//fault>] [--csv | --jsonl] [--decimation N]\n       trace --line '<journal json line>' [--csv | --jsonl] [--decimation N]"
    );
    ExitCode::from(2)
}

enum Mode {
    Summary,
    Csv,
    Jsonl,
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut cell: Option<String> = None;
    let mut line: Option<String> = None;
    let mut mode = Mode::Summary;
    let mut decimation = 1u64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cell" => match it.next() {
                Some(v) => cell = Some(v),
                None => return usage(),
            },
            "--line" => match it.next() {
                Some(v) => line = Some(v),
                None => return usage(),
            },
            "--csv" => mode = Mode::Csv,
            "--jsonl" => mode = Mode::Jsonl,
            "--decimation" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => decimation = v,
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return usage(),
        }
    }

    let entries: Vec<JournalEntry> = if let Some(l) = line {
        match JournalEntry::parse(&l) {
            Some(e) => vec![e],
            None => {
                eprintln!("trace: malformed journal line");
                return ExitCode::from(2);
            }
        }
    } else if let Some(p) = path {
        match load_journal(Path::new(&p)) {
            Ok(es) => es,
            Err(e) => {
                eprintln!("trace: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        return usage();
    };

    let selected: Vec<&JournalEntry> = entries
        .iter()
        .filter(|e| cell.as_ref().is_none_or(|c| e.key().id() == *c))
        .collect();
    let entry = match selected.as_slice() {
        [one] => *one,
        [] => {
            eprintln!("trace: no matching journal entries");
            return ExitCode::from(2);
        }
        many => {
            eprintln!("trace: {} entries match; pick one with --cell:", many.len());
            for e in many {
                eprintln!("  {}", e.key().id());
            }
            return ExitCode::from(2);
        }
    };

    if !compiled_features().contains("telemetry") {
        eprintln!(
            "trace: built without the telemetry feature — the trace will be empty; \
             rebuild with --features telemetry"
        );
    }

    let spec = TelemetrySpec {
        decimation,
        ..TelemetrySpec::default()
    };
    let (outcome, trace) = replay_cell_traced(entry, &spec);
    let cell_id = entry.key().id();

    match mode {
        Mode::Csv => {
            println!("slot,t_s,snr_db,blockage_db,probing,outage");
            for ev in &trace.events {
                if let TraceEvent::Slot(s) = ev {
                    println!(
                        "{},{:.6},{},{},{},{}",
                        s.slot,
                        s.t_s,
                        if s.snr_db.is_finite() {
                            format!("{:.3}", s.snr_db)
                        } else {
                            String::new()
                        },
                        format_args!("{:.3}", s.blockage_db),
                        s.probing,
                        s.outage
                    );
                }
            }
        }
        Mode::Jsonl => {
            for ev in &trace.events {
                println!("{}", ev.to_json(&cell_id));
            }
        }
        Mode::Summary => {
            println!("cell: {}", entry.key());
            match &outcome {
                Ok((result, digest)) => {
                    let agree = entry.status == "ok" && *digest == entry.digest;
                    println!(
                        "replay: ok, digest {digest:016x} {} (reliability {:.4})",
                        if agree {
                            "== journal"
                        } else {
                            "!= journal (DIVERGED)"
                        },
                        result.reliability()
                    );
                }
                Err(f) => println!(
                    "replay: {} (journal says {}): {}",
                    f.kind.as_str(),
                    entry.status,
                    f.message
                ),
            }
            println!(
                "events: {} captured, {} dropped by the ring",
                trace.events.len(),
                trace.dropped
            );
            let mut by_kind = std::collections::BTreeMap::new();
            for ev in &trace.events {
                *by_kind.entry(ev.kind()).or_insert(0usize) += 1;
            }
            for (kind, n) in &by_kind {
                println!("  {kind}: {n}");
            }
            println!("latency (µs):");
            println!(
                "  {:<18} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "stage", "count", "p50", "p95", "p99", "max"
            );
            for stage in Stage::ALL {
                let h = &trace.hists[stage.index()];
                if h.is_empty() {
                    continue;
                }
                let s = h.summary();
                println!(
                    "  {:<18} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    stage.name(),
                    s.count,
                    fmt_us(s.p50_ns),
                    fmt_us(s.p95_ns),
                    fmt_us(s.p99_ns),
                    fmt_us(s.max_ns)
                );
            }
            for ev in &trace.events {
                match ev {
                    TraceEvent::Lifecycle {
                        t_s,
                        from,
                        to,
                        cause,
                    } => {
                        println!("  t={t_s:.3}s lifecycle {from} -> {to} ({cause})");
                    }
                    TraceEvent::Decision { t_s, what } => {
                        println!("  t={t_s:.3}s decision: {what}");
                    }
                    _ => {}
                }
            }
        }
    }

    let diverged =
        matches!(&outcome, Ok((_, digest)) if entry.status == "ok" && *digest != entry.digest);
    if diverged {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
