//! Bounded property-based scenario fuzzing against the invariant oracles.
//!
//! ```text
//! cargo run --release -p mmwave-bench --bin fuzz -- \
//!     [--cases N] [--seed NAME] [--journal PATH] [--corpus PATH] [--inject-wedge]
//! ```
//!
//! Draws `N` random-but-valid scenario specs (default 64) from the
//! deterministic stream named by `--seed` (default `fuzz-smoke`) and runs
//! each against the oracles in `mmwave_sim::fuzz`: lifecycle never
//! wedges, outages recover within the spec's horizon, runs validate,
//! digests are deterministic, clean specs are bit-identical to clean
//! constructor runs, and fleet digests are worker-count-invariant.
//!
//! Every generated spec's canonical string is appended to `--corpus`
//! (the CI corpus artifact). On an oracle violation the failing spec is
//! shrunk and its replayable journal line is written to `--journal`, so
//!
//! ```text
//! cargo run --release -p mmwave-bench --bin replay -- <journal>
//! ```
//!
//! reproduces the counterexample bit-identically.
//!
//! `--inject-wedge` enables the deliberately-broken test-only oracle that
//! flags any lifecycle transition as a wedge — CI uses it to prove the
//! find → shrink → replay loop end to end (the run must exit 1).
//!
//! Exit code 0 when all cases pass, 1 on a counterexample, 2 on usage
//! errors.

use mmwave_sim::fuzz::{run_fuzz, OracleOptions};
use std::io::Write;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fuzz [--cases N] [--seed NAME] [--journal PATH] [--corpus PATH] [--inject-wedge]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut cases: u32 = 64;
    let mut seed = "fuzz-smoke".to_string();
    let mut journal: Option<String> = None;
    let mut corpus: Option<String> = None;
    let mut opts = OracleOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cases" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cases = v,
                None => return usage(),
            },
            "--seed" => match it.next() {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--journal" => match it.next() {
                Some(v) => journal = Some(v),
                None => return usage(),
            },
            "--corpus" => match it.next() {
                Some(v) => corpus = Some(v),
                None => return usage(),
            },
            "--inject-wedge" => opts.inject_wedge = true,
            "--help" | "-h" => return usage(),
            _ => return usage(),
        }
    }

    println!(
        "fuzz: {cases} case(s) from stream {seed:?}{}",
        if opts.inject_wedge {
            " with the injected wedge oracle (expecting a counterexample)"
        } else {
            ""
        }
    );
    let report = run_fuzz(&seed, cases, &opts);

    if let Some(path) = corpus {
        let body = report.corpus.join("\n") + "\n";
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("fuzz: cannot write corpus {path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "fuzz: wrote {} corpus spec(s) to {path}",
            report.corpus.len()
        );
    }

    match &report.counterexample {
        None => {
            println!("fuzz: {} case(s) run, all oracles green", report.cases_run);
            ExitCode::SUCCESS
        }
        Some(cx) => {
            println!(
                "fuzz: case {} FAILED oracle {}: {}",
                report.cases_run, cx.failure.oracle, cx.failure.detail
            );
            println!("fuzz: original spec: {}", cx.original.spec_string());
            println!("fuzz: shrunk spec:   {}", cx.spec.spec_string());
            if let Some(path) = journal {
                let line = cx.entry.to_json();
                let write = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut f| writeln!(f, "{line}"));
                match write {
                    Ok(()) => println!(
                        "fuzz: counterexample journal line appended to {path} — \
                         replay it with: replay {path}"
                    ),
                    Err(e) => {
                        eprintln!("fuzz: cannot write journal {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            ExitCode::FAILURE
        }
    }
}
