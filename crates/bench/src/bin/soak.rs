//! CI soak smoke: a short chaos campaign that must survive everything the
//! supervisor claims to survive.
//!
//! ```text
//! cargo run --release -p mmwave-bench --bin soak -- [--journal <path>]
//! ```
//!
//! The soak plays a small (scenario × strategy × seed × fault) grid under
//! injected chaos and asserts the supervisor's guarantees end to end:
//!
//! 1. **Kill + resume** — phase 1 runs only a prefix of the grid (the
//!    process "dies" mid-campaign), a torn half-line is appended to the
//!    journal (a crash mid-write), and phase 2 reruns the *full* grid
//!    against the same journal. The union must cover every cell exactly
//!    once: zero lost, zero duplicated, phase-1 cells resumed not rerun.
//! 2. **Retry-with-backoff** — a pre-run hook panics selected cells on
//!    their first attempt only; supervision must retry them to completion.
//! 3. **Deterministic timeout** — one cell carries a tiny tick budget and
//!    must fail as `timeout`, and [`replay_cell`] must reproduce exactly
//!    that classification from the journal line alone.
//! 4. **Terminal failure** — one cell panics on every attempt and must
//!    land in the journal as a terminal `panic` after `max_attempts`.
//! 5. **Bit-identical replay** — a completed cell replayed from its
//!    journal line must reproduce its result digest bit for bit.
//! 6. **Telemetry trace** — a small campaign runs with telemetry capture
//!    into a JSONL trace; every line must be strict JSON and each cell's
//!    slot timestamps must be monotone. (With the `telemetry` feature off
//!    the instrumentation doesn't exist, so the trace is validated but
//!    allowed to be empty.)
//!
//! Exit code 0 when every check passes, 1 otherwise. The journal and the
//! trace are left on disk for CI to upload as artifacts.

use mmwave_sim::campaign::{
    backoff_delay, load_journal, replay_cell, run_campaign, CampaignConfig, FailureKind, Job,
    TelemetrySpec,
};
use mmwave_sim::faults::FaultSchedule;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// The cell that panics on every attempt (a permanently-broken run).
const ALWAYS_PANIC_SEED: u64 = 7300;
/// Cells that panic on their first attempt only (transient chaos).
const FLAKY_SEEDS: &[u64] = &[7001, 7100];
/// The cell supervised under a tiny tick budget (deterministic timeout).
const TIMEOUT_SEED: u64 = 7200;

fn build_jobs() -> Vec<Job> {
    let loss = FaultSchedule::parse_spec("seed=5;loss=0.3@0.2..0.8").expect("valid spec");
    let mut jobs = Vec::new();
    // Plain grid: two strategies × three seeds on the mobile scenario.
    for strategy in ["mmreliable", "single-beam-reactive"] {
        for seed in 7000..7003u64 {
            jobs.push(
                Job::from_registry("mobile-blockage", strategy, seed, FaultSchedule::none(), 1)
                    .expect("registry job"),
            );
        }
    }
    // Faulted cells: probe loss mid-run.
    for seed in [7100u64, 7101] {
        jobs.push(
            Job::from_registry("mobile-blockage", "mmreliable", seed, loss.clone(), 1)
                .expect("registry job"),
        );
    }
    // The deterministic timeout: three maintenance ticks, then cancelled.
    jobs.push(
        Job::from_registry(
            "static-walker",
            "mmreliable",
            TIMEOUT_SEED,
            FaultSchedule::none(),
            1,
        )
        .expect("registry job")
        .with_tick_budget(3),
    );
    // The permanently-broken cell.
    jobs.push(
        Job::from_registry(
            "static-walker",
            "single-beam-reactive",
            ALWAYS_PANIC_SEED,
            FaultSchedule::none(),
            1,
        )
        .expect("registry job"),
    );
    jobs
}

fn chaos_config(journal: &Path) -> CampaignConfig {
    CampaignConfig {
        threads: 4,
        run_deadline: Some(Duration::from_secs(120)),
        max_attempts: 3,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(40),
        journal: Some(journal.to_path_buf()),
        pre_run_hook: Some(Arc::new(|key, attempt| {
            if key.seed == ALWAYS_PANIC_SEED {
                panic!("soak chaos: permanent failure injected for {key}");
            }
            if FLAKY_SEEDS.contains(&key.seed) && attempt == 1 {
                panic!("soak chaos: transient failure injected for {key}");
            }
        })),
        ..CampaignConfig::default()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let journal: PathBuf = args
        .iter()
        .position(|a| a == "--journal")
        .and_then(|i| args.get(i + 1))
        .map_or_else(
            || PathBuf::from("results/soak-journal.jsonl"),
            PathBuf::from,
        );
    let _ = std::fs::remove_file(&journal);
    let metrics: PathBuf = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .map_or_else(
            || journal.with_file_name("soak-metrics.jsonl"),
            PathBuf::from,
        );
    let _ = std::fs::remove_file(&metrics);

    let jobs = build_jobs();
    let cfg = chaos_config(&journal);
    let mut failed_checks: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: &str| {
        println!("[{}] {what}", if ok { "ok" } else { "FAIL" });
        if !ok {
            failed_checks.push(what.to_string());
        }
    };

    // Phase 1: the campaign is "killed" after a prefix of the grid — run
    // only the first five cells, then tear the journal's trailing line.
    let phase1_cells = 5usize;
    let report1 = run_campaign(&jobs[..phase1_cells], &cfg).expect("phase 1 campaign");
    check(
        report1.outcomes.len() == phase1_cells,
        "phase 1 reported every submitted cell",
    );
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .expect("journal exists after phase 1");
        // A torn half-line, as a crash mid-write would leave behind.
        f.write_all(b"{\"scenario\":\"torn-partial-en")
            .expect("append");
    }

    // Phase 2: resume the full grid against the same journal.
    let report2 = run_campaign(&jobs, &cfg).expect("phase 2 campaign");
    check(
        report2.resumed_count() == phase1_cells,
        "phase 2 resumed exactly the phase-1 cells (no rerun)",
    );
    check(report2.shed_count() == 0, "no cells shed");

    // Journal invariants: every cell exactly once, no torn residue.
    let entries = load_journal(&journal).expect("readable journal");
    check(
        entries.len() == jobs.len(),
        "journal covers every cell (zero lost)",
    );
    let mut ids: Vec<String> = entries.iter().map(|e| e.key().id()).collect();
    ids.sort();
    ids.dedup();
    check(
        ids.len() == entries.len(),
        "journal has no duplicated cells",
    );
    let mut want: Vec<String> = jobs.iter().map(|j| j.key.id()).collect();
    want.sort();
    check(ids == want, "journal keys match the submitted grid exactly");

    // Failure classification: the timeout cell timed out, the broken cell
    // is a terminal panic after max_attempts, everything else completed.
    for e in &entries {
        match e.seed {
            TIMEOUT_SEED => {
                check(
                    e.status == "timeout",
                    "tick-budget cell classified as timeout",
                );
            }
            ALWAYS_PANIC_SEED => {
                check(e.status == "panic", "broken cell classified as panic");
                check(
                    e.attempts == cfg.max_attempts,
                    "broken cell consumed every retry",
                );
            }
            seed => {
                check(
                    e.status == "ok",
                    &format!("cell seed {seed} completed ok (status {})", e.status),
                );
                if FLAKY_SEEDS.contains(&seed) {
                    check(
                        e.attempts == 2,
                        "transiently-flaky cell recovered on its retry",
                    );
                }
            }
        }
    }

    // Replay: a completed cell reproduces its digest bit for bit; the
    // timeout cell reproduces its classification from the journal alone.
    if let Some(ok_entry) = entries.iter().find(|e| e.status == "ok") {
        match replay_cell(ok_entry) {
            Ok((_, digest)) => check(
                digest == ok_entry.digest,
                "replayed ok cell is bit-identical to the journal digest",
            ),
            Err(f) => check(false, &format!("ok cell replay failed: {}", f.message)),
        }
    }
    if let Some(to_entry) = entries.iter().find(|e| e.seed == TIMEOUT_SEED) {
        match replay_cell(to_entry) {
            Err(f) => check(
                f.kind == FailureKind::Timeout,
                "replayed timeout cell reproduces the timeout",
            ),
            Ok(_) => check(false, "replayed timeout cell reproduces the timeout"),
        }
    }

    // Phase 3: telemetry capture. A clean two-cell campaign writes a
    // cell-tagged JSONL trace (plus a Chrome trace); validate the trace's
    // structural invariants line by line.
    let trace_path = journal.with_file_name("soak-trace.jsonl");
    let chrome_path = journal.with_file_name("soak-trace.chrome.json");
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&chrome_path);
    let trace_jobs: Vec<Job> = (7400..7402u64)
        .map(|seed| {
            Job::from_registry(
                "mobile-blockage",
                "mmreliable",
                seed,
                FaultSchedule::none(),
                1,
            )
            .expect("registry job")
        })
        .collect();
    let trace_cfg = CampaignConfig {
        threads: 2,
        telemetry: Some(TelemetrySpec {
            trace: Some(trace_path.clone()),
            chrome_trace: Some(chrome_path.clone()),
            decimation: 16,
            ..TelemetrySpec::default()
        }),
        metrics: Some(metrics.clone()),
        ..CampaignConfig::default()
    };
    let trace_report = run_campaign(&trace_jobs, &trace_cfg).expect("telemetry campaign");
    check(
        trace_report.failures().is_empty(),
        "telemetry campaign completed cleanly",
    );
    let trace_text = std::fs::read_to_string(&trace_path).unwrap_or_default();
    let mut trace_ok = true;
    let mut slot_lines = 0usize;
    let mut last_slot_t: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for line in trace_text.lines().filter(|l| !l.trim().is_empty()) {
        if let Err(e) = mmwave_telemetry::validate_json_line(line) {
            eprintln!("soak: invalid trace line ({e}): {line}");
            trace_ok = false;
            continue;
        }
        let Some(cell) = mmwave_telemetry::field_str(line, "cell") else {
            eprintln!("soak: trace line without cell tag: {line}");
            trace_ok = false;
            continue;
        };
        if mmwave_telemetry::field_str(line, "kind").as_deref() == Some("slot") {
            let t = mmwave_telemetry::field_f64(line, "t_s").unwrap_or(f64::NAN);
            if let Some(prev) = last_slot_t.get(&cell) {
                if t < *prev || t.is_nan() {
                    eprintln!("soak: slot time regressed in {cell}: {prev} -> {t}");
                    trace_ok = false;
                }
            }
            last_slot_t.insert(cell, t);
            slot_lines += 1;
        }
    }
    check(
        trace_ok,
        "every trace line is strict JSON with monotone per-cell slot times",
    );
    if cfg!(feature = "telemetry") {
        check(slot_lines > 0, "trace captured per-slot records");
        check(
            last_slot_t.len() == trace_jobs.len(),
            "every telemetry cell left a trace",
        );
        check(
            trace_report.latency().tick().count > 0,
            "campaign-merged latency histograms accumulated",
        );
        check(
            std::fs::read_to_string(&chrome_path)
                .map(|t| t.contains("\"traceEvents\""))
                .unwrap_or(false),
            "chrome trace written",
        );
    } else {
        println!("[skip] telemetry feature off: trace content checks skipped");
    }

    // Metrics snapshot: the campaign capture layer runs regardless of the
    // telemetry feature; every line must be strict JSON and the snapshot
    // must re-absorb into a registry losslessly.
    let metrics_text = std::fs::read_to_string(&metrics).unwrap_or_default();
    let mut reabsorbed = mmwave_telemetry::MetricsRegistry::new();
    let mut metrics_ok = !metrics_text.trim().is_empty();
    for line in metrics_text.lines().filter(|l| !l.trim().is_empty()) {
        if mmwave_telemetry::validate_json_line(line).is_err()
            || reabsorbed.absorb_line(line).is_err()
        {
            eprintln!("soak: bad metrics line: {line}");
            metrics_ok = false;
        }
    }
    check(
        metrics_ok && !reabsorbed.is_empty(),
        "metrics snapshot is strict JSON and re-absorbs into a registry",
    );
    check(
        reabsorbed
            .find_counter("campaign", "completed")
            .map(|id| reabsorbed.counter_value(id))
            == Some(trace_jobs.len() as u64),
        "metrics snapshot counts every telemetry cell as completed",
    );

    // Backoff determinism: the same (campaign seed, cell, attempt) always
    // yields the same delay.
    let probe = &jobs[0].key;
    check(
        backoff_delay(&cfg, probe, 1) == backoff_delay(&cfg, probe, 1)
            && backoff_delay(&cfg, probe, 2) == backoff_delay(&cfg, probe, 2),
        "backoff delays are deterministic",
    );

    println!(
        "soak: {} cells, {} resumed, {} checks failed; journal at {}, trace at {}",
        jobs.len(),
        report2.resumed_count(),
        failed_checks.len(),
        journal.display(),
        trace_path.display()
    );
    if failed_checks.is_empty() {
        ExitCode::SUCCESS
    } else {
        for c in &failed_checks {
            eprintln!("soak FAIL: {c}");
        }
        ExitCode::FAILURE
    }
}
