//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! ```text
//! cargo run --release -p mmwave-bench --bin ablations -- [quantizer|beams|cadence|latency|impairments|all] [--runs N]
//! ```
//!
//! - `quantizer` — ideal vs 6-bit (the paper's array) vs 2-bit/on-off
//!   (commercial 802.11ad) hardware: §5.1 claims coherent multi-beams
//!   survive even 2-bit phase control.
//! - `beams` — max multi-beam size K = 1/2/3: where the diminishing
//!   returns land (§6.1: 3 beams ≈ 92% of oracle).
//! - `cadence` — CSI-RS maintenance period 5–40 ms: how much probing the
//!   reliability actually needs.
//! - `latency` — the reactive baseline's beam-failure-recovery latency
//!   swept 0–300 ms: the knob that controls the Fig. 18 reliability gap
//!   (EXPERIMENTS.md note 3).
//! - `impairments` — hardware-impairment severity (none/mild/moderate/
//!   severe: phase noise, PA compression, array mismatch + coupling, ADC,
//!   LO leakage) × strategy: does multi-beam reliability survive a real
//!   front end? (DESIGN.md §12)

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmwave_array::quantize::Quantizer;
use mmwave_baselines::single_reactive::ReactiveConfig;
use mmwave_baselines::strategy::{BeamStrategy, MmReliableStrategy};
use mmwave_baselines::widebeam::{WideBeamConfig, WideBeamStrategy};
use mmwave_baselines::SingleBeamReactive;
use mmwave_bench::figures::write_csv;
use mmwave_bench::supervised::supervised_run_many;
use mmwave_phy::mcs::McsTable;
use mmwave_sim::runner::Aggregate;
use mmwave_sim::scenario;
use mmwave_sim::ImpairmentConfig;
use std::sync::Arc;

fn mm_with(cfg: MmReliableConfig) -> impl Fn() -> Box<dyn BeamStrategy + Send> + Send + Sync {
    move || {
        Box::new(MmReliableStrategy::new(MmReliableController::new(
            cfg.clone(),
        )))
    }
}

fn quantizer_study(runs: usize, mcs: &McsTable) {
    println!("--- quantizer ablation (mixed mobility + blockage) ---");
    let mut csv = String::from("quantizer,rel_mean,tput_mbps,product_mbps\n");
    for (name, q) in [
        ("ideal", Quantizer::ideal()),
        ("6bit_paper", Quantizer::paper_array()),
        ("2bit_80211ad", Quantizer::commercial_80211ad()),
    ] {
        let mut cfg = MmReliableConfig::paper_default();
        cfg.quantizer = q;
        let results = supervised_run_many(
            runs,
            9100,
            8,
            "mixed-mobility-blockage",
            &format!("mmreliable-quantizer-{name}"),
            scenario::mixed_mobility_blockage,
            Arc::new(mm_with(cfg)),
        );
        let agg = Aggregate::from_runs(&results, mcs).expect("non-empty batch");
        csv.push_str(&format!(
            "{name},{:.4},{:.1},{:.1}\n",
            agg.mean_reliability(),
            agg.mean_throughput_bps() / 1e6,
            agg.mean_product_bps() / 1e6
        ));
        println!(
            "{name:>14}: reliability {:.3}, throughput {:.0} Mbps",
            agg.mean_reliability(),
            agg.mean_throughput_bps() / 1e6
        );
    }
    write_csv("ablation_quantizer.csv", &csv).unwrap();
    println!("(§5.1: multi-beams remain coherent even on 2-bit commercial hardware)");
}

fn beams_study(runs: usize, mcs: &McsTable) {
    println!("--- multi-beam size ablation (mixed mobility + blockage) ---");
    let mut csv = String::from("max_beams,rel_mean,tput_mbps,product_mbps\n");
    for k in [1usize, 2, 3] {
        let mut cfg = MmReliableConfig::paper_default();
        cfg.max_beams = k;
        let results = supervised_run_many(
            runs,
            9200,
            8,
            "mixed-mobility-blockage",
            &format!("mmreliable-k{k}"),
            scenario::mixed_mobility_blockage,
            Arc::new(mm_with(cfg)),
        );
        let agg = Aggregate::from_runs(&results, mcs).expect("non-empty batch");
        csv.push_str(&format!(
            "{k},{:.4},{:.1},{:.1}\n",
            agg.mean_reliability(),
            agg.mean_throughput_bps() / 1e6,
            agg.mean_product_bps() / 1e6
        ));
        println!(
            "K = {k}: reliability {:.3}, throughput {:.0} Mbps, product {:.0} Mbps",
            agg.mean_reliability(),
            agg.mean_throughput_bps() / 1e6,
            agg.mean_product_bps() / 1e6
        );
    }
    write_csv("ablation_beams.csv", &csv).unwrap();
    println!("(K = 1 is a tracked single beam: blockage kills it; K ≥ 2 buys the reliability)");
}

fn cadence_study(runs: usize, mcs: &McsTable) {
    println!("--- CSI-RS maintenance-cadence ablation (translation + blockage) ---");
    let mut csv = String::from("tick_ms,rel_mean,tput_mbps,overhead\n");
    for tick_ms in [5.0, 10.0, 20.0, 40.0] {
        let results = supervised_run_many(
            runs,
            9300,
            8,
            &format!("mobile-blockage-tick{tick_ms}ms"),
            "mmreliable",
            move |seed| {
                let mut sc = scenario::mobile_blockage(seed);
                sc.tick_period_s = tick_ms * 1e-3;
                sc
            },
            Arc::new(mm_with(MmReliableConfig::paper_default())),
        );
        let agg = Aggregate::from_runs(&results, mcs).expect("non-empty batch");
        csv.push_str(&format!(
            "{tick_ms},{:.4},{:.1},{:.4}\n",
            agg.mean_reliability(),
            agg.mean_throughput_bps() / 1e6,
            agg.mean_overhead()
        ));
        println!(
            "tick {tick_ms:>4} ms: reliability {:.3}, throughput {:.0} Mbps, probing {:.2}%",
            agg.mean_reliability(),
            agg.mean_throughput_bps() / 1e6,
            100.0 * agg.mean_overhead()
        );
    }
    write_csv("ablation_cadence.csv", &csv).unwrap();
    println!("(at the paper's mobility rates, 20–40 ms maintenance suffices and probing interruptions dominate; the paper's 0.5 ms floor matters only for far faster dynamics)");
}

fn latency_study(runs: usize, mcs: &McsTable) {
    println!("--- reactive recovery-latency sweep (mixed mobility + blockage) ---");
    let mut csv = String::from("recovery_ms,rel_mean,tput_mbps\n");
    for rec_ms in [0.0, 50.0, 100.0, 200.0, 300.0] {
        let factory = move || -> Box<dyn BeamStrategy + Send> {
            let cfg = ReactiveConfig {
                recovery_latency_s: rec_ms * 1e-3,
                ..ReactiveConfig::default()
            };
            Box::new(SingleBeamReactive::new(cfg))
        };
        let results = supervised_run_many(
            runs,
            9400,
            8,
            "mixed-mobility-blockage",
            &format!("single-beam-reactive-{rec_ms}ms"),
            scenario::mixed_mobility_blockage,
            Arc::new(factory),
        );
        let agg = Aggregate::from_runs(&results, mcs).expect("non-empty batch");
        csv.push_str(&format!(
            "{rec_ms},{:.4},{:.1}\n",
            agg.mean_reliability(),
            agg.mean_throughput_bps() / 1e6
        ));
        println!(
            "recovery {rec_ms:>5} ms: reliability {:.3} (the paper's 0.65 corresponds to slow testbed recovery)",
            agg.mean_reliability()
        );
    }
    write_csv("ablation_reactive_latency.csv", &csv).unwrap();
}

fn impairments_study(runs: usize, mcs: &McsTable) {
    println!("--- hardware-impairment severity ablation (mixed mobility + blockage) ---");
    let mut csv = String::from("severity,strategy,rel_mean,tput_mbps,product_mbps\n");
    for severity in ["none", "mild", "moderate", "severe"] {
        for strat in ["mmreliable", "single-beam-reactive", "wide-beam"] {
            let factory: Arc<dyn Fn() -> Box<dyn BeamStrategy + Send> + Send + Sync> = match strat {
                "mmreliable" => Arc::new(mm_with(MmReliableConfig::paper_default())),
                "single-beam-reactive" => Arc::new(|| {
                    Box::new(SingleBeamReactive::new(ReactiveConfig::default()))
                        as Box<dyn BeamStrategy + Send>
                }),
                _ => Arc::new(|| {
                    Box::new(WideBeamStrategy::new(WideBeamConfig::default()))
                        as Box<dyn BeamStrategy + Send>
                }),
            };
            let results = supervised_run_many(
                runs,
                9500,
                8,
                &format!("mixed-mobility-blockage-hw-{severity}"),
                strat,
                move |seed| {
                    // The impairment seed rides the scenario seed so every
                    // run draws its own mismatch/phase-noise realization.
                    let cfg = ImpairmentConfig::preset(severity, seed).expect("known severity");
                    scenario::mixed_mobility_blockage(seed)
                        .with_impairments(cfg)
                        .expect("valid impairment preset")
                },
                factory,
            );
            let agg = Aggregate::from_runs(&results, mcs).expect("non-empty batch");
            csv.push_str(&format!(
                "{severity},{strat},{:.4},{:.1},{:.1}\n",
                agg.mean_reliability(),
                agg.mean_throughput_bps() / 1e6,
                agg.mean_product_bps() / 1e6
            ));
            println!(
                "{severity:>8} × {strat:>20}: reliability {:.3}, throughput {:.0} Mbps",
                agg.mean_reliability(),
                agg.mean_throughput_bps() / 1e6
            );
        }
    }
    write_csv("ablation_impairments.csv", &csv).unwrap();
    println!("(multi-beam tapers are non-constant-modulus: PA compression taxes mmReliable hardest, but redundancy still wins on reliability)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runs: usize = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let which: Vec<&str> = {
        let named: Vec<&str> = args
            .iter()
            .take_while(|a| *a != "--runs")
            .map(|s| s.as_str())
            .collect();
        if named.is_empty() || named.contains(&"all") {
            vec!["quantizer", "beams", "cadence", "latency", "impairments"]
        } else {
            named
        }
    };
    let mcs = McsTable::nr_table();
    for w in which {
        match w {
            "quantizer" => quantizer_study(runs, &mcs),
            "beams" => beams_study(runs, &mcs),
            "cadence" => cadence_study(runs, &mcs),
            "latency" => latency_study(runs, &mcs),
            "impairments" => impairments_study(runs, &mcs),
            other => eprintln!("unknown ablation: {other}"),
        }
        println!();
    }
}
