//! Fleet-cell throughput benchmark: UE-slots simulated per wall-clock
//! second for a shared-environment multi-UE cell.
//!
//! Runs a 64-UE `static-walker` fleet under the single-beam reactive
//! baseline twice — once on 1 worker / 1 shard and once on every
//! available core — asserts the two fleet digests are bit-identical
//! (parallelism is a batching knob, never a results knob), and writes the
//! parallel run's throughput, per-UE handler-pass latency percentiles,
//! and shared-environment cache counters to `results/BENCH_fleet.json`.
//!
//! Usage:
//!
//! ```text
//! fleet                      # full run: 64 UEs
//! fleet --test               # CI smoke mode: same 64-UE fleet, same artifact
//! fleet --journal <path>     # also write the fleet journal (replayable
//!                            # per member with the `replay` binary)
//! ```
//!
//! Build with `--features perf-counters` to see the shared-scene cache
//! amortization (images built once per cell vs. traces served per UE).

use mmwave_sim::fleet::{run_fleet, FleetConfig, FleetReport};

/// Fleet size: large enough that per-pass scheduling overhead is
/// amortized and the cache amortization is visible (64 UEs share one
/// image set), small enough for a CI smoke job.
const N_UES: u32 = 64;

/// Throughput floor asserted by this binary (and by the `fleet-smoke` CI
/// job that runs it): the 64-UE cell must clear 10⁴ executed UE-slots
/// per wall second even on a small runner.
const MIN_UE_SLOTS_PER_S: f64 = 1e4;

fn run(threads: usize, shards: usize, journal: Option<&str>, metrics: Option<&str>) -> FleetReport {
    let mut cfg = FleetConfig {
        threads,
        shards,
        ..FleetConfig::new("static-walker", "single-beam-reactive", N_UES, 42)
    };
    cfg.journal = journal.map(std::path::PathBuf::from);
    cfg.metrics = metrics.map(std::path::PathBuf::from);
    run_fleet(&cfg).expect("fleet runs")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--test" || a == "--smoke");
    let journal = args
        .iter()
        .position(|a| a == "--journal")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let metrics = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let mode = if smoke { "smoke" } else { "full" };
    let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Reference: strictly sequential. Its digest is the ground truth the
    // parallel run must reproduce bit-for-bit. The journal (if any) is
    // written by this run; re-running against an existing journal resumes
    // instead of recomputing, so point `--journal` at a fresh path.
    let seq = run(1, 1, journal, None);
    let par = run(avail, avail, None, metrics);
    assert_eq!(
        seq.digest, par.digest,
        "fleet digest must be invariant to worker/shard count"
    );
    assert_eq!(seq.outcomes.len(), par.outcomes.len());

    let hist = &par.pass_latency;
    println!(
        "fleet {} ({} UEs, {} workers): {:.0} UE-slots/s (seq {:.0}), digest {:016x}",
        par.scenario,
        N_UES,
        avail,
        par.ue_slots_per_s(),
        seq.ue_slots_per_s(),
        par.digest
    );
    println!(
        "per-UE pass latency: p50 {} ns, p90 {} ns, p99 {} ns, max {} ns over {} passes",
        hist.percentile_ns(50.0),
        hist.percentile_ns(90.0),
        hist.percentile_ns(99.0),
        hist.max_ns(),
        hist.count()
    );
    println!(
        "shared-scene cache: {} images built, {} traces served, {} mirror ops saved",
        par.cache.images_built, par.cache.traces_served, par.cache.mirror_ops_saved
    );

    let best = par.ue_slots_per_s().max(seq.ue_slots_per_s());
    assert!(
        best > MIN_UE_SLOTS_PER_S,
        "fleet throughput {best:.0} UE-slots/s below the 1e4 floor"
    );

    let json = format!(
        "{{\n  \"bench\": \"fleet\",\n  \"scenario\": \"{}\",\n  \"strategy\": \"{}\",\n  \"mode\": \"{}\",\n  \"profile\": \"{}\",\n  \"n_ues\": {},\n  \"workers\": {},\n  \"digest\": \"{:016x}\",\n  \"digest_matches_sequential\": true,\n  \"ue_slots_per_sec\": {:.0},\n  \"ue_slots_per_sec_sequential\": {:.0},\n  \"data_slots\": {},\n  \"passes\": {},\n  \"mean_reliability\": {:.6},\n  \"pass_latency_ns\": {{\n    \"p50\": {},\n    \"p90\": {},\n    \"p99\": {},\n    \"max\": {},\n    \"count\": {}\n  }},\n  \"shared_scene_cache\": {{\n    \"images_built\": {},\n    \"traces_served\": {},\n    \"mirror_ops_saved\": {}\n  }}\n}}\n",
        par.scenario,
        par.strategy,
        mode,
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
        N_UES,
        avail,
        par.digest,
        par.ue_slots_per_s(),
        seq.ue_slots_per_s(),
        par.data_slots,
        par.passes,
        par.mean_reliability(),
        hist.percentile_ns(50.0),
        hist.percentile_ns(90.0),
        hist.percentile_ns(99.0),
        hist.max_ns(),
        hist.count(),
        par.cache.images_built,
        par.cache.traces_served,
        par.cache.mirror_ops_saved
    );
    mmwave_bench::figures::write_csv("BENCH_fleet.json", &json).expect("write artifact");
}
