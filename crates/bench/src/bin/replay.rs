//! Deterministic failure replay for campaign journals.
//!
//! ```text
//! cargo run --release -p mmwave-bench --bin replay -- <journal.jsonl> [--cell <id>] [--failures-only]
//! cargo run --release -p mmwave-bench --bin replay -- --line '<journal json line>'
//! ```
//!
//! Re-executes journal cells single-threaded from the registry — same
//! scenario, strategy, seed, fault schedule, and tick budget the campaign
//! recorded — and checks the outcome against the journal: an `ok` entry
//! must reproduce its result digest bit-for-bit, and a failure entry must
//! fail again with the same classification. Exit code 0 when every
//! replayed cell agrees with its journal line, 1 on any divergence, 2 on
//! usage errors. `--cell` selects a single cell by its
//! `scenario//strategy//seed//fault` id; `--failures-only` skips `ok`
//! entries (the common debugging loop: replay just what broke).
//!
//! Fleet journals replay too: a `fleet:{base}:{n}:ue{k}` member line
//! re-executes that one UE as a plain single-link cell (bit-identical to
//! its in-fleet run), and a `fleet:{base}:{n}` aggregate line re-executes
//! the whole fleet sequentially. Unrecognized fleet forms from newer
//! writers warn and are skipped rather than failing the replay; unknown
//! `spec:` scenario forms get the same treatment, deduped so one unknown
//! form warns once per file.

use mmwave_sim::campaign::{
    compiled_features, impairment_note, load_journal, replay_cell, JournalEntry,
};
use mmwave_sim::fleet::{fleet_note, replay_fleet_entry, FleetReplay};
use mmwave_sim::spec::{spec_form_family, spec_note};
use std::collections::BTreeSet;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: replay <journal.jsonl> [--cell <scenario//strategy//seed//fault>] [--failures-only]\n       replay --line '<journal json line>'"
    );
    ExitCode::from(2)
}

/// Replays a fleet journal entry: a per-UE member line re-executes as a
/// plain single-link cell (bit-identical to its in-fleet run), an
/// aggregate line re-executes the whole fleet on one worker and one
/// shard. Returns `true` when the digest matches the journal.
fn replay_fleet(entry: &JournalEntry, key: &mmwave_sim::campaign::CellKey) -> bool {
    match replay_fleet_entry(entry) {
        Ok(FleetReplay::PerUe { digest, .. }) => {
            let same = digest == entry.digest;
            println!(
                "{key}: fleet member ok, digest {digest:016x} {}",
                if same {
                    "== journal (bit-identical)"
                } else {
                    "!= journal (DIVERGED)"
                }
            );
            same
        }
        Ok(FleetReplay::Aggregate { report }) => {
            let same = report.digest == entry.digest;
            println!(
                "{key}: fleet of {} ok, digest {:016x} {}",
                report.outcomes.len(),
                report.digest,
                if same {
                    "== journal (bit-identical)"
                } else {
                    "!= journal (DIVERGED)"
                }
            );
            same
        }
        Err(msg) => {
            println!("{key}: fleet replay failed: {msg} — NOT reproduced");
            false
        }
    }
}

/// Replays one entry; returns `true` when the fresh outcome agrees with
/// the journal line. `warned_spec_forms` dedups unknown-spec-form notes
/// so a journal full of one future form warns once, not per line.
fn replay_one(entry: &JournalEntry, warned_spec_forms: &mut BTreeSet<String>) -> bool {
    let key = entry.key();
    // Observability features (perf counters, telemetry) are excluded from
    // the digest, so a feature mismatch is informational, not a
    // divergence.
    let ours = compiled_features();
    if entry.features != ours {
        println!(
            "{key}: note: journal recorded features [{}], replay built with [{ours}] — \
             counters differ, payload bit-identical",
            entry.features
        );
    }
    // Same treatment for the hardware-impairment layer: a journal written
    // before it existed, or a spec this binary cannot parse, deserves a
    // caution before the digest comparison runs.
    if let Some(note) = impairment_note(entry) {
        println!("{key}: note: {note}");
    }
    // Fleet journal lines (`fleet:{base}:{n}` aggregates and
    // `fleet:{base}:{n}:ue{k}` members) route through the fleet replayer.
    // A fleet form from a future writer this binary cannot parse warns
    // and is skipped, never an error: old replayers stay usable against
    // newer journals (forward compatibility mirrors impairment specs).
    if entry.scenario.starts_with("fleet:") {
        if let Some(note) = fleet_note(entry) {
            println!("{key}: note: {note} — skipping, not a divergence");
            return true;
        }
        return replay_fleet(entry, &key);
    }
    // Spec-form scenarios (`spec:v1:…` and beyond) get the same forward
    // compatibility: a form from a newer writer this binary cannot parse
    // warns and is skipped, and the warning dedups per spec family
    // (`spec:v2:custom` warns once per file, not once per line).
    if let Some(note) = spec_note(entry) {
        let family = spec_form_family(&entry.scenario).to_string();
        if warned_spec_forms.insert(family) {
            println!("{key}: note: {note} — skipping, not a divergence");
        } else {
            println!("{key}: skipped (unknown spec form noted above)");
        }
        return true;
    }
    match replay_cell(entry) {
        Ok((result, digest)) => {
            if entry.status == "ok" {
                let same = digest == entry.digest;
                println!(
                    "{key}: ok, digest {digest:016x} {}",
                    if same {
                        "== journal (bit-identical)"
                    } else {
                        "!= journal (DIVERGED)"
                    }
                );
                same
            } else {
                println!(
                    "{key}: journal says {} but replay completed (reliability {:.4}) — NOT reproduced",
                    entry.status,
                    result.reliability()
                );
                false
            }
        }
        Err(failure) => {
            let kind = failure.kind.as_str();
            if entry.status == kind {
                println!("{key}: {kind} reproduced: {}", failure.message);
                true
            } else {
                println!(
                    "{key}: journal says {} but replay failed as {kind}: {} — NOT reproduced",
                    entry.status, failure.message
                );
                false
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut cell: Option<String> = None;
    let mut line: Option<String> = None;
    let mut failures_only = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cell" => match it.next() {
                Some(v) => cell = Some(v),
                None => return usage(),
            },
            "--line" => match it.next() {
                Some(v) => line = Some(v),
                None => return usage(),
            },
            "--failures-only" => failures_only = true,
            "--help" | "-h" => return usage(),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return usage(),
        }
    }

    let entries: Vec<JournalEntry> = if let Some(l) = line {
        match JournalEntry::parse(&l) {
            Some(e) => vec![e],
            None => {
                eprintln!("replay: malformed journal line");
                return ExitCode::from(2);
            }
        }
    } else if let Some(p) = path {
        match load_journal(Path::new(&p)) {
            Ok(es) => es,
            Err(e) => {
                eprintln!("replay: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        return usage();
    };

    let selected: Vec<&JournalEntry> = entries
        .iter()
        .filter(|e| cell.as_ref().is_none_or(|c| e.key().id() == *c))
        .filter(|e| !failures_only || e.status != "ok")
        .collect();
    if selected.is_empty() {
        eprintln!("replay: no matching journal entries");
        return ExitCode::from(2);
    }

    let mut divergences = 0usize;
    let mut warned_spec_forms = BTreeSet::new();
    for entry in &selected {
        if !replay_one(entry, &mut warned_spec_forms) {
            divergences += 1;
        }
    }
    println!(
        "replayed {} cell(s), {divergences} divergence(s)",
        selected.len()
    );
    if divergences == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
