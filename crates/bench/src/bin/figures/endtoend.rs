//! End-to-end figures: blockage resilience, tracking accuracy, the
//! reliability/throughput evaluation, probing overhead, and the
//! 28-vs-60 GHz comparison (paper Figs. 16–19).

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmwave_array::geometry::ArrayGeometry;
use mmwave_baselines::beamspy::BeamSpyConfig;
use mmwave_baselines::nr_periodic::NrPeriodicConfig;
use mmwave_baselines::single_reactive::ReactiveConfig;
use mmwave_baselines::strategy::MmReliableStrategy;
use mmwave_baselines::widebeam::WideBeamConfig;
use mmwave_baselines::{BeamSpy, NrPeriodic, OracleMrt, SingleBeamReactive, WideBeamStrategy};
use mmwave_bench::figures::write_csv;
use mmwave_bench::supervised::{supervised_run_many, SharedFactory};
use mmwave_channel::channel::UeReceiver;
use mmwave_dsp::stats;
use mmwave_phy::mcs::McsTable;
use mmwave_phy::refsignal::{CsiRsConfig, ProbeBudget, SsbConfig};
use mmwave_sim::runner::Aggregate;
use mmwave_sim::scenario;
use std::sync::Arc;

type Factory = SharedFactory;

fn mmreliable_factory() -> Factory {
    Arc::new(|| {
        Box::new(MmReliableStrategy::new(MmReliableController::new(
            MmReliableConfig::paper_default(),
        )))
    })
}

fn reactive_factory() -> Factory {
    Arc::new(|| Box::new(SingleBeamReactive::new(ReactiveConfig::default())))
}

fn beamspy_factory() -> Factory {
    Arc::new(|| Box::new(BeamSpy::new(BeamSpyConfig::default())))
}

fn widebeam_factory() -> Factory {
    Arc::new(|| Box::new(WideBeamStrategy::new(WideBeamConfig::default())))
}

fn nr_factory() -> Factory {
    Arc::new(|| Box::new(NrPeriodic::new(NrPeriodicConfig::default())))
}

fn oracle_factory() -> Factory {
    Arc::new(|| {
        Box::new(OracleMrt::ideal(
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
        ))
    })
}

/// Fig. 16: SNR time series under a walker crossing the link — the
/// multi-beam dips gently; the single beam crashes below the 6 dB outage
/// threshold.
pub fn fig16() {
    let grab = |label: &str, factory: Factory| {
        let runs = supervised_run_many(
            1,
            1600,
            1,
            "static-walker",
            label,
            |_| scenario::static_walker(),
            factory,
        );
        runs.into_iter().next().unwrap()
    };
    let multi = grab("mmreliable", mmreliable_factory());
    let single = grab("single-beam-reactive", reactive_factory());
    let mut csv = String::from("t_s,snr_multibeam_db,snr_singlebeam_db\n");
    let ms = multi.snr_series();
    let ss = single.snr_series();
    for i in 0..ms.len().min(ss.len()) {
        csv.push_str(&format!("{:.4},{:.2},{:.2}\n", ms[i].0, ms[i].1, ss[i].1));
    }
    write_csv("fig16.csv", &csv).unwrap();
    let min_multi = stats::min(&ms.iter().map(|s| s.1).collect::<Vec<_>>());
    let min_single = stats::min(&ss.iter().map(|s| s.1).collect::<Vec<_>>());
    let base = stats::percentile(&ms.iter().map(|s| s.1).collect::<Vec<_>>(), 90.0);
    println!(
        "worst-case SNR during blockage: multi-beam {:.1} dB ({:.1} dB dip; paper ~7 dB), single-beam {:.1} dB ({:.1} dB dip; paper ~26 dB, below the 6 dB outage threshold)",
        min_multi, base - min_multi, min_single, base - min_single
    );
}

/// Fig. 17a: per-beam tracking under gNB rotation — estimated vs true beam
/// angle over time for the LOS and a NLOS beam.
pub fn fig17a() {
    let sc = scenario::gnb_rotation(8.0);
    let mut sim = sc.simulator(1700);
    let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
    let mut csv = String::from("t_s,true_los_deg,est_los_deg,true_nlos_deg,est_nlos_deg\n");
    let mut t = 0.0;
    let mut errs_los = Vec::new();
    let mut errs_nlos = Vec::new();
    while t < sc.warmup_s + sc.duration_s {
        ctl.maintenance_round(&mut sim);
        if let Some(mb) = ctl.multibeam() {
            let now = sim.now_s();
            if now > sc.warmup_s && mb.num_beams() >= 2 {
                let true_los = sim.dynamic.true_aod_deg(0, now).unwrap_or(f64::NAN);
                let est_los = mb.component(0).angle_deg;
                // Match the NLOS beam to whichever reference path it is
                // closest to at establishment (index 2 = right wall).
                let true_nlos = sim.dynamic.true_aod_deg(2, now).unwrap_or(f64::NAN);
                let est_nlos = mb.component(1).angle_deg;
                errs_los.push((est_los - true_los).abs());
                errs_nlos.push((est_nlos - true_nlos).abs());
                csv.push_str(&format!(
                    "{:.4},{:.2},{:.2},{:.2},{:.2}\n",
                    now - sc.warmup_s,
                    true_los,
                    est_los,
                    true_nlos,
                    est_nlos
                ));
            }
        }
        // Advance to the next tick by idling the data plane.
        let next = t + sc.tick_period_s;
        while sim.now_s() < next {
            use mmreliable::frontend::LinkFrontEnd;
            sim.wait(sc.tick_period_s / 4.0);
        }
        t = next;
    }
    write_csv("fig17a.csv", &csv).unwrap();
    println!(
        "mean tracking error at 8°/s rotation: LOS {:.2}°, NLOS {:.2}° (paper: ~1° incl. weak NLOS)",
        stats::mean(&errs_los),
        stats::mean(&errs_nlos)
    );
}

/// Fig. 17b: final angle-estimation error vs rotation rate (2–8°/s),
/// averaged over seeds.
pub fn fig17b(runs: usize) {
    let mut csv = String::from("rate_deg_s,mean_abs_error_deg,std_deg\n");
    for rate in [2.0, 4.0, 6.0, 8.0] {
        let mut errs = Vec::new();
        for seed in 0..runs.max(4) as u64 {
            let sc = scenario::gnb_rotation(rate);
            let mut sim = sc.simulator(1710 + seed);
            let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
            let total = sc.warmup_s + sc.duration_s;
            while sim.now_s() < total {
                ctl.maintenance_round(&mut sim);
                use mmreliable::frontend::LinkFrontEnd;
                sim.wait(sc.tick_period_s);
            }
            if let (Some(mb), Some(truth)) =
                (ctl.multibeam(), sim.dynamic.true_aod_deg(0, sim.now_s()))
            {
                errs.push((mb.component(0).angle_deg - truth).abs());
            }
        }
        csv.push_str(&format!(
            "{rate:.1},{:.3},{:.3}\n",
            stats::mean(&errs),
            stats::std_dev(&errs)
        ));
        println!(
            "rotation {rate}°/s: mean |angle error| {:.2}° over {} runs (paper: ~1°)",
            stats::mean(&errs),
            errs.len()
        );
    }
    write_csv("fig17b.csv", &csv).unwrap();
}

/// Fig. 17c: throughput time series under 1-s translation — no tracking vs
/// tracking-only vs tracking + constructive combining.
pub fn fig17c(runs: usize) {
    let variants: Vec<(&str, Factory)> = vec![
        (
            "no_tracking",
            Arc::new(|| {
                Box::new(MmReliableStrategy::new(MmReliableController::new(
                    MmReliableConfig::paper_default().without_tracking(),
                )))
            }),
        ),
        (
            "tracking_only",
            Arc::new(|| {
                Box::new(MmReliableStrategy::new(MmReliableController::new(
                    MmReliableConfig::paper_default().without_constructive(),
                )))
            }),
        ),
        ("tracking_cc", mmreliable_factory()),
    ];
    let mcs = McsTable::nr_table();
    let mut columns: Vec<Vec<(f64, f64)>> = Vec::new();
    let mut names = Vec::new();
    for (name, factory) in &variants {
        let results = supervised_run_many(
            runs.max(4),
            1720,
            8,
            "translation-1s",
            name,
            |_| scenario::translation_1s(),
            Arc::clone(factory),
        );
        // Average the throughput series across runs on a 10 ms grid.
        let grid: Vec<f64> = (0..100).map(|i| 0.06 + 0.01 * i as f64).collect();
        let mut avg = vec![0.0f64; grid.len()];
        for r in &results {
            let series = r.throughput_series(&mcs);
            for (gi, &gt) in grid.iter().enumerate() {
                // nearest sample at or after gt
                if let Some(s) = series.iter().find(|(t, _)| *t >= gt) {
                    avg[gi] += s.1 / results.len() as f64;
                }
            }
        }
        let mean_tput = stats::mean(
            &results
                .iter()
                .map(|r| r.mean_throughput_bps(&mcs))
                .collect::<Vec<_>>(),
        );
        println!(
            "{name}: mean throughput {:.0} Mbps over {} runs",
            mean_tput / 1e6,
            results.len()
        );
        columns.push(grid.iter().copied().zip(avg).collect());
        names.push(*name);
    }
    let mut csv = format!(
        "t_s,{}_mbps,{}_mbps,{}_mbps\n",
        names[0], names[1], names[2]
    );
    for (i, &(t_s, first_bps)) in columns[0].iter().enumerate() {
        csv.push_str(&format!(
            "{:.3},{:.1},{:.1},{:.1}\n",
            t_s - 0.06,
            first_bps / 1e6,
            columns[1][i].1 / 1e6,
            columns[2][i].1 / 1e6
        ));
    }
    write_csv("fig17c.csv", &csv).unwrap();
}

/// Fig. 18a: static link with a crossing blocker — throughput of
/// mmReliable (no tracking needed) vs BeamSpy vs reactive.
pub fn fig18a(runs: usize) {
    let mcs = McsTable::nr_table();
    let entries: Vec<(&str, Factory)> = vec![
        ("mmReliable", mmreliable_factory()),
        ("beamspy", beamspy_factory()),
        ("reactive", reactive_factory()),
    ];
    let mut csv = String::from("strategy,mean_tput_mbps,rel_mean,tput_drop_pct_vs_unblocked\n");
    // Unblocked reference: the same static scenario without the walker.
    let mut reference = f64::NAN;
    for (name, factory) in &entries {
        let blocked = supervised_run_many(
            runs,
            1800,
            8,
            "static-walker",
            name,
            |_| scenario::static_walker(),
            Arc::clone(factory),
        );
        let agg = Aggregate::from_runs(&blocked, &mcs).expect("non-empty batch");
        let unblocked = supervised_run_many(
            4,
            1801,
            4,
            "static-walker-unblocked",
            name,
            |_| {
                let mut sc = scenario::static_walker();
                sc.dynamic.blockage = mmwave_channel::blockage::BlockageProcess::none();
                sc
            },
            Arc::clone(factory),
        );
        let unblocked_tput = Aggregate::from_runs(&unblocked, &mcs)
            .expect("non-empty batch")
            .mean_throughput_bps();
        if name == &"mmReliable" {
            reference = unblocked_tput;
        }
        let drop_pct = 100.0 * (1.0 - agg.mean_throughput_bps() / unblocked_tput);
        csv.push_str(&format!(
            "{name},{:.1},{:.4},{:.1}\n",
            agg.mean_throughput_bps() / 1e6,
            agg.mean_reliability(),
            drop_pct
        ));
        println!(
            "{name}: {:.0} Mbps under two blockage events ({:.1}% below its unblocked rate; paper: mmReliable drops only 4%)",
            agg.mean_throughput_bps() / 1e6,
            drop_pct
        );
    }
    let _ = reference;
    write_csv("fig18a.csv", &csv).unwrap();
}

/// Fig. 18b: reliability distribution for mobile links with blockage.
pub fn fig18b(runs: usize) {
    let mcs = McsTable::nr_table();
    let entries: Vec<(&str, Factory)> = vec![
        ("mmReliable", mmreliable_factory()),
        ("reactive", reactive_factory()),
        ("widebeam", widebeam_factory()),
    ];
    let mut csv = String::from("strategy,run,reliability\n");
    for (name, factory) in &entries {
        let results = supervised_run_many(
            runs,
            1810,
            8,
            "mixed-mobility-blockage",
            name,
            scenario::mixed_mobility_blockage,
            Arc::clone(factory),
        );
        let agg = Aggregate::from_runs(&results, &mcs).expect("non-empty batch");
        for (i, r) in agg.reliability.iter().enumerate() {
            csv.push_str(&format!("{name},{i},{r:.4}\n"));
        }
        println!(
            "{name}: median reliability {:.3} (paper: mmReliable ≈ 1.0, reactive 0.65, widebeam 0.5)",
            agg.median_reliability()
        );
    }
    write_csv("fig18b.csv", &csv).unwrap();
}

/// Fig. 18c: throughput–reliability scatter and the headline product.
pub fn fig18c(runs: usize) {
    let mcs = McsTable::nr_table();
    let entries: Vec<(&str, Factory)> = vec![
        ("mmReliable", mmreliable_factory()),
        ("reactive", reactive_factory()),
        ("beamspy", beamspy_factory()),
        ("widebeam", widebeam_factory()),
        ("nr_periodic", nr_factory()),
        ("oracle", oracle_factory()),
    ];
    let mut csv =
        String::from("strategy,rel_mean,rel_std,tput_mbps_mean,tput_mbps_std,product_mbps\n");
    let mut products = std::collections::BTreeMap::new();
    for (name, factory) in &entries {
        let results = supervised_run_many(
            runs,
            1820,
            8,
            "mixed-mobility-blockage",
            name,
            scenario::mixed_mobility_blockage,
            Arc::clone(factory),
        );
        let agg = Aggregate::from_runs(&results, &mcs).expect("non-empty batch");
        csv.push_str(&format!(
            "{name},{:.4},{:.4},{:.1},{:.1},{:.1}\n",
            agg.mean_reliability(),
            stats::std_dev(&agg.reliability),
            agg.mean_throughput_bps() / 1e6,
            stats::std_dev(&agg.throughput_bps) / 1e6,
            agg.mean_product_bps() / 1e6
        ));
        products.insert(*name, agg.mean_product_bps());
        println!(
            "{name}: reliability {:.3}, throughput {:.0} Mbps, product {:.0} Mbps",
            agg.mean_reliability(),
            agg.mean_throughput_bps() / 1e6,
            agg.mean_product_bps() / 1e6
        );
    }
    write_csv("fig18c.csv", &csv).unwrap();
    // The paper's Fig. 18c compares against its reactive and widebeam
    // baselines (BeamSpy appears in the static study, Fig. 18a).
    let best_paper_set = ["reactive", "widebeam", "nr_periodic"]
        .iter()
        .map(|k| products[*k])
        .fold(0.0f64, f64::max);
    println!(
        "throughput-reliability product improvement over the best reactive baseline: {:.2}× (paper: 2.3×)",
        products["mmReliable"] / best_paper_set
    );
    println!(
        "(vs the BeamSpy-style profile-switching baseline: {:.2}×)",
        products["mmReliable"] / products["beamspy"]
    );
}

/// Fig. 18d: probing overhead vs antenna count — vanilla NR grows, the
/// mmReliable maintenance round does not.
pub fn fig18d() {
    let b = ProbeBudget::paper();
    let ssb = SsbConfig::default();
    let csi = CsiRsConfig::default();
    let mut csv = String::from("antennas,nr_scan_ms,mmreliable_2beam_ms,mmreliable_3beam_ms\n");
    for n in [8usize, 16, 32, 64, 128, 256] {
        let nr = b.nr_fast_scan_s(n, &ssb) * 1e3;
        let m2 = b.mmreliable_maintenance_s(2, &csi) * 1e3;
        let m3 = b.mmreliable_maintenance_s(3, &csi) * 1e3;
        csv.push_str(&format!("{n},{nr:.3},{m2:.3},{m3:.3}\n"));
        if n == 8 || n == 64 {
            println!(
                "{n} antennas: 5G NR scan {nr:.1} ms (paper: 3 ms @8 → 6 ms @64); mmReliable {m2:.2}/{m3:.2} ms (paper: 0.4/0.6 ms, flat)"
            );
        }
    }
    write_csv("fig18d.csv", &csv).unwrap();
}

/// Fig. 19 (Appendix B): 28 vs 60 GHz — multi-beam vs single-beam
/// throughput gain at 10% blockage, and the inter-band comparison.
pub fn fig19(runs: usize) {
    let mcs = McsTable::nr_table();
    let mut csv = String::from("band,strategy,tput_mbps,reliability\n");
    let mut tputs = std::collections::BTreeMap::new();
    for sixty in [false, true] {
        let band = if sixty { "60GHz" } else { "28GHz" };
        for (name, factory) in [
            ("mmReliable", mmreliable_factory()),
            ("single_beam", reactive_factory()),
        ] {
            let results = supervised_run_many(
                runs.max(4),
                1900,
                4,
                if sixty {
                    "appendix-b-60ghz"
                } else {
                    "appendix-b-28ghz"
                },
                name,
                move |_| scenario::appendix_b(sixty),
                factory,
            );
            let agg = Aggregate::from_runs(&results, &mcs).expect("non-empty batch");
            csv.push_str(&format!(
                "{band},{name},{:.1},{:.4}\n",
                agg.mean_throughput_bps() / 1e6,
                agg.mean_reliability()
            ));
            tputs.insert((band, name), agg.mean_throughput_bps());
        }
    }
    write_csv("fig19.csv", &csv).unwrap();
    let g28 = tputs[&("28GHz", "mmReliable")] / tputs[&("28GHz", "single_beam")];
    let g60 = tputs[&("60GHz", "mmReliable")] / tputs[&("60GHz", "single_beam")];
    let cross = tputs[&("28GHz", "mmReliable")] / tputs[&("60GHz", "mmReliable")];
    println!("multi-beam gain over single-beam: 28 GHz {g28:.2}× | 60 GHz {g60:.2}× (paper: 1.18× at both bands)");
    println!(
        "28 GHz vs 60 GHz mmReliable throughput: {cross:.1}× (paper: 4.7× at equal bandwidth)"
    );
}
