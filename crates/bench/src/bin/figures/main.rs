//! Regenerates every figure/table of the paper's evaluation as CSV.
//!
//! ```text
//! cargo run --release -p mmwave-bench --bin figures -- all
//! cargo run --release -p mmwave-bench --bin figures -- fig14 fig18b
//! cargo run --release -p mmwave-bench --bin figures -- fig18b --runs 100
//! ```
//!
//! Each figure prints its headline comparison (paper value vs measured)
//! on stdout and writes the full data series under `results/`.

mod endtoend;
mod micro;

use mmwave_bench::all_figure_ids;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runs: usize = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let ids: Vec<String> = args
        .iter()
        .take_while(|a| *a != "--runs")
        .cloned()
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        all_figure_ids()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };
    for id in ids {
        println!("\n=== {id} ===");
        match id {
            "fig04a" => micro::fig04a(),
            "fig04b" => micro::fig04b(),
            "fig07" => micro::fig07(),
            "fig08" => micro::fig08(),
            "fig11a" => micro::fig11a(),
            "fig11b" => micro::fig11b(),
            "fig13d" => micro::fig13d(),
            "fig14" => micro::fig14(),
            "fig15a" => micro::fig15a(),
            "fig15b" => micro::fig15b(),
            "fig15c" => micro::fig15c(),
            "fig15d" => micro::fig15d(),
            "fig16" => endtoend::fig16(),
            "fig17a" => endtoend::fig17a(),
            "fig17b" => endtoend::fig17b(runs),
            "fig17c" => endtoend::fig17c(runs.min(12)),
            "fig18a" => endtoend::fig18a(runs),
            "fig18b" => endtoend::fig18b(runs),
            "fig18c" => endtoend::fig18c(runs),
            "fig18d" => endtoend::fig18d(),
            "fig19" => endtoend::fig19(runs.min(12)),
            other => eprintln!("unknown figure id: {other}"),
        }
    }
}
