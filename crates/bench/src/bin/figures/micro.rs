//! Micro-benchmark figures: channel measurement study, wideband/delay
//! analysis, super-resolution, beam patterns, multi-beam sensitivity and
//! constructive-combining accuracy (paper Figs. 4, 7, 8, 11, 13d, 14, 15).

use mmreliable::frontend::{LinkFrontEnd, SnapshotFrontEnd};
use mmreliable::multibeam::{
    gain_over_single_beam_db, genie_multibeam, oracle_gain_db, sensitivity_gain_db,
};
use mmreliable::probing::full_relative;
use mmreliable::superres::{estimate_per_beam, SuperResConfig};
use mmwave_array::delay_array::{
    phase_only_multibeam_response, single_beam_response, DelayPhasedArray, WidebandPath,
};
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::multibeam::MultiBeam;
use mmwave_array::pattern::power_gain_db;
use mmwave_array::quantize::Quantizer;
use mmwave_array::steering::single_beam;
use mmwave_bench::figures::write_csv;
use mmwave_channel::channel::{GeometricChannel, UeReceiver};
use mmwave_channel::environment::Scene;
use mmwave_channel::geom2d::v2;
use mmwave_channel::path::{Path, PathKind};
use mmwave_channel::sampling::{sample_indoor, sample_outdoor};
use mmwave_dsp::complex::{c64, Complex64};
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::sinc::sinc;
use mmwave_dsp::stats::{self, empirical_cdf, median};
use mmwave_dsp::units::{amp_from_db, db_from_pow, FC_28GHZ};
use mmwave_phy::chanest::{ChannelSounder, ProbeObservation};
use std::f64::consts::PI;

/// Fig. 4a: CDF of the strongest reflector's attenuation relative to the
/// direct path, indoor and outdoor (paper medians: 7.2 dB / 5 dB).
pub fn fig04a() {
    let mut rng = Rng64::seed(4001);
    let n = 10_000; // the paper's "overall 10K data points"
    let indoor: Vec<f64> = sample_indoor(&mut rng, n / 2)
        .iter()
        .map(|s| s.rel_attenuation_db)
        .collect();
    let outdoor: Vec<f64> = sample_outdoor(&mut rng, n / 2)
        .iter()
        .map(|s| s.rel_attenuation_db)
        .collect();
    let cdf_in = empirical_cdf(&indoor, 60);
    let cdf_out = empirical_cdf(&outdoor, 60);
    let mut csv = String::from("rel_atten_db,cdf_indoor,rel_atten_db_out,cdf_outdoor\n");
    for i in 0..60 {
        csv.push_str(&format!(
            "{:.3},{:.4},{:.3},{:.4}\n",
            cdf_in[i].0, cdf_in[i].1, cdf_out[i].0, cdf_out[i].1
        ));
    }
    write_csv("fig04a.csv", &csv).unwrap();
    println!(
        "median reflector attenuation: indoor {:.1} dB (paper 7.2), outdoor {:.1} dB (paper 5.0)",
        median(&indoor),
        median(&outdoor)
    );
}

/// Fig. 4b: angle-power heatmap over time as the UE translates through the
/// conference room (strong reflectors appear at different times).
pub fn fig04b() {
    let scene = Scene::conference_room(FC_28GHZ);
    let geom = ArrayGeometry::paper_8x8();
    let rx = UeReceiver::Omni;
    let mut csv = String::from("t_s,angle_deg,power_db\n");
    for step in 0..21 {
        let t = step as f64 * 0.05;
        let ue = v2(-0.6 + 1.5 * t, 7.0);
        let ch = GeometricChannel::new(scene.paths_to(ue, 180.0), FC_28GHZ);
        for k in 0..61 {
            let angle = -60.0 + 2.0 * k as f64;
            let p = ch.received_power(&geom, &single_beam(&geom, angle), &rx);
            csv.push_str(&format!(
                "{:.2},{:.1},{:.1}\n",
                t,
                angle,
                db_from_pow(p.max(1e-30))
            ));
        }
    }
    write_csv("fig04b.csv", &csv).unwrap();
    println!("61-angle × 21-instant spatial profile written (LOS ridge sweeps with motion)");
}

fn fig07_paths(delta_tau_ns: f64) -> (WidebandPath, WidebandPath) {
    (
        WidebandPath {
            aod_deg: 0.0,
            gain: c64(1.0, 0.0),
            tau_s: 20e-9,
        },
        WidebandPath {
            aod_deg: 30.0,
            gain: c64(0.9, 0.0),
            tau_s: 20e-9 + delta_tau_ns * 1e-9,
        },
    )
}

/// Fig. 7: frequency response of (i) single path, (ii) 2-path channel under
/// a phase-only multi-beam (comb), (iii) delay-compensated multi-beam
/// (flat at the constructive level).
pub fn fig07() {
    let geom = ArrayGeometry::ula(16);
    let freqs: Vec<f64> = (0..201).map(|i| -200e6 + 2e6 * i as f64).collect();
    let single_path = [WidebandPath {
        aod_deg: 0.0,
        gain: c64(1.0, 0.0),
        tau_s: 20e-9,
    }];
    let flat = single_beam_response(&geom, 0.0, &single_path, &freqs);
    let (p1, p2) = fig07_paths(5.0);
    let comb = phase_only_multibeam_response(&geom, &p1, &p2, &freqs);
    let comp =
        DelayPhasedArray::two_beam_compensated(geom, &p1, &p2).power_response(&[p1, p2], &freqs);
    let mut csv = String::from("freq_mhz,single_path_db,two_path_comb_db,delay_comp_db\n");
    for i in 0..freqs.len() {
        csv.push_str(&format!(
            "{:.1},{:.2},{:.2},{:.2}\n",
            freqs[i] / 1e6,
            db_from_pow(flat[i].max(1e-12)),
            db_from_pow(comb[i].max(1e-12)),
            db_from_pow(comp[i].max(1e-12))
        ));
    }
    write_csv("fig07.csv", &csv).unwrap();
    let ripple = |v: &[f64]| 10.0 * (stats::max(v) / stats::min(v)).log10();
    println!(
        "ripple: single-path {:.2} dB, phase-only comb {:.1} dB, delay-compensated {:.2} dB",
        ripple(&flat),
        ripple(&comb),
        ripple(&comp)
    );
}

/// Fig. 8: SNR vs frequency for 5 ns and 10 ns delay spreads, with and
/// without the delay-phased-array compensation.
pub fn fig08() {
    let geom = ArrayGeometry::ula(16);
    let freqs: Vec<f64> = (0..201).map(|i| -200e6 + 2e6 * i as f64).collect();
    let mut csv = String::from("freq_mhz,uncomp_5ns_db,comp_5ns_db,uncomp_10ns_db,comp_10ns_db\n");
    let mut series = Vec::new();
    for dtau in [5.0, 10.0] {
        let (p1, p2) = fig07_paths(dtau);
        let uncomp = DelayPhasedArray::two_beam_uncompensated(geom, &p1, &p2)
            .power_response(&[p1, p2], &freqs);
        let comp = DelayPhasedArray::two_beam_compensated(geom, &p1, &p2)
            .power_response(&[p1, p2], &freqs);
        series.push((uncomp, comp));
    }
    for (i, &freq) in freqs.iter().enumerate() {
        csv.push_str(&format!(
            "{:.1},{:.2},{:.2},{:.2},{:.2}\n",
            freq / 1e6,
            db_from_pow(series[0].0[i].max(1e-12)),
            db_from_pow(series[0].1[i].max(1e-12)),
            db_from_pow(series[1].0[i].max(1e-12)),
            db_from_pow(series[1].1[i].max(1e-12))
        ));
    }
    write_csv("fig08.csv", &csv).unwrap();
    for (i, dtau) in [5.0, 10.0].iter().enumerate() {
        let worst_uncomp = db_from_pow(stats::min(&series[i].0) / stats::max(&series[i].1));
        println!(
            "Δτ = {dtau} ns: uncompensated worst-case {worst_uncomp:.1} dB below the flat compensated level"
        );
    }
}

/// Synthetic multi-beam probe used by the super-resolution figures:
/// amplitudes with phases at given relative delays on the 264-pt comb.
fn synth_probe(
    alphas: &[(f64, f64)],
    rel_delays_ns: &[f64],
    tau0_ns: f64,
    noise_pow: f64,
    rng: &mut Rng64,
) -> ProbeObservation {
    let n = 264;
    let spacing = 12.0 * 120e3;
    let freqs: Vec<f64> = (0..n)
        .map(|i| (i as f64 - (n as f64 - 1.0) / 2.0) * spacing)
        .collect();
    let cfo = rng.random_phasor();
    let csi: Vec<Complex64> = freqs
        .iter()
        .map(|&f| {
            let mut acc = Complex64::ZERO;
            for (k, &(a, ph)) in alphas.iter().enumerate() {
                let tau = (tau0_ns + rel_delays_ns[k]) * 1e-9;
                acc += Complex64::from_polar(a, ph) * Complex64::cis(-2.0 * PI * f * tau);
            }
            cfo * acc + rng.awgn(noise_pow)
        })
        .collect();
    ProbeObservation {
        csi,
        freqs_hz: freqs,
        noise_power_mw: noise_pow.max(1e-18),
    }
}

/// Fig. 11a: per-beam power estimation MSE vs relative ToF — the
/// super-resolution fit stays accurate below the 2.5 ns Fourier limit,
/// while naive CIR peak-picking collapses.
pub fn fig11a() {
    let mut rng = Rng64::seed(1101);
    let trials = 200;
    let true_powers = [1.0, 0.36];
    let mut csv = String::from("rel_tof_ns,mse_superres,mse_peak_picking\n");
    let mut dt = 0.5;
    while dt <= 5.01 {
        let rel = [0.0, dt];
        let mut se_sr = 0.0;
        let mut se_pk = 0.0;
        for _ in 0..trials {
            let obs = synth_probe(&[(1.0, 0.4), (0.6, -1.2)], &rel, 25.0, 1e-4, &mut rng);
            let est = estimate_per_beam(&obs, &rel, &SuperResConfig::default());
            se_sr += (est.powers_mw[0] - true_powers[0]).powi(2)
                + (est.powers_mw[1] - true_powers[1]).powi(2);
            // Naive baseline: read powers off the two nearest CIR taps.
            let cir = obs.cir();
            let tap_ns = 1e9 / (obs.comb_spacing_hz() * cir.len() as f64);
            let base = (25.0 / tap_ns).round() as usize;
            let second = ((25.0 + dt) / tap_ns).round() as usize % cir.len();
            se_pk += (cir[base % cir.len()].norm_sqr() - true_powers[0]).powi(2)
                + (cir[second].norm_sqr() - true_powers[1]).powi(2);
        }
        csv.push_str(&format!(
            "{:.2},{:.6},{:.6}\n",
            dt,
            se_sr / trials as f64,
            se_pk / trials as f64
        ));
        dt += 0.5;
    }
    write_csv("fig11a.csv", &csv).unwrap();
    println!("super-resolution keeps low MSE below the 2.5 ns resolution; peak-picking does not (see fig11a.csv)");
}

/// Fig. 11b: measured CIR of a 6 m link with a reflector at 30°, and the
/// two recovered sinc components.
pub fn fig11b() {
    // 6 m LOS + reflector at 30° (the paper's bench measurement).
    let geom = ArrayGeometry::paper_8x8();
    let base = amp_from_db(-mmwave_dsp::units::fspl_db(6.0, FC_28GHZ));
    let ch = GeometricChannel::new(
        vec![
            Path::new(0.0, 0.0, c64(base, 0.0), 20.0, PathKind::Los),
            Path::new(
                30.0,
                -30.0,
                Complex64::from_polar(base * 0.55, 1.0),
                26.5,
                PathKind::Reflected { wall: 0 },
            ),
        ],
        FC_28GHZ,
    );
    let mut fe = SnapshotFrontEnd::new(
        ch,
        ChannelSounder::paper_indoor(),
        geom,
        UeReceiver::Omni,
        Rng64::seed(1102),
    );
    let mb = MultiBeam::two_beam(0.0, 30.0, 0.55, 1.0).weights(&geom);
    let obs = fe.probe(&mb);
    let est = estimate_per_beam(&obs, &[0.0, 6.5], &SuperResConfig::default());
    let cir = obs.cir();
    let tap_ns = 1e9 / (obs.comb_spacing_hz() * cir.len() as f64);
    let mut csv = String::from("tap_ns,cir_mag,fit_total,sinc1,sinc2\n");
    for (i, v) in cir.iter().enumerate().take(40) {
        let t = i as f64 * tap_ns;
        let s1 =
            est.alphas[0].abs() * sinc((t - est.tau0_ns - est.rel_delays_ns[0]) / tap_ns).abs();
        let s2 =
            est.alphas[1].abs() * sinc((t - est.tau0_ns - est.rel_delays_ns[1]) / tap_ns).abs();
        csv.push_str(&format!(
            "{:.2},{:.6e},{:.6e},{:.6e},{:.6e}\n",
            t,
            v.abs(),
            (s1 * s1 + s2 * s2).sqrt(),
            s1,
            s2
        ));
    }
    write_csv("fig11b.csv", &csv).unwrap();
    println!(
        "two sincs recovered at τ₀ = {:.1} ns, Δτ = {:.1} ns; per-beam powers {:?} dB",
        est.tau0_ns,
        est.rel_delays_ns[1],
        est.powers_db()
            .iter()
            .map(|v| (v * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
}

/// Fig. 13d: theoretical vs hardware-quantized multi-beam patterns.
pub fn fig13d() {
    let geom = ArrayGeometry::paper_8x8();
    let mb = MultiBeam::two_beam(-10.0, 35.0, 0.7, 1.2);
    let ideal = mb.weights(&geom);
    let q6 = Quantizer::paper_array().quantize(&ideal);
    let q2 = Quantizer::commercial_80211ad().quantize(&ideal);
    let mut csv = String::from("angle_deg,ideal_db,quant6bit_db,quant2bit_db\n");
    let mut worst_dev_6bit = 0.0f64;
    for k in 0..241 {
        let angle = -60.0 + 0.5 * k as f64;
        let gi = power_gain_db(&geom, &ideal, angle);
        let g6 = power_gain_db(&geom, &q6, angle);
        let g2 = power_gain_db(&geom, &q2, angle);
        if gi > -10.0 {
            worst_dev_6bit = worst_dev_6bit.max((gi - g6).abs());
        }
        csv.push_str(&format!("{angle:.1},{gi:.2},{g6:.2},{g2:.2}\n"));
    }
    write_csv("fig13d.csv", &csv).unwrap();
    println!("6-bit quantized pattern deviates ≤ {worst_dev_6bit:.2} dB from theory over the main lobes (paper: \"accurate multi-beam patterns\")");
}

/// Fig. 14: SNR-gain sensitivity surface over (σ̂, δ̂) errors for a −3 dB,
/// −40° second path.
pub fn fig14() {
    let geom = ArrayGeometry::ula(16);
    let delta = amp_from_db(-3.0);
    let sigma = (-40.0f64).to_radians();
    let ch = GeometricChannel::new(
        vec![
            Path::new(0.0, 0.0, c64(1.0, 0.0), 23.0, PathKind::Los),
            Path::new(
                30.0,
                -40.0,
                Complex64::from_polar(delta, sigma),
                23.0,
                PathKind::Reflected { wall: 0 },
            ),
        ],
        FC_28GHZ,
    );
    let rx = UeReceiver::Omni;
    let mut csv = String::from("est_phase_deg,est_amp_db,gain_db\n");
    let mut peak: f64 = -100.0;
    for pd in (-180..=180).step_by(5) {
        for ad in -20..=2 {
            let g = sensitivity_gain_db(
                &ch,
                &geom,
                &rx,
                amp_from_db(ad as f64),
                sigma + (pd as f64).to_radians(),
            );
            peak = peak.max(g);
            csv.push_str(&format!("{pd},{ad},{g:.3}\n"));
        }
    }
    write_csv("fig14.csv", &csv).unwrap();
    let tol75 = sensitivity_gain_db(&ch, &geom, &rx, delta, sigma + 75.0f64.to_radians());
    let worst = sensitivity_gain_db(&ch, &geom, &rx, delta, sigma + PI);
    println!("peak gain {peak:.2} dB (paper 1.76); gain at +75° phase error {tol75:.2} dB (still > 0); at 180° error {worst:.2} dB (collapses)");
}

/// The Fig. 15 bench channel: 7 m LOS at 0° plus a NLOS path at 30°, with a
/// sub-ns relative delay (the paper's Fig. 15c shows the per-beam phase is
/// stable across 100 MHz, implying Δτ ≲ 1 ns in their setup).
fn fig15_frontend(seed: u64) -> (SnapshotFrontEnd, f64, f64) {
    let base = amp_from_db(-mmwave_dsp::units::fspl_db(7.0, FC_28GHZ));
    let delta = amp_from_db(-3.8); // the paper's estimated relative amplitude
    let sigma = 2.5; // the paper's estimated relative phase (radians)
    let ch = GeometricChannel::new(
        vec![
            Path::new(0.0, 0.0, c64(base, 0.0), 23.3, PathKind::Los),
            Path::new(
                30.0,
                -30.0,
                Complex64::from_polar(base * delta, sigma),
                23.3 + 0.6,
                PathKind::Reflected { wall: 0 },
            ),
        ],
        FC_28GHZ,
    );
    (
        SnapshotFrontEnd::new(
            ch,
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(seed),
        ),
        delta,
        sigma,
    )
}

/// Fig. 15a: SNR vs the 2nd beam's phase (exhaustive sweep) and the
/// two-probe estimate.
pub fn fig15a() {
    let (mut fe, delta, sigma) = fig15_frontend(1501);
    let geom = *fe.geometry();
    let mut csv = String::from("phase_rad,snr_db\n");
    let mut best = (0.0, -100.0f64);
    for k in 0..=63 {
        let phase = 2.0 * PI * k as f64 / 63.0;
        let w = MultiBeam::two_beam(0.0, 30.0, delta, phase).weights(&geom);
        let snr = fe.probe(&w).snr_db();
        if snr > best.1 {
            best = (phase, snr);
        }
        csv.push_str(&format!("{phase:.4},{snr:.2}\n"));
    }
    let (rel, _, _) = full_relative(&mut fe, 0.0, 30.0, 0.6);
    write_csv("fig15a.csv", &csv).unwrap();
    let est_phase = mmwave_dsp::units::wrap_rad(rel.sigma_rad).rem_euclid(2.0 * PI);
    println!(
        "exhaustive-scan peak at {:.2} rad / {:.1} dB; two-probe estimate {:.2} rad (truth {:.2}); paper: ~2.5 rad, 27 dB peak",
        best.0, best.1, est_phase, sigma
    );
}

/// Fig. 15b: SNR vs the 2nd beam's relative amplitude.
pub fn fig15b() {
    let (mut fe, _delta, sigma) = fig15_frontend(1502);
    let geom = *fe.geometry();
    let mut csv = String::from("amp_db,snr_db\n");
    for k in 0..=48 {
        let amp_db = -10.0 + 0.25 * k as f64;
        let w = MultiBeam::two_beam(0.0, 30.0, amp_from_db(amp_db), sigma).weights(&geom);
        let snr = fe.probe(&w).snr_db();
        csv.push_str(&format!("{amp_db:.2},{snr:.2}\n"));
    }
    let (rel, _, _) = full_relative(&mut fe, 0.0, 30.0, 0.6);
    write_csv("fig15b.csv", &csv).unwrap();
    println!(
        "two-probe amplitude estimate {:.1} dB (truth −3.8 dB; paper estimates −3.8 dB inside the flat −5..−3 dB optimum)",
        20.0 * rel.delta.log10()
    );
}

/// Fig. 15c: per-subcarrier relative phase stability across 100 MHz.
pub fn fig15c() {
    let (mut fe, _, _) = fig15_frontend(1503);
    // Derive the per-subcarrier relative channel from the 4 power spectra
    // (as the estimator does), restricted to a 100 MHz window.
    let (_, p1, p2) = full_relative(&mut fe, 0.0, 30.0, 0.6);
    let geom = *fe.geometry();
    let w3 = MultiBeam::two_beam(0.0, 30.0, 1.0, 0.0).weights(&geom);
    let w4 = MultiBeam::two_beam(0.0, 30.0, 1.0, -PI / 2.0).weights(&geom);
    let obs3 = fe.probe(&w3);
    let p3: Vec<f64> = obs3
        .csi
        .iter()
        .map(|v| (v.norm_sqr() - obs3.noise_power_mw).max(0.0))
        .collect();
    let obs4 = fe.probe(&w4);
    let p4: Vec<f64> = obs4
        .csi
        .iter()
        .map(|v| (v.norm_sqr() - obs4.noise_power_mw).max(0.0))
        .collect();
    let mut csv = String::from("freq_mhz,rel_phase_rad\n");
    let mut phases = Vec::new();
    for i in 0..p1.len() {
        let f = obs3.freqs_hz[i];
        if f.abs() > 50e6 || p1[i] <= 0.0 {
            continue;
        }
        let sq = p1[i].sqrt();
        let re = (2.0 * p3[i] - p1[i] - p2[i]) / (2.0 * sq);
        let im = (p1[i] + p2[i] - 2.0 * p4[i]) / (2.0 * sq);
        let r = c64(re, im) / sq;
        let phase = (r * Complex64::cis(2.0 * PI * f * 0.6e-9)).arg();
        phases.push(phase);
        csv.push_str(&format!("{:.2},{:.4}\n", f / 1e6, phase));
    }
    write_csv("fig15c.csv", &csv).unwrap();
    let span = stats::max(&phases) - stats::min(&phases);
    println!("relative-phase variation over 100 MHz: {span:.2} rad (paper: < 1 rad)");
}

/// Fig. 15d: SNR gain over single beam — 2-beam, 3-beam, oracle
/// (paper: 1.04 dB, 2.27 dB, 2.5 dB).
pub fn fig15d() {
    // Static unblocked 4-path channel with relative amplitudes calibrated
    // to the paper's measured gains (δ₁ = 0.55, δ₂ = 0.50, δ₃ = 0.30 →
    // ideal 2-beam +1.1 dB, 3-beam +1.9 dB, oracle +2.1 dB; the fourth
    // weak path is what separates the 3-beam from the oracle, as in the
    // paper's 92%-of-oracle observation).
    let base = amp_from_db(-mmwave_dsp::units::fspl_db(7.0, FC_28GHZ));
    let ch = GeometricChannel::new(
        vec![
            Path::new(0.0, 0.0, c64(base, 0.0), 23.3, PathKind::Los),
            Path::new(
                30.0,
                -25.0,
                Complex64::from_polar(base * 0.55, 1.9),
                23.6,
                PathKind::Reflected { wall: 0 },
            ),
            Path::new(
                -41.0,
                35.0,
                Complex64::from_polar(base * 0.50, -0.8),
                23.8,
                PathKind::Reflected { wall: 1 },
            ),
            Path::new(
                52.0,
                -60.0,
                Complex64::from_polar(base * 0.30, 0.4),
                24.1,
                PathKind::Reflected { wall: 2 },
            ),
        ],
        FC_28GHZ,
    );
    let geom = ArrayGeometry::paper_8x8();
    let rx = UeReceiver::Omni;
    let g2 = gain_over_single_beam_db(&ch, &geom, &genie_multibeam(&ch, 2).unwrap(), &rx);
    let g3 = gain_over_single_beam_db(&ch, &geom, &genie_multibeam(&ch, 3).unwrap(), &rx);
    let go = oracle_gain_db(&ch, &geom, &rx);
    let mut csv = String::from("scheme,snr_gain_db,paper_db\n");
    csv.push_str(&format!("two_beam,{g2:.2},1.04\n"));
    csv.push_str(&format!("three_beam,{g3:.2},2.27\n"));
    csv.push_str(&format!("oracle,{go:.2},2.50\n"));
    write_csv("fig15d.csv", &csv).unwrap();
    println!("SNR gain vs single beam: 2-beam {g2:.2} dB (paper 1.04), 3-beam {g3:.2} dB (paper 2.27), oracle {go:.2} dB (paper 2.5)");
    println!(
        "3-beam reaches {:.0}% of the oracle SNR (paper: 92%)",
        100.0 * 10f64.powf((g3 - go) / 10.0)
    );
}
