//! Quick end-to-end calibration check: runs the Fig. 18 mobile+blockage
//! protocol with every strategy and prints the ordering. Not a figure —
//! a development tool.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmwave_array::geometry::ArrayGeometry;
use mmwave_baselines::beamspy::BeamSpyConfig;
use mmwave_baselines::nr_periodic::NrPeriodicConfig;
use mmwave_baselines::single_reactive::ReactiveConfig;
use mmwave_baselines::strategy::{BeamStrategy, MmReliableStrategy};
use mmwave_baselines::widebeam::WideBeamConfig;
use mmwave_baselines::{BeamSpy, NrPeriodic, OracleMrt, SingleBeamReactive, WideBeamStrategy};
use mmwave_channel::channel::UeReceiver;
use mmwave_phy::mcs::McsTable;
use mmwave_sim::runner::{run_many, Aggregate};
use mmwave_sim::scenario;

type StrategyFactory = Box<dyn Fn() -> Box<dyn BeamStrategy + Send> + Sync>;

fn main() {
    let n_runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let mcs = McsTable::nr_table();
    let factories: Vec<(&str, StrategyFactory)> = vec![
        (
            "mmReliable",
            Box::new(|| {
                Box::new(MmReliableStrategy::new(MmReliableController::new(
                    MmReliableConfig::paper_default(),
                )))
            }),
        ),
        (
            "reactive",
            Box::new(|| Box::new(SingleBeamReactive::new(ReactiveConfig::default()))),
        ),
        (
            "beamspy",
            Box::new(|| Box::new(BeamSpy::new(BeamSpyConfig::default()))),
        ),
        (
            "widebeam",
            Box::new(|| Box::new(WideBeamStrategy::new(WideBeamConfig::default()))),
        ),
        (
            "nr-periodic",
            Box::new(|| Box::new(NrPeriodic::new(NrPeriodicConfig::default()))),
        ),
        (
            "oracle",
            Box::new(|| {
                Box::new(OracleMrt::ideal(
                    ArrayGeometry::paper_8x8(),
                    UeReceiver::Omni,
                ))
            }),
        ),
    ];
    println!("strategy,scenario,rel_mean,rel_median,tput_mbps,product_mbps,overhead");
    for (name, factory) in &factories {
        let runs = run_many(n_runs, 1000, 8, scenario::mobile_blockage, factory.as_ref());
        let agg = Aggregate::from_runs(&runs, &mcs).expect("non-empty batch");
        println!("{}", agg.csv_row());
        let _ = name;
    }
}
