//! The library half of the `mmwave-admin` operator CLI.
//!
//! Everything the binary (`src/bin/admin.rs`) prints is produced here as
//! plain strings or typed reports, so the test suite can drive the whole
//! surface — status rollups, transition-tape history, metrics merging,
//! journal diffing, live tailing — against synthetic journals without
//! spawning a process.
//!
//! Design rules:
//!
//! * **Tolerant reads.** Operators point this tool at journals from
//!   crashed or live runs. A torn trailing line, a legacy 4-segment cell
//!   id, or a fleet form from a newer binary must never panic — they are
//!   counted, noted, and skipped.
//! * **Last entry wins.** A journal appends; re-runs supersede earlier
//!   lines for the same cell. Every rollup and diff dedups by cell id
//!   keeping the final line, mirroring the campaign's own resume logic.
//! * **Replay is the source of truth for history.** `history` re-executes
//!   the journaled cell (bit-identical by construction) and prints the
//!   lifecycle transition tape the run actually produced, cross-checked
//!   against [`check_transition_tape`].

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use mmreliable::linkstate::check_transition_tape;
use mmreliable::Transition;
use mmwave_sim::campaign::{replay_cell, JournalEntry};
use mmwave_sim::fleet::{parse_fleet_scenario, replay_fleet_entry, FleetReplay, FleetScenarioRef};
use mmwave_sim::RunResult;
use mmwave_telemetry::MetricsRegistry;

// ---------------------------------------------------------------------------
// Journal scanning
// ---------------------------------------------------------------------------

/// A tolerant read of a journal: parseable entries plus a count of the
/// lines that did not parse (torn tail of a live/crashed writer, foreign
/// garbage). [`mmwave_sim::campaign::load_journal`] by contrast stops at
/// the first malformed line — correct for resume (a torn line invalidates everything after
/// it), too strict for inspection.
pub struct JournalScan {
    /// Entries in file order (duplicates preserved).
    pub entries: Vec<JournalEntry>,
    /// Lines that failed to parse.
    pub torn: usize,
}

/// Reads a journal tolerantly (see [`JournalScan`]). A missing file is an
/// empty scan, matching `load_journal`.
pub fn scan_journal(path: &Path) -> Result<JournalScan, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(JournalScan {
                entries: Vec::new(),
                torn: 0,
            })
        }
        Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
    };
    let mut scan = JournalScan {
        entries: Vec::new(),
        torn: 0,
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match JournalEntry::parse(line) {
            Some(e) => scan.entries.push(e),
            None => scan.torn += 1,
        }
    }
    Ok(scan)
}

/// The canonical cell id of a journal entry: `CellKey::id()` form —
/// 4-segment for clean-front-end cells, 5-segment when an impairment spec
/// is present. Legacy entries with an empty impairment field normalize to
/// the 4-segment form, so a pre-impairment journal diffs cleanly against
/// a modern re-run of the same grid.
pub fn entry_id(e: &JournalEntry) -> String {
    e.key().id()
}

/// Dedups a scan by cell id, keeping the *last* entry for each id (the
/// journal is append-only; later lines supersede earlier ones). Returns
/// ids in first-seen order alongside the superseded-line count.
pub fn dedup_last_wins(entries: &[JournalEntry]) -> (Vec<(String, &JournalEntry)>, usize) {
    let mut order: Vec<String> = Vec::new();
    let mut last: BTreeMap<String, &JournalEntry> = BTreeMap::new();
    let mut superseded = 0;
    for e in entries {
        let id = entry_id(e);
        if last.insert(id.clone(), e).is_some() {
            superseded += 1;
        } else {
            order.push(id);
        }
    }
    (
        order
            .into_iter()
            .map(|id| {
                let e = last[&id];
                (id, e)
            })
            .collect(),
        superseded,
    )
}

// ---------------------------------------------------------------------------
// status
// ---------------------------------------------------------------------------

/// Campaign/cell/UE rollup of a journal, one report string.
pub fn status_report(scan: &JournalScan) -> String {
    let (cells, superseded) = dedup_last_wins(&scan.entries);
    let mut by_status: BTreeMap<&str, usize> = BTreeMap::new();
    let mut singles = 0usize;
    let mut aggregates = 0usize;
    let mut members = 0usize;
    // base scenario -> (members seen, members ok, aggregate line present)
    let mut fleets: BTreeMap<String, (u32, u32, bool)> = BTreeMap::new();
    let mut ok_rel: Vec<f64> = Vec::new();
    for (_, e) in &cells {
        *by_status.entry(e.status.as_str()).or_default() += 1;
        if e.status == "ok" {
            ok_rel.push(e.reliability);
        }
        match parse_fleet_scenario(&e.scenario) {
            None => singles += 1,
            Some(FleetScenarioRef::Aggregate { base, n_ues }) => {
                aggregates += 1;
                fleets.entry(format!("fleet:{base}:{n_ues}")).or_default().2 = true;
            }
            Some(FleetScenarioRef::PerUe { base, n_ues, .. }) => {
                members += 1;
                let f = fleets.entry(format!("fleet:{base}:{n_ues}")).or_default();
                f.0 += 1;
                if e.status == "ok" {
                    f.1 += 1;
                }
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "journal: {} lines -> {} cells ({} superseded, {} torn)",
        scan.entries.len(),
        cells.len(),
        superseded,
        scan.torn
    );
    let status_line = by_status
        .iter()
        .map(|(k, v)| format!("{k} {v}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        out,
        "status: {}",
        if status_line.is_empty() {
            "empty".to_string()
        } else {
            status_line
        }
    );
    let _ = writeln!(
        out,
        "kinds: {singles} single-link, {aggregates} fleet aggregates, {members} fleet members"
    );
    if !ok_rel.is_empty() {
        let (mut lo, mut hi, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for &r in &ok_rel {
            lo = lo.min(r);
            hi = hi.max(r);
            sum += r;
        }
        let _ = writeln!(
            out,
            "reliability (ok cells): mean {:.4}, min {:.4}, max {:.4}",
            sum / ok_rel.len() as f64,
            lo,
            hi
        );
    }
    for (fleet, (seen, ok, agg)) in &fleets {
        let _ = writeln!(
            out,
            "{fleet}: {seen} members journaled ({ok} ok), aggregate {}",
            if *agg { "present" } else { "missing" }
        );
    }
    out
}

// ---------------------------------------------------------------------------
// history
// ---------------------------------------------------------------------------

/// Resolves a `history` resource argument against a scan: exact cell id
/// first, then exact scenario-field match (`fleet:...:ue3` without the
/// strategy/seed segments) when that is unambiguous.
pub fn find_resource<'a>(
    cells: &'a [(String, &'a JournalEntry)],
    resource: &str,
) -> Result<&'a JournalEntry, String> {
    if let Some((_, e)) = cells.iter().find(|(id, _)| id == resource) {
        return Ok(e);
    }
    let by_scenario: Vec<&&JournalEntry> = cells
        .iter()
        .filter(|(_, e)| e.scenario == resource)
        .map(|(_, e)| e)
        .collect();
    match by_scenario.as_slice() {
        [e] => Ok(**e),
        [] => Err(format!(
            "no journaled cell matches {resource:?} (try `mmwave-admin status` for the cell list)"
        )),
        many => Err(format!(
            "{resource:?} is ambiguous: {} journaled cells share that scenario; pass a full cell id",
            many.len()
        )),
    }
}

/// Replays the journaled cell behind one resource and renders its
/// lifecycle transition tape — the exact tape `check_transition_tape`
/// validates, cross-checked here before printing. Errors on aggregate
/// fleet lines (their members own the tapes) and on entries whose replay
/// reproduces a recorded failure (the failure class is reported instead).
pub fn history_report(scan: &JournalScan, resource: &str) -> Result<String, String> {
    let (cells, _) = dedup_last_wins(&scan.entries);
    let entry = find_resource(&cells, resource)?;
    if let Some(FleetScenarioRef::Aggregate { base, n_ues }) = parse_fleet_scenario(&entry.scenario)
    {
        return Err(format!(
            "{resource:?} is a fleet aggregate; ask a member instead (e.g. fleet:{base}:{n_ues}:ue0)"
        ));
    }
    if entry.status != "ok" {
        return Err(format!(
            "cell {} journaled as {:?} ({}); only completed cells have a replayable tape",
            entry_id(entry),
            entry.status,
            if entry.message.is_empty() {
                "no message"
            } else {
                &entry.message
            }
        ));
    }
    let (result, digest) = replay_entry(entry)?;
    let tape: Vec<&Transition> = result.transitions().collect();
    check_transition_tape(tape.iter().copied())
        .map_err(|e| format!("replayed tape violates the lifecycle contract: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(out, "cell {}", entry_id(entry));
    let _ = writeln!(
        out,
        "digest {digest:016x} ({})",
        if digest == entry.digest {
            "matches journal"
        } else {
            "JOURNAL MISMATCH"
        }
    );
    let _ = writeln!(out, "transitions: {} (tape legal, not wedged)", tape.len());
    for (i, tr) in tape.iter().enumerate() {
        let _ = writeln!(
            out,
            "#{i:<3} t={:>9.3}s  {:>10} -> {:<10} cause={}",
            tr.t_s,
            tr.from.kind().name(),
            tr.to.kind().name(),
            tr.cause.name()
        );
    }
    Ok(out)
}

/// Replays one ok entry to its `RunResult`, routing fleet member lines
/// through the fleet replay machinery and everything else through
/// [`replay_cell`].
fn replay_entry(entry: &JournalEntry) -> Result<(RunResult, u64), String> {
    match parse_fleet_scenario(&entry.scenario) {
        Some(FleetScenarioRef::PerUe { .. }) => match replay_fleet_entry(entry)? {
            FleetReplay::PerUe { result, digest } => Ok((*result, digest)),
            FleetReplay::Aggregate { .. } => {
                Err("internal: per-UE line replayed as aggregate".to_string())
            }
        },
        Some(FleetScenarioRef::Aggregate { .. }) => {
            Err("aggregate lines have no single transition tape".to_string())
        }
        None => replay_cell(entry)
            .map_err(|f| format!("replay reproduces {}: {}", f.kind.as_str(), f.message)),
    }
}

// ---------------------------------------------------------------------------
// metrics
// ---------------------------------------------------------------------------

/// Merges any number of metrics snapshots (JSONL, as written by the fleet
/// and campaign capture layers) into one registry: counters add, gauges
/// last-write-win in argument order, histograms merge bucket-for-bucket.
/// Unparseable lines error with their path and line number.
pub fn merge_snapshots(paths: &[impl AsRef<Path>]) -> Result<MetricsRegistry, String> {
    let mut reg = MetricsRegistry::new();
    for p in paths {
        let p = p.as_ref();
        let text = std::fs::read_to_string(p)
            .map_err(|e| format!("cannot read snapshot {}: {e}", p.display()))?;
        for (n, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            reg.absorb_line(line)
                .map_err(|e| format!("{}:{}: {e}", p.display(), n + 1))?;
        }
    }
    Ok(reg)
}

/// One line per histogram in a registry: count, p50/p95/p99, max. The
/// `tail` subcommand reprints this as snapshots evolve.
pub fn hist_summary(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (res, metric, h) in reg.histograms() {
        let _ = writeln!(
            out,
            "{metric}[{res}]: n={} p50={}ns p95={}ns p99={}ns max={}ns",
            h.count(),
            h.percentile_ns(50.0),
            h.percentile_ns(95.0),
            h.percentile_ns(99.0),
            h.max_ns()
        );
    }
    out
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/// How one cell id compares across two journals (or across a journal and
/// its own replay).
#[derive(Debug, PartialEq)]
pub enum CellDiff {
    /// Same digest, same status — bit-identical.
    Identical,
    /// Both completed but with different digests; when replays of both
    /// sides disagree sample-for-sample, `first_divergent_slot` holds the
    /// first differing sample index.
    DivergentDigest {
        /// Digest on side A.
        a: u64,
        /// Digest on side B.
        b: u64,
        /// First sample index where replays of the two sides differ;
        /// `None` when the replays are bit-identical (the recorded
        /// digests disagree with what the cell reproduces today) or when
        /// localization was not attempted.
        first_divergent_slot: Option<usize>,
    },
    /// The journals record different statuses (e.g. `ok` vs `timeout`).
    DivergentStatus {
        /// Status on side A.
        a: String,
        /// Status on side B.
        b: String,
    },
    /// Present only in journal A.
    OnlyInA,
    /// Present only in journal B.
    OnlyInB,
}

/// A full journal-vs-journal comparison.
pub struct DiffReport {
    /// `(cell id, classification)`, sorted by id.
    pub rows: Vec<(String, CellDiff)>,
    /// Torn line counts for the two sides.
    pub torn: (usize, usize),
}

impl DiffReport {
    /// True when every common cell is bit-identical and neither side has
    /// cells the other lacks.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|(_, d)| *d == CellDiff::Identical)
    }

    /// Renders the report; identical cells compress to a count.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let identical = self
            .rows
            .iter()
            .filter(|(_, d)| *d == CellDiff::Identical)
            .count();
        let _ = writeln!(
            out,
            "{} cells compared: {} identical, {} divergent/missing (torn lines: {} vs {})",
            self.rows.len(),
            identical,
            self.rows.len() - identical,
            self.torn.0,
            self.torn.1
        );
        for (id, d) in &self.rows {
            match d {
                CellDiff::Identical => {}
                CellDiff::DivergentDigest {
                    a,
                    b,
                    first_divergent_slot,
                } => {
                    let at = match first_divergent_slot {
                        Some(n) => format!("divergent at slot {n}"),
                        None => "replays bit-identical; recorded digests differ".to_string(),
                    };
                    let _ = writeln!(out, "divergent  {id}: {a:016x} vs {b:016x} ({at})");
                }
                CellDiff::DivergentStatus { a, b } => {
                    let _ = writeln!(out, "divergent  {id}: status {a:?} vs {b:?}");
                }
                CellDiff::OnlyInA => {
                    let _ = writeln!(out, "missing-in-b  {id}");
                }
                CellDiff::OnlyInB => {
                    let _ = writeln!(out, "missing-in-a  {id}");
                }
            }
        }
        out
    }
}

/// First sample index at which two runs differ bit-for-bit, `None` when
/// the tapes are identical. Floats compare by bit pattern so NaN probing
/// gaps compare equal and a 1-ulp drift still registers.
pub fn first_divergent_slot(a: &RunResult, b: &RunResult) -> Option<usize> {
    let (sa, sb) = (&a.samples, &b.samples);
    for i in 0..sa.len().min(sb.len()) {
        let (x, y) = (&sa[i], &sb[i]);
        if x.t_s.to_bits() != y.t_s.to_bits()
            || x.dur_s.to_bits() != y.dur_s.to_bits()
            || x.snr_db.to_bits() != y.snr_db.to_bits()
            || x.probing != y.probing
        {
            return Some(i);
        }
    }
    (sa.len() != sb.len()).then(|| sa.len().min(sb.len()))
}

/// Diffs two journal scans cell-by-cell (last entry wins on both sides).
/// With `localize`, divergent-digest cells are replayed on both sides to
/// pin the first divergent sample; aggregate fleet lines skip
/// localization (their digest is a fold over member digests — diff the
/// members instead).
pub fn diff_journals(a: &JournalScan, b: &JournalScan, localize: bool) -> DiffReport {
    let (cells_a, _) = dedup_last_wins(&a.entries);
    let (cells_b, _) = dedup_last_wins(&b.entries);
    let map_a: BTreeMap<&str, &JournalEntry> =
        cells_a.iter().map(|(id, e)| (id.as_str(), *e)).collect();
    let map_b: BTreeMap<&str, &JournalEntry> =
        cells_b.iter().map(|(id, e)| (id.as_str(), *e)).collect();
    let mut ids: Vec<&str> = map_a.keys().chain(map_b.keys()).copied().collect();
    ids.sort_unstable();
    ids.dedup();
    let mut rows = Vec::with_capacity(ids.len());
    for id in ids {
        let d = match (map_a.get(id), map_b.get(id)) {
            (Some(ea), Some(eb)) => {
                if ea.status != eb.status {
                    CellDiff::DivergentStatus {
                        a: ea.status.clone(),
                        b: eb.status.clone(),
                    }
                } else if ea.digest == eb.digest {
                    CellDiff::Identical
                } else {
                    let is_aggregate = matches!(
                        parse_fleet_scenario(&ea.scenario),
                        Some(FleetScenarioRef::Aggregate { .. })
                    );
                    let slot = if localize && ea.status == "ok" && !is_aggregate {
                        match (replay_entry(ea), replay_entry(eb)) {
                            (Ok((ra, _)), Ok((rb, _))) => first_divergent_slot(&ra, &rb),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    CellDiff::DivergentDigest {
                        a: ea.digest,
                        b: eb.digest,
                        first_divergent_slot: slot,
                    }
                }
            }
            (Some(_), None) => CellDiff::OnlyInA,
            (None, Some(_)) => CellDiff::OnlyInB,
            (None, None) => unreachable!("id came from one of the maps"),
        };
        rows.push((id.to_string(), d));
    }
    DiffReport {
        rows,
        torn: (a.torn, b.torn),
    }
}

/// Diffs a journal against its own fresh replay: every deduped entry is
/// re-executed and the reproduced digest (for ok cells) or failure class
/// (for failed cells) is compared against what the journal recorded. This
/// is the self-consistency check the CI smoke runs — a bit-identical
/// codebase yields an all-identical report.
pub fn self_replay_diff(scan: &JournalScan) -> DiffReport {
    let (cells, _) = dedup_last_wins(&scan.entries);
    let mut rows = Vec::with_capacity(cells.len());
    for (id, e) in cells {
        let d = if e.status == "ok" {
            let replayed = match parse_fleet_scenario(&e.scenario) {
                Some(FleetScenarioRef::Aggregate { .. }) => {
                    replay_fleet_entry(e).map(|r| match r {
                        FleetReplay::Aggregate { report } => report.digest,
                        FleetReplay::PerUe { digest, .. } => digest,
                    })
                }
                _ => replay_entry(e).map(|(_, d)| d),
            };
            match replayed {
                Ok(digest) if digest == e.digest => CellDiff::Identical,
                Ok(digest) => CellDiff::DivergentDigest {
                    a: e.digest,
                    b: digest,
                    first_divergent_slot: None,
                },
                Err(msg) => CellDiff::DivergentStatus {
                    a: e.status.clone(),
                    b: msg,
                },
            }
        } else {
            // A recorded failure replays to the same classification.
            match replay_cell(e) {
                Err(f) if f.kind.as_str() == e.status => CellDiff::Identical,
                Err(f) => CellDiff::DivergentStatus {
                    a: e.status.clone(),
                    b: f.kind.as_str().to_string(),
                },
                Ok((_, digest)) => CellDiff::DivergentStatus {
                    a: e.status.clone(),
                    b: format!("ok ({digest:016x})"),
                },
            }
        };
        rows.push((id, d));
    }
    DiffReport {
        rows,
        torn: (scan.torn, scan.torn),
    }
}

// ---------------------------------------------------------------------------
// tail
// ---------------------------------------------------------------------------

/// Incremental journal follower: feed it raw chunks as the file grows and
/// it yields complete parsed entries, holding a trailing partial line
/// until its newline arrives (a live writer's torn tail is *pending*, not
/// torn — only a completed line that fails to parse counts as torn).
#[derive(Default)]
pub struct TailState {
    partial: String,
    /// Completed lines that failed to parse.
    pub torn: usize,
    /// Entries yielded so far.
    pub seen: usize,
}

impl TailState {
    /// Consumes one chunk of appended journal bytes.
    pub fn feed(&mut self, chunk: &str) -> Vec<JournalEntry> {
        self.partial.push_str(chunk);
        let mut out = Vec::new();
        while let Some(nl) = self.partial.find('\n') {
            let line: String = self.partial.drain(..=nl).collect();
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match JournalEntry::parse(line) {
                Some(e) => {
                    self.seen += 1;
                    out.push(e);
                }
                None => self.torn += 1,
            }
        }
        out
    }
}

/// One-line rendering of a journal entry for `tail` and `status -v`.
pub fn entry_line(e: &JournalEntry) -> String {
    if e.status == "ok" {
        format!(
            "ok         {}  digest {:016x}  rel {:.4}",
            entry_id(e),
            e.digest,
            e.reliability
        )
    } else {
        format!(
            "{:<10} {}  attempts {}  {}",
            e.status,
            entry_id(e),
            e.attempts,
            e.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(scenario: &str, seed: u64, status: &str, digest: u64) -> JournalEntry {
        JournalEntry {
            scenario: scenario.to_string(),
            strategy: "mmreliable".to_string(),
            seed,
            fault: "none".to_string(),
            status: status.to_string(),
            attempts: 1,
            digest,
            tick_budget: None,
            reliability: if status == "ok" { 0.99 } else { 0.0 },
            message: String::new(),
            features: String::new(),
            impairment: "none".to_string(),
        }
    }

    #[test]
    fn dedup_keeps_the_last_entry_per_cell() {
        let entries = vec![
            entry("a", 1, "timeout", 0),
            entry("b", 2, "ok", 7),
            entry("a", 1, "ok", 5),
        ];
        let (cells, superseded) = dedup_last_wins(&entries);
        assert_eq!(superseded, 1);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].1.status, "ok");
        assert_eq!(cells[0].1.digest, 5);
    }

    #[test]
    fn legacy_and_modern_clean_ids_coincide() {
        let mut legacy = entry("a", 1, "ok", 5);
        legacy.impairment = String::new(); // pre-impairment journal line
        let modern = entry("a", 1, "ok", 5);
        assert_eq!(entry_id(&legacy), entry_id(&modern));
        assert_eq!(entry_id(&modern).matches("//").count(), 3);
        let mut impaired = entry("a", 1, "ok", 5);
        impaired.impairment = "pn-strong".to_string();
        assert_eq!(entry_id(&impaired).matches("//").count(), 4);
    }

    #[test]
    fn tail_holds_partial_lines_until_complete() {
        let line = entry("a", 1, "ok", 5).to_json();
        let (head, rest) = line.split_at(10);
        let mut tail = TailState::default();
        assert!(tail.feed(head).is_empty());
        assert!(tail.feed(rest).is_empty()); // newline not yet written
        let got = tail.feed("\n");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].scenario, "a");
        assert_eq!(tail.torn, 0);
        // A completed garbage line is torn; a trailing fragment is not.
        assert!(tail.feed("garbage\n{\"scen").is_empty());
        assert_eq!(tail.torn, 1);
    }

    #[test]
    fn diff_classifies_without_replaying() {
        let a = JournalScan {
            entries: vec![
                entry("x", 1, "ok", 10),
                entry("y", 2, "ok", 20),
                entry("z", 3, "timeout", 0),
                entry("only-a", 4, "ok", 40),
            ],
            torn: 1,
        };
        let b = JournalScan {
            entries: vec![
                entry("x", 1, "ok", 10),
                entry("y", 2, "ok", 21),
                entry("z", 3, "ok", 30),
                entry("only-b", 5, "ok", 50),
            ],
            torn: 0,
        };
        let report = diff_journals(&a, &b, false);
        assert!(!report.all_identical());
        let by_id: BTreeMap<&str, &CellDiff> = report
            .rows
            .iter()
            .map(|(id, d)| (id.split("//").next().unwrap(), d))
            .collect();
        assert_eq!(by_id["x"], &CellDiff::Identical);
        assert!(matches!(
            by_id["y"],
            CellDiff::DivergentDigest { a: 20, b: 21, .. }
        ));
        assert!(matches!(by_id["z"], CellDiff::DivergentStatus { .. }));
        assert_eq!(by_id["only-a"], &CellDiff::OnlyInA);
        assert_eq!(by_id["only-b"], &CellDiff::OnlyInB);
        assert_eq!(report.torn, (1, 0));
    }

    #[test]
    fn status_report_rolls_up_fleet_members() {
        let scan = JournalScan {
            entries: vec![
                entry("fleet:static-walker:2:ue0", 100, "ok", 1),
                entry("fleet:static-walker:2:ue1", 101, "ok", 2),
                entry("fleet:static-walker:2", 42, "ok", 3),
                entry("plain", 7, "panic", 0),
            ],
            torn: 0,
        };
        let report = status_report(&scan);
        assert!(report.contains("1 single-link, 1 fleet aggregates, 2 fleet members"));
        assert!(
            report.contains("fleet:static-walker:2: 2 members journaled (2 ok), aggregate present")
        );
        assert!(report.contains("ok 3, panic 1"));
    }
}
