//! Shared helpers for the figure pipeline.

use std::fs;
use std::path::Path;

/// Every figure id the `figures` binary can regenerate.
pub fn all_figure_ids() -> Vec<&'static str> {
    vec![
        "fig04a", "fig04b", "fig07", "fig08", "fig11a", "fig11b", "fig13d", "fig14", "fig15a",
        "fig15b", "fig15c", "fig15d", "fig16", "fig17a", "fig17b", "fig17c", "fig18a", "fig18b",
        "fig18c", "fig18d", "fig19",
    ]
}

/// Writes a CSV artifact under `results/` (created on demand) and echoes
/// the path.
pub fn write_csv(name: &str, contents: &str) -> std::io::Result<()> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, contents)?;
    println!("# wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_cover_every_evaluation_figure() {
        let ids = all_figure_ids();
        assert_eq!(ids.len(), 21);
        assert!(ids.contains(&"fig18c"));
        assert!(ids.contains(&"fig19"));
    }
}
