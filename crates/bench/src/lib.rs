//! # mmwave-bench
//!
//! Figure regenerators and Criterion benches for every table and figure in
//! the paper's evaluation. The library half hosts shared helpers; the
//! `figures` binary (see `src/bin/figures.rs`) regenerates each figure's
//! data as CSV rows on stdout and under `results/`.

pub mod admin;
pub mod figures;
pub mod supervised;

pub use figures::all_figure_ids;
pub use supervised::{supervised_run_many, SharedFactory};
