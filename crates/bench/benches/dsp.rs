//! Criterion benches for the DSP substrate: FFT, ridge least squares, and
//! sinc-dictionary construction — the hot kernels under the
//! super-resolution step (Table/Fig. 11's "100 µs" solve claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::fft::{fft, fft_in_place};
use mmwave_dsp::linalg::{ridge_least_squares, CMatrix};
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::sinc::sinc_dictionary;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [256usize, 1024, 4096] {
        let mut rng = Rng64::seed(1);
        let x: Vec<Complex64> = (0..n).map(|_| rng.complex_normal()).collect();
        group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = x.clone();
                fft_in_place(&mut buf);
                buf
            })
        });
    }
    // Non-power-of-two (Bluestein path): the 264-subcarrier CSI comb.
    let mut rng = Rng64::seed(2);
    let x: Vec<Complex64> = (0..264).map(|_| rng.complex_normal()).collect();
    group.bench_function("bluestein_264", |b| b.iter(|| fft(&x)));
    group.finish();
}

fn bench_ridge(c: &mut Criterion) {
    let mut group = c.benchmark_group("ridge_least_squares");
    let mut rng = Rng64::seed(3);
    for k in [2usize, 3, 4] {
        // The super-resolution problem shape: 264 subcarriers × K beams.
        let cols: Vec<Vec<Complex64>> = (0..k)
            .map(|_| (0..264).map(|_| rng.complex_normal()).collect())
            .collect();
        let a = CMatrix::from_columns(&cols);
        let b_vec: Vec<Complex64> = (0..264).map(|_| rng.complex_normal()).collect();
        group.bench_with_input(BenchmarkId::new("264xK", k), &k, |b, _| {
            b.iter(|| ridge_least_squares(&a, &b_vec, 1e-3).unwrap())
        });
    }
    group.finish();
}

fn bench_sinc_dictionary(c: &mut Criterion) {
    c.bench_function("sinc_dictionary_264x3", |b| {
        b.iter(|| sinc_dictionary(264, 400e6, 2.5e-9, &[0.0, 5e-9, 11e-9]))
    });
}

criterion_group!(benches, bench_fft, bench_ridge, bench_sinc_dictionary);
criterion_main!(benches);
