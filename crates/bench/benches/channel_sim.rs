//! Criterion benches for the channel substrate and the simulator's hot
//! loop: image-method path extraction, CSI synthesis, and one simulated
//! slot (what bounds the wall-clock of the Fig. 18 experiment sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::steering::single_beam;
use mmwave_channel::channel::{GeometricChannel, UeReceiver};
use mmwave_channel::environment::Scene;
use mmwave_channel::geom2d::v2;
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::FC_28GHZ;
use mmwave_phy::chanest::ChannelSounder;
use mmwave_phy::grid::ResourceGrid;

fn bench_paths_to(c: &mut Criterion) {
    let scene = Scene::conference_room(FC_28GHZ);
    c.bench_function("scene_paths_to", |b| {
        b.iter(|| scene.paths_to(v2(0.9, 7.0), 180.0))
    });
}

fn bench_csi(c: &mut Criterion) {
    let scene = Scene::conference_room(FC_28GHZ);
    let ch = GeometricChannel::new(scene.paths_to(v2(0.9, 7.0), 180.0), FC_28GHZ);
    let geom = ArrayGeometry::paper_8x8();
    let w = single_beam(&geom, 7.0);
    let freqs = ResourceGrid::paper_400mhz().sounding_freqs(12);
    c.bench_function("csi_264_subcarriers", |b| {
        b.iter(|| ch.csi(&geom, &w, &UeReceiver::Omni, &freqs))
    });
}

fn bench_probe(c: &mut Criterion) {
    let scene = Scene::conference_room(FC_28GHZ);
    let ch = GeometricChannel::new(scene.paths_to(v2(0.9, 7.0), 180.0), FC_28GHZ);
    let geom = ArrayGeometry::paper_8x8();
    let w = single_beam(&geom, 7.0);
    let sounder = ChannelSounder::paper_indoor();
    let mut rng = Rng64::seed(9);
    c.bench_function("sounder_probe", |b| {
        b.iter(|| sounder.probe(&ch, &geom, &w, &UeReceiver::Omni, &mut rng))
    });
}

fn bench_oracle_weights(c: &mut Criterion) {
    let scene = Scene::conference_room(FC_28GHZ);
    let ch = GeometricChannel::new(scene.paths_to(v2(0.9, 7.0), 180.0), FC_28GHZ);
    let geom = ArrayGeometry::paper_8x8();
    let freqs: Vec<f64> = (0..17).map(|i| -190e6 + 23.75e6 * i as f64).collect();
    c.bench_function("wideband_oracle_weights_64el", |b| {
        b.iter(|| ch.wideband_oracle_weights(&geom, &UeReceiver::Omni, &freqs))
    });
}

criterion_group!(
    benches,
    bench_paths_to,
    bench_csi,
    bench_probe,
    bench_oracle_weights
);
criterion_main!(benches);
