//! Criterion benches for mmReliable's core algorithms: the super-resolution
//! per-beam decomposition (paper: solved "in 100 µs"), the two-probe
//! relative-channel math, and one full controller maintenance round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmreliable::frontend::SnapshotFrontEnd;
use mmreliable::probing::relative_from_powers;
use mmreliable::superres::{estimate_per_beam, SuperResConfig};
use mmwave_array::geometry::ArrayGeometry;
use mmwave_channel::channel::{GeometricChannel, UeReceiver};
use mmwave_channel::environment::Scene;
use mmwave_channel::geom2d::v2;
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::FC_28GHZ;
use mmwave_phy::chanest::{ChannelSounder, ProbeObservation};
use std::f64::consts::PI;

fn synth_probe(k: usize) -> ProbeObservation {
    let mut rng = Rng64::seed(7);
    let n = 264;
    let spacing = 12.0 * 120e3;
    let freqs: Vec<f64> = (0..n)
        .map(|i| (i as f64 - (n as f64 - 1.0) / 2.0) * spacing)
        .collect();
    let delays: Vec<f64> = (0..k).map(|i| 25e-9 + 6e-9 * i as f64).collect();
    let csi: Vec<Complex64> = freqs
        .iter()
        .map(|&f| {
            let mut acc = Complex64::ZERO;
            for (i, &tau) in delays.iter().enumerate() {
                acc += Complex64::from_polar(1.0 / (i + 1) as f64, 0.3 * i as f64)
                    * Complex64::cis(-2.0 * PI * f * tau);
            }
            acc + rng.awgn(1e-6)
        })
        .collect();
    ProbeObservation {
        csi,
        freqs_hz: freqs,
        noise_power_mw: 1e-6,
    }
}

fn bench_superres(c: &mut Criterion) {
    let mut group = c.benchmark_group("superres_estimate");
    for k in [2usize, 3] {
        let obs = synth_probe(k);
        let rel: Vec<f64> = (0..k).map(|i| 6.0 * i as f64).collect();
        let cfg = SuperResConfig::default();
        group.bench_with_input(BenchmarkId::new("beams", k), &k, |b, _| {
            b.iter(|| estimate_per_beam(&obs, &rel, &cfg))
        });
    }
    group.finish();
}

fn bench_two_probe_math(c: &mut Criterion) {
    let n = 264;
    let p1 = vec![1.0; n];
    let p2 = vec![0.3; n];
    let p3 = vec![0.8; n];
    let p4 = vec![0.6; n];
    let freqs: Vec<f64> = (0..n).map(|i| i as f64 * 1.44e6 - 190e6).collect();
    c.bench_function("relative_from_powers_264", |b| {
        b.iter(|| relative_from_powers(&p1, &p2, &p3, &p4, &freqs, 6.0))
    });
}

fn bench_maintenance_round(c: &mut Criterion) {
    let scene = Scene::conference_room(FC_28GHZ);
    let paths = scene.paths_to(v2(0.9, 7.0), 180.0);
    let mut fe = SnapshotFrontEnd::new(
        GeometricChannel::new(paths, FC_28GHZ),
        ChannelSounder::paper_indoor(),
        ArrayGeometry::paper_8x8(),
        UeReceiver::Omni,
        Rng64::seed(8),
    );
    let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
    ctl.establish(&mut fe);
    c.bench_function("maintenance_round_quiet", |b| {
        b.iter(|| ctl.maintenance_round(&mut fe))
    });
}

criterion_group!(
    benches,
    bench_superres,
    bench_two_probe_math,
    bench_maintenance_round
);
criterion_main!(benches);
