//! Criterion benches for the phased-array layer: the operations the
//! beam-management FPGA performs per reconfiguration (§5.1: multi-beam
//! weights are "simple addition and multiplication operations").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::multibeam::MultiBeam;
use mmwave_array::pattern::{invert_gain_drop, pattern_cut};
use mmwave_array::quantize::Quantizer;
use mmwave_array::steering::single_beam;

fn bench_single_beam(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_beam_weights");
    for n in [8usize, 64, 256] {
        let geom = ArrayGeometry::ula(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| single_beam(&geom, 23.0))
        });
    }
    group.finish();
}

fn bench_multibeam_synthesis(c: &mut Criterion) {
    let geom = ArrayGeometry::paper_8x8();
    let mb = MultiBeam::new(vec![
        mmwave_array::multibeam::BeamComponent::reference(0.0),
        mmwave_array::multibeam::BeamComponent::new(30.0, 0.6, 1.0),
        mmwave_array::multibeam::BeamComponent::new(-40.0, 0.4, -0.5),
    ]);
    c.bench_function("multibeam_weights_3beam_64el", |b| {
        b.iter(|| mb.weights(&geom))
    });
}

fn bench_quantizer(c: &mut Criterion) {
    let geom = ArrayGeometry::paper_8x8();
    let w = MultiBeam::two_beam(0.0, 30.0, 0.6, 1.0).weights(&geom);
    let q = Quantizer::paper_array();
    c.bench_function("quantize_64el_6bit", |b| b.iter(|| q.quantize(&w)));
}

fn bench_pattern(c: &mut Criterion) {
    let geom = ArrayGeometry::paper_8x8();
    let w = single_beam(&geom, 10.0);
    let angles: Vec<f64> = (0..121).map(|i| i as f64 - 60.0).collect();
    c.bench_function("pattern_cut_121pts", |b| {
        b.iter(|| pattern_cut(&geom, &w, &angles))
    });
    c.bench_function("invert_gain_drop", |b| {
        b.iter(|| invert_gain_drop(&geom, 10.0, 6.0))
    });
}

criterion_group!(
    benches,
    bench_single_beam,
    bench_multibeam_synthesis,
    bench_quantizer,
    bench_pattern
);
criterion_main!(benches);
