//! The common beam-management interface every evaluated scheme implements,
//! plus the adapter that wraps [`MmReliableController`] in it.
//!
//! The simulator calls [`BeamStrategy::on_tick`] at every CSI-RS instant
//! (giving the scheme its chance to probe and adapt) and reads
//! [`BeamStrategy::weights`] for data transmission in between. Probing cost
//! is charged by the front end itself, so schemes that probe more pay more
//! airtime — the throughput-reliability numbers come out of one unified
//! accounting.

use mmreliable::controller::MmReliableController;
use mmreliable::frontend::LinkFrontEnd;
use mmreliable::linkstate::Transition;
use mmwave_array::weights::BeamWeights;
use mmwave_channel::channel::GeometricChannel;
use mmwave_hotpath::hot_path;

/// A beam-management scheme under evaluation.
pub trait BeamStrategy {
    /// Display name (figure labels).
    fn name(&self) -> &'static str;

    /// Called once per maintenance tick. The strategy may issue probes
    /// through `fe` (each consumes airtime) and update its beam state.
    fn on_tick(&mut self, fe: &mut dyn LinkFrontEnd, t_s: f64);

    /// Weights currently used for data transmission.
    fn weights(&self) -> BeamWeights;

    /// Write-into variant of [`BeamStrategy::weights`]: overwrites `out`
    /// with the current data weights, reusing its allocation. The run
    /// loop's per-slot entry point — implementations should avoid heap
    /// allocation here (the default falls back to the allocating getter).
    fn weights_into(&self, out: &mut BeamWeights) {
        out.copy_from(&self.weights());
    }

    /// Genie hook: called each slot with the true channel. Only the oracle
    /// baseline uses it; real schemes must ignore it.
    fn observe_truth(&mut self, _ch: &GeometricChannel) {}

    /// Takes the link lifecycle transitions recorded since the last drain.
    /// Strategies without an explicit state machine return nothing; the
    /// run loop forwards drained transitions into the per-run event log.
    // xtask-allow(hot-path-closure): default for stateless strategies; an empty Vec::new allocates nothing
    fn drain_transitions(&mut self) -> Vec<Transition> {
        Vec::new()
    }

    /// Installs a telemetry tracer. The run loop hands every strategy the
    /// simulator's tracer at run start; instrumented strategies (the
    /// mmReliable adapter) forward it into their controller, everything
    /// else ignores it (the default).
    fn set_tracer(&mut self, _tracer: mmwave_telemetry::Tracer) {}
}

/// [`BeamStrategy`] adapter for the mmReliable controller.
///
/// The controller's beam state only changes inside a maintenance round, so
/// the adapter materializes `current_weights()` (multi-beam synthesis +
/// hardware quantization) once per tick and serves every intervening data
/// slot from the cache — the synthesis would otherwise run thousands of
/// times per second for an answer that changes a hundred times per second.
pub struct MmReliableStrategy {
    /// The wrapped controller.
    pub controller: MmReliableController,
    /// Data weights materialized at the end of the last tick.
    cached: BeamWeights,
    /// Telemetry handle: times the per-tick weight materialization.
    #[cfg(feature = "telemetry")]
    tracer: mmwave_telemetry::Tracer,
}

impl MmReliableStrategy {
    /// Wraps a controller.
    pub fn new(controller: MmReliableController) -> Self {
        let cached = controller.current_weights();
        Self {
            controller,
            cached,
            #[cfg(feature = "telemetry")]
            tracer: mmwave_telemetry::Tracer::disabled(),
        }
    }

    /// Re-materializes the cached data weights from the controller. Called
    /// automatically after each tick; call manually only after driving the
    /// controller directly (outside the [`BeamStrategy`] interface).
    pub fn refresh_weights(&mut self) {
        self.cached = self.controller.current_weights();
    }
}

impl BeamStrategy for MmReliableStrategy {
    fn name(&self) -> &'static str {
        "mmReliable"
    }

    fn on_tick(&mut self, fe: &mut dyn LinkFrontEnd, _t_s: f64) {
        self.controller.maintenance_round(fe);
        // The weight materialization (multi-beam synthesis + hardware
        // quantization) is the other compute-heavy stage of a tick; time
        // it separately from the maintenance round.
        #[cfg(feature = "telemetry")]
        let clock = self.tracer.begin();
        self.refresh_weights();
        #[cfg(feature = "telemetry")]
        self.tracer
            .end(clock, mmwave_telemetry::Stage::WeightSynthesis, fe.now_s());
    }

    // xtask-allow(hot-path-closure): the trait's owned-weights accessor clones by contract; the per-slot loop calls weights_into, which copies into a reused buffer
    fn weights(&self) -> BeamWeights {
        self.cached.clone()
    }

    #[hot_path]
    fn weights_into(&self, out: &mut BeamWeights) {
        out.copy_from(&self.cached);
    }

    fn drain_transitions(&mut self) -> Vec<Transition> {
        self.controller.drain_transitions()
    }

    fn set_tracer(&mut self, tracer: mmwave_telemetry::Tracer) {
        self.controller.set_tracer(tracer.clone());
        #[cfg(feature = "telemetry")]
        {
            self.tracer = tracer;
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmreliable::config::MmReliableConfig;
    use mmreliable::frontend::SnapshotFrontEnd;
    use mmwave_array::geometry::ArrayGeometry;
    use mmwave_channel::channel::UeReceiver;
    use mmwave_channel::environment::Scene;
    use mmwave_channel::geom2d::v2;
    use mmwave_dsp::rng::Rng64;
    use mmwave_dsp::units::FC_28GHZ;
    use mmwave_phy::chanest::ChannelSounder;

    #[test]
    fn adapter_establishes_on_first_tick() {
        let scene = Scene::conference_room(FC_28GHZ);
        let paths = scene.paths_to(v2(0.9, 7.0), 180.0);
        let mut fe = SnapshotFrontEnd::new(
            GeometricChannel::new(paths, FC_28GHZ),
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(1),
        );
        let mut s =
            MmReliableStrategy::new(MmReliableController::new(MmReliableConfig::paper_default()));
        assert_eq!(s.name(), "mmReliable");
        s.on_tick(&mut fe, 0.0);
        assert!(s.controller.multibeam().is_some());
        let w = s.weights();
        assert!((w.norm() - 1.0).abs() < 1e-9);
    }
}
