//! BeamSpy-like baseline (Sur et al., NSDI '16).
//!
//! BeamSpy's insight: after one full training scan, the *spatial channel
//! profile* predicts which alternate beam will work when the current one is
//! blocked — so it can switch without a new scan. It remains a single-beam
//! scheme, acts only after quality degrades, and its stored profile goes
//! stale under mobility; both limitations show up in the paper's Fig. 18.

use crate::strategy::BeamStrategy;
use mmreliable::frontend::{LinkFrontEnd, ProbeKind};
use mmwave_array::codebook::Codebook;
use mmwave_array::steering::single_beam;
use mmwave_array::weights::BeamWeights;
use mmwave_hotpath::hot_path;

/// Configuration of the BeamSpy-like baseline.
#[derive(Clone, Debug)]
pub struct BeamSpyConfig {
    /// Codebook size for the initial full scan.
    pub codebook_beams: usize,
    /// Angular span, degrees.
    pub span_deg: f64,
    /// SNR (dB) below which a switch is attempted.
    pub outage_snr_db: f64,
    /// Minimum angular separation for an "alternate" beam, degrees.
    pub alternate_separation_deg: f64,
    /// Full re-scan when even alternates fail this many times in a row.
    pub fails_before_rescan: usize,
    /// Protocol dead time before a *full* re-scan can run, seconds
    /// (profile-predicted switches are BeamSpy's selling point and stay
    /// instant).
    pub recovery_latency_s: f64,
}

impl Default for BeamSpyConfig {
    fn default() -> Self {
        Self {
            codebook_beams: 64,
            span_deg: 120.0,
            outage_snr_db: 6.0,
            alternate_separation_deg: 10.0,
            fails_before_rescan: 3,
            recovery_latency_s: 0.1,
        }
    }
}

/// BeamSpy-like single-beam management with profile-based fallback.
pub struct BeamSpy {
    cfg: BeamSpyConfig,
    /// Stored spatial profile: (angle, power) from the last full scan.
    profile: Vec<(f64, f64)>,
    current_idx: Option<usize>,
    weights: Option<BeamWeights>,
    consecutive_fails: usize,
    /// Switches performed without a scan (evaluation counter).
    pub profile_switches: usize,
    /// Full scans performed (evaluation counter).
    pub full_scans: usize,
}

impl BeamSpy {
    /// Creates the baseline.
    pub fn new(cfg: BeamSpyConfig) -> Self {
        Self {
            cfg,
            profile: Vec::new(),
            current_idx: None,
            weights: None,
            consecutive_fails: 0,
            profile_switches: 0,
            full_scans: 0,
        }
    }

    /// Current beam angle.
    // xtask-allow(hot-path-panic): current_idx is only ever set by pick_best from an enumerate over profile, so it indexes in bounds
    pub fn beam_angle_deg(&self) -> Option<f64> {
        self.current_idx.map(|i| self.profile[i].0)
    }

    // xtask-allow(hot-path-closure): the exhaustive SSB rescan rebuilds its power profile once per scan event, not per slot
    fn full_scan(&mut self, fe: &mut dyn LinkFrontEnd) {
        let geom = *fe.geometry();
        let cb = Codebook::uniform(&geom, self.cfg.codebook_beams, self.cfg.span_deg);
        self.profile = cb
            .iter()
            .map(|(angle, w)| {
                let obs = fe.probe_kind(w, ProbeKind::Ssb);
                (angle, obs.mean_power_mw())
            })
            .collect();
        self.full_scans += 1;
        self.consecutive_fails = 0;
        self.pick_best(&geom, None);
    }

    /// Picks the strongest profile entry, optionally excluding directions
    /// near `avoid_deg`.
    fn pick_best(&mut self, geom: &mmwave_array::geometry::ArrayGeometry, avoid_deg: Option<f64>) {
        let pick = self
            .profile
            .iter()
            .enumerate()
            .filter(|(_, (a, _))| match avoid_deg {
                Some(av) => (a - av).abs() >= self.cfg.alternate_separation_deg,
                None => true,
            })
            .max_by(|(_, (_, p1)), (_, (_, p2))| p1.total_cmp(p2))
            .map(|(i, _)| i);
        if let Some(i) = pick {
            debug_assert!(i < self.profile.len());
            self.current_idx = Some(i);
            self.weights = Some(single_beam(geom, self.profile[i].0));
        }
    }
}

impl BeamStrategy for BeamSpy {
    fn name(&self) -> &'static str {
        "BeamSpy"
    }

    // xtask-allow(hot-path-panic): the expect is unreachable — the is_none early return three lines up guarantees the weights are Some here
    fn on_tick(&mut self, fe: &mut dyn LinkFrontEnd, _t_s: f64) {
        if self.weights.is_none() {
            self.full_scan(fe);
            return;
        }
        let obs = fe.probe(self.weights.as_ref().expect("trained"));
        if obs.snr_db() >= self.cfg.outage_snr_db {
            self.consecutive_fails = 0;
            return;
        }
        self.consecutive_fails += 1;
        if self.consecutive_fails >= self.cfg.fails_before_rescan {
            fe.wait(self.cfg.recovery_latency_s);
            self.full_scan(fe);
            return;
        }
        // Profile-predicted switch: best direction away from the failing one.
        let geom = *fe.geometry();
        let avoid = self.beam_angle_deg();
        self.pick_best(&geom, avoid);
        self.profile_switches += 1;
    }

    // xtask-allow(hot-path-closure): the trait's owned-weights accessor clones by contract; the per-slot loop calls weights_into, which copies into a reused buffer
    fn weights(&self) -> BeamWeights {
        match &self.weights {
            Some(w) => w.clone(),
            None => BeamWeights::muted(64),
        }
    }

    #[hot_path]
    fn weights_into(&self, out: &mut BeamWeights) {
        match &self.weights {
            Some(w) => out.copy_from(w),
            None => out.set_muted(64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmreliable::frontend::SnapshotFrontEnd;
    use mmwave_array::geometry::ArrayGeometry;
    use mmwave_channel::channel::{GeometricChannel, UeReceiver};
    use mmwave_channel::environment::Scene;
    use mmwave_channel::geom2d::v2;
    use mmwave_dsp::rng::Rng64;
    use mmwave_dsp::units::FC_28GHZ;
    use mmwave_phy::chanest::ChannelSounder;

    fn frontend(seed: u64) -> SnapshotFrontEnd {
        let scene = Scene::conference_room(FC_28GHZ);
        let paths = scene.paths_to(v2(0.9, 7.0), 180.0);
        SnapshotFrontEnd::new(
            GeometricChannel::new(paths, FC_28GHZ),
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(seed),
        )
    }

    #[test]
    fn initial_scan_builds_profile_and_picks_los() {
        let mut fe = frontend(1);
        let mut s = BeamSpy::new(BeamSpyConfig::default());
        s.on_tick(&mut fe, 0.0);
        assert_eq!(s.full_scans, 1);
        assert_eq!(s.profile.len(), 64);
        assert_eq!(fe.probes_used(), 64);
        let angle = s.beam_angle_deg().unwrap();
        assert!((angle - 7.3).abs() < 3.0, "beam at {angle}");
    }

    #[test]
    fn blockage_switch_without_scan() {
        let mut fe = frontend(2);
        let mut s = BeamSpy::new(BeamSpyConfig::default());
        s.on_tick(&mut fe, 0.0);
        let probes_after_scan = fe.probes_used();
        // A blocker in front of the UE occludes both collinear rays: the
        // LOS and the far-wall bounce that returns along almost the same
        // departure angle.
        fe.channel.paths[0].blockage_db = 40.0;
        fe.channel.paths[3].blockage_db = 40.0;
        s.on_tick(&mut fe, 0.0);
        // One maintenance probe, then a profile switch — no new scan.
        assert_eq!(fe.probes_used() - probes_after_scan, 1);
        assert_eq!(s.profile_switches, 1);
        assert_eq!(s.full_scans, 1);
        let angle = s.beam_angle_deg().unwrap();
        assert!(angle.abs() > 10.0, "switched to a reflector: {angle}");
    }

    #[test]
    fn repeated_failure_forces_rescan() {
        let mut fe = frontend(3);
        let mut s = BeamSpy::new(BeamSpyConfig::default());
        s.on_tick(&mut fe, 0.0);
        for p in fe.channel.paths.iter_mut() {
            p.blockage_db = 50.0; // everything dead
        }
        for _ in 0..5 {
            s.on_tick(&mut fe, 0.0);
        }
        assert!(s.full_scans >= 2, "should eventually re-scan");
    }

    #[test]
    fn healthy_link_single_probe() {
        let mut fe = frontend(4);
        let mut s = BeamSpy::new(BeamSpyConfig::default());
        s.on_tick(&mut fe, 0.0);
        let before = fe.probes_used();
        for _ in 0..4 {
            s.on_tick(&mut fe, 0.0);
        }
        assert_eq!(fe.probes_used() - before, 4);
        assert_eq!(s.profile_switches, 0);
    }
}
