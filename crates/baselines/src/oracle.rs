//! Genie channel-dependent beamforming baseline.
//!
//! The oracle knows the per-element channel at every instant (as if every
//! antenna had its own RF chain and infinite sounding bandwidth). In a
//! narrowband channel the optimum is MRT, `w = h*/‖h‖` (paper Eq. 4); over
//! a wide band with multipath delay spread, the best *fixed* analog weights
//! are the principal eigenvector of the band covariance — which this
//! baseline computes. It upper-bounds every realizable fixed-weight scheme
//! and is the "oracle" of Fig. 15d. A quantized variant shows how much the
//! 6-bit hardware costs.

use crate::strategy::BeamStrategy;
use mmreliable::frontend::LinkFrontEnd;
use mmwave_array::quantize::Quantizer;
use mmwave_array::weights::BeamWeights;
use mmwave_channel::channel::{GeometricChannel, UeReceiver};
use mmwave_hotpath::hot_path;

/// Oracle MRT beamformer.
pub struct OracleMrt {
    /// Optional hardware quantizer applied to the genie weights.
    pub quantizer: Quantizer,
    geom: mmwave_array::geometry::ArrayGeometry,
    rx: UeReceiver,
    weights: Option<BeamWeights>,
}

impl OracleMrt {
    /// Ideal (unquantized) oracle.
    pub fn ideal(geom: mmwave_array::geometry::ArrayGeometry, rx: UeReceiver) -> Self {
        Self {
            quantizer: Quantizer::ideal(),
            geom,
            rx,
            weights: None,
        }
    }

    /// Oracle limited by the paper's 6-bit hardware.
    pub fn quantized(geom: mmwave_array::geometry::ArrayGeometry, rx: UeReceiver) -> Self {
        Self {
            quantizer: Quantizer::paper_array(),
            geom,
            rx,
            weights: None,
        }
    }
}

impl BeamStrategy for OracleMrt {
    fn name(&self) -> &'static str {
        "oracle MRT"
    }

    fn on_tick(&mut self, _fe: &mut dyn LinkFrontEnd, _t_s: f64) {
        // The genie needs no probes.
    }

    // xtask-allow(hot-path-closure): the trait's owned-weights accessor clones by contract; the per-slot loop calls weights_into, which copies into a reused buffer
    fn weights(&self) -> BeamWeights {
        match &self.weights {
            Some(w) => w.clone(),
            None => BeamWeights::muted(self.geom.num_elements()),
        }
    }

    #[hot_path]
    fn weights_into(&self, out: &mut BeamWeights) {
        match &self.weights {
            Some(w) => out.copy_from(w),
            None => out.set_muted(self.geom.num_elements()),
        }
    }

    // xtask-allow(hot-path-closure): the genie recomputes its comb and ideal weights only on channel updates, not per slot
    fn observe_truth(&mut self, ch: &GeometricChannel) {
        if ch.paths.is_empty() {
            self.weights = None;
            return;
        }
        // Band-covariance oracle over a coarse comb across 400 MHz.
        let freqs: Vec<f64> = (0..17).map(|i| -190e6 + 23.75e6 * i as f64).collect();
        let ideal = ch.wideband_oracle_weights(&self.geom, &self.rx, &freqs);
        self.weights = Some(self.quantizer.quantize(&ideal));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_array::geometry::ArrayGeometry;
    use mmwave_channel::path::{Path, PathKind};
    use mmwave_dsp::complex::{c64, Complex64};
    use mmwave_dsp::units::FC_28GHZ;

    fn two_path() -> GeometricChannel {
        GeometricChannel::new(
            vec![
                Path::new(0.0, 0.0, c64(1.0, 0.0), 23.0, PathKind::Los),
                Path::new(
                    30.0,
                    0.0,
                    Complex64::from_polar(0.6, 1.0),
                    28.0,
                    PathKind::Reflected { wall: 0 },
                ),
            ],
            FC_28GHZ,
        )
    }

    #[test]
    fn oracle_attains_mrt_bound_narrowband() {
        // Equal path delays → the channel is frequency-flat and the
        // eigen-oracle reduces to MRT exactly.
        let geom = ArrayGeometry::ula(16);
        let mut ch = two_path();
        ch.paths[1].tof_ns = ch.paths[0].tof_ns;
        let mut o = OracleMrt::ideal(geom, UeReceiver::Omni);
        o.observe_truth(&ch);
        let p = ch.received_power(&geom, &o.weights(), &UeReceiver::Omni);
        let bound = ch.optimal_power(&geom, &UeReceiver::Omni);
        assert!((p - bound).abs() < 1e-6 * bound, "{p} vs {bound}");
    }

    #[test]
    fn wideband_oracle_beats_center_mrt_on_band_average() {
        // With 5 ns delay spread, the fixed-weight optimum is the band
        // covariance's eigenvector, not band-center MRT.
        let geom = ArrayGeometry::ula(16);
        let ch = two_path();
        let freqs: Vec<f64> = (0..33).map(|i| -190e6 + 11.875e6 * i as f64).collect();
        let avg = |w: &BeamWeights| -> f64 {
            let csi = ch.csi(&geom, w, &UeReceiver::Omni, &freqs);
            csi.iter().map(|v| v.norm_sqr()).sum::<f64>() / csi.len() as f64
        };
        let eig = ch.wideband_oracle_weights(&geom, &UeReceiver::Omni, &freqs);
        let mrt = ch.optimal_weights(&geom, &UeReceiver::Omni);
        assert!(
            avg(&eig) >= avg(&mrt) * (1.0 - 1e-9),
            "{} vs {}",
            avg(&eig),
            avg(&mrt)
        );
        // And beats the single beam on the strongest path.
        let single = mmwave_array::steering::single_beam(&geom, 0.0);
        assert!(avg(&eig) >= avg(&single) * (1.0 - 1e-9));
    }

    #[test]
    fn quantized_oracle_slightly_below_ideal() {
        let geom = ArrayGeometry::ula(16);
        let ch = two_path();
        let mut ideal = OracleMrt::ideal(geom, UeReceiver::Omni);
        let mut quant = OracleMrt::quantized(geom, UeReceiver::Omni);
        ideal.observe_truth(&ch);
        quant.observe_truth(&ch);
        let pi = ch.received_power(&geom, &ideal.weights(), &UeReceiver::Omni);
        let pq = ch.received_power(&geom, &quant.weights(), &UeReceiver::Omni);
        assert!(pq <= pi);
        assert!(
            pq > 0.9 * pi,
            "6-bit quantization loss too large: {pq} vs {pi}"
        );
    }

    #[test]
    fn empty_channel_mutes() {
        let geom = ArrayGeometry::ula(8);
        let mut o = OracleMrt::ideal(geom, UeReceiver::Omni);
        o.observe_truth(&GeometricChannel::new(Vec::new(), FC_28GHZ));
        assert_eq!(o.weights().norm(), 0.0);
    }
}
