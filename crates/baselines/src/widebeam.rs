//! Wide-beam baseline (Fig. 18b's "widebeam").
//!
//! Instead of tracking, this scheme broadens its beam by driving only a
//! subset of azimuth elements, so moderate user motion stays inside the
//! main lobe. The price is array gain — roughly `10·log₁₀(N/active)` dB —
//! which costs both SNR headroom (blockage margin) and throughput.

use crate::strategy::BeamStrategy;
use mmreliable::frontend::{LinkFrontEnd, ProbeKind};
use mmwave_array::codebook::Codebook;
use mmwave_array::steering::wide_beam;
use mmwave_array::weights::BeamWeights;
use mmwave_hotpath::hot_path;

/// Configuration of the wide-beam baseline.
#[derive(Clone, Debug)]
pub struct WideBeamConfig {
    /// Active azimuth elements (out of the array's azimuth count).
    pub active_elements: usize,
    /// Codebook size for the initial scan.
    pub codebook_beams: usize,
    /// Angular span, degrees.
    pub span_deg: f64,
    /// Re-scan when SNR drops below this for `fails_before_rescan` ticks.
    pub outage_snr_db: f64,
    /// Consecutive failures before a re-scan.
    pub fails_before_rescan: usize,
}

impl Default for WideBeamConfig {
    fn default() -> Self {
        Self {
            active_elements: 4,
            codebook_beams: 16,
            span_deg: 120.0,
            outage_snr_db: 6.0,
            // The wide-beam philosophy is "no reaction": the broad lobe is
            // supposed to absorb change. Effectively never rescan within an
            // experiment (the paper's widebeam baseline, Fig. 18b).
            fails_before_rescan: 1000,
        }
    }
}

/// Wide-beam, low-maintenance beam management.
pub struct WideBeamStrategy {
    cfg: WideBeamConfig,
    angle_deg: Option<f64>,
    weights: Option<BeamWeights>,
    consecutive_fails: usize,
    /// Scans performed (evaluation counter).
    pub scans: usize,
}

impl WideBeamStrategy {
    /// Creates the baseline.
    pub fn new(cfg: WideBeamConfig) -> Self {
        Self {
            cfg,
            angle_deg: None,
            weights: None,
            consecutive_fails: 0,
            scans: 0,
        }
    }

    /// Current pointing angle.
    pub fn angle_deg(&self) -> Option<f64> {
        self.angle_deg
    }

    fn scan(&mut self, fe: &mut dyn LinkFrontEnd) {
        let geom = *fe.geometry();
        // A coarse scan with the wide beam itself (its lobes are broad, so
        // few probes suffice).
        let mut best: Option<(f64, f64)> = None;
        let cb = Codebook::uniform(&geom, self.cfg.codebook_beams, self.cfg.span_deg);
        for i in 0..cb.len() {
            let angle = cb.angle_deg(i);
            let w = wide_beam(&geom, angle, self.cfg.active_elements);
            let obs = fe.probe_kind(&w, ProbeKind::Ssb);
            let p = obs.mean_power_mw();
            if best.is_none_or(|(bp, _)| p > bp) {
                best = Some((p, angle));
            }
        }
        if let Some((p, angle)) = best {
            if p > 0.0 {
                self.angle_deg = Some(angle);
                self.weights = Some(wide_beam(&geom, angle, self.cfg.active_elements));
            }
        }
        self.scans += 1;
        self.consecutive_fails = 0;
    }
}

impl BeamStrategy for WideBeamStrategy {
    fn name(&self) -> &'static str {
        "widebeam"
    }

    // xtask-allow(hot-path-panic): the expect is unreachable — the is_none early return three lines up guarantees the weights are Some here
    fn on_tick(&mut self, fe: &mut dyn LinkFrontEnd, _t_s: f64) {
        if self.weights.is_none() {
            self.scan(fe);
            return;
        }
        let obs = fe.probe(self.weights.as_ref().expect("trained"));
        if obs.snr_db() < self.cfg.outage_snr_db {
            self.consecutive_fails += 1;
            if self.consecutive_fails >= self.cfg.fails_before_rescan {
                self.scan(fe);
            }
        } else {
            self.consecutive_fails = 0;
        }
    }

    // xtask-allow(hot-path-closure): the trait's owned-weights accessor clones by contract; the per-slot loop calls weights_into, which copies into a reused buffer
    fn weights(&self) -> BeamWeights {
        match &self.weights {
            Some(w) => w.clone(),
            None => BeamWeights::muted(64),
        }
    }

    #[hot_path]
    fn weights_into(&self, out: &mut BeamWeights) {
        match &self.weights {
            Some(w) => out.copy_from(w),
            None => out.set_muted(64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmreliable::frontend::SnapshotFrontEnd;
    use mmwave_array::geometry::ArrayGeometry;
    use mmwave_array::pattern::power_gain_db;
    use mmwave_array::steering::single_beam;
    use mmwave_channel::channel::{GeometricChannel, UeReceiver};
    use mmwave_channel::environment::Scene;
    use mmwave_channel::geom2d::v2;
    use mmwave_dsp::rng::Rng64;
    use mmwave_dsp::units::FC_28GHZ;
    use mmwave_phy::chanest::ChannelSounder;

    fn frontend(seed: u64) -> SnapshotFrontEnd {
        let scene = Scene::conference_room(FC_28GHZ);
        let paths = scene.paths_to(v2(0.9, 7.0), 180.0);
        SnapshotFrontEnd::new(
            GeometricChannel::new(paths, FC_28GHZ),
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(seed),
        )
    }

    #[test]
    fn trains_and_points_near_los() {
        let mut fe = frontend(1);
        let mut s = WideBeamStrategy::new(WideBeamConfig::default());
        s.on_tick(&mut fe, 0.0);
        assert_eq!(s.scans, 1);
        let angle = s.angle_deg().unwrap();
        assert!((angle - 7.3).abs() < 10.0, "beam at {angle}");
    }

    #[test]
    fn wide_beam_has_lower_peak_gain() {
        let g = ArrayGeometry::paper_8x8();
        let wide = wide_beam(&g, 0.0, 2);
        let narrow = single_beam(&g, 0.0);
        let gw = power_gain_db(&g, &wide, 0.0);
        let gn = power_gain_db(&g, &narrow, 0.0);
        assert!(gn - gw > 4.0, "narrow {gn} vs wide {gw}");
    }

    #[test]
    fn tolerates_misalignment_without_action() {
        let mut fe = frontend(2);
        let mut s = WideBeamStrategy::new(WideBeamConfig::default());
        s.on_tick(&mut fe, 0.0);
        // Move all paths by 8° — well outside a narrow beam's lobe but
        // inside the wide one.
        for p in fe.channel.paths.iter_mut() {
            p.aod_deg += 8.0;
        }
        for _ in 0..4 {
            s.on_tick(&mut fe, 0.0);
        }
        assert_eq!(s.scans, 1, "no re-scan needed under moderate motion");
    }

    #[test]
    fn deep_outage_eventually_rescans_when_configured() {
        let mut fe = frontend(3);
        let cfg = WideBeamConfig {
            fails_before_rescan: 4,
            ..WideBeamConfig::default()
        };
        let mut s = WideBeamStrategy::new(cfg);
        s.on_tick(&mut fe, 0.0);
        for p in fe.channel.paths.iter_mut() {
            p.blockage_db = 50.0;
        }
        for _ in 0..6 {
            s.on_tick(&mut fe, 0.0);
        }
        assert!(s.scans >= 2);
    }

    #[test]
    fn default_widebeam_is_passive() {
        let mut fe = frontend(4);
        let mut s = WideBeamStrategy::new(WideBeamConfig::default());
        s.on_tick(&mut fe, 0.0);
        for p in fe.channel.paths.iter_mut() {
            p.blockage_db = 50.0;
        }
        for _ in 0..10 {
            s.on_tick(&mut fe, 0.0);
        }
        assert_eq!(s.scans, 1, "passive widebeam never rescans");
    }
}
