//! Vanilla 5G-NR periodic beam management (Fig. 18d's overhead subject).
//!
//! Standard NR beam management without mmReliable's maintenance layer:
//! every SSB burst period (default 20 ms), the base station re-runs beam
//! training — we grant it the *best known* fast scan (2·log₂N SSB probes,
//! Hassanieh-style) rather than the exhaustive sweep, matching the paper's
//! generous accounting — and points a single beam at the winner. Between
//! scans nothing adapts.

use crate::strategy::BeamStrategy;
use mmreliable::frontend::{LinkFrontEnd, ProbeKind};
use mmwave_array::codebook::Codebook;
use mmwave_array::steering::single_beam;
use mmwave_array::weights::BeamWeights;
use mmwave_hotpath::hot_path;

/// Configuration of the periodic-NR baseline.
#[derive(Clone, Debug)]
pub struct NrPeriodicConfig {
    /// SSB burst period, seconds (NR default 20 ms).
    pub scan_period_s: f64,
    /// Number of antennas (sets the fast scan's probe budget).
    pub n_antennas: usize,
    /// Codebook size the scan samples from.
    pub codebook_beams: usize,
    /// Angular span, degrees.
    pub span_deg: f64,
}

impl Default for NrPeriodicConfig {
    fn default() -> Self {
        Self {
            scan_period_s: 20e-3,
            n_antennas: 64,
            codebook_beams: 64,
            span_deg: 120.0,
        }
    }
}

/// Periodically re-scanning single-beam NR baseline.
pub struct NrPeriodic {
    cfg: NrPeriodicConfig,
    weights: Option<BeamWeights>,
    next_scan_s: f64,
    /// Scans performed (evaluation counter).
    pub scans: usize,
    /// Current beam angle.
    pub angle_deg: Option<f64>,
}

impl NrPeriodic {
    /// Creates the baseline.
    pub fn new(cfg: NrPeriodicConfig) -> Self {
        Self {
            cfg,
            weights: None,
            next_scan_s: 0.0,
            scans: 0,
            angle_deg: None,
        }
    }

    fn scan(&mut self, fe: &mut dyn LinkFrontEnd) {
        let geom = *fe.geometry();
        let n_probes = (2.0 * (self.cfg.n_antennas as f64).log2().ceil()) as usize;
        let cb = Codebook::uniform(&geom, self.cfg.codebook_beams, self.cfg.span_deg);
        // Sample exactly n_probes beams spread evenly over the codebook.
        let n_probes = n_probes.clamp(1, cb.len());
        let mut best: Option<(f64, f64)> = None;
        for k in 0..n_probes {
            let i = if n_probes == 1 {
                0
            } else {
                k * (cb.len() - 1) / (n_probes - 1)
            };
            let obs = fe.probe_kind(cb.beam(i), ProbeKind::Ssb);
            let p = obs.mean_power_mw();
            if best.is_none_or(|(bp, _)| p > bp) {
                best = Some((p, cb.angle_deg(i)));
            }
        }
        if let Some((p, angle)) = best {
            if p > 0.0 {
                self.angle_deg = Some(angle);
                self.weights = Some(single_beam(&geom, angle));
            }
        }
        self.scans += 1;
    }
}

impl BeamStrategy for NrPeriodic {
    fn name(&self) -> &'static str {
        "5G NR periodic"
    }

    fn on_tick(&mut self, fe: &mut dyn LinkFrontEnd, t_s: f64) {
        if t_s >= self.next_scan_s || self.weights.is_none() {
            self.scan(fe);
            self.next_scan_s = t_s + self.cfg.scan_period_s;
        }
    }

    // xtask-allow(hot-path-closure): the trait's owned-weights accessor clones by contract; the per-slot loop calls weights_into, which copies into a reused buffer
    fn weights(&self) -> BeamWeights {
        match &self.weights {
            Some(w) => w.clone(),
            None => BeamWeights::muted(64),
        }
    }

    #[hot_path]
    fn weights_into(&self, out: &mut BeamWeights) {
        match &self.weights {
            Some(w) => out.copy_from(w),
            None => out.set_muted(64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmreliable::frontend::SnapshotFrontEnd;
    use mmwave_array::geometry::ArrayGeometry;
    use mmwave_channel::channel::{GeometricChannel, UeReceiver};
    use mmwave_channel::environment::Scene;
    use mmwave_channel::geom2d::v2;
    use mmwave_dsp::rng::Rng64;
    use mmwave_dsp::units::FC_28GHZ;
    use mmwave_phy::chanest::ChannelSounder;

    fn frontend(seed: u64) -> SnapshotFrontEnd {
        let scene = Scene::conference_room(FC_28GHZ);
        let paths = scene.paths_to(v2(0.9, 7.0), 180.0);
        SnapshotFrontEnd::new(
            GeometricChannel::new(paths, FC_28GHZ),
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(seed),
        )
    }

    #[test]
    fn scans_on_schedule() {
        let mut fe = frontend(1);
        let mut s = NrPeriodic::new(NrPeriodicConfig::default());
        s.on_tick(&mut fe, 0.0);
        assert_eq!(s.scans, 1);
        // Ticks inside the same period do nothing.
        s.on_tick(&mut fe, 5e-3);
        s.on_tick(&mut fe, 15e-3);
        assert_eq!(s.scans, 1);
        // Past the period boundary → scan.
        s.on_tick(&mut fe, 21e-3);
        assert_eq!(s.scans, 2);
    }

    #[test]
    fn paper_overhead_per_scan() {
        // 64 antennas → 12 SSB probes → 6 ms per scan (Fig. 18d).
        let mut fe = frontend(2);
        let mut s = NrPeriodic::new(NrPeriodicConfig::default());
        s.on_tick(&mut fe, 0.0);
        assert!((fe.probe_airtime_s() - 6e-3).abs() < 1e-9);
        // Against a 20 ms period that is a 30% airtime overhead —
        // the paper's point about vanilla NR.
        let overhead = fe.probe_airtime_s() / 20e-3;
        assert!(overhead > 0.25, "overhead {overhead}");
    }

    #[test]
    fn eight_antenna_scan_costs_3ms() {
        let mut fe = frontend(3);
        let cfg = NrPeriodicConfig {
            n_antennas: 8,
            ..NrPeriodicConfig::default()
        };
        let mut s = NrPeriodic::new(cfg);
        s.on_tick(&mut fe, 0.0);
        assert!((fe.probe_airtime_s() - 3e-3).abs() < 1e-9);
    }

    #[test]
    fn tracks_slow_motion_at_scan_cadence() {
        let mut fe = frontend(4);
        let mut s = NrPeriodic::new(NrPeriodicConfig::default());
        s.on_tick(&mut fe, 0.0);
        let a0 = s.angle_deg.unwrap();
        for p in fe.channel.paths.iter_mut() {
            p.aod_deg += 10.0;
        }
        s.on_tick(&mut fe, 25e-3);
        let a1 = s.angle_deg.unwrap();
        assert!(a1 > a0 + 5.0, "rescan should follow the user: {a0} → {a1}");
    }
}
