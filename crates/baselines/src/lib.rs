//! # mmwave-baselines
//!
//! The comparison systems the paper evaluates against (§6.2), all driven
//! through the same [`strategy::BeamStrategy`] interface as mmReliable so
//! the simulator treats every scheme identically:
//!
//! - [`single_reactive`] — single best beam; on outage, a reactive fast
//!   beam-training (Hassanieh et al. '18 style) re-establishes the link.
//!   The paper's main "Reactive baseline".
//! - [`beamspy`] — BeamSpy-like (Sur et al., NSDI '16): keeps the spatial
//!   profile from training and, on blockage, switches to the best
//!   *alternate* direction without a new scan.
//! - [`widebeam`] — a broadened beam that trades array gain for
//!   misalignment tolerance (the "widebeam" baseline of Fig. 18b).
//! - [`nr_periodic`] — vanilla 5G NR beam management: periodic SSB
//!   re-scans at the standard 20 ms cadence (Fig. 18d's overhead subject).
//! - [`oracle`] — genie maximum-ratio transmission from per-element channel
//!   truth (the upper bound of Fig. 15d).
//! - [`strategy`] — the common trait + the mmReliable adapter.

#![warn(missing_docs)]
pub mod beamspy;
pub mod nr_periodic;
pub mod oracle;
pub mod single_reactive;
pub mod strategy;
pub mod widebeam;

pub use beamspy::BeamSpy;
pub use nr_periodic::NrPeriodic;
pub use oracle::OracleMrt;
pub use single_reactive::SingleBeamReactive;
pub use strategy::{BeamStrategy, MmReliableStrategy};
pub use widebeam::WideBeamStrategy;
