//! The single-beam reactive baseline (paper §6.2's "Reactive baseline",
//! modeled on Hassanieh et al., SIGCOMM '18).
//!
//! One directional beam toward the best trained direction. Nothing is done
//! proactively: only when the measured SNR falls below the outage threshold
//! does the scheme react, by running a fast beam training (probe count
//! ∝ 2·log₂N, each an SSB) and jumping to the new best direction. The scan
//! itself costs airtime during which the link carries no data — the heart
//! of why reactive schemes lose reliability.

use crate::strategy::BeamStrategy;
use mmreliable::frontend::{LinkFrontEnd, ProbeKind};
use mmwave_array::codebook::Codebook;
use mmwave_array::steering::single_beam;
use mmwave_array::weights::BeamWeights;
use mmwave_hotpath::hot_path;
use mmwave_phy::chanest::ProbeObservation;

/// Configuration of the reactive baseline.
#[derive(Clone, Debug)]
pub struct ReactiveConfig {
    /// Beams in the full codebook (the fast scan samples it).
    pub codebook_beams: usize,
    /// Angular span of the codebook, degrees.
    pub span_deg: f64,
    /// SNR (dB) below which a re-scan is triggered.
    pub outage_snr_db: f64,
    /// Number of antennas (determines the fast scan's probe count).
    pub n_antennas: usize,
    /// Minimum ticks between consecutive re-scans (hysteresis).
    pub rescan_holdoff_ticks: usize,
    /// Consecutive bad measurements before declaring beam failure
    /// (3GPP-style beam-failure detection).
    pub detection_ticks: usize,
    /// Protocol dead time of the beam-failure-recovery procedure before
    /// the re-scan can run (waiting for SSB/RACH opportunities), seconds.
    pub recovery_latency_s: f64,
}

impl Default for ReactiveConfig {
    fn default() -> Self {
        Self {
            codebook_beams: 64,
            span_deg: 120.0,
            outage_snr_db: 6.0,
            n_antennas: 64,
            rescan_holdoff_ticks: 2,
            detection_ticks: 3,
            recovery_latency_s: 0.1,
        }
    }
}

/// Single-beam reactive beam management.
pub struct SingleBeamReactive {
    cfg: ReactiveConfig,
    beam_angle_deg: Option<f64>,
    weights: Option<BeamWeights>,
    ticks_since_scan: usize,
    bad_ticks: usize,
    /// Scratch for the per-tick maintenance probe: reused across ticks so
    /// steady-state maintenance is allocation-free (DESIGN.md §8).
    obs: ProbeObservation,
    /// Number of re-trainings triggered (exposed for evaluation).
    pub rescans: usize,
}

impl SingleBeamReactive {
    /// Creates the baseline.
    pub fn new(cfg: ReactiveConfig) -> Self {
        Self {
            cfg,
            beam_angle_deg: None,
            weights: None,
            ticks_since_scan: usize::MAX / 2,
            bad_ticks: 0,
            obs: ProbeObservation::empty(),
            rescans: 0,
        }
    }

    /// Current beam angle, if trained.
    pub fn beam_angle_deg(&self) -> Option<f64> {
        self.beam_angle_deg
    }

    /// Fast beam training: probes a decimated codebook with
    /// `2·ceil(log₂ N)` SSBs and picks the strongest response.
    fn fast_scan(&mut self, fe: &mut dyn LinkFrontEnd) {
        let geom = *fe.geometry();
        let n_probes = (2.0 * (self.cfg.n_antennas as f64).log2().ceil()) as usize;
        let cb = Codebook::uniform(&geom, self.cfg.codebook_beams, self.cfg.span_deg);
        // Sample exactly n_probes beams spread evenly over the codebook.
        let n_probes = n_probes.clamp(1, cb.len());
        let mut best: Option<(f64, f64)> = None; // (power, angle)
        for k in 0..n_probes {
            let i = if n_probes == 1 {
                0
            } else {
                k * (cb.len() - 1) / (n_probes - 1)
            };
            let obs = fe.probe_kind(cb.beam(i), ProbeKind::Ssb);
            let p = obs.mean_power_mw();
            if best.is_none_or(|(bp, _)| p > bp) {
                best = Some((p, cb.angle_deg(i)));
            }
        }
        if let Some((power, angle)) = best {
            if power > 0.0 {
                self.beam_angle_deg = Some(angle);
                self.weights = Some(single_beam(&geom, angle));
            }
        }
        self.rescans += 1;
        self.ticks_since_scan = 0;
    }
}

impl BeamStrategy for SingleBeamReactive {
    fn name(&self) -> &'static str {
        "single-beam reactive"
    }

    // xtask-allow(hot-path-panic): the expect is unreachable — the is_none early return three lines up guarantees the weights are Some here
    fn on_tick(&mut self, fe: &mut dyn LinkFrontEnd, _t_s: f64) {
        self.ticks_since_scan = self.ticks_since_scan.saturating_add(1);
        if self.weights.is_none() {
            self.fast_scan(fe);
            return;
        }
        // One maintenance probe to measure link quality, into reused
        // scratch — this runs every tick for the life of the link.
        fe.probe_into(self.weights.as_ref().expect("trained"), &mut self.obs);
        if self.obs.snr_db() < self.cfg.outage_snr_db {
            self.bad_ticks += 1;
        } else {
            self.bad_ticks = 0;
        }
        // Beam-failure detection + RACH-based recovery, then the scan.
        if self.bad_ticks >= self.cfg.detection_ticks
            && self.ticks_since_scan > self.cfg.rescan_holdoff_ticks
        {
            fe.wait(self.cfg.recovery_latency_s);
            self.fast_scan(fe);
            self.bad_ticks = 0;
        }
    }

    // xtask-allow(hot-path-closure): the trait's owned-weights accessor clones by contract; the per-slot loop calls weights_into, which copies into a reused buffer
    fn weights(&self) -> BeamWeights {
        match &self.weights {
            Some(w) => w.clone(),
            None => BeamWeights::muted(64),
        }
    }

    #[hot_path]
    fn weights_into(&self, out: &mut BeamWeights) {
        match &self.weights {
            Some(w) => out.copy_from(w),
            None => out.set_muted(64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmreliable::frontend::SnapshotFrontEnd;
    use mmwave_array::geometry::ArrayGeometry;
    use mmwave_channel::channel::{GeometricChannel, UeReceiver};
    use mmwave_channel::environment::Scene;
    use mmwave_channel::geom2d::v2;
    use mmwave_dsp::rng::Rng64;
    use mmwave_dsp::units::FC_28GHZ;
    use mmwave_phy::chanest::ChannelSounder;

    fn frontend(seed: u64) -> SnapshotFrontEnd {
        let scene = Scene::conference_room(FC_28GHZ);
        let paths = scene.paths_to(v2(0.9, 7.0), 180.0);
        SnapshotFrontEnd::new(
            GeometricChannel::new(paths, FC_28GHZ),
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(seed),
        )
    }

    #[test]
    fn first_tick_trains_to_los() {
        let mut fe = frontend(1);
        let mut s = SingleBeamReactive::new(ReactiveConfig::default());
        s.on_tick(&mut fe, 0.0);
        let angle = s.beam_angle_deg().expect("trained");
        // LOS is at 7.3°; the sparse fast scan may land a few degrees off.
        assert!((angle - 7.3).abs() < 8.0, "beam at {angle}");
        assert_eq!(s.rescans, 1);
    }

    #[test]
    fn fast_scan_uses_log_probes() {
        let mut fe = frontend(2);
        let mut s = SingleBeamReactive::new(ReactiveConfig::default());
        s.on_tick(&mut fe, 0.0);
        // 2·log2(64) = 12 SSB probes for the initial scan.
        assert_eq!(fe.probes_used(), 12);
        assert!((fe.probe_airtime_s() - 12.0 * 0.5e-3).abs() < 1e-12);
    }

    #[test]
    fn healthy_link_costs_one_probe_per_tick() {
        let mut fe = frontend(3);
        let mut s = SingleBeamReactive::new(ReactiveConfig::default());
        s.on_tick(&mut fe, 0.0);
        let before = fe.probes_used();
        for _ in 0..5 {
            s.on_tick(&mut fe, 0.0);
        }
        assert_eq!(fe.probes_used() - before, 5);
        assert_eq!(s.rescans, 1);
    }

    #[test]
    fn outage_triggers_rescan() {
        let mut fe = frontend(4);
        let mut s = SingleBeamReactive::new(ReactiveConfig::default());
        s.on_tick(&mut fe, 0.0);
        s.on_tick(&mut fe, 0.0);
        s.on_tick(&mut fe, 0.0);
        // Kill every path (deep blockage).
        for p in fe.channel.paths.iter_mut() {
            p.blockage_db = 40.0;
        }
        let rescans_before = s.rescans;
        // Beam-failure detection needs `detection_ticks` consecutive bad
        // measurements before the recovery procedure runs.
        for _ in 0..ReactiveConfig::default().detection_ticks {
            s.on_tick(&mut fe, 0.0);
        }
        assert_eq!(s.rescans, rescans_before + 1, "should react to outage");
    }

    #[test]
    fn reacts_to_los_blockage_by_switching_path() {
        let mut fe = frontend(5);
        let mut s = SingleBeamReactive::new(ReactiveConfig::default());
        s.on_tick(&mut fe, 0.0);
        s.on_tick(&mut fe, 0.0);
        s.on_tick(&mut fe, 0.0);
        let before = s.beam_angle_deg().unwrap();
        // Block the LOS and the collinear far-wall bounce.
        fe.channel.paths[0].blockage_db = 40.0;
        fe.channel.paths[3].blockage_db = 40.0;
        for _ in 0..4 {
            s.on_tick(&mut fe, 0.0);
        }
        let after = s.beam_angle_deg().unwrap();
        assert!(
            (after - before).abs() > 10.0,
            "should switch to a reflector: {before} → {after}"
        );
    }

    #[test]
    fn untrained_weights_are_muted() {
        let s = SingleBeamReactive::new(ReactiveConfig::default());
        assert_eq!(s.weights().norm(), 0.0);
    }
}
