//! Per-beam blockage detection and power re-purposing (paper §4.1).
//!
//! Blockage and mobility are distinguished by *rate*: a human blocker
//! crushes a beam's amplitude ~10 dB within ~10 OFDM symbols — effectively
//! instantaneous at maintenance-probe cadence — while mobility walks the
//! power down the beam pattern gradually. On detection, the blocked beam's
//! share of transmit power is re-purposed to the surviving beams (the
//! multi-beam's TRP renormalization does this automatically once the
//! component amplitude goes to zero), and the beam is periodically
//! re-probed for recovery.

/// Classification of one beam's power change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BeamEvent {
    /// No significant change.
    Stable,
    /// Gradual decay — attribute to user mobility, hand to the tracker.
    Mobility,
    /// Sudden deep drop — attribute to blockage.
    Blocked,
    /// Power returned near its baseline on a blocked beam.
    Recovered,
}

/// Blockage/mobility classifier for one beam.
#[derive(Clone, Debug)]
pub struct BlockageDetector {
    /// Drop-per-round faster than this (dB) classifies as blockage.
    pub rate_threshold_db: f64,
    /// Drops below this (dB, vs baseline) are "stable" noise.
    pub stable_margin_db: f64,
    /// A blocked beam recovering to within this of baseline is recovered.
    pub recovery_margin_db: f64,
    blocked: bool,
}

impl BlockageDetector {
    /// Creates a detector with the given thresholds.
    pub fn new(rate_threshold_db: f64, stable_margin_db: f64, recovery_margin_db: f64) -> Self {
        assert!(rate_threshold_db > 0.0 && stable_margin_db >= 0.0);
        Self {
            rate_threshold_db,
            stable_margin_db,
            recovery_margin_db,
            blocked: false,
        }
    }

    /// The paper's defaults (ratioed to maintenance cadence).
    pub fn paper_default() -> Self {
        Self::new(8.0, 1.5, 6.0)
    }

    /// Whether the beam is currently considered blocked.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    /// Classifies this round's measurement.
    ///
    /// * `delta_db` — change since the previous round (negative = falling),
    /// * `drop_db` — total drop vs the aligned baseline (≥ 0).
    pub fn classify(&mut self, delta_db: f64, drop_db: f64) -> BeamEvent {
        if self.blocked {
            if drop_db <= self.recovery_margin_db {
                self.blocked = false;
                return BeamEvent::Recovered;
            }
            return BeamEvent::Blocked;
        }
        // Sudden crash — or already deeply faded (missed the edge).
        if -delta_db >= self.rate_threshold_db
            || drop_db >= self.rate_threshold_db + self.stable_margin_db + 4.0
        {
            self.blocked = true;
            return BeamEvent::Blocked;
        }
        if drop_db > self.stable_margin_db {
            return BeamEvent::Mobility;
        }
        BeamEvent::Stable
    }

    /// Forces the blocked flag (used when a recovery probe readmits a beam
    /// or training resets the state).
    pub fn set_blocked(&mut self, blocked: bool) {
        self.blocked = blocked;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_when_quiet() {
        let mut d = BlockageDetector::paper_default();
        assert_eq!(d.classify(0.2, 0.5), BeamEvent::Stable);
        assert_eq!(d.classify(-0.5, 1.0), BeamEvent::Stable);
        assert!(!d.is_blocked());
    }

    #[test]
    fn gradual_decay_is_mobility() {
        let mut d = BlockageDetector::paper_default();
        assert_eq!(d.classify(-1.5, 3.0), BeamEvent::Mobility);
        assert_eq!(d.classify(-2.0, 5.0), BeamEvent::Mobility);
        assert!(!d.is_blocked());
    }

    #[test]
    fn crash_is_blockage() {
        let mut d = BlockageDetector::paper_default();
        assert_eq!(d.classify(-12.0, 12.0), BeamEvent::Blocked);
        assert!(d.is_blocked());
        // Stays blocked while deep.
        assert_eq!(d.classify(0.0, 12.0), BeamEvent::Blocked);
    }

    #[test]
    fn deep_fade_without_edge_still_detected() {
        // If the probe cadence missed the falling edge, the absolute depth
        // triggers detection.
        let mut d = BlockageDetector::paper_default();
        assert_eq!(d.classify(-3.0, 20.0), BeamEvent::Blocked);
    }

    #[test]
    fn recovery_cycle() {
        let mut d = BlockageDetector::paper_default();
        d.classify(-15.0, 15.0);
        assert!(d.is_blocked());
        assert_eq!(d.classify(10.0, 4.0), BeamEvent::Recovered);
        assert!(!d.is_blocked());
        // Back to normal operation afterwards.
        assert_eq!(d.classify(0.0, 0.5), BeamEvent::Stable);
    }

    #[test]
    fn mobility_threshold_boundary() {
        let mut d = BlockageDetector::paper_default();
        assert_eq!(d.classify(-1.0, 1.5), BeamEvent::Stable);
        assert_eq!(d.classify(-1.0, 1.6), BeamEvent::Mobility);
    }

    #[test]
    fn set_blocked_override() {
        let mut d = BlockageDetector::paper_default();
        d.set_blocked(true);
        assert!(d.is_blocked());
        d.set_blocked(false);
        assert!(!d.is_blocked());
    }
}
