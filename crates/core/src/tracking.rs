//! Proactive per-beam mobility tracking (paper §4.2, Eq. 18–20).
//!
//! Each beam's received power is a sample of the transmit pattern
//! `G_T(φ_k + φ_k(t))`; as the user moves, the power walks down the main
//! lobe. The tracker smooths the noisy per-beam power sequence (EWMA with
//! forgetting factor + short quadratic fit, §6.1), converts the drop from
//! the aligned baseline into `|Δθ|` through the inverse pattern, and leaves
//! the ± ambiguity to one extra probe (handled by the controller).

use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::pattern::invert_gain_drop;
use mmwave_dsp::fit::polyfit;
use mmwave_dsp::stats::Ewma;

/// Per-beam tracking state.
#[derive(Clone, Debug)]
pub struct BeamTracker {
    /// Beam's current steering angle, degrees.
    pub angle_deg: f64,
    /// Power (dB) measured right after the last (re-)alignment — the
    /// reference for drop computation.
    pub baseline_db: f64,
    /// EWMA smoother over raw per-beam powers (dB).
    ewma: Ewma,
    /// Short history of smoothed powers for the quadratic fit.
    history: Vec<f64>,
    /// Maximum history length.
    window: usize,
}

/// One tracking update's outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrackerUpdate {
    /// Smoothed power, dB.
    pub smoothed_db: f64,
    /// Drop relative to the post-alignment baseline, dB (≥ 0 when degraded).
    pub drop_db: f64,
    /// Instantaneous change vs the previous round, dB (negative = falling).
    pub delta_db: f64,
    /// Estimated angular deviation magnitude, degrees, when the drop is
    /// attributable to main-lobe misalignment.
    pub deviation_deg: Option<f64>,
}

impl BeamTracker {
    /// Creates a tracker for a beam at `angle_deg` whose aligned power is
    /// `baseline_db`.
    // xtask-allow(hot-path-closure): constructor allocates the history ring once per tracked beam at establishment time
    pub fn new(angle_deg: f64, baseline_db: f64, ewma_alpha: f64, window: usize) -> Self {
        assert!(window >= 2, "window must hold at least two samples");
        Self {
            angle_deg,
            baseline_db,
            ewma: Ewma::new(ewma_alpha),
            history: Vec::with_capacity(window),
            window,
        }
    }

    /// Feeds one per-beam power measurement (dB) and returns the update.
    pub fn update(&mut self, geom: &ArrayGeometry, power_db: f64) -> TrackerUpdate {
        let prev = self.history.last().copied();
        let smoothed = self.ewma.update(power_db);
        if self.history.len() == self.window {
            self.history.remove(0);
        }
        self.history.push(smoothed);
        // Quadratic de-noising over the window (§6.1): evaluate the fit at
        // the newest sample instead of trusting it raw.
        let denoised = self.fitted_latest().unwrap_or(smoothed);
        let drop_db = (self.baseline_db - denoised).max(0.0);
        let deviation_deg = invert_gain_drop(geom, self.angle_deg, drop_db);
        TrackerUpdate {
            smoothed_db: denoised,
            drop_db,
            delta_db: prev.map(|p| smoothed - p).unwrap_or(0.0),
            deviation_deg,
        }
    }

    /// Quadratic fit over the history, evaluated at the newest point.
    // xtask-allow(hot-path-closure): the fit's (x, y) views are per-fit scratch on the amortized maintenance cadence (ROADMAP item 1)
    fn fitted_latest(&self) -> Option<f64> {
        if self.history.len() < 3 {
            return None;
        }
        let xs: Vec<f64> = (0..self.history.len()).map(|i| i as f64).collect();
        let fit = polyfit(&xs, &self.history, 2)?;
        Some(fit.eval((self.history.len() - 1) as f64))
    }

    /// Re-anchors the tracker after a (re-)alignment: new steering angle
    /// and fresh baseline; history is cleared.
    pub fn realign(&mut self, new_angle_deg: f64, new_baseline_db: f64) {
        self.angle_deg = new_angle_deg;
        self.baseline_db = new_baseline_db;
        self.ewma.reset();
        self.history.clear();
    }

    /// Smoothed power history (dB), oldest first.
    pub fn history(&self) -> &[f64] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_array::pattern::ula_gain_rel;
    use mmwave_dsp::rng::Rng64;
    use mmwave_dsp::units::db_from_pow;

    fn geom() -> ArrayGeometry {
        ArrayGeometry::ula(8)
    }

    /// Power (dB) a beam at `steer` sees from a user at `steer + dev`.
    fn beam_power_db(steer: f64, dev: f64, p0_db: f64) -> f64 {
        let g = ula_gain_rel(8, 0.5, steer, steer + dev);
        p0_db + db_from_pow((g * g).max(1e-12))
    }

    #[test]
    fn aligned_beam_reports_zero_deviation() {
        let mut t = BeamTracker::new(0.0, -50.0, 0.5, 5);
        let u = t.update(&geom(), -50.0);
        assert_eq!(u.drop_db, 0.0);
        assert_eq!(u.deviation_deg, Some(0.0));
    }

    #[test]
    fn recovers_known_deviation_noiseless() {
        let mut t = BeamTracker::new(10.0, -50.0, 1.0, 5);
        for dev in [2.0_f64, 4.0, 6.0] {
            t.realign(10.0, -50.0);
            let mut last = None;
            for _ in 0..4 {
                last = Some(t.update(&geom(), beam_power_db(10.0, dev, -50.0)));
            }
            let est = last.unwrap().deviation_deg.expect("invertible");
            assert!((est - dev).abs() < 0.3, "dev {dev}: est {est}");
        }
    }

    #[test]
    fn smoothing_beats_raw_noise() {
        // ±1.5 dB measurement noise; the 1° mean-error claim (§6.1/Fig 17b)
        // depends on the EWMA + quadratic smoothing.
        let mut rng = Rng64::seed(8);
        let dev = 4.0;
        let mut t = BeamTracker::new(0.0, -50.0, 0.4, 8);
        let mut final_est = 0.0;
        for _ in 0..8 {
            let noisy = beam_power_db(0.0, dev, -50.0) + rng.normal_with(0.0, 1.0);
            if let Some(d) = t.update(&geom(), noisy).deviation_deg {
                final_est = d;
            }
        }
        assert!((final_est - dev).abs() < 1.2, "est {final_est} vs {dev}");
    }

    #[test]
    fn rapid_drop_reflected_in_delta() {
        let mut t = BeamTracker::new(0.0, -50.0, 1.0, 5);
        t.update(&geom(), -50.0);
        let u = t.update(&geom(), -65.0);
        assert!(u.delta_db < -10.0, "delta {}", u.delta_db);
    }

    #[test]
    fn deep_fade_is_not_invertible() {
        // A 40 dB drop can't come from main-lobe misalignment.
        let mut t = BeamTracker::new(0.0, -50.0, 1.0, 5);
        let u = t.update(&geom(), -90.0);
        assert_eq!(u.deviation_deg, None);
    }

    #[test]
    fn realign_resets_state() {
        let mut t = BeamTracker::new(0.0, -50.0, 0.5, 5);
        t.update(&geom(), -55.0);
        t.update(&geom(), -56.0);
        t.realign(3.0, -49.0);
        assert_eq!(t.angle_deg, 3.0);
        assert!(t.history().is_empty());
        let u = t.update(&geom(), -49.0);
        assert_eq!(u.drop_db, 0.0);
    }

    #[test]
    fn improving_power_clamps_drop_at_zero() {
        let mut t = BeamTracker::new(0.0, -50.0, 1.0, 5);
        let u = t.update(&geom(), -45.0);
        assert_eq!(u.drop_db, 0.0);
        assert_eq!(u.deviation_deg, Some(0.0));
    }
}
