//! Super-resolution per-beam channel decomposition (paper §4.3, Eq. 21–23).
//!
//! A single-RF-chain multi-beam superposes all beams into one received
//! signal; maintenance needs the *per-beam* amplitudes `α_k` back. The
//! paper fits a sinc model over the measured CIR with L2 regularization,
//! exploiting that the **relative** ToFs between beams are known from
//! training and drift slowly.
//!
//! We solve the same convex program in the frequency domain, where the
//! band-limited sinc of Eq. 22 is exactly a complex exponential across the
//! sounded comb:
//!
//! ```text
//! csi(f) = Σ_k α_k · e^{-j2πf(τ₀ + Δτ_k)} + noise
//! ```
//!
//! with `Δτ_k` known and the bulk delay `τ₀` (plus small relative-ToF
//! jitter) recovered by a fine grid search, each candidate scored by its
//! ridge-regularized least-squares residual (Eq. 23). The two domains are
//! unitarily equivalent (Parseval), so this *is* the paper's estimator —
//! just without the detour through an interpolated CIR.

use mmwave_dsp::complex::Complex64;
use mmwave_dsp::linalg::{ridge_least_squares, CMatrix};
use mmwave_phy::chanest::ProbeObservation;
use std::f64::consts::PI;

/// Configuration of the super-resolution solver.
#[derive(Clone, Debug)]
pub struct SuperResConfig {
    /// Ridge regularization weight λ of Eq. 23.
    pub lambda: f64,
    /// Bulk-delay search: ± this many CIR taps around the coarse estimate.
    pub tau0_search_taps: f64,
    /// Bulk-delay search resolution, fraction of a tap.
    pub tau0_step_taps: f64,
    /// Relative-ToF jitter candidates tried per non-reference beam, ns.
    pub jitter_ns: Vec<f64>,
}

impl Default for SuperResConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-3,
            tau0_search_taps: 1.5,
            tau0_step_taps: 0.05,
            jitter_ns: vec![-0.4, -0.2, 0.0, 0.2, 0.4],
        }
    }
}

/// Result of one per-beam decomposition.
#[derive(Clone, Debug)]
pub struct PerBeamEstimate {
    /// Complex per-beam amplitudes `α_k` (order matches the input delays).
    pub alphas: Vec<Complex64>,
    /// Per-beam received powers `|α_k|²` (mW in sounder units).
    pub powers_mw: Vec<f64>,
    /// Residual `‖csi − S·α‖²` of the best fit.
    pub residual: f64,
    /// Recovered bulk delay τ₀, ns.
    pub tau0_ns: f64,
    /// Relative delays actually used after jitter refinement, ns.
    pub rel_delays_ns: Vec<f64>,
}

impl PerBeamEstimate {
    /// Per-beam powers in dB (floored at −200 dB).
    // xtask-allow(hot-path-closure): one short per-beam vector per estimate on the maintenance cadence
    pub fn powers_db(&self) -> Vec<f64> {
        self.powers_mw
            .iter()
            .map(|&p| 10.0 * p.max(1e-20).log10())
            .collect()
    }
}

/// Scratch buffers shared by every ridge fit of one decomposition. The
/// grid search solves the same K-column system ~10²× per probe; building
/// the dictionary in place and fusing the residual pass keeps the search
/// out of the allocator (only the K-sized solver outputs still allocate).
struct FitScratch {
    /// `(-2π)·f` per sounded subcarrier — the phase is `cf·τ`, bitwise
    /// identical to the original `-2π·f·τ` left-to-right evaluation.
    cf: Vec<f64>,
    /// Per-column absolute delays of the current candidate, seconds.
    tau_s: Vec<f64>,
    /// The M×K dictionary, rebuilt in place per candidate.
    s: CMatrix,
}

impl FitScratch {
    // xtask-allow(hot-path-closure): scratch construction happens once per fitted probe; the fit loop itself reuses it (that is the point of FitScratch)
    fn for_probe(obs: &ProbeObservation) -> Self {
        Self {
            cf: obs.freqs_hz.iter().map(|&f| -2.0 * PI * f).collect(),
            tau_s: Vec::new(),
            s: CMatrix::zeros(0, 0),
        }
    }
}

/// Decomposes one multi-beam probe into per-beam complex amplitudes, given
/// the beams' relative delays (first entry is the reference, typically 0).
// xtask-allow(hot-path-closure): the per-beam decomposition owns its outputs (amplitudes, delays) by contract; it runs per probe on the maintenance cadence (ROADMAP item 1)
// xtask-allow(hot-path-panic): beam indices are bounded by rel_delays_ns.len() = K, the dimension of the solve; delay indices by the grid the function just built
pub fn estimate_per_beam(
    obs: &ProbeObservation,
    rel_delays_ns: &[f64],
    cfg: &SuperResConfig,
) -> PerBeamEstimate {
    assert!(!rel_delays_ns.is_empty(), "need at least one beam delay");
    assert!(
        obs.csi.len() >= rel_delays_ns.len(),
        "underdetermined: fewer subcarriers than beams"
    );
    let mut scratch = FitScratch::for_probe(obs);
    let tap_ns = 1.0 / (obs.comb_spacing_hz().max(1.0) * obs.csi.len() as f64) * 1e9;
    // The CIR magnitude peak belongs to whichever beam currently dominates —
    // not necessarily the reference (e.g. when the LOS beam is blocked the
    // peak jumps to a reflection). Try anchoring it to each beam's relative
    // delay and grid-search the bulk delay around every candidate.
    let peak_ns = crate::training::estimate_delay_ns(obs);
    let mut best: Option<(Vec<Complex64>, f64)> = None;
    let mut best_tau0 = peak_ns;
    for &anchor in rel_delays_ns {
        let coarse_ns = peak_ns - anchor;
        let mut t = -cfg.tau0_search_taps;
        while t <= cfg.tau0_search_taps {
            let tau0 = coarse_ns + t * tap_ns;
            let fit = fit_at(obs, tau0, rel_delays_ns, cfg.lambda, &mut scratch);
            if best.as_ref().is_none_or(|b| fit.1 < b.1) {
                best = Some(fit);
                best_tau0 = tau0;
            }
            t += cfg.tau0_step_taps;
        }
    }
    let mut best = best.expect("at least one candidate");
    // Pass 2: greedy per-beam relative-ToF jitter refinement.
    let mut rel = rel_delays_ns.to_vec();
    for k in 1..rel.len() {
        let nominal = rel[k];
        for &j in &cfg.jitter_ns {
            let mut trial = rel.clone();
            trial[k] = nominal + j;
            let fit = fit_at(obs, best_tau0, &trial, cfg.lambda, &mut scratch);
            if fit.1 < best.1 {
                best = fit;
                rel[k] = nominal + j;
            }
        }
    }
    let alphas = best.0;
    PerBeamEstimate {
        powers_mw: alphas.iter().map(|a| a.norm_sqr()).collect(),
        alphas,
        residual: best.1,
        tau0_ns: best_tau0,
        rel_delays_ns: rel,
    }
}

/// Solves the ridge LS fit for fixed delays; returns (α, residual).
///
/// The dictionary column `k` at subcarrier `i` is
/// `cis(-2π·f_i·(τ₀+Δτ_k)·1e-9)` — evaluated here as `cis(cf_i·τ_s)` with
/// `cf` precomputed per probe, which groups the products exactly as the
/// textbook expression does, so every matrix entry (and hence the solve
/// and the residual) is bit-identical to a scratch-free evaluation.
// xtask-allow(hot-path-closure): the K-column design matrix is per-candidate-delay scratch inside the amortized fit
fn fit_at(
    obs: &ProbeObservation,
    tau0_ns: f64,
    rel_delays_ns: &[f64],
    lambda: f64,
    scratch: &mut FitScratch,
) -> (Vec<Complex64>, f64) {
    let (rows, cols) = (obs.csi.len(), rel_delays_ns.len());
    scratch.tau_s.clear();
    scratch
        .tau_s
        .extend(rel_delays_ns.iter().map(|&dk| (tau0_ns + dk) * 1e-9));
    let s = &mut scratch.s;
    s.reset(rows, cols);
    for (row, &cf) in s.as_mut_slice().chunks_exact_mut(cols).zip(&scratch.cf) {
        for (slot, &tau) in row.iter_mut().zip(&scratch.tau_s) {
            *slot = Complex64::cis(cf * tau);
        }
    }
    // Scale λ with the dictionary's column energy (M subcarriers).
    let alphas = ridge_least_squares(s, &obs.csi, lambda * obs.csi.len() as f64)
        .unwrap_or_else(|_| vec![Complex64::ZERO; rel_delays_ns.len()]);
    // Residual ‖y − S·α‖², fused with the fitted-model evaluation: the
    // inner accumulation is `mul_vec`'s fold and the outer sum runs in
    // subcarrier order from 0.0, matching the separate-pass bit pattern.
    let mut residual = 0.0f64;
    for (row, &y) in s.as_slice().chunks_exact(cols).zip(&obs.csi) {
        let mut acc = Complex64::ZERO;
        for (&sij, &a) in row.iter().zip(&alphas) {
            acc += sij * a;
        }
        residual += (y - acc).norm_sqr();
    }
    (alphas, residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::complex::c64;
    use mmwave_dsp::rng::Rng64;

    /// Builds a synthetic probe: α_k at delays τ0+Δτ_k over a 264-pt comb
    /// (400 MHz / RB-spacing), with optional noise and CFO phase.
    fn synth_probe(
        alphas: &[(f64, f64)], // (amplitude, phase)
        rel_delays_ns: &[f64],
        tau0_ns: f64,
        noise_pow: f64,
        rng: &mut Rng64,
    ) -> ProbeObservation {
        let n = 264;
        let spacing = 12.0 * 120e3;
        let freqs: Vec<f64> = (0..n)
            .map(|i| (i as f64 - (n as f64 - 1.0) / 2.0) * spacing)
            .collect();
        let cfo = rng.random_phasor();
        let csi: Vec<Complex64> = freqs
            .iter()
            .map(|&f| {
                let mut acc = Complex64::ZERO;
                for (k, &(a, ph)) in alphas.iter().enumerate() {
                    let tau = (tau0_ns + rel_delays_ns[k]) * 1e-9;
                    acc += Complex64::from_polar(a, ph) * Complex64::cis(-2.0 * PI * f * tau);
                }
                cfo * acc + rng.awgn(noise_pow)
            })
            .collect();
        ProbeObservation {
            csi,
            freqs_hz: freqs,
            noise_power_mw: noise_pow.max(1e-18),
        }
    }

    #[test]
    fn recovers_two_beam_powers_well_separated() {
        let mut rng = Rng64::seed(1);
        let rel = [0.0, 10.0]; // 10 ns apart (4 taps at 2.6 ns)
        let obs = synth_probe(&[(1.0, 0.3), (0.5, -1.0)], &rel, 25.0, 1e-6, &mut rng);
        let est = estimate_per_beam(&obs, &rel, &SuperResConfig::default());
        assert!(
            (est.powers_mw[0] - 1.0).abs() < 0.05,
            "p0 {}",
            est.powers_mw[0]
        );
        assert!(
            (est.powers_mw[1] - 0.25).abs() < 0.03,
            "p1 {}",
            est.powers_mw[1]
        );
        assert!((est.tau0_ns - 25.0).abs() < 0.5, "τ0 {}", est.tau0_ns);
    }

    #[test]
    fn resolves_below_fourier_limit() {
        // Fig. 11a's claim: accurate per-beam power even when ΔToF is below
        // the 2.5 ns bandwidth resolution, because relative ToF is known.
        let mut rng = Rng64::seed(2);
        for dt in [0.8, 1.2, 1.8] {
            let rel = [0.0, dt];
            let obs = synth_probe(&[(1.0, 0.0), (0.6, 1.1)], &rel, 30.0, 1e-6, &mut rng);
            let est = estimate_per_beam(&obs, &rel, &SuperResConfig::default());
            assert!(
                (est.powers_mw[0] - 1.0).abs() < 0.1,
                "Δτ={dt}: p0 {}",
                est.powers_mw[0]
            );
            assert!(
                (est.powers_mw[1] - 0.36).abs() < 0.1,
                "Δτ={dt}: p1 {}",
                est.powers_mw[1]
            );
        }
    }

    #[test]
    fn cfo_phase_does_not_break_power_estimates() {
        let rel = [0.0, 6.0];
        for seed in 0..5 {
            let mut rng = Rng64::seed(seed);
            let obs = synth_probe(&[(1.0, 0.0), (0.4, 2.0)], &rel, 20.0, 1e-6, &mut rng);
            let est = estimate_per_beam(&obs, &rel, &SuperResConfig::default());
            assert!((est.powers_mw[0] - 1.0).abs() < 0.05);
            assert!((est.powers_mw[1] - 0.16).abs() < 0.05);
        }
    }

    #[test]
    fn jitter_refinement_absorbs_drift() {
        // True relative delay drifted 0.4 ns from the trained value.
        let mut rng = Rng64::seed(3);
        let true_rel = [0.0, 8.4];
        let trained_rel = [0.0, 8.0];
        let obs = synth_probe(&[(1.0, 0.0), (0.7, -0.5)], &true_rel, 22.0, 1e-6, &mut rng);
        let est = estimate_per_beam(&obs, &trained_rel, &SuperResConfig::default());
        assert!(
            (est.rel_delays_ns[1] - 8.4).abs() < 0.21,
            "refined to {}",
            est.rel_delays_ns[1]
        );
        assert!((est.powers_mw[1] - 0.49).abs() < 0.06);
    }

    #[test]
    fn noise_floor_limits_but_does_not_bias_much() {
        let mut rng = Rng64::seed(4);
        let rel = [0.0, 10.0];
        // SNR ≈ 20 dB per subcarrier.
        let obs = synth_probe(&[(1.0, 0.0), (0.5, 0.7)], &rel, 25.0, 0.01, &mut rng);
        let est = estimate_per_beam(&obs, &rel, &SuperResConfig::default());
        assert!((est.powers_mw[0] - 1.0).abs() < 0.15);
        assert!((est.powers_mw[1] - 0.25).abs() < 0.1);
    }

    #[test]
    fn three_beam_decomposition() {
        let mut rng = Rng64::seed(5);
        let rel = [0.0, 5.0, 13.0];
        let obs = synth_probe(
            &[(1.0, 0.0), (0.6, 1.0), (0.3, -2.0)],
            &rel,
            28.0,
            1e-6,
            &mut rng,
        );
        let est = estimate_per_beam(&obs, &rel, &SuperResConfig::default());
        assert!((est.powers_mw[0] - 1.0).abs() < 0.08);
        assert!((est.powers_mw[1] - 0.36).abs() < 0.08);
        assert!((est.powers_mw[2] - 0.09).abs() < 0.05);
    }

    #[test]
    fn single_beam_degenerates_to_power_measurement() {
        let mut rng = Rng64::seed(6);
        let obs = synth_probe(&[(0.8, 0.4)], &[0.0], 35.0, 1e-6, &mut rng);
        let est = estimate_per_beam(&obs, &[0.0], &SuperResConfig::default());
        assert!((est.powers_mw[0] - 0.64).abs() < 0.03);
    }

    #[test]
    fn powers_db_conversion() {
        let e = PerBeamEstimate {
            alphas: vec![c64(1.0, 0.0)],
            powers_mw: vec![0.1],
            residual: 0.0,
            tau0_ns: 0.0,
            rel_delays_ns: vec![0.0],
        };
        assert!((e.powers_db()[0] + 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one beam")]
    fn needs_delays() {
        let mut rng = Rng64::seed(7);
        let obs = synth_probe(&[(1.0, 0.0)], &[0.0], 20.0, 1e-6, &mut rng);
        estimate_per_beam(&obs, &[], &SuperResConfig::default());
    }
}
