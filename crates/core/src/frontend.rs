//! The abstract link front end the controller drives.
//!
//! The controller never touches the channel directly — it requests probes
//! (reference-signal transmissions under a chosen beam) and receives noisy
//! [`ProbeObservation`]s, exactly as the real system only sees CSI-RS/SSB
//! channel estimates (§5.2). The simulator implements this trait; tests use
//! [`SnapshotFrontEnd`], a frozen-channel implementation.
//!
//! Probes are classed by the NR reference signal that carries them: an SSB
//! probe occupies 4 slots (0.5 ms), a CSI-RS probe 1 slot (0.125 ms) — the
//! accounting behind the paper's Fig. 18d. Time-advancing front ends (the
//! simulator) charge this airtime per call; the frozen test front end only
//! counts.

use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::weights::BeamWeights;
use mmwave_channel::channel::{GeometricChannel, UeReceiver};
use mmwave_dsp::rng::Rng64;
use mmwave_phy::chanest::{ChannelSounder, ProbeObservation};

/// Which reference signal a probe rides on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeKind {
    /// Synchronization Signal Block — training probes, 4 slots each.
    Ssb,
    /// CSI-RS — maintenance probes, 1 slot each.
    CsiRs,
}

impl ProbeKind {
    /// Airtime of one probe at 120 kHz SCS (0.125 ms slots).
    pub fn airtime_s(self) -> f64 {
        match self {
            ProbeKind::Ssb => 4.0 * 0.125e-3,
            ProbeKind::CsiRs => 0.125e-3,
        }
    }
}

/// What the beam-management layer can do to the radio.
pub trait LinkFrontEnd {
    /// gNB array geometry.
    fn geometry(&self) -> &ArrayGeometry;

    /// Transmits one reference signal of the given kind under `weights` and
    /// returns the UE's channel estimate. Each call consumes the kind's
    /// probe airtime — implementations account for it (and may advance
    /// simulated time).
    fn probe_kind(&mut self, weights: &BeamWeights, kind: ProbeKind) -> ProbeObservation;

    /// Convenience: a CSI-RS-class probe.
    fn probe(&mut self, weights: &BeamWeights) -> ProbeObservation {
        self.probe_kind(weights, ProbeKind::CsiRs)
    }

    /// Like [`Self::probe_kind`], but writes the estimate into
    /// caller-owned scratch so steady-state maintenance probes can run
    /// allocation-free. The default delegates to the allocating path;
    /// front ends on the zero-alloc contract (the simulator) override it
    /// to fill `out`'s buffers in place.
    fn probe_kind_into(
        &mut self,
        weights: &BeamWeights,
        kind: ProbeKind,
        out: &mut ProbeObservation,
    ) {
        *out = self.probe_kind(weights, kind);
    }

    /// Convenience: a CSI-RS-class probe into caller-owned scratch.
    fn probe_into(&mut self, weights: &BeamWeights, out: &mut ProbeObservation) {
        self.probe_kind_into(weights, ProbeKind::CsiRs, out);
    }

    /// Blocks the link for `dur_s` of protocol dead time (e.g. waiting for
    /// the next SSB opportunity, RACH-based beam-failure recovery). Time
    /// advances; no data flows. Default: no-op for frozen front ends.
    fn wait(&mut self, _dur_s: f64) {}

    /// The front end's clock, seconds. Simulators report simulated time;
    /// frozen front ends report accumulated probe airtime — any monotonic
    /// clock works for the controller's retry/backoff scheduling.
    fn now_s(&self) -> f64;

    /// True when the supervisor driving this front end has requested
    /// cooperative cancellation (wall-clock deadline exceeded, tick budget
    /// exhausted). Long-running controller work — the maintenance loop, a
    /// 64-probe training scan — polls this at natural boundaries and
    /// unwinds via [`crate::cancel::bail`], so a hung or pathological run
    /// cannot stall a whole campaign. Front ends without a supervisor
    /// never cancel (the default).
    fn cancel_requested(&self) -> bool {
        false
    }

    /// Total probes issued so far (for overhead accounting).
    fn probes_used(&self) -> usize;
}

/// A [`LinkFrontEnd`] over one frozen channel snapshot — used by unit tests
/// and micro-benchmarks where time does not advance.
pub struct SnapshotFrontEnd {
    /// Frozen channel.
    pub channel: GeometricChannel,
    /// Sounding front end.
    pub sounder: ChannelSounder,
    /// gNB geometry.
    pub geom: ArrayGeometry,
    /// Receive side.
    pub rx: UeReceiver,
    /// Noise source.
    pub rng: Rng64,
    probes: usize,
    airtime_s: f64,
}

impl SnapshotFrontEnd {
    /// Wraps a frozen channel.
    pub fn new(
        channel: GeometricChannel,
        sounder: ChannelSounder,
        geom: ArrayGeometry,
        rx: UeReceiver,
        rng: Rng64,
    ) -> Self {
        Self {
            channel,
            sounder,
            geom,
            rx,
            rng,
            probes: 0,
            airtime_s: 0.0,
        }
    }

    /// Total probe airtime consumed, seconds.
    pub fn probe_airtime_s(&self) -> f64 {
        self.airtime_s
    }
}

impl LinkFrontEnd for SnapshotFrontEnd {
    fn geometry(&self) -> &ArrayGeometry {
        &self.geom
    }

    fn probe_kind(&mut self, weights: &BeamWeights, kind: ProbeKind) -> ProbeObservation {
        self.probes += 1;
        self.airtime_s += kind.airtime_s();
        self.sounder
            .probe(&self.channel, &self.geom, weights, &self.rx, &mut self.rng)
    }

    fn wait(&mut self, dur_s: f64) {
        self.airtime_s += dur_s.max(0.0);
    }

    fn now_s(&self) -> f64 {
        self.airtime_s
    }

    fn probes_used(&self) -> usize {
        self.probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_array::steering::single_beam;
    use mmwave_channel::path::{Path, PathKind};
    use mmwave_dsp::complex::c64;
    use mmwave_dsp::units::FC_28GHZ;

    #[test]
    fn snapshot_frontend_counts_probes_and_airtime() {
        let ch = GeometricChannel::new(
            vec![Path::new(0.0, 0.0, c64(1e-4, 0.0), 20.0, PathKind::Los)],
            FC_28GHZ,
        );
        let geom = ArrayGeometry::ula(8);
        let mut fe = SnapshotFrontEnd::new(
            ch,
            ChannelSounder::paper_indoor(),
            geom,
            UeReceiver::Omni,
            Rng64::seed(1),
        );
        assert_eq!(fe.probes_used(), 0);
        let w = single_beam(fe.geometry(), 0.0);
        let obs = fe.probe(&w);
        assert_eq!(fe.probes_used(), 1);
        assert!(obs.snr_db() > 0.0);
        fe.probe_kind(&w, ProbeKind::Ssb);
        assert_eq!(fe.probes_used(), 2);
        // 1 CSI-RS (0.125 ms) + 1 SSB (0.5 ms).
        assert!((fe.probe_airtime_s() - 0.625e-3).abs() < 1e-12);
    }

    #[test]
    fn probe_kind_airtimes_match_paper() {
        assert_eq!(ProbeKind::Ssb.airtime_s(), 0.5e-3);
        assert_eq!(ProbeKind::CsiRs.airtime_s(), 0.125e-3);
    }
}
