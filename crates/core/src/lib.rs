//! # mmreliable
//!
//! The paper's contribution: creating and maintaining **constructive
//! multi-beam** mmWave links that are simultaneously reliable and
//! high-throughput (Jain, Subbaraman, Bharadia — SIGCOMM '21).
//!
//! Pipeline (paper Fig. 2 / Fig. 9):
//!
//! 1. [`training`] — exhaustive SSB beam scan → angular power profile →
//!    top-K viable path directions.
//! 2. [`probing`] — the magnitude-only two-probe estimator of the relative
//!    per-path channel `(δ, σ)` (Eq. 11–12), wideband joint estimation
//!    (Eq. 13–14), and path-delay estimation from the CIR.
//! 3. [`multibeam`] — establish the constructive multi-beam `w(φ, δ, σ)`
//!    (Eq. 10) from training + probing results.
//! 4. [`superres`] — per-beam power tracking from a single multi-beam
//!    probe via ridge-regularized sinc/steering-dictionary fitting (Eq. 23).
//! 5. [`tracking`] — proactive mobility management: invert the beam
//!    pattern to recover angular deviation (Eq. 18–20), resolve the sign
//!    ambiguity with one extra probe.
//! 6. [`blockage`] — per-beam blockage detection (rate-of-change) and
//!    power re-purposing.
//! 7. [`linkstate`] — the explicit link lifecycle state machine (single
//!    transition point, bounded-retry recovery, degraded-mode fallback).
//! 8. [`controller`] — the beam-maintenance controller tying it all
//!    together over an abstract [`frontend::LinkFrontEnd`].
//! 9. [`ue`] — extension to directional (multi-beam) UEs (§4.4).
//! 10. [`statehandler`] — the fleet-scale generalization of the lifecycle:
//!     a cell-level [`statehandler::StateHandler`] is the only writer of
//!     per-UE lifecycle state; peers queue typed intents through
//!     [`statehandler::Io`] and the handler drains them each pass.

#![warn(missing_docs)]
pub mod blockage;
pub mod cancel;
pub mod config;
pub mod controller;
pub mod frontend;
pub mod linkstate;
pub mod multibeam;
pub mod probing;
pub mod statehandler;
pub mod superres;
pub mod tracking;
pub mod training;
pub mod ue;

pub use cancel::{CancelToken, CancelUnwind};
pub use config::MmReliableConfig;
pub use controller::MmReliableController;
pub use frontend::{LinkFrontEnd, ProbeKind};
pub use linkstate::{LinkState, LinkStateKind, Transition, TransitionCause};
pub use statehandler::{
    HistoryRecord, Intent, IntentKind, IntentQueue, Io, PassStats, StateHandler, UeId, UeMetrics,
    UeStats,
};
