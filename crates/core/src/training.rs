//! Beam training: exhaustive SSB scan → viable path directions.
//!
//! mmReliable is agnostic to the training algorithm (§3, "this could be
//! done using exhaustive beam-scanning or any other improved algorithm");
//! we implement the exhaustive scan the paper's testbed uses, plus the
//! peak-finding that turns the angular power profile into the 2–3 viable
//! paths typical mmWave environments offer (§3.3).

use crate::frontend::LinkFrontEnd;
use mmwave_array::codebook::Codebook;
use mmwave_dsp::units::db_from_pow;

/// One viable path found by training.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ViablePath {
    /// Steering angle of the codebook beam that peaked, degrees.
    pub angle_deg: f64,
    /// Received power through that beam, mW (noise-debiased).
    pub power_mw: f64,
    /// Estimated path delay from the probe's CIR, nanoseconds (band-limited
    /// resolution; relative values are what the super-resolver consumes).
    pub delay_ns: f64,
}

/// The outcome of a beam-training scan.
#[derive(Clone, Debug)]
pub struct TrainingResult {
    /// (angle, power mW) per scanned codebook beam.
    pub profile: Vec<(f64, f64)>,
    /// Viable paths (local maxima), strongest first, at most `max_paths`.
    pub viable: Vec<ViablePath>,
    /// Probes consumed by the scan.
    pub probes_used: usize,
}

impl TrainingResult {
    /// Power profile in dBm-like dB units (relative to 1 mW).
    pub fn profile_db(&self) -> Vec<(f64, f64)> {
        self.profile
            .iter()
            .map(|&(a, p)| (a, db_from_pow(p.max(1e-18))))
            .collect()
    }

    /// The strongest viable path, if any.
    pub fn strongest(&self) -> Option<&ViablePath> {
        self.viable.first()
    }
}

/// Runs an exhaustive scan over `codebook`, then extracts up to `max_paths`
/// local maxima within `viable_window_db` of the strongest.
///
/// `min_separation_deg` suppresses duplicate detections of one physical
/// path across adjacent codebook beams (set it near the array's beamwidth).
// xtask-allow(hot-path-closure): the exhaustive scan runs once per (re)acquisition event; its profile buffers are sized by the codebook, not reused per slot (ROADMAP item 1)
pub fn beam_training(
    fe: &mut dyn LinkFrontEnd,
    codebook: &Codebook,
    max_paths: usize,
    viable_window_db: f64,
    min_separation_deg: f64,
) -> TrainingResult {
    let before = fe.probes_used();
    let mut profile = Vec::with_capacity(codebook.len());
    let mut delays = Vec::with_capacity(codebook.len());
    let mut noise_floor_mw = 0.0f64;
    for (angle, weights) in codebook.iter() {
        // A full scan is the longest uninterruptible stretch of controller
        // work (64 SSB probes); honor cooperative cancellation per probe so
        // a supervised run never overstays its deadline by a whole scan.
        if fe.cancel_requested() {
            crate::cancel::bail();
        }
        let obs = fe.probe_kind(weights, crate::frontend::ProbeKind::Ssb);
        noise_floor_mw = obs.noise_power_mw;
        profile.push((angle, obs.mean_power_mw()));
        delays.push(estimate_delay_ns(&obs));
    }
    // Absolute viability floor: a real path must clear the per-subcarrier
    // noise level; residual debiasing jitter on pure noise sits far below it.
    let viable = find_viable(
        &profile,
        &delays,
        max_paths,
        viable_window_db,
        min_separation_deg,
        noise_floor_mw,
    );
    TrainingResult {
        profile,
        viable,
        probes_used: fe.probes_used() - before,
    }
}

/// Coarse path-delay estimate from one probe: magnitude peak of the
/// band-limited CIR with parabolic sub-tap interpolation. Magnitude-based,
/// hence immune to the CFO common phase.
// xtask-allow(hot-path-closure): the magnitude profile is one short collect per probe on the amortized re-estimation cadence (ROADMAP item 1)
// xtask-allow(hot-path-panic): peak is an argmax over the non-empty CIR (emptiness is the early return above), and the parabolic neighbors are taken only when 0 < peak < len − 1
pub fn estimate_delay_ns(obs: &mmwave_phy::chanest::ProbeObservation) -> f64 {
    let cir = obs.cir();
    if cir.is_empty() || obs.comb_spacing_hz() <= 0.0 {
        return 0.0;
    }
    let mags: Vec<f64> = cir.iter().map(|v| v.abs()).collect();
    let peak = mags
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    // Parabolic interpolation around the peak (guarding the edges).
    let n = mags.len();
    let frac = if peak > 0 && peak + 1 < n {
        let (a, b, c) = (mags[peak - 1], mags[peak], mags[peak + 1]);
        let denom = a - 2.0 * b + c;
        if denom.abs() > 1e-18 {
            (0.5 * (a - c) / denom).clamp(-0.5, 0.5)
        } else {
            0.0
        }
    } else {
        0.0
    };
    let tap_s = 1.0 / (obs.comb_spacing_hz() * cir.len() as f64);
    (peak as f64 + frac) * tap_s * 1e9
}

/// Local-maxima extraction with a minimum angular separation.
// xtask-allow(hot-path-closure): candidate/selected lists are per-scan outputs of acquisition, not per-slot state
// xtask-allow(hot-path-panic): all indices are bounded by profile.len() (delays has the same length by construction in beam_training)
fn find_viable(
    profile: &[(f64, f64)],
    delays: &[f64],
    max_paths: usize,
    viable_window_db: f64,
    min_separation_deg: f64,
    noise_floor_mw: f64,
) -> Vec<ViablePath> {
    if profile.is_empty() || max_paths == 0 {
        return Vec::new();
    }
    let peak_power = profile.iter().map(|&(_, p)| p).fold(0.0f64, f64::max);
    if peak_power <= noise_floor_mw {
        return Vec::new();
    }
    let floor =
        (peak_power * mmwave_dsp::units::pow_from_db(-viable_window_db)).max(noise_floor_mw);
    // Candidate local maxima (strictly above both neighbors, or edge max).
    let mut candidates: Vec<usize> = (0..profile.len())
        .filter(|&i| {
            let p = profile[i].1;
            if p < floor {
                return false;
            }
            let left_ok = i == 0 || profile[i - 1].1 <= p;
            let right_ok = i + 1 == profile.len() || profile[i + 1].1 <= p;
            left_ok && right_ok
        })
        .collect();
    candidates.sort_by(|&a, &b| profile[b].1.total_cmp(&profile[a].1));
    // Greedy selection with angular separation.
    let mut picked: Vec<usize> = Vec::new();
    for c in candidates {
        if picked.len() >= max_paths {
            break;
        }
        if picked
            .iter()
            .all(|&p| (profile[p].0 - profile[c].0).abs() >= min_separation_deg)
        {
            picked.push(c);
        }
    }
    picked
        .into_iter()
        .map(|i| ViablePath {
            angle_deg: profile[i].0,
            power_mw: profile[i].1,
            delay_ns: delays[i],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::SnapshotFrontEnd;
    use mmwave_array::geometry::ArrayGeometry;
    use mmwave_channel::channel::{GeometricChannel, UeReceiver};
    use mmwave_channel::environment::Scene;
    use mmwave_channel::geom2d::v2;
    use mmwave_dsp::rng::Rng64;
    use mmwave_dsp::units::FC_28GHZ;
    use mmwave_phy::chanest::ChannelSounder;

    fn room_frontend(seed: u64) -> SnapshotFrontEnd {
        let scene = Scene::conference_room(FC_28GHZ);
        let paths = scene.paths_to(v2(0.0, 7.0), 180.0);
        SnapshotFrontEnd::new(
            GeometricChannel::new(paths, FC_28GHZ),
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(seed),
        )
    }

    #[test]
    fn training_finds_los_as_strongest() {
        let mut fe = room_frontend(1);
        let cb = Codebook::paper_scan(fe.geometry());
        let r = beam_training(&mut fe, &cb, 3, 15.0, 8.0);
        assert_eq!(r.probes_used, 64);
        let best = r.strongest().expect("a path");
        // LOS is at 0° (UE straight ahead); codebook granularity ≈ 1.9°.
        assert!(
            best.angle_deg.abs() < 3.0,
            "strongest at {}",
            best.angle_deg
        );
    }

    #[test]
    fn training_finds_reflections_too() {
        let mut fe = room_frontend(2);
        let cb = Codebook::paper_scan(fe.geometry());
        let r = beam_training(&mut fe, &cb, 3, 15.0, 8.0);
        assert!(
            r.viable.len() >= 2,
            "expected LOS + at least one reflector, got {:?}",
            r.viable
        );
        // The glass-wall bounces for a UE at (0,7) with gNB at (0,0.2)
        // depart near ±46°.
        let has_side = r
            .viable
            .iter()
            .any(|v| (v.angle_deg.abs() - 46.0).abs() < 6.0);
        assert!(has_side, "viable: {:?}", r.viable);
    }

    #[test]
    fn viable_paths_sorted_and_separated() {
        let mut fe = room_frontend(3);
        let cb = Codebook::paper_scan(fe.geometry());
        let r = beam_training(&mut fe, &cb, 3, 18.0, 8.0);
        for w in r.viable.windows(2) {
            assert!(w[0].power_mw >= w[1].power_mw, "sorted by power");
            assert!((w[0].angle_deg - w[1].angle_deg).abs() >= 8.0, "separated");
        }
    }

    #[test]
    fn delays_increase_for_reflections() {
        let mut fe = room_frontend(4);
        let cb = Codebook::paper_scan(fe.geometry());
        let r = beam_training(&mut fe, &cb, 3, 15.0, 8.0);
        let los = r.strongest().unwrap();
        for v in r.viable.iter().skip(1) {
            assert!(
                v.delay_ns > los.delay_ns - 0.5,
                "reflection delay {} vs LOS {}",
                v.delay_ns,
                los.delay_ns
            );
        }
    }

    #[test]
    fn window_filters_weak_paths() {
        let mut fe = room_frontend(5);
        let cb = Codebook::paper_scan(fe.geometry());
        // 1 dB window: only the LOS survives.
        let r = beam_training(&mut fe, &cb, 3, 1.0, 8.0);
        assert_eq!(r.viable.len(), 1);
    }

    #[test]
    fn empty_profile_is_handled() {
        let v = find_viable(&[], &[], 3, 15.0, 8.0, 0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn noise_only_scan_yields_no_paths() {
        let fe_ch = GeometricChannel::new(Vec::new(), FC_28GHZ);
        let mut fe = SnapshotFrontEnd::new(
            fe_ch,
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(99),
        );
        let cb = Codebook::paper_scan(fe.geometry());
        let r = beam_training(&mut fe, &cb, 3, 15.0, 8.0);
        assert!(r.viable.is_empty(), "noise produced {:?}", r.viable);
    }

    #[test]
    fn profile_db_conversion() {
        let r = TrainingResult {
            profile: vec![(0.0, 1.0), (1.0, 0.1)],
            viable: Vec::new(),
            probes_used: 2,
        };
        let db = r.profile_db();
        assert!((db[0].1 - 0.0).abs() < 1e-9);
        assert!((db[1].1 + 10.0).abs() < 1e-9);
    }
}
