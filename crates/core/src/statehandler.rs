//! Cell-level state ownership: one handler, many UEs, typed intents.
//!
//! A fleet-scale cell serves thousands of UEs whose per-link
//! [`LinkLifecycle`] state must be managed centrally at the array (the
//! architecture multi-array beamforming testbeds converge on: per-user
//! beam state lives in one place, everything else talks to it through a
//! mailbox). This module is that shape:
//!
//! - [`StateHandler`] owns every per-UE [`LinkLifecycle`] in the cell and
//!   is the **only** writer of that state — the same single-writer
//!   discipline the `lifecycle-single-writer` xtask lint enforces for the
//!   state machine itself, lifted one level up.
//! - Peers (the fleet scheduler, probe planner, fault/impairment layers)
//!   never touch a lifecycle. They queue typed [`Intent`]s through an
//!   [`Io`] implementation, and the handler drains the queue once per
//!   [`StateHandler::pass`], applying each intent at its timestamp and
//!   accounting per-resource metrics.
//!
//! Determinism: a pass applies intents in exactly the order the [`Io`]
//! yields them. Lanes (per-UE state) are independent, so any schedule
//! that preserves each UE's own intent order produces bit-identical
//! lifecycle evolutions — the property the fleet's shard-count-invariant
//! digest rests on. Lane lookup is a binary search over a sorted id
//! table, not a hash map, so iteration order is reproducible too.
//!
//! The steady-state pass is allocation-free: the drain buffer is owned by
//! the handler and reused, and lifecycle logs only grow when a transition
//! actually fires.
//!
//! Observability (the operator surface of DESIGN.md §15) rides on the
//! same pass: every lane keeps a bounded, timestamped **state history**
//! ([`HistoryRecord`]: pass index + front-end clock, never a wall clock —
//! the records sit in digest-adjacent paths) of each lifecycle transition
//! with its cause, the intent kind that fired it, and the retry attempt,
//! serialized as JSON values per resource with the stable serde names
//! from [`LinkStateKind::name`] / [`TransitionCause::name`]. Per-lane
//! [`UeStats`] (state occupancy, time-in-state, exit-failure and retrain
//! churn counters) accumulate unconditionally — they are plain
//! deterministic arithmetic — and project into the
//! `mmwave-telemetry` metrics registry only under the `telemetry`
//! feature, keeping the feature-off build byte-identical.

use crate::linkstate::{
    LifecycleConfig, LinkLifecycle, LinkSignal, LinkState, LinkStateKind, Transition,
    TransitionCause,
};
use mmwave_hotpath::hot_path;
use mmwave_telemetry::json::{fmt_f64_json, json_escape};
use std::collections::VecDeque;

/// Identity of one UE within a cell. Cell-local: the fleet layer maps
/// global UE indices onto the ids it registered with the handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UeId(pub u32);

impl std::fmt::Display for UeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ue{}", self.0)
    }
}

/// What a peer wants the handler to feed a UE's lifecycle. Mirrors
/// [`LinkSignal`] — intents are the *transport* form; the handler is the
/// only code that turns them into signals and applies them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IntentKind {
    /// A training/establishment attempt finished for this UE.
    Establish {
        /// The scan produced a usable link clearing the outage threshold.
        ok: bool,
        /// Post-establishment wideband SNR, dB.
        snr_db: f64,
    },
    /// One maintenance window measured the live link.
    SnrReport {
        /// Wideband SNR over the window, dB.
        snr_db: f64,
        /// Healthy reference (best establishment SNR), dB.
        ref_db: f64,
        /// Maintenance lost the plot (deep unexplained drop).
        unexplained_drop: bool,
    },
}

impl IntentKind {
    /// Stable serde name for history lines ([`HistoryRecord::to_json`]).
    pub fn name(&self) -> &'static str {
        match self {
            IntentKind::Establish { .. } => "establish",
            IntentKind::SnrReport { .. } => "snr-report",
        }
    }
}

/// One queued instruction: *which* UE, *when* (front-end clock), *what*.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Intent {
    /// Target UE.
    pub ue: UeId,
    /// Front-end timestamp the signal applies at, seconds.
    pub t_s: f64,
    /// The typed payload.
    pub kind: IntentKind,
}

/// The mailbox interface between peers and the handler. Peers only ever
/// [`Io::submit`]; the handler drains everything queued since the last
/// pass with [`Io::drain_into`] (FIFO, preserving submission order).
pub trait Io {
    /// Queues one intent.
    fn submit(&mut self, intent: Intent);

    /// Moves every queued intent into `out` (appending, oldest first) and
    /// leaves the queue empty. Implementations must preserve submission
    /// order — the handler's determinism contract depends on it.
    fn drain_into(&mut self, out: &mut Vec<Intent>);

    /// Queued intents not yet drained.
    fn pending(&self) -> usize;
}

/// The default FIFO queue: a reused `Vec`, allocation-free in steady
/// state once it reaches its high-water mark.
#[derive(Debug, Default)]
pub struct IntentQueue {
    queue: Vec<Intent>,
}

impl IntentQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Io for IntentQueue {
    fn submit(&mut self, intent: Intent) {
        self.queue.push(intent);
    }

    #[hot_path]
    fn drain_into(&mut self, out: &mut Vec<Intent>) {
        out.append(&mut self.queue);
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Per-UE resource accounting the handler emits as it drains.
///
/// This is the original compact form, kept as a thin shim over
/// [`UeStats`] (the registry-facing accounting that superseded it):
/// [`StateHandler::metrics`] assembles one from the unified per-lane
/// stats, so there is exactly one metric path underneath.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UeMetrics {
    /// Intents applied to this UE's lifecycle.
    pub intents: u64,
    /// Transitions those intents fired.
    pub transitions: u64,
    /// Passes this UE ended in an established state (`Steady`/`Degraded`).
    pub established_passes: u64,
    /// Handler passes that touched this UE at all.
    pub active_passes: u64,
}

/// Number of lifecycle state kinds, the width of the per-state arrays on
/// [`UeStats`]. Indexed by position in [`LinkStateKind::ALL`].
pub const STATE_KINDS: usize = LinkStateKind::ALL.len();

/// Index of `kind` into the per-state arrays on [`UeStats`] (its position
/// in [`LinkStateKind::ALL`]).
pub fn state_kind_index(kind: LinkStateKind) -> usize {
    match kind {
        LinkStateKind::Acquiring => 0,
        LinkStateKind::Steady => 1,
        LinkStateKind::Degraded => 2,
        LinkStateKind::Outage => 3,
        LinkStateKind::Recovering => 4,
    }
}

/// Full per-resource accounting the handler accumulates on every pass —
/// the single metric path under both the [`UeMetrics`] shim and the
/// `mmwave-telemetry` metrics registry. All plain deterministic
/// arithmetic over intent timestamps (front-end clock): no wall clock
/// ever enters, so the values are bit-reproducible across runs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UeStats {
    /// Intents applied to this UE's lifecycle.
    pub intents: u64,
    /// Transitions those intents fired.
    pub transitions: u64,
    /// Passes this UE ended in an established state (`Steady`/`Degraded`).
    pub established_passes: u64,
    /// Handler passes that touched this UE at all.
    pub active_passes: u64,
    /// Passes this UE ended in each state ([`state_kind_index`] order) —
    /// the state-occupancy distribution.
    pub state_passes: [u64; STATE_KINDS],
    /// Front-end time integrated per state, seconds: each applied intent
    /// charges the interval since the lane's previous intent to the state
    /// the lane was in *before* the intent applied.
    pub time_in_state_s: [f64; STATE_KINDS],
    /// Transitions whose cause is a failed attempt to leave a bad state
    /// ([`TransitionCause::is_exit_failure`]).
    pub exit_failures: u64,
    /// Entries into `Recovering` — the retrain churn counter.
    pub retrains: u64,
}

impl UeStats {
    /// The compact legacy view ([`UeMetrics`]) of these stats.
    pub fn ue_metrics(&self) -> UeMetrics {
        UeMetrics {
            intents: self.intents,
            transitions: self.transitions,
            established_passes: self.established_passes,
            active_passes: self.active_passes,
        }
    }
}

/// One state-history entry: a lifecycle transition plus the context the
/// operator needs to read the tape without replaying the run — when (pass
/// index and front-end clock; deliberately no wall clock), what fired it,
/// and how deep into a retry episode the lane was.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistoryRecord {
    /// Handler pass (slot-rate sequence number) the transition fired in.
    pub pass: u64,
    /// Front-end timestamp of the intent that fired it, seconds.
    pub t_s: f64,
    /// State before.
    pub from: LinkState,
    /// State after.
    pub to: LinkState,
    /// Why the machine moved.
    pub cause: TransitionCause,
    /// The intent kind that carried the signal.
    pub intent: IntentKind,
    /// Retry attempt the lane landed in (1-based inside a recovery
    /// episode, 0 outside one).
    pub retry: u32,
}

impl HistoryRecord {
    /// The record as one JSON value, using the stable serde names
    /// ([`LinkStateKind::name`], [`TransitionCause::name`],
    /// [`IntentKind::name`]) so history lines diff cleanly across binary
    /// versions. `resource` labels the line (`ue3`); a non-empty `note`
    /// (the lane's fault/impairment annotation) is included as `"note"`.
    pub fn to_json(&self, resource: &str, note: &str) -> String {
        let mut out = format!(
            "{{\"resource\":\"{}\",\"pass\":{},\"t_s\":{},\"from\":\"{}\",\"to\":\"{}\",\
             \"cause\":\"{}\",\"intent\":\"{}\",\"retry\":{}",
            json_escape(resource),
            self.pass,
            fmt_f64_json(self.t_s),
            self.from.kind().name(),
            self.to.kind().name(),
            self.cause.name(),
            self.intent.name(),
            self.retry
        );
        if !note.is_empty() {
            out.push_str(&format!(",\"note\":\"{}\"", json_escape(note)));
        }
        out.push('}');
        out
    }
}

/// What one [`StateHandler::pass`] did, in aggregate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Pass sequence number (0-based).
    pub pass: u64,
    /// Intents drained and applied.
    pub applied: u64,
    /// Transitions fired across all lanes.
    pub transitions: u64,
    /// Intents addressed to an unregistered UE (dropped, never applied).
    pub rejected: u64,
}

/// Default bound on each lane's state history: old records are dropped
/// oldest-first past this many. Transitions are rare next to passes, so
/// 256 records cover hours of simulated churn per UE while keeping a
/// thousand-UE cell's history footprint bounded.
pub const DEFAULT_HISTORY_CAP: usize = 256;

/// One UE's state lane: the lifecycle plus its running stats and bounded
/// state history.
#[derive(Debug)]
struct Lane {
    ue: UeId,
    lifecycle: LinkLifecycle,
    stats: UeStats,
    history: VecDeque<HistoryRecord>,
    /// Fault/impairment annotation the registering layer attached
    /// (empty = clean front-end); rides on history lines as `"note"`.
    note: String,
    /// Front-end timestamp of the last applied intent (time-in-state
    /// integration anchor).
    last_t_s: Option<f64>,
    touched: bool,
}

/// The single writer of per-UE lifecycle state in a cell.
///
/// Construction registers the full UE set up front; [`StateHandler::pass`]
/// then drains an [`Io`] queue and applies each intent through
/// [`LinkLifecycle::apply`] — the state machine's own sole mutation point
/// — so the whole cell preserves the single-transition-point invariant of
/// DESIGN.md §6 at fleet scale.
#[derive(Debug)]
pub struct StateHandler {
    /// Sorted by id: lookup is a deterministic binary search.
    lanes: Vec<Lane>,
    passes: u64,
    /// Per-lane state-history bound (oldest records dropped past it).
    history_cap: usize,
    /// Reused drain buffer (steady-state passes never allocate).
    scratch: Vec<Intent>,
}

impl StateHandler {
    /// Registers `ues` (deduplicated, sorted internally) with one fresh
    /// lifecycle per UE under a shared configuration.
    pub fn new(ues: impl IntoIterator<Item = UeId>, cfg: LifecycleConfig) -> Self {
        let mut ids: Vec<UeId> = ues.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        let lanes = ids
            .into_iter()
            .map(|ue| Lane {
                ue,
                lifecycle: LinkLifecycle::new(cfg),
                stats: UeStats::default(),
                history: VecDeque::new(),
                note: String::new(),
                last_t_s: None,
                touched: false,
            })
            .collect();
        Self {
            lanes,
            passes: 0,
            history_cap: DEFAULT_HISTORY_CAP,
            scratch: Vec::new(),
        }
    }

    /// Overrides the per-lane state-history bound (0 disables history
    /// entirely). Existing histories are trimmed to the new cap.
    pub fn set_history_cap(&mut self, cap: usize) {
        self.history_cap = cap;
        for lane in &mut self.lanes {
            while lane.history.len() > cap {
                lane.history.pop_front();
            }
        }
    }

    /// Attaches a fault/impairment annotation to a UE's lane (the fleet
    /// layer labels faulted/impaired front-ends at registration); it
    /// rides on every subsequent history line as `"note"`.
    pub fn set_note(&mut self, ue: UeId, note: &str) {
        if let Some(i) = self.lane_idx(ue) {
            self.lanes[i].note.clear();
            self.lanes[i].note.push_str(note);
        }
    }

    /// Registered UE count.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when no UE is registered.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Passes executed so far.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    fn lane_idx(&self, ue: UeId) -> Option<usize> {
        self.lanes.binary_search_by_key(&ue, |l| l.ue).ok()
    }

    /// Current lifecycle state of a UE (`None` for unregistered ids).
    // xtask-allow(hot-path-panic): lane_idx is a binary_search hit over self.lanes, so the index is in bounds by construction
    pub fn state(&self, ue: UeId) -> Option<LinkState> {
        self.lane_idx(ue).map(|i| self.lanes[i].lifecycle.state())
    }

    /// Whether the lifecycle wants a training scan for this UE now — the
    /// probe planner reads this; it never writes.
    // xtask-allow(hot-path-panic): lane_idx is a binary_search hit over self.lanes, so the index is in bounds by construction
    pub fn should_scan(&self, ue: UeId, t_s: f64) -> bool {
        self.lane_idx(ue)
            .is_some_and(|i| self.lanes[i].lifecycle.should_scan(t_s))
    }

    /// Per-UE metrics accumulated so far (`None` for unregistered ids).
    ///
    /// Thin shim over [`StateHandler::stats`], kept for callers of the
    /// original compact form; the registry-facing [`UeStats`] underneath
    /// is the single metric path.
    pub fn metrics(&self, ue: UeId) -> Option<UeMetrics> {
        self.stats(ue).map(UeStats::ue_metrics)
    }

    /// Full per-UE stats accumulated so far (`None` for unregistered
    /// ids): occupancy, time-in-state, exit failures, retrain churn.
    pub fn stats(&self, ue: UeId) -> Option<&UeStats> {
        self.lane_idx(ue).map(|i| &self.lanes[i].stats)
    }

    /// The bounded state history of a UE, oldest first (empty for
    /// unregistered ids).
    pub fn history(&self, ue: UeId) -> impl Iterator<Item = &HistoryRecord> {
        self.lane_idx(ue)
            .into_iter()
            .flat_map(move |i| self.lanes[i].history.iter())
    }

    /// The state history of a UE as JSON values (one per record), labeled
    /// with the UE's resource name and its fault/impairment note.
    pub fn history_json(&self, ue: UeId) -> Vec<String> {
        let Some(i) = self.lane_idx(ue) else {
            return Vec::new();
        };
        let lane = &self.lanes[i];
        let resource = lane.ue.to_string();
        lane.history
            .iter()
            .map(|r| r.to_json(&resource, &lane.note))
            .collect()
    }

    /// The transition log a UE's lifecycle has accumulated (not drained).
    pub fn transition_log(&self, ue: UeId) -> &[Transition] {
        self.lane_idx(ue)
            .map(|i| self.lanes[i].lifecycle.log())
            .unwrap_or(&[])
    }

    /// Drains one UE's accumulated transitions (end-of-run export).
    // xtask-allow(hot-path-panic): lane_idx is a binary_search hit over self.lanes, so the index is in bounds by construction
    // xtask-allow(hot-path-closure): end-of-run export; the empty-vec arm allocates nothing until pushed to
    pub fn drain_transitions(&mut self, ue: UeId) -> Vec<Transition> {
        match self.lane_idx(ue) {
            Some(i) => self.lanes[i].lifecycle.drain_log(),
            None => Vec::new(),
        }
    }

    /// One handler pass: drains everything queued in `io`, applies each
    /// intent to its lane in FIFO order, and updates per-resource metrics.
    /// The only call site in the cell that mutates lifecycle state.
    #[hot_path]
    pub fn pass(&mut self, io: &mut dyn Io) -> PassStats {
        let mut batch = std::mem::take(&mut self.scratch);
        batch.clear();
        io.drain_into(&mut batch);
        let mut stats = PassStats {
            pass: self.passes,
            ..PassStats::default()
        };
        for lane in &mut self.lanes {
            lane.touched = false;
        }
        for intent in &batch {
            let Some(i) = self.lane_idx(intent.ue) else {
                stats.rejected += 1;
                continue;
            };
            let lane = &mut self.lanes[i];
            let sig = match intent.kind {
                IntentKind::Establish { ok, snr_db } => LinkSignal::EstablishResult { ok, snr_db },
                IntentKind::SnrReport {
                    snr_db,
                    ref_db,
                    unexplained_drop,
                } => LinkSignal::SnrReport {
                    snr_db,
                    ref_db,
                    unexplained_drop,
                },
            };
            // Charge the interval since the lane's previous intent to the
            // state it is leaving (front-end clock; clamped so a
            // same-stamp batch never integrates negative time).
            let before = state_kind_index(lane.lifecycle.state().kind());
            debug_assert!(before < lane.stats.time_in_state_s.len());
            if let Some(prev) = lane.last_t_s {
                lane.stats.time_in_state_s[before] += (intent.t_s - prev).max(0.0);
            }
            lane.last_t_s = Some(intent.t_s);
            let fired = lane.lifecycle.apply(sig, intent.t_s);
            lane.stats.intents += 1;
            lane.touched = true;
            stats.applied += 1;
            if let Some(tr) = fired {
                lane.stats.transitions += 1;
                stats.transitions += 1;
                if tr.cause.is_exit_failure() {
                    lane.stats.exit_failures += 1;
                }
                let retry = match tr.to {
                    LinkState::Recovering { attempt } => {
                        lane.stats.retrains += 1;
                        attempt
                    }
                    _ => 0,
                };
                if self.history_cap > 0 {
                    if lane.history.len() == self.history_cap {
                        lane.history.pop_front();
                    }
                    lane.history.push_back(HistoryRecord {
                        pass: self.passes,
                        t_s: intent.t_s,
                        from: tr.from,
                        to: tr.to,
                        cause: tr.cause,
                        intent: intent.kind,
                        retry,
                    });
                }
            }
        }
        for lane in &mut self.lanes {
            if lane.touched {
                lane.stats.active_passes += 1;
                if lane.lifecycle.state().is_established() {
                    lane.stats.established_passes += 1;
                }
                lane.stats.state_passes[state_kind_index(lane.lifecycle.state().kind())] += 1;
            }
        }
        self.passes += 1;
        self.scratch = batch;
        stats
    }
}

/// Registry projection of the per-lane stats. Gated: the byte-identity
/// crates may only touch the metrics registry under the `telemetry`
/// feature (the `telemetry-hygiene` xtask lint enforces it), so the
/// feature-off build carries no registry code at all.
#[cfg(feature = "telemetry")]
impl StateHandler {
    /// Publishes every lane's [`UeStats`] into `reg` as absolute values
    /// (counters set, not added — re-publishing after later passes
    /// overwrites, so a capture layer may call this as often as it
    /// likes). Resources are named `ue{n}`; per-state metrics carry the
    /// stable state name as a `:{state}` suffix.
    pub fn publish_metrics(&self, reg: &mut mmwave_telemetry::MetricsRegistry) {
        for lane in &self.lanes {
            let res = reg.resource(&lane.ue.to_string());
            let s = &lane.stats;
            for (metric, v) in [
                ("intents", s.intents),
                ("transitions", s.transitions),
                ("established_passes", s.established_passes),
                ("active_passes", s.active_passes),
                ("exit_failures", s.exit_failures),
                ("retrains", s.retrains),
            ] {
                let id = reg.counter(res, metric);
                reg.set_counter(id, v);
            }
            for (i, kind) in LinkStateKind::ALL.into_iter().enumerate() {
                let id = reg.counter(res, &format!("state_passes:{}", kind.name()));
                reg.set_counter(id, s.state_passes[i]);
                let id = reg.gauge(res, &format!("time_in_state_s:{}", kind.name()));
                reg.set_gauge(id, s.time_in_state_s[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkstate::LinkStateKind;

    fn handler(n: u32) -> StateHandler {
        StateHandler::new((0..n).map(UeId), LifecycleConfig::default())
    }

    fn establish(io: &mut IntentQueue, ue: u32, t_s: f64, snr_db: f64) {
        io.submit(Intent {
            ue: UeId(ue),
            t_s,
            kind: IntentKind::Establish {
                ok: snr_db > 6.0,
                snr_db,
            },
        });
    }

    #[test]
    fn establishes_independent_lanes() {
        let mut h = handler(3);
        let mut io = IntentQueue::new();
        establish(&mut io, 0, 0.01, 25.0);
        establish(&mut io, 2, 0.01, -60.0);
        let stats = h.pass(&mut io);
        assert_eq!(stats.applied, 2);
        assert_eq!(stats.transitions, 2); // Established + AcquireFailed self-loop.
        assert_eq!(h.state(UeId(0)).unwrap().kind(), LinkStateKind::Steady);
        assert_eq!(h.state(UeId(1)).unwrap().kind(), LinkStateKind::Acquiring);
        assert_eq!(h.state(UeId(2)).unwrap().kind(), LinkStateKind::Acquiring);
        assert_eq!(h.metrics(UeId(0)).unwrap().established_passes, 1);
        assert_eq!(h.metrics(UeId(1)).unwrap().active_passes, 0);
    }

    #[test]
    fn snr_collapse_reaches_outage_via_handler_only() {
        let mut h = handler(1);
        let mut io = IntentQueue::new();
        establish(&mut io, 0, 0.01, 25.0);
        h.pass(&mut io);
        io.submit(Intent {
            ue: UeId(0),
            t_s: 0.05,
            kind: IntentKind::SnrReport {
                snr_db: -10.0,
                ref_db: 25.0,
                unexplained_drop: false,
            },
        });
        let stats = h.pass(&mut io);
        assert_eq!(stats.transitions, 1);
        assert_eq!(h.state(UeId(0)).unwrap().kind(), LinkStateKind::Outage);
        assert_eq!(h.metrics(UeId(0)).unwrap().intents, 2);
        assert_eq!(h.transition_log(UeId(0)).len(), 2);
    }

    #[test]
    fn unknown_ue_is_rejected_not_applied() {
        let mut h = handler(1);
        let mut io = IntentQueue::new();
        establish(&mut io, 9, 0.01, 25.0);
        let stats = h.pass(&mut io);
        assert_eq!(stats.applied, 0);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn pass_order_within_a_lane_is_fifo() {
        // Establish then collapse in one batch: the lane must end in
        // Outage (collapse applied second), not Steady.
        let mut h = handler(1);
        let mut io = IntentQueue::new();
        establish(&mut io, 0, 0.01, 25.0);
        io.submit(Intent {
            ue: UeId(0),
            t_s: 0.02,
            kind: IntentKind::SnrReport {
                snr_db: -10.0,
                ref_db: 25.0,
                unexplained_drop: false,
            },
        });
        h.pass(&mut io);
        assert_eq!(h.state(UeId(0)).unwrap().kind(), LinkStateKind::Outage);
    }

    #[test]
    fn interleaving_across_lanes_does_not_change_outcomes() {
        // Same per-UE intent sequences, different cross-UE interleavings:
        // identical per-lane end states and logs (the shard-invariance
        // property at the handler level).
        let run = |swap: bool| {
            let mut h = handler(2);
            let mut io = IntentQueue::new();
            let a = Intent {
                ue: UeId(0),
                t_s: 0.01,
                kind: IntentKind::Establish {
                    ok: true,
                    snr_db: 25.0,
                },
            };
            let b = Intent {
                ue: UeId(1),
                t_s: 0.01,
                kind: IntentKind::Establish {
                    ok: true,
                    snr_db: 18.0,
                },
            };
            if swap {
                io.submit(b);
                io.submit(a);
            } else {
                io.submit(a);
                io.submit(b);
            }
            h.pass(&mut io);
            for ue in [UeId(0), UeId(1)] {
                io.submit(Intent {
                    ue,
                    t_s: 0.04,
                    kind: IntentKind::SnrReport {
                        snr_db: 24.0,
                        ref_db: 25.0,
                        unexplained_drop: false,
                    },
                });
            }
            h.pass(&mut io);
            (
                h.drain_transitions(UeId(0)),
                h.drain_transitions(UeId(1)),
                h.metrics(UeId(0)).unwrap(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn steady_state_pass_is_reusable_without_growth() {
        let mut h = handler(4);
        let mut io = IntentQueue::new();
        for ue in 0..4 {
            establish(&mut io, ue, 0.01, 25.0);
        }
        h.pass(&mut io);
        for p in 1..50u64 {
            for ue in 0..4 {
                io.submit(Intent {
                    ue: UeId(ue),
                    t_s: 0.01 + p as f64 * 0.025,
                    kind: IntentKind::SnrReport {
                        snr_db: 24.0,
                        ref_db: 25.0,
                        unexplained_drop: false,
                    },
                });
            }
            let stats = h.pass(&mut io);
            assert_eq!(stats.applied, 4);
            assert_eq!(stats.transitions, 0);
        }
        assert_eq!(h.passes(), 50);
        assert_eq!(h.metrics(UeId(3)).unwrap().established_passes, 50);
    }

    /// Drives one lane Steady → Outage → Recovering, returning the
    /// handler for history/stats assertions.
    fn churned_handler() -> StateHandler {
        let mut h = handler(1);
        let mut io = IntentQueue::new();
        establish(&mut io, 0, 0.01, 25.0);
        h.pass(&mut io);
        // Collapse into outage.
        io.submit(Intent {
            ue: UeId(0),
            t_s: 0.05,
            kind: IntentKind::SnrReport {
                snr_db: -10.0,
                ref_db: 25.0,
                unexplained_drop: false,
            },
        });
        h.pass(&mut io);
        // Stay dark long enough for a retrain to be scheduled.
        let mut t = 0.05;
        for _ in 0..40 {
            t += 0.025;
            io.submit(Intent {
                ue: UeId(0),
                t_s: t,
                kind: IntentKind::SnrReport {
                    snr_db: -10.0,
                    ref_db: 25.0,
                    unexplained_drop: false,
                },
            });
            h.pass(&mut io);
            if h.state(UeId(0)).unwrap().kind() == LinkStateKind::Recovering {
                break;
            }
        }
        h
    }

    #[test]
    fn history_records_transitions_with_causes_and_context() {
        let h = churned_handler();
        let hist: Vec<_> = h.history(UeId(0)).copied().collect();
        assert!(hist.len() >= 3, "establish + collapse + retrain expected");
        // History mirrors the lifecycle's own log exactly (same tape).
        let log = h.transition_log(UeId(0));
        assert_eq!(hist.len(), log.len());
        for (r, tr) in hist.iter().zip(log) {
            assert_eq!(
                (r.t_s, r.from, r.to, r.cause),
                (tr.t_s, tr.from, tr.to, tr.cause)
            );
        }
        assert_eq!(hist[0].from.kind(), LinkStateKind::Acquiring);
        assert_eq!(hist[0].to.kind(), LinkStateKind::Steady);
        assert_eq!(hist[0].intent.name(), "establish");
        assert_eq!(hist[0].pass, 0);
        assert_eq!(hist[0].retry, 0);
        let retrain = hist
            .iter()
            .find(|r| r.to.kind() == LinkStateKind::Recovering)
            .expect("a retrain entry");
        assert_eq!(retrain.retry, 1);
        assert_eq!(retrain.intent.name(), "snr-report");
        // Pass stamps are monotone and below the pass count.
        for w in hist.windows(2) {
            assert!(w[0].pass <= w[1].pass);
        }
        assert!(hist.last().unwrap().pass < h.passes());
    }

    #[test]
    fn history_json_uses_stable_names_and_carries_the_note() {
        let mut h = churned_handler();
        h.set_note(UeId(0), "faulted");
        let lines = h.history_json(UeId(0));
        assert_eq!(lines.len(), h.history(UeId(0)).count());
        let first = &lines[0];
        assert!(first.contains("\"resource\":\"ue0\""), "{first}");
        assert!(first.contains("\"from\":\"acquiring\""), "{first}");
        assert!(first.contains("\"to\":\"steady\""), "{first}");
        assert!(first.contains("\"cause\":\"established\""), "{first}");
        assert!(first.contains("\"intent\":\"establish\""), "{first}");
        assert!(first.contains("\"note\":\"faulted\""), "{first}");
        for l in &lines {
            mmwave_telemetry::validate_json_line(l).expect("history line must be strict JSON");
        }
        assert!(h.history_json(UeId(9)).is_empty());
    }

    #[test]
    fn history_is_bounded_oldest_first() {
        let mut h = handler(1);
        h.set_history_cap(3);
        let mut io = IntentQueue::new();
        // Alternate failed/ok establishment to fire a transition per pass.
        for p in 0..10u64 {
            establish(
                &mut io,
                0,
                0.01 + p as f64 * 0.025,
                if p % 2 == 0 { 25.0 } else { -60.0 },
            );
            h.pass(&mut io);
        }
        // Transitions fire on the successful establishments (Steady
        // re-establish; a failed establish from Steady is a no-op), i.e.
        // on even passes 0,2,4,6,8 — five records against a cap of 3.
        let hist: Vec<_> = h.history(UeId(0)).copied().collect();
        assert_eq!(hist.len(), 3);
        // Only the newest records survive.
        assert_eq!(hist.last().unwrap().pass, 8);
        assert!(hist[0].pass >= 4);
        h.set_history_cap(1);
        assert_eq!(h.history(UeId(0)).count(), 1);
        h.set_history_cap(0);
        establish(&mut io, 0, 1.0, 25.0);
        h.pass(&mut io);
        assert_eq!(h.history(UeId(0)).count(), 0);
    }

    #[test]
    fn stats_track_occupancy_time_and_churn() {
        let h = churned_handler();
        let s = h.stats(UeId(0)).unwrap();
        // The shim is exactly the compact projection of the stats.
        assert_eq!(h.metrics(UeId(0)).unwrap(), s.ue_metrics());
        assert!(s.retrains >= 1);
        assert!(s.exit_failures == 0 || s.exit_failures < s.transitions);
        // Occupancy: every touched pass lands in exactly one state bucket.
        assert_eq!(s.state_passes.iter().sum::<u64>(), s.active_passes);
        assert!(s.state_passes[state_kind_index(LinkStateKind::Outage)] >= 1);
        // Time-in-state integrates the front-end clock: total equals the
        // span from first to last intent (all dt's are non-negative).
        let total: f64 = s.time_in_state_s.iter().sum();
        assert!(total > 0.0);
        assert!(s.time_in_state_s.iter().all(|&t| t >= 0.0));
        assert!(s.time_in_state_s[state_kind_index(LinkStateKind::Outage)] > 0.0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn publish_metrics_projects_stats_into_the_registry() {
        let h = churned_handler();
        let mut reg = mmwave_telemetry::MetricsRegistry::new();
        h.publish_metrics(&mut reg);
        let s = h.stats(UeId(0)).unwrap();
        let c = reg.find_counter("ue0", "intents").unwrap();
        assert_eq!(reg.counter_value(c), s.intents);
        let c = reg.find_counter("ue0", "retrains").unwrap();
        assert_eq!(reg.counter_value(c), s.retrains);
        let c = reg.find_counter("ue0", "state_passes:outage").unwrap();
        assert_eq!(
            reg.counter_value(c),
            s.state_passes[state_kind_index(LinkStateKind::Outage)]
        );
        let g = reg.find_gauge("ue0", "time_in_state_s:outage").unwrap();
        assert_eq!(
            reg.gauge_value(g),
            s.time_in_state_s[state_kind_index(LinkStateKind::Outage)]
        );
        // Re-publishing is idempotent (absolute values, not deltas).
        h.publish_metrics(&mut reg);
        let c = reg.find_counter("ue0", "intents").unwrap();
        assert_eq!(reg.counter_value(c), s.intents);
    }
}
