//! Cell-level state ownership: one handler, many UEs, typed intents.
//!
//! A fleet-scale cell serves thousands of UEs whose per-link
//! [`LinkLifecycle`] state must be managed centrally at the array (the
//! architecture multi-array beamforming testbeds converge on: per-user
//! beam state lives in one place, everything else talks to it through a
//! mailbox). This module is that shape:
//!
//! - [`StateHandler`] owns every per-UE [`LinkLifecycle`] in the cell and
//!   is the **only** writer of that state — the same single-writer
//!   discipline the `lifecycle-single-writer` xtask lint enforces for the
//!   state machine itself, lifted one level up.
//! - Peers (the fleet scheduler, probe planner, fault/impairment layers)
//!   never touch a lifecycle. They queue typed [`Intent`]s through an
//!   [`Io`] implementation, and the handler drains the queue once per
//!   [`StateHandler::pass`], applying each intent at its timestamp and
//!   accounting per-resource metrics.
//!
//! Determinism: a pass applies intents in exactly the order the [`Io`]
//! yields them. Lanes (per-UE state) are independent, so any schedule
//! that preserves each UE's own intent order produces bit-identical
//! lifecycle evolutions — the property the fleet's shard-count-invariant
//! digest rests on. Lane lookup is a binary search over a sorted id
//! table, not a hash map, so iteration order is reproducible too.
//!
//! The steady-state pass is allocation-free: the drain buffer is owned by
//! the handler and reused, and lifecycle logs only grow when a transition
//! actually fires.

use crate::linkstate::{LifecycleConfig, LinkLifecycle, LinkSignal, LinkState, Transition};
use mmwave_hotpath::hot_path;

/// Identity of one UE within a cell. Cell-local: the fleet layer maps
/// global UE indices onto the ids it registered with the handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UeId(pub u32);

impl std::fmt::Display for UeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ue{}", self.0)
    }
}

/// What a peer wants the handler to feed a UE's lifecycle. Mirrors
/// [`LinkSignal`] — intents are the *transport* form; the handler is the
/// only code that turns them into signals and applies them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IntentKind {
    /// A training/establishment attempt finished for this UE.
    Establish {
        /// The scan produced a usable link clearing the outage threshold.
        ok: bool,
        /// Post-establishment wideband SNR, dB.
        snr_db: f64,
    },
    /// One maintenance window measured the live link.
    SnrReport {
        /// Wideband SNR over the window, dB.
        snr_db: f64,
        /// Healthy reference (best establishment SNR), dB.
        ref_db: f64,
        /// Maintenance lost the plot (deep unexplained drop).
        unexplained_drop: bool,
    },
}

/// One queued instruction: *which* UE, *when* (front-end clock), *what*.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Intent {
    /// Target UE.
    pub ue: UeId,
    /// Front-end timestamp the signal applies at, seconds.
    pub t_s: f64,
    /// The typed payload.
    pub kind: IntentKind,
}

/// The mailbox interface between peers and the handler. Peers only ever
/// [`Io::submit`]; the handler drains everything queued since the last
/// pass with [`Io::drain_into`] (FIFO, preserving submission order).
pub trait Io {
    /// Queues one intent.
    fn submit(&mut self, intent: Intent);

    /// Moves every queued intent into `out` (appending, oldest first) and
    /// leaves the queue empty. Implementations must preserve submission
    /// order — the handler's determinism contract depends on it.
    fn drain_into(&mut self, out: &mut Vec<Intent>);

    /// Queued intents not yet drained.
    fn pending(&self) -> usize;
}

/// The default FIFO queue: a reused `Vec`, allocation-free in steady
/// state once it reaches its high-water mark.
#[derive(Debug, Default)]
pub struct IntentQueue {
    queue: Vec<Intent>,
}

impl IntentQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Io for IntentQueue {
    fn submit(&mut self, intent: Intent) {
        self.queue.push(intent);
    }

    #[hot_path]
    fn drain_into(&mut self, out: &mut Vec<Intent>) {
        out.append(&mut self.queue);
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Per-UE resource accounting the handler emits as it drains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UeMetrics {
    /// Intents applied to this UE's lifecycle.
    pub intents: u64,
    /// Transitions those intents fired.
    pub transitions: u64,
    /// Passes this UE ended in an established state (`Steady`/`Degraded`).
    pub established_passes: u64,
    /// Handler passes that touched this UE at all.
    pub active_passes: u64,
}

/// What one [`StateHandler::pass`] did, in aggregate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Pass sequence number (0-based).
    pub pass: u64,
    /// Intents drained and applied.
    pub applied: u64,
    /// Transitions fired across all lanes.
    pub transitions: u64,
    /// Intents addressed to an unregistered UE (dropped, never applied).
    pub rejected: u64,
}

/// One UE's state lane: the lifecycle plus its running metrics.
#[derive(Debug)]
struct Lane {
    ue: UeId,
    lifecycle: LinkLifecycle,
    metrics: UeMetrics,
    touched: bool,
}

/// The single writer of per-UE lifecycle state in a cell.
///
/// Construction registers the full UE set up front; [`StateHandler::pass`]
/// then drains an [`Io`] queue and applies each intent through
/// [`LinkLifecycle::apply`] — the state machine's own sole mutation point
/// — so the whole cell preserves the single-transition-point invariant of
/// DESIGN.md §6 at fleet scale.
#[derive(Debug)]
pub struct StateHandler {
    /// Sorted by id: lookup is a deterministic binary search.
    lanes: Vec<Lane>,
    passes: u64,
    /// Reused drain buffer (steady-state passes never allocate).
    scratch: Vec<Intent>,
}

impl StateHandler {
    /// Registers `ues` (deduplicated, sorted internally) with one fresh
    /// lifecycle per UE under a shared configuration.
    pub fn new(ues: impl IntoIterator<Item = UeId>, cfg: LifecycleConfig) -> Self {
        let mut ids: Vec<UeId> = ues.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        let lanes = ids
            .into_iter()
            .map(|ue| Lane {
                ue,
                lifecycle: LinkLifecycle::new(cfg),
                metrics: UeMetrics::default(),
                touched: false,
            })
            .collect();
        Self {
            lanes,
            passes: 0,
            scratch: Vec::new(),
        }
    }

    /// Registered UE count.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when no UE is registered.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Passes executed so far.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    fn lane_idx(&self, ue: UeId) -> Option<usize> {
        self.lanes.binary_search_by_key(&ue, |l| l.ue).ok()
    }

    /// Current lifecycle state of a UE (`None` for unregistered ids).
    pub fn state(&self, ue: UeId) -> Option<LinkState> {
        self.lane_idx(ue).map(|i| self.lanes[i].lifecycle.state())
    }

    /// Whether the lifecycle wants a training scan for this UE now — the
    /// probe planner reads this; it never writes.
    pub fn should_scan(&self, ue: UeId, t_s: f64) -> bool {
        self.lane_idx(ue)
            .is_some_and(|i| self.lanes[i].lifecycle.should_scan(t_s))
    }

    /// Per-UE metrics accumulated so far (`None` for unregistered ids).
    pub fn metrics(&self, ue: UeId) -> Option<&UeMetrics> {
        self.lane_idx(ue).map(|i| &self.lanes[i].metrics)
    }

    /// The transition log a UE's lifecycle has accumulated (not drained).
    pub fn transition_log(&self, ue: UeId) -> &[Transition] {
        self.lane_idx(ue)
            .map(|i| self.lanes[i].lifecycle.log())
            .unwrap_or(&[])
    }

    /// Drains one UE's accumulated transitions (end-of-run export).
    pub fn drain_transitions(&mut self, ue: UeId) -> Vec<Transition> {
        match self.lane_idx(ue) {
            Some(i) => self.lanes[i].lifecycle.drain_log(),
            None => Vec::new(),
        }
    }

    /// One handler pass: drains everything queued in `io`, applies each
    /// intent to its lane in FIFO order, and updates per-resource metrics.
    /// The only call site in the cell that mutates lifecycle state.
    #[hot_path]
    pub fn pass(&mut self, io: &mut dyn Io) -> PassStats {
        let mut batch = std::mem::take(&mut self.scratch);
        batch.clear();
        io.drain_into(&mut batch);
        let mut stats = PassStats {
            pass: self.passes,
            ..PassStats::default()
        };
        for lane in &mut self.lanes {
            lane.touched = false;
        }
        for intent in &batch {
            let Some(i) = self.lane_idx(intent.ue) else {
                stats.rejected += 1;
                continue;
            };
            let lane = &mut self.lanes[i];
            let sig = match intent.kind {
                IntentKind::Establish { ok, snr_db } => LinkSignal::EstablishResult { ok, snr_db },
                IntentKind::SnrReport {
                    snr_db,
                    ref_db,
                    unexplained_drop,
                } => LinkSignal::SnrReport {
                    snr_db,
                    ref_db,
                    unexplained_drop,
                },
            };
            let fired = lane.lifecycle.apply(sig, intent.t_s);
            lane.metrics.intents += 1;
            lane.touched = true;
            stats.applied += 1;
            if fired.is_some() {
                lane.metrics.transitions += 1;
                stats.transitions += 1;
            }
        }
        for lane in &mut self.lanes {
            if lane.touched {
                lane.metrics.active_passes += 1;
                if lane.lifecycle.state().is_established() {
                    lane.metrics.established_passes += 1;
                }
            }
        }
        self.passes += 1;
        self.scratch = batch;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkstate::LinkStateKind;

    fn handler(n: u32) -> StateHandler {
        StateHandler::new((0..n).map(UeId), LifecycleConfig::default())
    }

    fn establish(io: &mut IntentQueue, ue: u32, t_s: f64, snr_db: f64) {
        io.submit(Intent {
            ue: UeId(ue),
            t_s,
            kind: IntentKind::Establish {
                ok: snr_db > 6.0,
                snr_db,
            },
        });
    }

    #[test]
    fn establishes_independent_lanes() {
        let mut h = handler(3);
        let mut io = IntentQueue::new();
        establish(&mut io, 0, 0.01, 25.0);
        establish(&mut io, 2, 0.01, -60.0);
        let stats = h.pass(&mut io);
        assert_eq!(stats.applied, 2);
        assert_eq!(stats.transitions, 2); // Established + AcquireFailed self-loop.
        assert_eq!(h.state(UeId(0)).unwrap().kind(), LinkStateKind::Steady);
        assert_eq!(h.state(UeId(1)).unwrap().kind(), LinkStateKind::Acquiring);
        assert_eq!(h.state(UeId(2)).unwrap().kind(), LinkStateKind::Acquiring);
        assert_eq!(h.metrics(UeId(0)).unwrap().established_passes, 1);
        assert_eq!(h.metrics(UeId(1)).unwrap().active_passes, 0);
    }

    #[test]
    fn snr_collapse_reaches_outage_via_handler_only() {
        let mut h = handler(1);
        let mut io = IntentQueue::new();
        establish(&mut io, 0, 0.01, 25.0);
        h.pass(&mut io);
        io.submit(Intent {
            ue: UeId(0),
            t_s: 0.05,
            kind: IntentKind::SnrReport {
                snr_db: -10.0,
                ref_db: 25.0,
                unexplained_drop: false,
            },
        });
        let stats = h.pass(&mut io);
        assert_eq!(stats.transitions, 1);
        assert_eq!(h.state(UeId(0)).unwrap().kind(), LinkStateKind::Outage);
        assert_eq!(h.metrics(UeId(0)).unwrap().intents, 2);
        assert_eq!(h.transition_log(UeId(0)).len(), 2);
    }

    #[test]
    fn unknown_ue_is_rejected_not_applied() {
        let mut h = handler(1);
        let mut io = IntentQueue::new();
        establish(&mut io, 9, 0.01, 25.0);
        let stats = h.pass(&mut io);
        assert_eq!(stats.applied, 0);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn pass_order_within_a_lane_is_fifo() {
        // Establish then collapse in one batch: the lane must end in
        // Outage (collapse applied second), not Steady.
        let mut h = handler(1);
        let mut io = IntentQueue::new();
        establish(&mut io, 0, 0.01, 25.0);
        io.submit(Intent {
            ue: UeId(0),
            t_s: 0.02,
            kind: IntentKind::SnrReport {
                snr_db: -10.0,
                ref_db: 25.0,
                unexplained_drop: false,
            },
        });
        h.pass(&mut io);
        assert_eq!(h.state(UeId(0)).unwrap().kind(), LinkStateKind::Outage);
    }

    #[test]
    fn interleaving_across_lanes_does_not_change_outcomes() {
        // Same per-UE intent sequences, different cross-UE interleavings:
        // identical per-lane end states and logs (the shard-invariance
        // property at the handler level).
        let run = |swap: bool| {
            let mut h = handler(2);
            let mut io = IntentQueue::new();
            let a = Intent {
                ue: UeId(0),
                t_s: 0.01,
                kind: IntentKind::Establish {
                    ok: true,
                    snr_db: 25.0,
                },
            };
            let b = Intent {
                ue: UeId(1),
                t_s: 0.01,
                kind: IntentKind::Establish {
                    ok: true,
                    snr_db: 18.0,
                },
            };
            if swap {
                io.submit(b);
                io.submit(a);
            } else {
                io.submit(a);
                io.submit(b);
            }
            h.pass(&mut io);
            for ue in [UeId(0), UeId(1)] {
                io.submit(Intent {
                    ue,
                    t_s: 0.04,
                    kind: IntentKind::SnrReport {
                        snr_db: 24.0,
                        ref_db: 25.0,
                        unexplained_drop: false,
                    },
                });
            }
            h.pass(&mut io);
            (
                h.drain_transitions(UeId(0)),
                h.drain_transitions(UeId(1)),
                *h.metrics(UeId(0)).unwrap(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn steady_state_pass_is_reusable_without_growth() {
        let mut h = handler(4);
        let mut io = IntentQueue::new();
        for ue in 0..4 {
            establish(&mut io, ue, 0.01, 25.0);
        }
        h.pass(&mut io);
        for p in 1..50u64 {
            for ue in 0..4 {
                io.submit(Intent {
                    ue: UeId(ue),
                    t_s: 0.01 + p as f64 * 0.025,
                    kind: IntentKind::SnrReport {
                        snr_db: 24.0,
                        ref_db: 25.0,
                        unexplained_drop: false,
                    },
                });
            }
            let stats = h.pass(&mut io);
            assert_eq!(stats.applied, 4);
            assert_eq!(stats.transitions, 0);
        }
        assert_eq!(h.passes(), 50);
        assert_eq!(h.metrics(UeId(3)).unwrap().established_passes, 50);
    }
}
