//! The mmReliable beam-maintenance controller (paper Fig. 9).
//!
//! One controller instance owns the gNB-side beam state. Its life cycle:
//!
//! 1. **Establish** — exhaustive beam training (SSB scan) finds the viable
//!    path directions; the two-probe estimator supplies each extra beam's
//!    `(δ, σ)`; the constructive multi-beam goes live and per-beam
//!    baselines are recorded.
//! 2. **Maintain** — every CSI-RS tick: one probe through the multi-beam,
//!    super-resolution recovers per-beam powers, each beam's change is
//!    classified (stable / mobility / blockage):
//!    * *mobility* → invert the beam pattern for `|Δθ|`, resolve the sign
//!      with one hypothesis probe, realign, refresh `(δ, σ)`;
//!    * *blockage* → zero that component (its power re-purposes to the
//!      survivors through TRP renormalization) and re-probe it
//!      periodically for recovery.
//! 3. **Re-train** — when the link degrades beyond what maintenance can
//!    explain, fall back to a full training scan.
//!
//! The establish / maintain / re-train life cycle is governed by the
//! explicit [`LinkLifecycle`] state machine ([`crate::linkstate`]): every
//! state change goes through its single transition function, re-training
//! runs with bounded attempts and exponential backoff instead of
//! hot-looping SSB scans, and an episode that exhausts its retry budget
//! escalates to a **wide-beam degraded fallback** that keeps serving what
//! it can until conditions visibly improve.

use crate::blockage::{BeamEvent, BlockageDetector};
use crate::config::MmReliableConfig;
use crate::frontend::LinkFrontEnd;
use crate::linkstate::{LinkLifecycle, LinkSignal, LinkState, Transition};
use crate::probing::two_probe_relative;
use crate::superres::{estimate_per_beam, SuperResConfig};
use crate::tracking::BeamTracker;
use crate::training::{beam_training, TrainingResult};
use mmwave_array::codebook::Codebook;
use mmwave_array::multibeam::{BeamComponent, MultiBeam};
use mmwave_array::pattern::hpbw_deg;
use mmwave_array::steering::{single_beam, wide_beam};
use mmwave_array::weights::BeamWeights;
use mmwave_dsp::units::db_from_pow;

/// Columns kept active in the wide-beam degraded fallback (of the 8-column
/// paper array): half the aperture ≈ twice the beamwidth.
const FALLBACK_ACTIVE_COLUMNS: usize = 4;

/// One-word summary of a round's actions for the telemetry `round` event,
/// most-drastic action first.
#[cfg(feature = "telemetry")]
fn round_verdict(actions: &[ControllerAction]) -> &'static str {
    let mut verdict = "steady";
    for a in actions {
        verdict = match a {
            ControllerAction::Retrained => return "retrain",
            ControllerAction::Established(_) => "establish",
            ControllerAction::BeamBlocked(_) => "blockage",
            ControllerAction::BeamRecovered(_) if verdict == "steady" => "recovery",
            ControllerAction::Realigned { .. } if verdict == "steady" => "realign",
            _ => verdict,
        };
    }
    verdict
}

/// Reports at or below this SNR carry no measured signal at all — the
/// observation is indistinguishable from a lost/erased probe, so it is not
/// treated as evidence for an *urgent* (same-round) re-train. The probe
/// floor is −60 dB; real deep fades (30+ dB of blockage on a ~25 dB link)
/// still measure far above this.
const ERASURE_FLOOR_DB: f64 = -55.0;

/// Something the controller did during a round.
#[derive(Clone, Debug, PartialEq)]
pub enum ControllerAction {
    /// A multi-beam went live on these angles (degrees).
    Established(Vec<f64>),
    /// Beam `idx` was realigned from → to degrees.
    Realigned {
        /// Component index.
        idx: usize,
        /// Previous steering angle.
        from_deg: f64,
        /// New steering angle.
        to_deg: f64,
    },
    /// Beam `idx` was declared blocked; its power re-purposed.
    BeamBlocked(usize),
    /// Beam `idx` recovered and was readmitted.
    BeamRecovered(usize),
    /// Full re-training was triggered.
    Retrained,
}

/// Outcome of one maintenance round.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Wideband SNR measured on the data beam this round, dB.
    pub snr_db: f64,
    /// Per-beam powers from super-resolution, dB (empty before establish).
    pub per_beam_db: Vec<f64>,
    /// Actions taken.
    pub actions: Vec<ControllerAction>,
    /// Probes consumed this round.
    pub probes: usize,
    /// Lifecycle state after the round.
    pub state: LinkState,
    /// Lifecycle transitions that fired during the round.
    pub transitions: Vec<Transition>,
}

/// The mmReliable gNB controller.
pub struct MmReliableController {
    cfg: MmReliableConfig,
    superres_cfg: SuperResConfig,
    mb: Option<MultiBeam>,
    rel_delays_ns: Vec<f64>,
    trackers: Vec<BeamTracker>,
    detectors: Vec<BlockageDetector>,
    /// Saved component amplitude of blocked beams (for restoration).
    saved_amp: Vec<f64>,
    rounds: usize,
    last_training: Option<TrainingResult>,
    /// Wideband SNR right after establishment (the healthy reference).
    established_snr_db: Option<f64>,
    /// Best establishment SNR seen so far — the long-term health reference.
    /// A re-training that runs *during* a blockage storm establishes a
    /// degraded link; judging "degraded" against this value (decayed when
    /// re-trainings keep landing low) lets the controller rediscover the
    /// good paths once the storm passes without re-training forever in a
    /// genuinely worse environment.
    best_snr_db: f64,
    /// The lifecycle state machine — the sole owner of link state.
    lifecycle: LinkLifecycle,
    /// Telemetry handle: super-resolution fit spans and per-round link
    /// events. Disabled (free) by default.
    #[cfg(feature = "telemetry")]
    tracer: mmwave_telemetry::Tracer,
}

impl MmReliableController {
    /// Creates a controller; no link is established yet.
    pub fn new(cfg: MmReliableConfig) -> Self {
        cfg.validate().expect("invalid configuration");
        // The lifecycle's outage threshold mirrors the controller's decode
        // threshold — one source of truth.
        let mut lc_cfg = cfg.lifecycle;
        lc_cfg.outage_snr_db = cfg.outage_snr_db;
        Self {
            cfg,
            superres_cfg: SuperResConfig::default(),
            mb: None,
            rel_delays_ns: Vec::new(),
            trackers: Vec::new(),
            detectors: Vec::new(),
            saved_amp: Vec::new(),
            rounds: 0,
            last_training: None,
            established_snr_db: None,
            best_snr_db: f64::NEG_INFINITY,
            lifecycle: LinkLifecycle::new(lc_cfg),
            #[cfg(feature = "telemetry")]
            tracer: mmwave_telemetry::Tracer::disabled(),
        }
    }

    /// Installs a telemetry tracer on the controller and its lifecycle
    /// machine. Compiled to a no-op without the `telemetry` feature.
    pub fn set_tracer(&mut self, tracer: mmwave_telemetry::Tracer) {
        #[cfg(feature = "telemetry")]
        {
            self.lifecycle.set_tracer(tracer.clone());
            self.tracer = tracer;
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = tracer;
    }

    /// Super-resolution per-beam fit, wrapped in a telemetry span so the
    /// fit's latency lands in the `superres-fit` histogram.
    fn fit_per_beam(
        &self,
        obs: &mmwave_phy::chanest::ProbeObservation,
        t_s: f64,
    ) -> crate::superres::PerBeamEstimate {
        #[cfg(not(feature = "telemetry"))]
        let _ = t_s;
        #[cfg(feature = "telemetry")]
        let clock = self.tracer.begin();
        let est = estimate_per_beam(obs, &self.rel_delays_ns, &self.superres_cfg);
        #[cfg(feature = "telemetry")]
        self.tracer
            .end(clock, mmwave_telemetry::Stage::SuperresFit, t_s);
        est
    }

    /// Configuration accessor.
    pub fn config(&self) -> &MmReliableConfig {
        &self.cfg
    }

    /// The lifecycle state machine (read-only).
    pub fn lifecycle(&self) -> &LinkLifecycle {
        &self.lifecycle
    }

    /// Current lifecycle state.
    pub fn link_state(&self) -> LinkState {
        self.lifecycle.state()
    }

    /// Takes the lifecycle transitions accumulated since the last drain.
    pub fn drain_transitions(&mut self) -> Vec<Transition> {
        self.lifecycle.drain_log()
    }

    /// The current multi-beam, if established.
    pub fn multibeam(&self) -> Option<&MultiBeam> {
        self.mb.as_ref()
    }

    /// The most recent training scan (profile + viable paths).
    pub fn last_training(&self) -> Option<&TrainingResult> {
        self.last_training.as_ref()
    }

    /// Hardware-quantized weights currently used for data transmission.
    /// Falls back to a broadside single beam before establishment, and to a
    /// wide beam at the best-known direction when the lifecycle's retry
    /// budget is exhausted (degraded fallback: coverage over gain).
    pub fn current_weights(&self) -> BeamWeights {
        let ideal = if self.lifecycle.fallback_active() {
            wide_beam(
                &self.cfg.geom,
                self.fallback_angle_deg(),
                FALLBACK_ACTIVE_COLUMNS,
            )
        } else {
            match &self.mb {
                Some(mb) => mb.weights(&self.cfg.geom),
                None => single_beam(&self.cfg.geom, 0.0),
            }
        };
        self.cfg.quantizer.quantize(&ideal)
    }

    /// The best-known link direction for the wide-beam fallback: the
    /// strongest still-active multi-beam component (or the reference beam
    /// when everything is muted; broadside with no link history).
    fn fallback_angle_deg(&self) -> f64 {
        let Some(mb) = &self.mb else { return 0.0 };
        mb.components()
            .iter()
            .filter(|c| c.amplitude > 0.0)
            .max_by(|a, b| a.amplitude.total_cmp(&b.amplitude))
            .map(|c| c.angle_deg)
            .unwrap_or_else(|| mb.component(0).angle_deg)
    }

    /// Runs beam training + constructive multi-beam establishment and
    /// reports the outcome to the lifecycle machine.
    /// Returns the actions taken (empty if no path was found).
    // xtask-allow(hot-path-closure): link (re)establishment builds its codebook, scan buffers, and action list once per acquisition event — an exceptional-path cost, not a per-slot one (ROADMAP item 1)
    // xtask-allow(hot-path-panic): scan/component indices are bounded by the codebook and component counts fixed at the top of the function
    pub fn establish(&mut self, fe: &mut dyn LinkFrontEnd) -> Vec<ControllerAction> {
        let geom = self.cfg.geom;
        let codebook =
            Codebook::uniform(&geom, self.cfg.training_beams, self.cfg.training_span_deg);
        let min_sep = 0.8 * hpbw_deg(&geom, 0.0);
        let training = beam_training(
            fe,
            &codebook,
            self.cfg.max_beams,
            self.cfg.viable_window_db,
            min_sep,
        );
        if training.viable.is_empty() {
            self.last_training = Some(training);
            // A failed *re*-train keeps the previous multi-beam (best
            // effort beats silence); a failed initial scan leaves none.
            self.lifecycle.apply(
                LinkSignal::EstablishResult {
                    ok: false,
                    snr_db: f64::NEG_INFINITY,
                },
                fe.now_s(),
            );
            return Vec::new();
        }
        let reference = training.viable[0];
        let mut components = vec![BeamComponent::reference(reference.angle_deg)];
        let mut rel_delays = vec![0.0];
        for v in training.viable.iter().skip(1) {
            let rel = two_probe_relative(
                fe,
                reference.angle_deg,
                v.angle_deg,
                &[reference.power_mw],
                &[v.power_mw],
                v.delay_ns - reference.delay_ns,
            );
            let (delta, sigma) = if self.cfg.enable_constructive {
                (rel.delta.clamp(0.0, 1.5), rel.sigma_rad)
            } else {
                // Ablation: blind equal split, no phase alignment.
                (1.0, 0.0)
            };
            components.push(BeamComponent::new(v.angle_deg, delta, sigma));
            rel_delays.push(v.delay_ns - reference.delay_ns);
        }
        let mb = MultiBeam::new(components);
        let angles = mb.angles_deg();
        self.mb = Some(mb);
        self.rel_delays_ns = rel_delays;
        self.last_training = Some(training);
        // Baseline probe through the live multi-beam.
        let obs = fe.probe(&self.current_weights());
        let est = self.fit_per_beam(&obs, fe.now_s());
        let baselines = est.powers_db();
        self.trackers = angles
            .iter()
            .zip(&baselines)
            .map(|(&a, &b)| BeamTracker::new(a, b, self.cfg.power_ewma_alpha, 8))
            .collect();
        self.detectors = (0..angles.len())
            .map(|_| {
                BlockageDetector::new(self.cfg.blockage_rate_db, 1.5, self.cfg.recovery_margin_db)
            })
            .collect();
        self.saved_amp = vec![0.0; angles.len()];
        self.rounds = 0;
        let snr_db = obs.snr_db();
        self.established_snr_db = Some(snr_db);
        if snr_db > self.best_snr_db {
            self.best_snr_db = snr_db;
        } else if snr_db < self.best_snr_db - self.cfg.lifecycle.degraded_drop_db {
            // Re-trainings keep landing well below the old best: the
            // environment got genuinely worse. Decay the reference so the
            // lifecycle converges instead of scheduling re-trains forever.
            self.best_snr_db = snr_db.max(self.best_snr_db - 6.0);
        }
        // A scan that lands below the decode threshold did not recover the
        // link: count it against the episode's retry budget (the fresh
        // multi-beam stays — best effort — but the state machine keeps
        // backing off).
        let ok = snr_db >= self.cfg.outage_snr_db;
        self.lifecycle
            .apply(LinkSignal::EstablishResult { ok, snr_db }, fe.now_s());
        vec![ControllerAction::Established(angles)]
    }

    /// One CSI-RS maintenance tick, dispatched on the lifecycle state:
    /// acquisition scans are paced by backoff, the degraded fallback runs a
    /// minimal keep-alive loop, and the normal maintenance path feeds its
    /// measurement to the state machine which schedules bounded re-trains.
    // xtask-allow(hot-path-closure): the maintenance round runs every csi_rs_period slots, not per slot; its report/action buffers are per-round by design (ROADMAP item 1 tracks moving them into a scratch struct)
    // xtask-allow(hot-path-panic): per-beam indices are bounded by the component count of the established multi-beam; the expects state lifecycle invariants (established implies mb is Some)
    pub fn maintenance_round(&mut self, fe: &mut dyn LinkFrontEnd) -> RoundReport {
        // Cooperative cancellation point: a supervisor that has given up on
        // this run (deadline, tick budget) stops the maintenance loop here
        // rather than paying for another round of probes.
        if fe.cancel_requested() {
            crate::cancel::bail();
        }
        let probes_before = fe.probes_used();
        let log_before = self.lifecycle.log().len();

        // --- Acquiring: no link yet; scans are paced by the backoff. ---
        if !self.lifecycle.state().is_established() {
            let actions = if self.lifecycle.should_scan(fe.now_s()) {
                self.establish(fe)
            } else {
                Vec::new()
            };
            let snr_db = if self.mb.is_some() {
                fe.probe(&self.current_weights()).snr_db()
            } else {
                -60.0
            };
            let probes = fe.probes_used() - probes_before;
            return self.report(fe.now_s(), snr_db, Vec::new(), actions, probes, log_before);
        }

        // --- Degraded wide-beam fallback: keep-alive probing only; the
        // multi-beam machinery is stale by definition. A marked SNR
        // improvement (or the safety-net heartbeat) re-trains.
        if self.lifecycle.fallback_active() {
            self.rounds += 1;
            let mut actions = Vec::new();
            let snr_db = fe.probe(&self.current_weights()).snr_db();
            self.lifecycle.apply(
                LinkSignal::SnrReport {
                    snr_db,
                    ref_db: self.best_snr_db,
                    unexplained_drop: false,
                },
                fe.now_s(),
            );
            if matches!(self.lifecycle.state(), LinkState::Recovering { .. }) {
                actions.push(ControllerAction::Retrained);
                let mut est_actions = self.establish(fe);
                actions.append(&mut est_actions);
            }
            let probes = fe.probes_used() - probes_before;
            return self.report(fe.now_s(), snr_db, Vec::new(), actions, probes, log_before);
        }

        self.rounds += 1;
        let mut actions = Vec::new();

        // 1. Probe the live multi-beam; super-resolve per-beam powers.
        let obs = fe.probe(&self.current_weights());
        let snr_db = obs.snr_db();
        let est = self.fit_per_beam(&obs, fe.now_s());
        let per_beam_db = est.powers_db();
        // Relative ToFs drift slowly with user motion (§4.3); adopt the
        // jitter-refined values so the dictionary follows the geometry.
        self.rel_delays_ns = est.rel_delays_ns.clone();

        // 2. Classify each active beam.
        let k_total = per_beam_db.len();
        let mut realign: Vec<(usize, f64)> = Vec::new();
        for (k, &beam_db) in per_beam_db.iter().enumerate() {
            if self.detectors[k].is_blocked() {
                continue; // handled by the recovery path below
            }
            let upd = self.trackers[k].update(&self.cfg.geom, beam_db);
            match self.detectors[k].classify(upd.delta_db, upd.drop_db) {
                BeamEvent::Blocked => {
                    let mb = self.mb.as_mut().expect("established");
                    if mb.component(k).amplitude > 0.0 {
                        self.saved_amp[k] = mb.component(k).amplitude;
                        mb.component_mut(k).amplitude = 0.0;
                    }
                    actions.push(ControllerAction::BeamBlocked(k));
                }
                BeamEvent::Mobility => {
                    if self.cfg.enable_tracking {
                        if let Some(dev) = upd.deviation_deg {
                            if dev > 1.0 {
                                realign.push((k, dev.min(self.cfg.max_step_deg)));
                            }
                        }
                    }
                }
                BeamEvent::Stable | BeamEvent::Recovered => {}
            }
        }

        // Guard: if every beam just got blocked, restore them — an all-beam
        // "blockage" is indistinguishable from a common-mode fade and
        // muting everything would silence the link entirely.
        if self.active_beams() == 0 {
            let mb = self.mb.as_mut().expect("established");
            for k in 0..k_total {
                if self.saved_amp[k] > 0.0 {
                    mb.component_mut(k).amplitude = self.saved_amp[k];
                    self.detectors[k].set_blocked(false);
                }
            }
        }

        // 3. Mobility: hypothesis probe resolves the ± ambiguity jointly.
        // Skip in rounds with blockage transitions: the per-beam powers are
        // mid-ramp and would mislead the pattern inversion.
        let blockage_transition = actions.iter().any(|a| {
            matches!(
                a,
                ControllerAction::BeamBlocked(_) | ControllerAction::BeamRecovered(_)
            )
        });
        if blockage_transition {
            realign.clear();
        }
        if !realign.is_empty() {
            let mb = self.mb.as_ref().expect("established").clone();
            // One hypothesis probe with every drifting beam shifted toward
            // +Δθ; super-resolution then gives a *per-beam* verdict, so
            // beams drifting in opposite directions (Fig. 10) each resolve
            // their own sign.
            let mut plus = mb.clone();
            for &(k, dev) in &realign {
                plus.component_mut(k).angle_deg += dev;
            }
            let w_plus = self.cfg.quantizer.quantize(&plus.weights(&self.cfg.geom));
            let obs_plus = fe.probe(&w_plus);
            let est_plus = self.fit_per_beam(&obs_plus, fe.now_s());
            let mut chosen = mb.clone();
            for &(k, dev) in &realign {
                let sign = if est_plus.powers_mw[k] > est.powers_mw[k] {
                    1.0
                } else {
                    -1.0
                };
                chosen.component_mut(k).angle_deg += sign * dev;
            }
            for &(k, _) in &realign {
                let from = mb.component(k).angle_deg;
                let to = chosen.component(k).angle_deg;
                actions.push(ControllerAction::Realigned {
                    idx: k,
                    from_deg: from,
                    to_deg: to,
                });
            }
            self.mb = Some(chosen);
            // Refresh constructive parameters and re-baseline.
            self.refresh_constructive(fe, &est.powers_mw);
            self.rebaseline(fe);
        }

        // 4. Periodic recovery probes for blocked beams. The path may have
        // *moved* while muted (the reflector tracks the user, §8), so probe
        // a small angular neighborhood of the stale angle and re-acquire at
        // the best response.
        if self.rounds.is_multiple_of(self.cfg.recovery_check_rounds) {
            let blocked: Vec<usize> = (0..k_total)
                .filter(|&k| self.detectors[k].is_blocked())
                .collect();
            for k in blocked {
                let stale = self
                    .mb
                    .as_ref()
                    .expect("established")
                    .component(k)
                    .angle_deg;
                let mut best: Option<(f64, f64)> = None; // (power_db, angle)
                let offsets: &[f64] = if self.cfg.enable_tracking {
                    &[-3.0, 0.0, 3.0]
                } else {
                    &[0.0]
                };
                for &offset in offsets {
                    let angle = stale + offset;
                    let probe = fe.probe(
                        &self
                            .cfg
                            .quantizer
                            .quantize(&single_beam(&self.cfg.geom, angle)),
                    );
                    let p = db_from_pow(probe.mean_power_mw().max(1e-20));
                    if best.is_none_or(|(bp, _)| p > bp) {
                        best = Some((p, angle));
                    }
                }
                let (power_db, best_angle) = best.expect("probed");
                // Compare against the beam's aligned baseline, corrected for
                // the power fraction it used to carry inside the multi-beam.
                let amp = self.saved_amp[k].max(1e-3);
                let frac_db = db_from_pow(self.fraction_for_amp(amp));
                let single_baseline_db = self.trackers[k].baseline_db - frac_db;
                if power_db >= single_baseline_db - self.cfg.recovery_margin_db {
                    let mb = self.mb.as_mut().expect("established");
                    mb.component_mut(k).amplitude = self.saved_amp[k];
                    mb.component_mut(k).angle_deg = best_angle;
                    self.detectors[k].set_blocked(false);
                    actions.push(ControllerAction::BeamRecovered(k));
                    let powers = est.powers_mw.clone();
                    self.refresh_constructive(fe, &powers);
                    self.rebaseline(fe);
                }
            }
        }

        // 5. Lifecycle verdict. The state machine detects outages and
        // persistent degradation and schedules full re-trainings with
        // bounded attempts and exponential backoff (§8 "tracking
        // re-calibration"; §4.1 — "in case of a complete outage, the radio
        // can initiate a new beam training phase"). The `without_tracking`
        // ablation freezes re-training entirely (infinite retrain
        // threshold), so the measurement is withheld from the machine.
        if self.cfg.retrain_loss_db.is_finite() {
            // Evidence that maintenance lost the link: an active beam's
            // power sits far below its baseline with no blockage/mobility
            // explanation. An outage entered with this evidence gets its
            // first re-train immediately instead of waiting out a backoff.
            let worst_drop = self
                .trackers
                .iter()
                .enumerate()
                .filter(|(k, _)| !self.detectors[*k].is_blocked())
                .map(|(_, t)| t.baseline_db)
                .zip(per_beam_db.iter())
                .map(|(base, &now)| base - now)
                .fold(0.0f64, f64::max);
            // A probe that reads the bare noise floor is indistinguishable
            // from a *lost* probe (front-end erasure). A measured collapse
            // — real signal, just far below baseline — earns the urgent
            // same-round re-train; an erasure instead takes the outage
            // path, which confirms on the next round before spending a
            // 32 ms scan on what may be a single bad probe.
            let measured = snr_db > ERASURE_FLOOR_DB;
            self.lifecycle.apply(
                LinkSignal::SnrReport {
                    snr_db,
                    ref_db: self.best_snr_db,
                    unexplained_drop: measured && worst_drop > self.cfg.retrain_loss_db,
                },
                fe.now_s(),
            );
            if matches!(self.lifecycle.state(), LinkState::Recovering { .. }) {
                actions.push(ControllerAction::Retrained);
                let mut est_actions = self.establish(fe);
                actions.append(&mut est_actions);
            }
        }

        let probes = fe.probes_used() - probes_before;
        self.report(fe.now_s(), snr_db, per_beam_db, actions, probes, log_before)
    }

    /// Assembles a [`RoundReport`], attaching the lifecycle transitions
    /// that fired since `log_before`, and records the round as a telemetry
    /// event (state, verdict, per-beam powers) when a tracer wants events.
    // xtask-allow(hot-path-closure): the round report owns its action/power vectors by contract; one report per maintenance round, not per slot
    // xtask-allow(hot-path-panic): log_before is a snapshot of lifecycle.log().len() taken earlier in the same round, so the range start cannot exceed the length
    fn report(
        &self,
        t_s: f64,
        snr_db: f64,
        per_beam_db: Vec<f64>,
        actions: Vec<ControllerAction>,
        probes: usize,
        log_before: usize,
    ) -> RoundReport {
        #[cfg(not(feature = "telemetry"))]
        let _ = t_s;
        #[cfg(feature = "telemetry")]
        if self.tracer.wants_events() {
            self.tracer.event(mmwave_telemetry::TraceEvent::Round {
                t_s,
                state: self.lifecycle.state().kind().name(),
                verdict: round_verdict(&actions),
                per_beam_db: per_beam_db.clone(),
            });
        }
        RoundReport {
            snr_db,
            per_beam_db,
            actions,
            probes,
            state: self.lifecycle.state(),
            transitions: self.lifecycle.log()[log_before..].to_vec(),
        }
    }

    /// Number of beams currently radiating power.
    pub fn active_beams(&self) -> usize {
        self.mb
            .as_ref()
            .map(|mb| mb.components().iter().filter(|c| c.amplitude > 0.0).count())
            .unwrap_or(0)
    }

    /// Power fraction a component with amplitude `amp` would carry.
    // xtask-allow(hot-path-panic): called only with an established multi-beam (lifecycle invariant), so the expect cannot fire
    fn fraction_for_amp(&self, amp: f64) -> f64 {
        let mb = self.mb.as_ref().expect("established");
        let total: f64 = mb
            .components()
            .iter()
            .map(|c| c.amplitude * c.amplitude)
            .sum::<f64>()
            + amp * amp;
        if total <= 0.0 {
            1.0
        } else {
            (amp * amp / total).max(1e-6)
        }
    }

    /// Re-estimates `(δ, σ)` of every active non-reference beam against the
    /// strongest active beam (2 probes each), using the latest per-beam
    /// powers as the single-beam spectra.
    // xtask-allow(hot-path-closure): per-beam probe spectra are collected per re-estimation event (every refresh_period rounds), not per slot (ROADMAP item 1)
    // xtask-allow(hot-path-panic): beam indices are bounded by the component count; powers_mw comes from the same multi-beam probe
    fn refresh_constructive(&mut self, fe: &mut dyn LinkFrontEnd, powers_mw: &[f64]) {
        if !self.cfg.enable_constructive {
            return;
        }
        let mb = self.mb.as_ref().expect("established").clone();
        let comps = mb.components();
        // Reference: strongest active beam.
        let Some(r) = (0..comps.len())
            .filter(|&k| comps[k].amplitude > 0.0 || k == 0)
            .max_by(|&a, &b| powers_mw[a].total_cmp(&powers_mw[b]))
        else {
            return;
        };
        let mut updated = mb.clone();
        for k in 0..comps.len() {
            if k == r || comps[k].amplitude <= 0.0 {
                continue;
            }
            let rel = two_probe_relative(
                fe,
                comps[r].angle_deg,
                comps[k].angle_deg,
                &[powers_mw[r].max(1e-18)],
                &[powers_mw[k].max(1e-18)],
                self.rel_delays_ns[k] - self.rel_delays_ns[r],
            );
            let ref_amp = comps[r].amplitude.max(1e-6);
            updated.component_mut(k).amplitude = (ref_amp * rel.delta).clamp(0.0, 1.5);
            updated.component_mut(k).phase_rad = comps[r].phase_rad + rel.sigma_rad;
        }
        self.mb = Some(updated);
    }

    /// Probes the refreshed multi-beam once and re-anchors every active
    /// tracker's baseline.
    // xtask-allow(hot-path-panic): tracker/baseline indices are bounded by the per-beam estimate the probe on the line above just produced
    fn rebaseline(&mut self, fe: &mut dyn LinkFrontEnd) {
        let obs = fe.probe(&self.current_weights());
        let est = self.fit_per_beam(&obs, fe.now_s());
        let baselines = est.powers_db();
        let mb = self.mb.as_ref().expect("established");
        for (k, tracker) in self.trackers.iter_mut().enumerate() {
            if !self.detectors[k].is_blocked() {
                tracker.realign(mb.component(k).angle_deg, baselines[k]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::SnapshotFrontEnd;
    use mmwave_array::geometry::ArrayGeometry;
    use mmwave_channel::channel::{GeometricChannel, UeReceiver};
    use mmwave_channel::environment::Scene;
    use mmwave_channel::geom2d::v2;
    use mmwave_dsp::rng::Rng64;
    use mmwave_dsp::units::FC_28GHZ;
    use mmwave_phy::chanest::ChannelSounder;

    fn room_frontend(seed: u64) -> SnapshotFrontEnd {
        let scene = Scene::conference_room(FC_28GHZ);
        // Off-center UE: a centered UE makes the two glass-wall bounces
        // arrive with *identical* delays, which no delay-domain
        // super-resolution (the paper's included) can separate.
        let paths = scene.paths_to(v2(0.9, 7.0), 180.0);
        SnapshotFrontEnd::new(
            GeometricChannel::new(paths, FC_28GHZ),
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(seed),
        )
    }

    #[test]
    fn establishes_multibeam_in_conference_room() {
        let mut fe = room_frontend(1);
        let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
        let actions = ctl.establish(&mut fe);
        assert!(matches!(actions[0], ControllerAction::Established(_)));
        let mb = ctl.multibeam().expect("established");
        assert!(mb.num_beams() >= 2, "should find LOS + reflector");
        // Establishment probe budget: 64 training + 2 per extra beam + 1
        // baseline.
        let expected = 64 + 2 * (mb.num_beams() - 1) + 1;
        assert_eq!(fe.probes_used(), expected);
    }

    #[test]
    fn established_beam_approaches_oracle() {
        let mut fe = room_frontend(2);
        let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
        ctl.establish(&mut fe);
        let w = ctl.current_weights();
        let geom = ctl.config().geom;
        let p = fe.channel.received_power(&geom, &w, &UeReceiver::Omni);
        let oracle = fe.channel.optimal_power(&geom, &UeReceiver::Omni);
        assert!(
            p > 0.8 * oracle,
            "constructive multi-beam at {:.1}% of oracle",
            100.0 * p / oracle
        );
        // And it must beat the single-beam-on-LOS baseline.
        let single = fe
            .channel
            .received_power(&geom, &single_beam(&geom, 0.0), &UeReceiver::Omni);
        assert!(p > single, "multi {p} vs single {single}");
    }

    #[test]
    fn quiet_rounds_take_one_probe() {
        let mut fe = room_frontend(3);
        let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
        ctl.establish(&mut fe);
        // A few rounds with a static channel: no actions, 1 probe each.
        for _ in 0..4 {
            let r = ctl.maintenance_round(&mut fe);
            assert!(r.actions.is_empty(), "unexpected actions: {:?}", r.actions);
            assert_eq!(r.probes, 1);
            assert!(r.snr_db > 20.0);
        }
    }

    #[test]
    fn blockage_is_detected_and_power_repurposed() {
        let mut fe = room_frontend(4);
        let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
        ctl.establish(&mut fe);
        let snr_before = ctl.maintenance_round(&mut fe).snr_db;
        // Block the LOS path hard (walker in front of the array).
        fe.channel.paths[0].blockage_db = 30.0;
        let r = ctl.maintenance_round(&mut fe);
        assert!(
            r.actions
                .iter()
                .any(|a| matches!(a, ControllerAction::BeamBlocked(0))),
            "expected LOS beam blocked, got {:?}",
            r.actions
        );
        // The re-purposed multi-beam must keep the link alive on reflectors.
        let r2 = ctl.maintenance_round(&mut fe);
        assert!(
            r2.snr_db > ctl.config().outage_snr_db,
            "link died: {} dB (before {snr_before})",
            r2.snr_db
        );
        assert!(ctl.active_beams() < ctl.multibeam().unwrap().num_beams());
    }

    #[test]
    fn blocked_beam_recovers() {
        let mut fe = room_frontend(5);
        let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
        ctl.establish(&mut fe);
        ctl.maintenance_round(&mut fe);
        fe.channel.paths[0].blockage_db = 30.0;
        ctl.maintenance_round(&mut fe);
        assert!(ctl.detectors[0].is_blocked());
        // Blocker walks away.
        fe.channel.paths[0].blockage_db = 0.0;
        let mut recovered = false;
        for _ in 0..8 {
            let r = ctl.maintenance_round(&mut fe);
            if r.actions
                .iter()
                .any(|a| matches!(a, ControllerAction::BeamRecovered(0)))
            {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "beam 0 should be readmitted");
        assert_eq!(ctl.active_beams(), ctl.multibeam().unwrap().num_beams());
    }

    #[test]
    fn mobility_triggers_realignment_toward_truth() {
        let mut fe = room_frontend(6);
        let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
        ctl.establish(&mut fe);
        ctl.maintenance_round(&mut fe);
        // UE drifted: all paths rotate by +6° (a large lateral move; enough
        // pattern loss to clear the tracker's stability margin).
        for p in fe.channel.paths.iter_mut() {
            p.aod_deg += 6.0;
        }
        let mut realigned = false;
        for _ in 0..8 {
            let r = ctl.maintenance_round(&mut fe);
            for a in &r.actions {
                if let ControllerAction::Realigned {
                    idx: 0,
                    from_deg,
                    to_deg,
                } = a
                {
                    realigned = true;
                    assert!(
                        to_deg > from_deg,
                        "should move toward +6°: {from_deg} → {to_deg}"
                    );
                }
            }
        }
        assert!(realigned, "controller never realigned");
        // After realignment rounds the beam must sit close to the truth.
        let angle = ctl.multibeam().unwrap().component(0).angle_deg;
        let true_angle = fe.channel.paths[0].aod_deg;
        assert!(
            (angle - true_angle).abs() < 3.0,
            "beam at {angle}, truth {true_angle}"
        );
    }

    #[test]
    fn no_viable_path_leaves_unestablished() {
        let fe_ch = GeometricChannel::new(Vec::new(), FC_28GHZ);
        let mut fe = SnapshotFrontEnd::new(
            fe_ch,
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(7),
        );
        let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
        let actions = ctl.establish(&mut fe);
        assert!(actions.is_empty());
        assert!(ctl.multibeam().is_none());
        // Maintenance on a dead link re-attempts establishment.
        let r = ctl.maintenance_round(&mut fe);
        assert!(r.snr_db <= -50.0);
    }

    #[test]
    fn maintenance_establishes_if_needed() {
        let mut fe = room_frontend(8);
        let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
        let r = ctl.maintenance_round(&mut fe);
        assert!(r
            .actions
            .iter()
            .any(|a| matches!(a, ControllerAction::Established(_))));
        assert!(ctl.multibeam().is_some());
    }

    #[test]
    fn two_beam_config_limits_beams() {
        let mut fe = room_frontend(9);
        let mut ctl = MmReliableController::new(MmReliableConfig::paper_default().two_beam());
        ctl.establish(&mut fe);
        assert!(ctl.multibeam().unwrap().num_beams() <= 2);
    }
}
