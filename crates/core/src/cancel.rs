//! Cooperative cancellation for long-running link work.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between a run (the
//! simulator slot loop, the controller's maintenance rounds, a training
//! scan) and its supervisor (a watchdog thread enforcing a wall-clock
//! deadline, or a test harness enforcing a deterministic tick budget). The
//! supervisor flips the flag; the run notices at its next *checkpoint* and
//! unwinds with the dedicated [`CancelUnwind`] payload, which the
//! supervisor's `catch_unwind` recognises and classifies as a timeout
//! rather than a crash.
//!
//! Two cancellation sources compose in one token:
//!
//! - **Asynchronous** — [`CancelToken::cancel`], typically called from a
//!   watchdog thread when a run exceeds its wall-clock deadline. Inherently
//!   non-deterministic (it depends on host scheduling), which is fine for
//!   supervision but useless for replay.
//! - **Tick budget** — [`CancelToken::with_tick_budget`] caps the number of
//!   maintenance ticks the run may consume. Fully deterministic: replaying
//!   the same seed under the same budget cancels at exactly the same
//!   simulated instant, which is how recorded timeouts are reproduced
//!   single-threaded for debugging.
//!
//! Checkpoints are cooperative: code that can run long polls
//! [`CancelToken::is_cancelled`] (or the front-end hook
//! [`crate::frontend::LinkFrontEnd::cancel_requested`]) at natural
//! boundaries — once per data slot, once per maintenance round, once per
//! training probe — and calls [`bail`] when set. A token default-constructed
//! with [`CancelToken::new`] is inert: never cancelled, no budget, and its
//! checks are two relaxed atomic loads, cheap enough for the per-slot hot
//! path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel tick budget meaning "unlimited".
const NO_BUDGET: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    tick_budget: AtomicU64,
    ticks: AtomicU64,
}

/// A shared cancellation handle (see the module docs).
///
/// Cloning is cheap and every clone observes the same state; the token a
/// supervisor keeps and the token threaded into the simulator are the same
/// logical object.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// An inert token: never cancelled unless [`CancelToken::cancel`] is
    /// called, with no tick budget.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                tick_budget: AtomicU64::new(NO_BUDGET),
                ticks: AtomicU64::new(0),
            }),
        }
    }

    /// A token that cancels deterministically once `budget` maintenance
    /// ticks have been consumed (see [`CancelToken::note_tick`]).
    pub fn with_tick_budget(budget: u64) -> Self {
        let t = Self::new();
        t.inner.tick_budget.store(budget, Ordering::Relaxed);
        t
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once cancellation has been requested (asynchronously or by an
    /// exhausted tick budget).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
            || self.inner.ticks.load(Ordering::Relaxed)
                >= self.inner.tick_budget.load(Ordering::Relaxed)
    }

    /// Records one consumed maintenance tick. Called by the run loop at
    /// every tick; once the count reaches the budget, the token reads as
    /// cancelled.
    pub fn note_tick(&self) {
        self.inner.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Maintenance ticks consumed so far.
    pub fn ticks(&self) -> u64 {
        self.inner.ticks.load(Ordering::Relaxed)
    }

    /// The configured tick budget, if any.
    pub fn tick_budget(&self) -> Option<u64> {
        match self.inner.tick_budget.load(Ordering::Relaxed) {
            NO_BUDGET => None,
            n => Some(n),
        }
    }

    /// The cooperative checkpoint: unwinds with [`CancelUnwind`] when the
    /// token is cancelled, otherwise returns immediately.
    pub fn checkpoint(&self) {
        if self.is_cancelled() {
            bail();
        }
    }
}

/// The panic payload a cooperative cancellation unwinds with. Supervisors
/// downcast the payload of a caught unwind to this type to distinguish "the
/// run was cancelled at a checkpoint" (a timeout, retryable) from "the run
/// crashed" (a genuine panic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CancelUnwind;

impl std::fmt::Display for CancelUnwind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("run cancelled at a cooperative checkpoint")
    }
}

/// Unwinds the current run with the [`CancelUnwind`] payload.
pub fn bail() -> ! {
    std::panic::panic_any(CancelUnwind);
}

/// True when a caught unwind payload is a cooperative cancellation (and not
/// a genuine panic).
pub fn is_cancel_unwind(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<CancelUnwind>().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_inert() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.tick_budget(), None);
        t.checkpoint(); // must not unwind
        for _ in 0..1000 {
            t.note_tick();
        }
        assert!(!t.is_cancelled(), "no budget: ticks never cancel");
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn tick_budget_cancels_deterministically() {
        let t = CancelToken::with_tick_budget(3);
        assert_eq!(t.tick_budget(), Some(3));
        for _ in 0..2 {
            t.note_tick();
            assert!(!t.is_cancelled());
        }
        t.note_tick();
        assert!(t.is_cancelled());
        assert_eq!(t.ticks(), 3);
    }

    #[test]
    fn checkpoint_unwinds_with_the_cancel_payload() {
        let t = CancelToken::new();
        t.cancel();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.checkpoint()))
            .expect_err("must unwind");
        assert!(is_cancel_unwind(err.as_ref()));
        // A plain panic is not a cancellation.
        let err = std::panic::catch_unwind(|| panic!("boom")).expect_err("must unwind");
        assert!(!is_cancel_unwind(err.as_ref()));
    }
}
