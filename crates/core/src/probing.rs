//! The magnitude-only two-probe estimator of relative per-path channels
//! (paper §3.3, Eq. 11–14).
//!
//! CFO/SFO make the *phase* of channel estimates unreliable across probes,
//! so mmReliable estimates the relative channel `h₂/h₁ = δ·e^{jσ}` from
//! channel **magnitudes** alone:
//!
//! - `p₁, p₂` — received powers through single beams at φ₁, φ₂,
//! - `p₃` — power through the 2-beam probe `w(φ₁, φ₂, 1, 0)`,
//! - `p₄` — power through `w(φ₁, φ₂, 1, π/2)`.
//!
//! With `h₁` taken real-positive (phase reference), Eq. 12 yields `h₂`.
//! All four quantities are per-subcarrier power spectra here; the wideband
//! joint estimate (Eq. 13–14) is their `p₁`-weighted average across
//! frequency.
//!
//! Normalization note: our 2-beam probe splits power across two beams
//! (`‖w‖ = 1`), so the combined-probe powers carry a factor ½ relative to
//! the paper's un-normalized `|h₁+h₂|²`; the estimator accounts for it.

use crate::frontend::LinkFrontEnd;
use mmwave_array::multibeam::MultiBeam;
use mmwave_dsp::complex::{c64, Complex64};
use mmwave_phy::chanest::ProbeObservation;
use std::f64::consts::FRAC_PI_2;

/// The estimated relative channel of one beam w.r.t. the reference beam.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RelativeChannel {
    /// Relative amplitude δ (linear).
    pub delta: f64,
    /// Relative phase σ, radians in `(-π, π]`.
    pub sigma_rad: f64,
}

impl RelativeChannel {
    /// As a complex ratio `δ·e^{jσ}`.
    pub fn as_complex(&self) -> Complex64 {
        Complex64::from_polar(self.delta, self.sigma_rad)
    }
}

/// Noise-debiased per-subcarrier power spectrum of a probe, mW.
// xtask-allow(hot-path-closure): one spectrum vector per probe on the amortized probing cadence, not per slot (ROADMAP item 1)
pub fn power_spectrum(obs: &ProbeObservation) -> Vec<f64> {
    obs.csi
        .iter()
        .map(|v| (v.norm_sqr() - obs.noise_power_mw).max(0.0))
        .collect()
}

/// Pure-math core of Eq. 12 + Eq. 14: given the four power spectra
/// (`p3`/`p4` measured through *unit-norm equal-split* 2-beam probes, hence
/// the factor-2 corrections), returns the wideband joint `(δ, σ)`.
///
/// `freqs_hz`/`rel_delay_ns`: the two paths differ in propagation delay by
/// `Δτ`, so their per-subcarrier relative phase carries a linear slope
/// `-2πf·Δτ` on top of the constant σ. Training knows Δτ (§4.3), so the
/// estimator derotates it before averaging — without this, any channel
/// with `Δτ·BW ≳ 1` would average its relative phase to zero (which is
/// exactly the wideband comb problem §3.4's delay array addresses). The
/// returned σ is the relative phase at band center.
// xtask-allow(hot-path-panic): the entry asserts make all five slices the same length, so per-subcarrier indices are in bounds
pub fn relative_from_powers(
    p1: &[f64],
    p2: &[f64],
    p3: &[f64],
    p4: &[f64],
    freqs_hz: &[f64],
    rel_delay_ns: f64,
) -> RelativeChannel {
    assert!(
        p1.len() == p2.len() && p1.len() == p3.len() && p1.len() == p4.len(),
        "spectra must share a comb"
    );
    assert!(
        freqs_hz.is_empty() || freqs_hz.len() == p1.len(),
        "frequency comb must match the spectra"
    );
    // Per-subcarrier relative channel, delay-derotated, then p1-weighted
    // average (Eq. 14).
    let mut acc = Complex64::ZERO;
    let mut weight = 0.0;
    for i in 0..p1.len() {
        if p1[i] <= 0.0 {
            continue;
        }
        let sqrt_p1 = p1[i].sqrt();
        let re = (2.0 * p3[i] - p1[i] - p2[i]) / (2.0 * sqrt_p1);
        let im = (p1[i] + p2[i] - 2.0 * p4[i]) / (2.0 * sqrt_p1);
        // r(f) = h2(f)/h1(f) with h1(f) real = √p1(f).
        let mut r = c64(re, im) / sqrt_p1;
        if !freqs_hz.is_empty() {
            r *= Complex64::cis(2.0 * std::f64::consts::PI * freqs_hz[i] * rel_delay_ns * 1e-9);
        }
        acc += r.scale(p1[i]);
        weight += p1[i];
    }
    if weight <= 0.0 {
        return RelativeChannel {
            delta: 0.0,
            sigma_rad: 0.0,
        };
    }
    let joint = acc / weight;
    RelativeChannel {
        delta: joint.abs(),
        sigma_rad: joint.arg(),
    }
}

/// Runs the two extra probes of the two-probe method for beam `phi_k`
/// against reference `phi_ref`, reusing previously measured single-beam
/// spectra `p1`/`p2` (e.g. from training). Consumes exactly 2 probes.
///
/// `p1`/`p2` may be single-element slices (a scalar wideband power, as the
/// training scan produces); they are broadcast across the sounding comb.
// xtask-allow(hot-path-closure): broadcast copies of the two spectra are per-probe-pair scratch on the amortized re-estimation cadence (ROADMAP item 1)
// xtask-allow(hot-path-panic): spectra are broadcast to the comb length before indexing, so comb indices are in bounds
pub fn two_probe_relative(
    fe: &mut dyn LinkFrontEnd,
    phi_ref_deg: f64,
    phi_k_deg: f64,
    p1: &[f64],
    p2: &[f64],
    rel_delay_ns: f64,
) -> RelativeChannel {
    let geom = *fe.geometry();
    let w3 = MultiBeam::two_beam(phi_ref_deg, phi_k_deg, 1.0, 0.0).weights(&geom);
    let w4 = MultiBeam::two_beam(phi_ref_deg, phi_k_deg, 1.0, -FRAC_PI_2).weights(&geom);
    let obs3 = fe.probe(&w3);
    let p3 = power_spectrum(&obs3);
    let p4 = power_spectrum(&fe.probe(&w4));
    let broadcast = |p: &[f64]| -> Vec<f64> {
        if p.len() == 1 {
            vec![p[0]; p3.len()]
        } else {
            p.to_vec()
        }
    };
    relative_from_powers(
        &broadcast(p1),
        &broadcast(p2),
        &p3,
        &p4,
        &obs3.freqs_hz,
        rel_delay_ns,
    )
}

/// Full 4-probe measurement for one beam pair: sounds both single beams and
/// both combined probes. Returns the estimate plus the reference beam's
/// spectrum (reusable for further beams).
pub fn full_relative(
    fe: &mut dyn LinkFrontEnd,
    phi_ref_deg: f64,
    phi_k_deg: f64,
    rel_delay_ns: f64,
) -> (RelativeChannel, Vec<f64>, Vec<f64>) {
    let geom = *fe.geometry();
    let w1 = MultiBeam::single(phi_ref_deg).weights(&geom);
    let w2 = MultiBeam::single(phi_k_deg).weights(&geom);
    let p1 = power_spectrum(&fe.probe(&w1));
    let p2 = power_spectrum(&fe.probe(&w2));
    let rel = two_probe_relative(fe, phi_ref_deg, phi_k_deg, &p1, &p2, rel_delay_ns);
    (rel, p1, p2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::SnapshotFrontEnd;
    use mmwave_array::geometry::ArrayGeometry;
    use mmwave_channel::channel::{GeometricChannel, UeReceiver};
    use mmwave_channel::path::{Path, PathKind};
    use mmwave_dsp::rng::Rng64;
    use mmwave_dsp::units::{wrap_rad, FC_28GHZ};
    use mmwave_phy::chanest::ChannelSounder;

    /// Two-path channel with known (δ, σ), absolute scale ~1e-4 (≈7 m FSPL).
    fn frontend(delta: f64, sigma: f64, seed: u64) -> SnapshotFrontEnd {
        let base = 1.2e-4;
        let ch = GeometricChannel::new(
            vec![
                Path::new(0.0, 0.0, c64(base, 0.0), 23.0, PathKind::Los),
                Path::new(
                    30.0,
                    -40.0,
                    Complex64::from_polar(base * delta, sigma),
                    28.0,
                    PathKind::Reflected { wall: 0 },
                ),
            ],
            FC_28GHZ,
        );
        SnapshotFrontEnd::new(
            ch,
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(seed),
        )
    }

    #[test]
    fn recovers_known_delta_sigma() {
        for (delta, sigma) in [(0.5, 1.0), (0.7, -2.0), (0.3, 0.1), (1.0, 2.8)] {
            let mut fe = frontend(delta, sigma, 7);
            let (rel, _, _) = full_relative(&mut fe, 0.0, 30.0, 5.0);
            assert!(
                (rel.delta - delta).abs() < 0.08,
                "δ: est {} vs true {delta}",
                rel.delta
            );
            assert!(
                wrap_rad(rel.sigma_rad - sigma).abs() < 0.25,
                "σ: est {} vs true {sigma}",
                rel.sigma_rad
            );
        }
    }

    #[test]
    fn estimator_is_cfo_immune() {
        // The sounder applies a random common phase per probe; estimates
        // must stay accurate regardless (this is the paper's core claim
        // for the magnitude-only design).
        let mut any_phase_differs = false;
        let mut prev: Option<f64> = None;
        for seed in 0..5 {
            let mut fe = frontend(0.6, 0.9, seed);
            assert!(fe.sounder.cfo_impairment);
            let (rel, _, _) = full_relative(&mut fe, 0.0, 30.0, 5.0);
            assert!(
                (rel.delta - 0.6).abs() < 0.08,
                "seed {seed}: δ {}",
                rel.delta
            );
            assert!(
                wrap_rad(rel.sigma_rad - 0.9).abs() < 0.25,
                "seed {seed}: σ {}",
                rel.sigma_rad
            );
            if let Some(p) = prev {
                if (p - rel.sigma_rad).abs() > 1e-6 {
                    any_phase_differs = true;
                }
            }
            prev = Some(rel.sigma_rad);
        }
        assert!(
            any_phase_differs,
            "estimates should vary slightly with noise"
        );
    }

    #[test]
    fn probe_count_is_two_plus_two() {
        let mut fe = frontend(0.5, 0.5, 3);
        let before = fe.probes_used();
        let _ = full_relative(&mut fe, 0.0, 30.0, 5.0);
        assert_eq!(fe.probes_used() - before, 4);
        // The incremental variant costs exactly 2.
        let p1 = vec![1.0; 264];
        let p2 = vec![0.2; 264];
        let before = fe.probes_used();
        let _ = two_probe_relative(&mut fe, 0.0, 30.0, &p1, &p2, 5.0);
        assert_eq!(fe.probes_used() - before, 2);
    }

    #[test]
    fn noiseless_math_is_exact() {
        // Synthetic spectra for h1 = 2, h2 = δe^{jσ}·2 on one subcarrier.
        let (delta, sigma) = (0.4, -1.3);
        let h1 = c64(2.0, 0.0);
        let h2 = Complex64::from_polar(2.0 * delta, sigma);
        let p1 = vec![h1.norm_sqr()];
        let p2 = vec![h2.norm_sqr()];
        let p3 = vec![(h1 + h2).norm_sqr() / 2.0];
        let p4 = vec![(h1 + Complex64::J * h2).norm_sqr() / 2.0];
        let rel = relative_from_powers(&p1, &p2, &p3, &p4, &[], 0.0);
        assert!((rel.delta - delta).abs() < 1e-12);
        assert!(wrap_rad(rel.sigma_rad - sigma).abs() < 1e-12);
    }

    #[test]
    fn zero_reference_is_safe() {
        let rel = relative_from_powers(&[0.0], &[1.0], &[0.5], &[0.5], &[], 0.0);
        assert_eq!(rel.delta, 0.0);
    }

    #[test]
    fn constructive_beam_from_estimate_beats_blind_combining() {
        // End-to-end: the estimated (δ, σ) must produce a higher-SNR
        // multi-beam than a phase-blind equal split (paper Fig. 15a).
        let (delta, sigma) = (0.7, 2.4);
        let mut fe = frontend(delta, sigma, 11);
        let (rel, _, _) = full_relative(&mut fe, 0.0, 30.0, 5.0);
        let geom = *fe.geometry();
        let est = MultiBeam::two_beam(0.0, 30.0, rel.delta, rel.sigma_rad).weights(&geom);
        let blind = MultiBeam::two_beam(0.0, 30.0, 1.0, 0.0).weights(&geom);
        let p_est = fe.channel.received_power(&geom, &est, &UeReceiver::Omni);
        let p_blind = fe.channel.received_power(&geom, &blind, &UeReceiver::Omni);
        assert!(p_est > p_blind, "est {p_est} vs blind {p_blind}");
        // And it should approach the oracle.
        let p_opt = fe.channel.optimal_power(&geom, &UeReceiver::Omni);
        assert!(p_est > 0.95 * p_opt, "est {p_est} vs oracle {p_opt}");
    }

    #[test]
    #[should_panic(expected = "share a comb")]
    fn spectra_length_checked() {
        relative_from_powers(&[1.0], &[1.0, 2.0], &[1.0], &[1.0], &[], 0.0);
    }
}
