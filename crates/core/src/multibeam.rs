//! Multi-beam analysis utilities: oracle comparisons and the sensitivity
//! study behind the paper's micro-benchmarks (Fig. 14, Fig. 15d).
//!
//! The establishment *procedure* lives in [`crate::controller`]; this module
//! holds the pure analysis functions benches and figures use to quantify
//! how good a multi-beam is against the single-beam and genie baselines.

use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::multibeam::{BeamComponent, MultiBeam};
use mmwave_channel::channel::{GeometricChannel, UeReceiver};
use mmwave_channel::path::strongest_paths;
use mmwave_dsp::units::db_from_pow;

/// Genie multi-beam built from the channel's true paths: one component per
/// path (up to `k`), amplitudes/phases matched to the true relative
/// channel. This is what perfect estimation would produce.
pub fn genie_multibeam(ch: &GeometricChannel, k: usize) -> Option<MultiBeam> {
    if ch.paths.is_empty() || k == 0 {
        return None;
    }
    let order = strongest_paths(&ch.paths, k);
    let reference = &ch.paths[order[0]];
    let mut comps = vec![BeamComponent::reference(reference.aod_deg)];
    for &i in order.iter().skip(1) {
        let (delta, sigma) = ch.paths[i].relative_to(reference);
        comps.push(BeamComponent::new(ch.paths[i].aod_deg, delta, sigma));
    }
    Some(MultiBeam::new(comps))
}

/// Received power through a single beam at the strongest path's angle.
pub fn single_beam_power(ch: &GeometricChannel, geom: &ArrayGeometry, rx: &UeReceiver) -> f64 {
    let order = strongest_paths(&ch.paths, 1);
    let angle = ch.paths[order[0]].aod_deg;
    ch.received_power(geom, &mmwave_array::steering::single_beam(geom, angle), rx)
}

/// SNR gain (dB) of a multi-beam over the single beam aimed at the
/// channel's strongest path.
pub fn gain_over_single_beam_db(
    ch: &GeometricChannel,
    geom: &ArrayGeometry,
    mb: &MultiBeam,
    rx: &UeReceiver,
) -> f64 {
    let single = single_beam_power(ch, geom, rx);
    let multi = ch.received_power(geom, &mb.weights(geom), rx);
    db_from_pow((multi / single).max(1e-12))
}

/// SNR gain (dB) of the oracle MRT beam (per-element channel knowledge)
/// over the single beam — the upper bound of Fig. 15d.
pub fn oracle_gain_db(ch: &GeometricChannel, geom: &ArrayGeometry, rx: &UeReceiver) -> f64 {
    let single = single_beam_power(ch, geom, rx);
    db_from_pow((ch.optimal_power(geom, rx) / single).max(1e-12))
}

/// One cell of the Fig. 14 sensitivity surface: SNR gain (dB, vs single
/// beam) of a 2-beam multi-beam built with *estimated* `(δ̂, σ̂)` on a
/// channel whose true second path may have different parameters.
pub fn sensitivity_gain_db(
    ch: &GeometricChannel,
    geom: &ArrayGeometry,
    rx: &UeReceiver,
    est_delta: f64,
    est_sigma_rad: f64,
) -> f64 {
    let order = strongest_paths(&ch.paths, 2);
    assert!(order.len() >= 2, "sensitivity study needs a 2-path channel");
    let phi1 = ch.paths[order[0]].aod_deg;
    let phi2 = ch.paths[order[1]].aod_deg;
    let mb = MultiBeam::two_beam(phi1, phi2, est_delta, est_sigma_rad);
    gain_over_single_beam_db(ch, geom, &mb, rx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_channel::path::{Path, PathKind};
    use mmwave_dsp::complex::{c64, Complex64};
    use mmwave_dsp::units::{amp_from_db, FC_28GHZ};

    /// Two-path channel: LOS at 0°, reflection at 30° with (δ, σ).
    fn two_path(delta: f64, sigma: f64) -> GeometricChannel {
        GeometricChannel::new(
            vec![
                Path::new(0.0, 0.0, c64(1.0, 0.0), 23.0, PathKind::Los),
                Path::new(
                    30.0,
                    -40.0,
                    Complex64::from_polar(delta, sigma),
                    28.0,
                    PathKind::Reflected { wall: 0 },
                ),
            ],
            FC_28GHZ,
        )
    }

    #[test]
    fn genie_matches_oracle_for_two_orthogonal_paths() {
        // At 0°/30° on a 16-element ULA the steering vectors are exactly
        // orthogonal, so the 2-beam genie attains the MRT bound.
        let g = ArrayGeometry::ula(16);
        let ch = two_path(0.7, 1.1);
        let mb = genie_multibeam(&ch, 2).unwrap();
        let genie = gain_over_single_beam_db(&ch, &g, &mb, &UeReceiver::Omni);
        let oracle = oracle_gain_db(&ch, &g, &UeReceiver::Omni);
        assert!(
            (genie - oracle).abs() < 0.05,
            "genie {genie} oracle {oracle}"
        );
    }

    #[test]
    fn paper_fig14_peak_gain() {
        // Fig. 14: for a −3 dB, −40° second path, the best 2-beam gain is
        // 1.76 dB over single beam.
        let g = ArrayGeometry::ula(16);
        let delta = amp_from_db(-3.0);
        let sigma = (-40.0f64).to_radians();
        let ch = two_path(delta, sigma);
        let peak = sensitivity_gain_db(&ch, &g, &UeReceiver::Omni, delta, sigma);
        assert!((peak - 1.76).abs() < 0.05, "peak gain {peak} dB");
    }

    #[test]
    fn paper_fig14_tolerance_to_phase_error() {
        // "can tolerate errors of ±75° in phase estimation" — gain stays
        // positive (multi-beam ≥ single-beam) inside that window.
        let g = ArrayGeometry::ula(16);
        let delta = amp_from_db(-3.0);
        let sigma = (-40.0f64).to_radians();
        let ch = two_path(delta, sigma);
        for err_deg in [-75.0f64, -40.0, 0.0, 40.0, 75.0] {
            let gain = sensitivity_gain_db(
                &ch,
                &g,
                &UeReceiver::Omni,
                delta,
                sigma + err_deg.to_radians(),
            );
            assert!(gain > 0.0, "phase error {err_deg}°: gain {gain} dB");
        }
        // But a 180° error destroys the gain.
        let bad = sensitivity_gain_db(
            &ch,
            &g,
            &UeReceiver::Omni,
            delta,
            sigma + std::f64::consts::PI,
        );
        assert!(bad < -3.0, "180° error should hurt: {bad} dB");
    }

    #[test]
    fn genie_gain_follows_one_plus_delta_sq() {
        let g = ArrayGeometry::ula(16);
        for delta in [0.3, 0.5, 1.0] {
            let ch = two_path(delta, 0.4);
            let mb = genie_multibeam(&ch, 2).unwrap();
            let gain = gain_over_single_beam_db(&ch, &g, &mb, &UeReceiver::Omni);
            let expect = db_from_pow(1.0 + delta * delta);
            assert!((gain - expect).abs() < 0.1, "δ {delta}: {gain} vs {expect}");
        }
    }

    #[test]
    fn genie_none_for_empty_channel() {
        let ch = GeometricChannel::new(Vec::new(), FC_28GHZ);
        assert!(genie_multibeam(&ch, 2).is_none());
    }

    #[test]
    fn genie_respects_k_limit() {
        let mut ch = two_path(0.5, 0.2);
        ch.paths.push(Path::new(
            -45.0,
            10.0,
            c64(0.3, 0.1),
            33.0,
            PathKind::Reflected { wall: 1 },
        ));
        assert_eq!(genie_multibeam(&ch, 2).unwrap().num_beams(), 2);
        assert_eq!(genie_multibeam(&ch, 3).unwrap().num_beams(), 3);
        assert_eq!(genie_multibeam(&ch, 10).unwrap().num_beams(), 3);
    }
}
