//! System configuration for the mmReliable controller.

use crate::linkstate::LifecycleConfig;
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::quantize::Quantizer;

/// Tunables of the mmReliable beam-management stack. Defaults mirror the
/// paper's testbed and evaluation settings.
#[derive(Clone, Debug)]
pub struct MmReliableConfig {
    /// gNB array geometry (paper: 8×8, azimuth-only beamforming).
    pub geom: ArrayGeometry,
    /// Hardware weight quantizer (paper: 6-bit phase, 27 dB gain range).
    pub quantizer: Quantizer,
    /// Number of codebook beams scanned during training (paper: 64 over 120°).
    pub training_beams: usize,
    /// Angular span of the training scan, degrees.
    pub training_span_deg: f64,
    /// Maximum constituent beams K in the multi-beam (paper: 3 is enough
    /// to reach 92% of oracle, §6.1).
    pub max_beams: usize,
    /// Paths weaker than this many dB below the strongest are not viable
    /// for a multi-beam component.
    pub viable_window_db: f64,
    /// SNR below this is an outage (paper: 6 dB decode threshold).
    pub outage_snr_db: f64,
    /// A per-beam power drop faster than this many dB per maintenance round
    /// is classified as blockage (not mobility).
    pub blockage_rate_db: f64,
    /// A blocked beam whose power recovers to within this many dB of its
    /// baseline is re-admitted.
    pub recovery_margin_db: f64,
    /// Re-probe blocked beams every this many maintenance rounds.
    pub recovery_check_rounds: usize,
    /// EWMA forgetting factor for per-beam power smoothing (§6.1).
    pub power_ewma_alpha: f64,
    /// Trigger a full re-training when the multi-beam has degraded this many
    /// dB below its established baseline with no beam individually blocked.
    pub retrain_loss_db: f64,
    /// Per-beam angular correction is capped at this many degrees per round
    /// (tracking works in "small increments", §4.2).
    pub max_step_deg: f64,
    /// Ablation: disable proactive mobility tracking (§6.1 Fig. 17c's
    /// "no tracking" curve). Blockage handling stays on.
    pub enable_tracking: bool,
    /// Ablation: disable constructive-combining optimization — beams get an
    /// equal-power, zero-phase split instead of estimated (δ, σ)
    /// (Fig. 17c's "tracking without CC" curve).
    pub enable_constructive: bool,
    /// Lifecycle state-machine knobs: degradation/outage thresholds, retry
    /// budgets, and re-training backoff.
    pub lifecycle: LifecycleConfig,
}

impl MmReliableConfig {
    /// The paper's configuration on the 8×8 testbed array.
    pub fn paper_default() -> Self {
        Self {
            geom: ArrayGeometry::paper_8x8(),
            quantizer: Quantizer::paper_array(),
            training_beams: 64,
            training_span_deg: 120.0,
            max_beams: 3,
            // Below the strongest path by more than this → not viable.
            // Must sit *below* the 8-element array's first sidelobe level
            // (−12.8 dB), or training mistakes the strongest beam's own
            // sidelobes for reflected paths in sparse scenes.
            viable_window_db: 11.0,
            outage_snr_db: 6.0,
            blockage_rate_db: 8.0,
            recovery_margin_db: 6.0,
            recovery_check_rounds: 3,
            power_ewma_alpha: 0.5,
            retrain_loss_db: 18.0,
            max_step_deg: 4.0,
            enable_tracking: true,
            enable_constructive: true,
            lifecycle: LifecycleConfig::default(),
        }
    }

    /// Ablation: tracking disabled (Fig. 17c "no tracking": the established
    /// beam is left entirely alone, so re-training is frozen too).
    pub fn without_tracking(mut self) -> Self {
        self.enable_tracking = false;
        self.retrain_loss_db = f64::INFINITY;
        self
    }

    /// Ablation: constructive combining disabled (Fig. 17c "tracking only").
    pub fn without_constructive(mut self) -> Self {
        self.enable_constructive = false;
        self
    }

    /// Same stack configured for a two-beam maximum (ablation).
    pub fn two_beam(mut self) -> Self {
        self.max_beams = 2;
        self
    }

    /// Validates invariants; call after hand-editing fields.
    pub fn validate(&self) -> Result<(), String> {
        if self.training_beams == 0 {
            return Err("training_beams must be positive".into());
        }
        if self.max_beams == 0 {
            return Err("max_beams must be positive".into());
        }
        if !(0.0 < self.power_ewma_alpha && self.power_ewma_alpha <= 1.0) {
            return Err("power_ewma_alpha must be in (0,1]".into());
        }
        if self.training_span_deg <= 0.0 || self.training_span_deg > 180.0 {
            return Err("training_span_deg must be in (0,180]".into());
        }
        self.lifecycle.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let c = MmReliableConfig::paper_default();
        assert!(c.validate().is_ok());
        assert_eq!(c.geom.num_elements(), 64);
        assert_eq!(c.max_beams, 3);
        assert_eq!(c.outage_snr_db, 6.0);
    }

    #[test]
    fn two_beam_ablation() {
        let c = MmReliableConfig::paper_default().two_beam();
        assert_eq!(c.max_beams, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = MmReliableConfig::paper_default();
        c.training_beams = 0;
        assert!(c.validate().is_err());
        let mut c = MmReliableConfig::paper_default();
        c.power_ewma_alpha = 0.0;
        assert!(c.validate().is_err());
        let mut c = MmReliableConfig::paper_default();
        c.training_span_deg = 360.0;
        assert!(c.validate().is_err());
    }
}
