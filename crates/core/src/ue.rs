//! Directional (multi-beam) UE support (paper §4.4).
//!
//! When the UE also beamforms, UE motion misaligns *both* ends. Handling it
//! needs two steps the paper describes:
//!
//! 1. **Association** — which UE beam listens to which gNB beam? Solved by
//!    the unicity of per-path time of flight: both ends see the same
//!    relative ToFs (from their super-resolved CIRs), so beams pair up by
//!    matching them.
//! 2. **Misalignment estimation** — *rotation* changes only the UE-side
//!    gain (invert the UE pattern); *translation* misaligns gNB and UE
//!    beams by the same angle (invert the *sum* of the two patterns).

use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::pattern::{first_null_offset_deg, ula_gain_rel};
use mmwave_dsp::units::db_from_pow;

/// Associates gNB beams with UE beams by relative time of flight.
/// Returns `(gnb_idx, ue_idx)` pairs, greedily matched by |Δτ| (closest
/// first). Unmatched beams (count mismatch) are dropped.
pub fn associate_beams(gnb_rel_tofs_ns: &[f64], ue_rel_tofs_ns: &[f64]) -> Vec<(usize, usize)> {
    let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
    for (i, &tg) in gnb_rel_tofs_ns.iter().enumerate() {
        for (j, &tu) in ue_rel_tofs_ns.iter().enumerate() {
            candidates.push(((tg - tu).abs(), i, j));
        }
    }
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut used_g = vec![false; gnb_rel_tofs_ns.len()];
    let mut used_u = vec![false; ue_rel_tofs_ns.len()];
    let mut out = Vec::new();
    for (_, i, j) in candidates {
        if !used_g[i] && !used_u[j] {
            used_g[i] = true;
            used_u[j] = true;
            out.push((i, j));
        }
    }
    out.sort_unstable();
    out
}

/// Combined two-sided pattern loss (dB, ≥0) when both the gNB beam (steered
/// at `gnb_steer_deg`) and the UE beam (at `ue_steer_deg`) are misaligned by
/// the same angle `dev_deg` — the translation signature (paper Fig. 12).
pub fn two_sided_loss_db(
    gnb_geom: &ArrayGeometry,
    gnb_steer_deg: f64,
    ue_geom: &ArrayGeometry,
    ue_steer_deg: f64,
    dev_deg: f64,
) -> f64 {
    let gt = ula_gain_rel(
        gnb_geom.azimuth_elements(),
        gnb_geom.spacing_wl(),
        gnb_steer_deg,
        gnb_steer_deg + dev_deg,
    );
    let gr = ula_gain_rel(
        ue_geom.azimuth_elements(),
        ue_geom.spacing_wl(),
        ue_steer_deg,
        ue_steer_deg + dev_deg,
    );
    -db_from_pow((gt * gt * gr * gr).max(1e-30))
}

/// Inverts the two-sided loss: finds the common misalignment angle
/// `|Δθ|` (degrees) that explains a measured power drop under translation.
/// Returns `None` when the drop exceeds what the joint main lobes can
/// explain.
pub fn estimate_translation_misalign_deg(
    gnb_geom: &ArrayGeometry,
    gnb_steer_deg: f64,
    ue_geom: &ArrayGeometry,
    ue_steer_deg: f64,
    drop_db: f64,
) -> Option<f64> {
    if drop_db <= 0.0 {
        return Some(0.0);
    }
    // Search within the narrower of the two main lobes.
    let lim_g = first_null_offset_deg(gnb_geom, gnb_steer_deg, 1.0);
    let lim_u = first_null_offset_deg(ue_geom, ue_steer_deg, 1.0);
    let hi = lim_g.min(lim_u) * 0.999;
    let loss_at = |d: f64| two_sided_loss_db(gnb_geom, gnb_steer_deg, ue_geom, ue_steer_deg, d);
    if drop_db > loss_at(hi) {
        return None;
    }
    let (mut lo, mut hi) = (0.0f64, hi);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if loss_at(mid) < drop_db {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Inverts a UE-side-only loss — the rotation signature: the gNB pattern is
/// unchanged, so the whole drop comes from the UE beam walking off the
/// arrival angle. Identical math to the gNB tracker but on the UE array.
pub fn estimate_rotation_deg(
    ue_geom: &ArrayGeometry,
    ue_steer_deg: f64,
    drop_db: f64,
) -> Option<f64> {
    mmwave_array::pattern::invert_gain_drop(ue_geom, ue_steer_deg, drop_db)
}

/// Correction to apply after a translation estimate: the gNB beam moves by
/// `+dev` and the UE beam by `-dev` (they misalign in opposite senses,
/// Fig. 12), with the sign of `dev` resolved by a hypothesis probe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TranslationCorrection {
    /// gNB-side angular correction, degrees.
    pub gnb_delta_deg: f64,
    /// UE-side angular correction, degrees.
    pub ue_delta_deg: f64,
}

impl TranslationCorrection {
    /// Builds the paired correction for a given misalignment and sign.
    pub fn paired(dev_deg: f64, positive: bool) -> Self {
        let s = if positive { 1.0 } else { -1.0 };
        Self {
            gnb_delta_deg: s * dev_deg,
            ue_delta_deg: -s * dev_deg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn association_identity() {
        let pairs = associate_beams(&[0.0, 5.0, 12.0], &[0.1, 5.2, 11.8]);
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn association_handles_permutation() {
        // UE reports its beams in a different order.
        let pairs = associate_beams(&[0.0, 5.0], &[5.1, -0.05]);
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn association_drops_unmatched() {
        let pairs = associate_beams(&[0.0, 5.0, 9.0], &[0.0, 9.1]);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(2, 1)));
    }

    #[test]
    fn rotation_estimate_round_trip() {
        let ue = ArrayGeometry::ula(4); // typical handset array
        for dev in [2.0, 5.0, 10.0] {
            let g = ula_gain_rel(4, 0.5, 0.0, dev);
            let drop = -db_from_pow(g * g);
            let est = estimate_rotation_deg(&ue, 0.0, drop).unwrap();
            assert!((est - dev).abs() < 0.1, "dev {dev} est {est}");
        }
    }

    #[test]
    fn translation_estimate_round_trip() {
        let gnb = ArrayGeometry::ula(8);
        let ue = ArrayGeometry::ula(4);
        for dev in [1.0, 3.0, 6.0] {
            let drop = two_sided_loss_db(&gnb, 10.0, &ue, -20.0, dev);
            let est = estimate_translation_misalign_deg(&gnb, 10.0, &ue, -20.0, drop).unwrap();
            assert!((est - dev).abs() < 0.1, "dev {dev} est {est} (drop {drop})");
        }
    }

    #[test]
    fn translation_loss_exceeding_lobes_rejected() {
        let gnb = ArrayGeometry::ula(8);
        let ue = ArrayGeometry::ula(4);
        assert_eq!(
            estimate_translation_misalign_deg(&gnb, 0.0, &ue, 0.0, 80.0),
            None
        );
    }

    #[test]
    fn two_sided_loss_is_sum_of_sides() {
        let gnb = ArrayGeometry::ula(8);
        let ue = ArrayGeometry::ula(4);
        let dev = 4.0;
        let total = two_sided_loss_db(&gnb, 0.0, &ue, 0.0, dev);
        let g_only = {
            let g = ula_gain_rel(8, 0.5, 0.0, dev);
            -db_from_pow(g * g)
        };
        let u_only = {
            let g = ula_gain_rel(4, 0.5, 0.0, dev);
            -db_from_pow(g * g)
        };
        assert!((total - g_only - u_only).abs() < 1e-9);
        // Two-sided misalignment hurts more than either side alone.
        assert!(total > g_only && total > u_only);
    }

    #[test]
    fn paired_correction_signs() {
        let c = TranslationCorrection::paired(3.0, true);
        assert_eq!(c.gnb_delta_deg, 3.0);
        assert_eq!(c.ue_delta_deg, -3.0);
        let c = TranslationCorrection::paired(3.0, false);
        assert_eq!(c.gnb_delta_deg, -3.0);
        assert_eq!(c.ue_delta_deg, 3.0);
    }

    #[test]
    fn zero_drop_zero_estimate() {
        let gnb = ArrayGeometry::ula(8);
        let ue = ArrayGeometry::ula(4);
        assert_eq!(
            estimate_translation_misalign_deg(&gnb, 0.0, &ue, 0.0, 0.0),
            Some(0.0)
        );
    }
}
