//! The explicit link lifecycle state machine.
//!
//! The controller's establish / maintain / re-train life cycle used to be
//! encoded implicitly in ad-hoc branches; this module makes it an explicit,
//! fault-tolerant state machine in the style of production state
//! controllers: lifecycle states are enum-modelled, every state change goes
//! through **one** transition function ([`LinkLifecycle::apply`]), and
//! recovery work (full SSB re-training) is retried with **bounded attempts
//! and exponential backoff** instead of hot-looping — a link that cannot be
//! re-trained escalates to a wide-beam degraded fallback and keeps serving
//! what it can.
//!
//! State semantics:
//!
//! - [`LinkState::Acquiring`] — no link yet; initial training scans run
//!   with backoff between failed attempts.
//! - [`LinkState::Steady`] — established and healthy; the normal
//!   maintenance path (blockage handling, mobility tracking) runs.
//! - [`LinkState::Degraded`] — established but persistently well below the
//!   healthy reference; re-training is scheduled with backoff, and once the
//!   retry budget is exhausted the controller falls back to a wide beam.
//! - [`LinkState::Outage`] — below the decode threshold; no data flows;
//!   capped, backed-off re-training attempts try to bring the link back.
//! - [`LinkState::Recovering`] — a re-training attempt is executing this
//!   round; resolves to `Steady` on success or back to the degraded/outage
//!   episode (with a longer backoff) on failure.

/// Lifecycle state of one link. Payload fields carry episode bookkeeping:
/// when a degradation/outage began, or which retry attempt is running.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkState {
    /// No link established yet; training scans run with backoff.
    Acquiring,
    /// Established and healthy.
    Steady,
    /// Established but persistently degraded since `since_s`.
    Degraded {
        /// When the degradation episode began, seconds.
        since_s: f64,
    },
    /// Below the decode threshold since `since_s`; no data flows.
    Outage {
        /// When the outage began, seconds.
        since_s: f64,
    },
    /// Re-training attempt `attempt` (1-based within the episode) is
    /// executing.
    Recovering {
        /// 1-based attempt number within the current episode.
        attempt: u32,
    },
}

/// State discriminant without payloads — the unit of the legality table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkStateKind {
    /// See [`LinkState::Acquiring`].
    Acquiring,
    /// See [`LinkState::Steady`].
    Steady,
    /// See [`LinkState::Degraded`].
    Degraded,
    /// See [`LinkState::Outage`].
    Outage,
    /// See [`LinkState::Recovering`].
    Recovering,
}

impl LinkStateKind {
    /// All states, for exhaustive table tests.
    pub const ALL: [LinkStateKind; 5] = [
        LinkStateKind::Acquiring,
        LinkStateKind::Steady,
        LinkStateKind::Degraded,
        LinkStateKind::Outage,
        LinkStateKind::Recovering,
    ];
}

impl LinkStateKind {
    /// Stable lowercase name (trace/CSV labels).
    pub fn name(self) -> &'static str {
        match self {
            LinkStateKind::Acquiring => "acquiring",
            LinkStateKind::Steady => "steady",
            LinkStateKind::Degraded => "degraded",
            LinkStateKind::Outage => "outage",
            LinkStateKind::Recovering => "recovering",
        }
    }

    /// Inverse of [`LinkStateKind::name`]: the stable serde names history
    /// lines are written with. `None` for anything else — callers decide
    /// whether an unknown name (a newer writer) is a skip or an error.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for LinkStateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl LinkState {
    /// The payload-free discriminant.
    pub fn kind(&self) -> LinkStateKind {
        match self {
            LinkState::Acquiring => LinkStateKind::Acquiring,
            LinkState::Steady => LinkStateKind::Steady,
            LinkState::Degraded { .. } => LinkStateKind::Degraded,
            LinkState::Outage { .. } => LinkStateKind::Outage,
            LinkState::Recovering { .. } => LinkStateKind::Recovering,
        }
    }

    /// True when a multi-beam is live (data may flow, possibly degraded).
    pub fn is_established(&self) -> bool {
        !matches!(self, LinkState::Acquiring)
    }
}

/// Whether the machine may move from `from` to `to` (self-loops are legal
/// only where listed; payload-only changes are not transitions).
pub fn is_legal_transition(from: LinkStateKind, to: LinkStateKind) -> bool {
    use LinkStateKind::*;
    matches!(
        (from, to),
        (Acquiring, Acquiring)      // failed initial scan, retried with backoff
            | (Acquiring, Steady)   // initial establishment
            | (Steady, Steady)      // manual re-establishment
            | (Steady, Degraded)    // persistent degradation
            | (Steady, Outage)      // SNR collapse
            | (Steady, Recovering)  // unexplained collapse: immediate re-train
            | (Degraded, Steady)    // healed (channel or retrain)
            | (Degraded, Outage)    // degradation deepened
            | (Degraded, Recovering)
            | (Outage, Steady)      // healed
            | (Outage, Degraded)    // partial recovery
            | (Outage, Recovering)
            | (Recovering, Steady)  // retrain succeeded
            | (Recovering, Degraded) // retrain failed / budget exhausted
            | (Recovering, Outage) // retrain failed, still dark
    )
}

/// True when `kind` has at least one legal outgoing edge — the "machine
/// never wedges" predicate. Every state in today's table has an exit; the
/// predicate exists so run-level oracles (the scenario fuzzer, the
/// `machine_never_wedges` property test) assert it against the table
/// instead of hard-coding the table's current shape.
pub fn has_legal_exit(kind: LinkStateKind) -> bool {
    LinkStateKind::ALL
        .into_iter()
        .any(|to| is_legal_transition(kind, to))
}

/// Checks a recorded transition tape against the lifecycle contract: every
/// edge is legal under [`is_legal_transition`], consecutive transitions
/// chain (`to` of one is `from` of the next), timestamps never run
/// backwards, and the final state is not wedged ([`has_legal_exit`]).
///
/// This is the run-level extension of the unit-tape `machine_never_wedges`
/// property: the scenario fuzzer feeds it the full transition log of a
/// simulated run (the sim crate's `RunResult::transitions`) so a lifecycle
/// bug that only manifests under a particular channel/fault history still
/// surfaces as a typed oracle failure. An empty tape is trivially legal.
pub fn check_transition_tape<'a, I>(tape: I) -> Result<(), String>
where
    I: IntoIterator<Item = &'a Transition>,
{
    let mut prev: Option<&Transition> = None;
    for tr in tape {
        if !is_legal_transition(tr.from.kind(), tr.to.kind()) {
            return Err(format!(
                "illegal transition {} -> {} via {:?} at t={}",
                tr.from.kind(),
                tr.to.kind(),
                tr.cause,
                tr.t_s
            ));
        }
        if let Some(p) = prev {
            if p.to.kind() != tr.from.kind() {
                return Err(format!(
                    "transition chain broken: {} -> {} at t={} followed by {} -> {} at t={}",
                    p.from.kind(),
                    p.to.kind(),
                    p.t_s,
                    tr.from.kind(),
                    tr.to.kind(),
                    tr.t_s
                ));
            }
            if tr.t_s < p.t_s {
                return Err(format!(
                    "transition stamped backwards in time: t={} after t={}",
                    tr.t_s, p.t_s
                ));
            }
        }
        if !has_legal_exit(tr.to.kind()) {
            return Err(format!(
                "machine wedged: {} has no legal exits (entered at t={})",
                tr.to.kind(),
                tr.t_s
            ));
        }
        prev = Some(tr);
    }
    Ok(())
}

/// Why a transition fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransitionCause {
    /// A training scan produced a healthy link.
    Established,
    /// A training scan found no usable link (Acquiring self-loop).
    AcquireFailed,
    /// SNR fell below the outage threshold.
    SnrCollapsed,
    /// SNR sat well below the healthy reference for too many rounds.
    DegradationPersisted,
    /// The channel healed on its own (blockage passed, beams readmitted).
    LinkRecovered,
    /// Out of outage but still well below the healthy reference.
    PartialRecovery,
    /// Backoff elapsed; a re-training attempt starts.
    RetrainScheduled,
    /// Conditions improved markedly over the episode floor; re-train now.
    ConditionsImproved,
    /// The re-training attempt failed; backing off.
    RetrainFailed,
    /// The episode's retry budget is spent; wide-beam fallback engages.
    RetryBudgetExhausted,
}

impl TransitionCause {
    /// Every cause, for exhaustive table tests and name round-trips.
    pub const ALL: [TransitionCause; 10] = [
        TransitionCause::Established,
        TransitionCause::AcquireFailed,
        TransitionCause::SnrCollapsed,
        TransitionCause::DegradationPersisted,
        TransitionCause::LinkRecovered,
        TransitionCause::PartialRecovery,
        TransitionCause::RetrainScheduled,
        TransitionCause::ConditionsImproved,
        TransitionCause::RetrainFailed,
        TransitionCause::RetryBudgetExhausted,
    ];

    /// Stable kebab-case serde name. These are a wire format: state
    /// history lines (`StateHandler::history_json`) and the admin CLI's
    /// transition tapes are diffed across binary versions, so renaming a
    /// variant must not rename its serialized form.
    pub fn name(self) -> &'static str {
        match self {
            TransitionCause::Established => "established",
            TransitionCause::AcquireFailed => "acquire-failed",
            TransitionCause::SnrCollapsed => "snr-collapsed",
            TransitionCause::DegradationPersisted => "degradation-persisted",
            TransitionCause::LinkRecovered => "link-recovered",
            TransitionCause::PartialRecovery => "partial-recovery",
            TransitionCause::RetrainScheduled => "retrain-scheduled",
            TransitionCause::ConditionsImproved => "conditions-improved",
            TransitionCause::RetrainFailed => "retrain-failed",
            TransitionCause::RetryBudgetExhausted => "retry-budget-exhausted",
        }
    }

    /// Inverse of [`TransitionCause::name`].
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.name() == name)
    }

    /// True for the causes that represent a failed attempt to leave a
    /// bad state (the handler's per-resource exit-failure counter).
    pub fn is_exit_failure(self) -> bool {
        matches!(
            self,
            TransitionCause::AcquireFailed
                | TransitionCause::RetrainFailed
                | TransitionCause::RetryBudgetExhausted
        )
    }
}

impl std::fmt::Display for TransitionCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded state change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transition {
    /// When it happened (front-end clock), seconds.
    pub t_s: f64,
    /// State before.
    pub from: LinkState,
    /// State after.
    pub to: LinkState,
    /// Why.
    pub cause: TransitionCause,
}

/// Signals the controller feeds the machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkSignal {
    /// A full training scan finished. `ok` means viable paths were found
    /// *and* the established link clears the outage threshold; `snr_db` is
    /// the post-establishment wideband SNR (−∞ if nothing was found).
    EstablishResult {
        /// Scan produced a usable link.
        ok: bool,
        /// Post-establishment SNR, dB.
        snr_db: f64,
    },
    /// One maintenance round measured the live link.
    SnrReport {
        /// Wideband SNR this round, dB.
        snr_db: f64,
        /// The healthy reference (best establishment SNR), dB.
        ref_db: f64,
        /// An active beam shows a deep power drop that blockage/mobility
        /// classification cannot explain — maintenance is lost; only a
        /// full re-train can help. Grants the episode's *first* retry
        /// immediately (§8 "tracking re-calibration"); later retries still
        /// back off.
        unexplained_drop: bool,
    },
}

/// Retry, backoff, and threshold knobs of the lifecycle machine.
#[derive(Clone, Copy, Debug)]
pub struct LifecycleConfig {
    /// SNR below this is an outage, dB (mirrors the controller's decode
    /// threshold).
    pub outage_snr_db: f64,
    /// Hysteresis above the outage threshold required to leave `Outage`, dB.
    pub outage_exit_margin_db: f64,
    /// `snr < ref − degraded_drop_db` counts as a degraded round.
    pub degraded_drop_db: f64,
    /// Consecutive degraded rounds before `Steady → Degraded`.
    pub degraded_after_rounds: usize,
    /// Re-training attempts per degradation/outage episode before the
    /// wide-beam fallback engages.
    pub max_retrain_attempts: u32,
    /// Delay before the episode's first re-training attempt, seconds.
    pub backoff_base_s: f64,
    /// Backoff multiplier per failed attempt.
    pub backoff_factor: f64,
    /// Backoff ceiling, seconds — also the heartbeat cadence of the
    /// post-exhaustion safety-net retries.
    pub backoff_max_s: f64,
    /// SNR improvement over the episode's floor that re-arms an immediate
    /// re-training attempt (the world visibly changed), dB.
    pub improve_rearm_db: f64,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        Self {
            outage_snr_db: 6.0,
            outage_exit_margin_db: 2.0,
            degraded_drop_db: 8.0,
            degraded_after_rounds: 12,
            max_retrain_attempts: 4,
            // First retry waits out transient dips (blockage ramp edges,
            // beam-readmission glitches self-heal within ~2–4 maintenance
            // rounds); only a *sustained* outage is worth a 32 ms scan.
            backoff_base_s: 0.12,
            backoff_factor: 2.0,
            backoff_max_s: 0.4,
            improve_rearm_db: 8.0,
        }
    }
}

impl LifecycleConfig {
    /// Validates invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.backoff_base_s <= 0.0 || self.backoff_max_s < self.backoff_base_s {
            return Err("backoff window must satisfy 0 < base <= max".into());
        }
        if self.backoff_factor < 1.0 {
            return Err("backoff_factor must be >= 1".into());
        }
        if self.max_retrain_attempts == 0 {
            return Err("max_retrain_attempts must be positive".into());
        }
        if self.degraded_after_rounds == 0 {
            return Err("degraded_after_rounds must be positive".into());
        }
        if self.degraded_drop_db <= 0.0 || self.improve_rearm_db <= 0.0 {
            return Err("degradation thresholds must be positive".into());
        }
        Ok(())
    }
}

/// The lifecycle machine: current state, transition log, and retry/backoff
/// bookkeeping. [`LinkLifecycle::apply`] is the **only** place the state is
/// mutated.
#[derive(Clone, Debug)]
pub struct LinkLifecycle {
    cfg: LifecycleConfig,
    state: LinkState,
    log: Vec<Transition>,
    /// Earliest time the next training scan may start, seconds.
    next_attempt_s: f64,
    /// Scan attempts consumed in the current episode (or while acquiring).
    attempts: u32,
    /// Consecutive degraded rounds observed in `Steady`.
    low_rounds: usize,
    /// Worst SNR seen in the current degraded/outage episode, dB.
    episode_floor_db: f64,
    /// Where a failed `Recovering` attempt falls back to.
    episode: Option<(LinkStateKind, f64)>,
    /// Wide-beam fallback engaged (set on `RetryBudgetExhausted`, cleared
    /// on reaching `Steady`).
    fallback_active: bool,
    /// Total training scans signalled over the lifetime (observability).
    scans: u64,
    /// Telemetry handle: transitions and backoff decisions are recorded at
    /// the single mutation point. Disabled (free) by default.
    #[cfg(feature = "telemetry")]
    tracer: mmwave_telemetry::Tracer,
}

impl LinkLifecycle {
    /// A fresh machine in `Acquiring`; the first scan may start at once.
    pub fn new(cfg: LifecycleConfig) -> Self {
        cfg.validate().expect("invalid lifecycle configuration");
        Self {
            cfg,
            state: LinkState::Acquiring,
            log: Vec::new(),
            next_attempt_s: 0.0,
            attempts: 0,
            low_rounds: 0,
            episode_floor_db: f64::INFINITY,
            episode: None,
            fallback_active: false,
            scans: 0,
            #[cfg(feature = "telemetry")]
            tracer: mmwave_telemetry::Tracer::disabled(),
        }
    }

    /// Installs a telemetry tracer; transitions and retry/backoff
    /// decisions will be recorded as trace events. Compiled to a no-op
    /// without the `telemetry` feature.
    pub fn set_tracer(&mut self, tracer: mmwave_telemetry::Tracer) {
        #[cfg(feature = "telemetry")]
        {
            self.tracer = tracer;
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = tracer;
    }

    /// Current state.
    pub fn state(&self) -> LinkState {
        self.state
    }

    /// Configuration accessor.
    pub fn config(&self) -> &LifecycleConfig {
        &self.cfg
    }

    /// Wide-beam fallback engaged?
    pub fn fallback_active(&self) -> bool {
        self.fallback_active
    }

    /// Training scans signalled so far.
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// The transition log accumulated so far.
    pub fn log(&self) -> &[Transition] {
        &self.log
    }

    /// Takes the accumulated transitions, leaving the log empty.
    pub fn drain_log(&mut self) -> Vec<Transition> {
        std::mem::take(&mut self.log)
    }

    /// True when the controller should run a training scan this round:
    /// either an acquisition attempt whose backoff has elapsed, or a
    /// scheduled `Recovering` attempt.
    pub fn should_scan(&self, t_s: f64) -> bool {
        match self.state {
            LinkState::Acquiring => t_s >= self.next_attempt_s,
            LinkState::Recovering { .. } => true,
            _ => false,
        }
    }

    /// Current backoff delay for attempt number `attempt` (1-based).
    fn backoff_s(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(30);
        (self.cfg.backoff_base_s * self.cfg.backoff_factor.powi(exp as i32))
            .min(self.cfg.backoff_max_s)
    }

    /// **The** transition function — the sole mutation point for
    /// [`LinkState`]. Feeds one signal in; records and returns the
    /// transition, if any.
    // xtask-allow(hot-path-closure): the telemetry-gated transition strings format only when the telemetry feature (and a tracer) is active; the default build compiles them out
    pub fn apply(&mut self, sig: LinkSignal, t_s: f64) -> Option<Transition> {
        let from = self.state;
        #[cfg(feature = "telemetry")]
        let next_attempt_before = self.next_attempt_s;
        // An unexplained deep drop warrants an immediate first retry —
        // maintenance has lost the plot and waiting cannot help.
        let urgent = matches!(
            sig,
            LinkSignal::SnrReport {
                unexplained_drop: true,
                ..
            }
        );
        let decided: Option<(LinkState, TransitionCause)> = match (from, sig) {
            // ---- training scan outcomes --------------------------------
            (state, LinkSignal::EstablishResult { ok, snr_db }) => {
                self.scans += 1;
                if ok {
                    Some((LinkState::Steady, TransitionCause::Established))
                } else {
                    self.attempts += 1;
                    self.next_attempt_s = t_s + self.backoff_s(self.attempts);
                    // (The scan's SNR is deliberately NOT folded into the
                    // episode floor: the floor tracks live-link
                    // measurements, and a failed scan's placeholder value
                    // would make any later report look like a huge
                    // "improvement".)
                    let _ = snr_db;
                    match state {
                        LinkState::Acquiring => {
                            Some((LinkState::Acquiring, TransitionCause::AcquireFailed))
                        }
                        LinkState::Recovering { attempt } => {
                            let (fallback_kind, since_s) =
                                self.episode.unwrap_or((LinkStateKind::Degraded, t_s));
                            if attempt >= self.cfg.max_retrain_attempts {
                                // Budget spent: degrade to the wide-beam
                                // fallback; the safety-net heartbeat keeps
                                // retrying at the backoff ceiling.
                                self.next_attempt_s = t_s + self.cfg.backoff_max_s;
                                Some((
                                    LinkState::Degraded { since_s },
                                    TransitionCause::RetryBudgetExhausted,
                                ))
                            } else {
                                let to = match fallback_kind {
                                    LinkStateKind::Outage => LinkState::Outage { since_s },
                                    _ => LinkState::Degraded { since_s },
                                };
                                Some((to, TransitionCause::RetrainFailed))
                            }
                        }
                        // A manual re-establishment that failed from an
                        // established state: stay put, backoff updated.
                        _ => None,
                    }
                }
            }

            // ---- maintenance-round measurements ------------------------
            (LinkState::Acquiring, LinkSignal::SnrReport { .. }) => None,
            (LinkState::Steady, LinkSignal::SnrReport { snr_db, ref_db, .. }) => {
                if snr_db < self.cfg.outage_snr_db {
                    if urgent {
                        // Fresh collapse with an unexplained deep per-beam
                        // drop: maintenance cannot help — re-train this
                        // round (§8). Only a *fresh* episode gets this;
                        // failed attempts fall back to Outage and pace all
                        // further retries by the backoff schedule.
                        Some((
                            LinkState::Recovering { attempt: 1 },
                            TransitionCause::SnrCollapsed,
                        ))
                    } else {
                        Some((
                            LinkState::Outage { since_s: t_s },
                            TransitionCause::SnrCollapsed,
                        ))
                    }
                } else if snr_db < ref_db - self.cfg.degraded_drop_db {
                    self.low_rounds += 1;
                    if self.low_rounds >= self.cfg.degraded_after_rounds {
                        Some((
                            LinkState::Degraded { since_s: t_s },
                            TransitionCause::DegradationPersisted,
                        ))
                    } else {
                        None
                    }
                } else {
                    self.low_rounds = 0;
                    None
                }
            }
            (LinkState::Degraded { since_s }, LinkSignal::SnrReport { snr_db, ref_db, .. }) => {
                if snr_db < self.cfg.outage_snr_db {
                    Some((
                        LinkState::Outage { since_s: t_s },
                        TransitionCause::SnrCollapsed,
                    ))
                } else if snr_db >= ref_db - self.cfg.degraded_drop_db {
                    if self.fallback_active {
                        // The wide-beam fallback measuring healthy does not
                        // validate the stale multi-beam — exit only through
                        // a successful re-train.
                        Some((
                            LinkState::Recovering { attempt: 1 },
                            TransitionCause::ConditionsImproved,
                        ))
                    } else {
                        Some((LinkState::Steady, TransitionCause::LinkRecovered))
                    }
                } else {
                    self.episode_floor_db = self.episode_floor_db.min(snr_db);
                    self.schedule_retrain(snr_db, t_s, since_s, LinkStateKind::Degraded)
                }
            }
            (LinkState::Outage { since_s }, LinkSignal::SnrReport { snr_db, ref_db, .. }) => {
                let exit = self.cfg.outage_snr_db + self.cfg.outage_exit_margin_db;
                if snr_db >= exit {
                    if self.fallback_active {
                        Some((
                            LinkState::Recovering { attempt: 1 },
                            TransitionCause::ConditionsImproved,
                        ))
                    } else if snr_db >= ref_db - self.cfg.degraded_drop_db {
                        Some((LinkState::Steady, TransitionCause::LinkRecovered))
                    } else {
                        Some((
                            LinkState::Degraded { since_s: t_s },
                            TransitionCause::PartialRecovery,
                        ))
                    }
                } else {
                    self.episode_floor_db = self.episode_floor_db.min(snr_db);
                    self.schedule_retrain(snr_db, t_s, since_s, LinkStateKind::Outage)
                }
            }
            // A measurement while a scan is in flight carries no new
            // information; the scan outcome decides.
            (LinkState::Recovering { .. }, LinkSignal::SnrReport { .. }) => None,
        };

        let (to, cause) = decided?;
        debug_assert!(
            is_legal_transition(from.kind(), to.kind()),
            "illegal transition {:?} -> {:?} ({:?})",
            from.kind(),
            to.kind(),
            cause
        );
        // Entry bookkeeping.
        match to {
            LinkState::Steady => {
                self.attempts = 0;
                self.low_rounds = 0;
                self.episode_floor_db = f64::INFINITY;
                self.episode = None;
                self.fallback_active = false;
            }
            LinkState::Degraded { since_s } | LinkState::Outage { since_s } => {
                let kind = to.kind();
                let fresh_episode = self.episode.is_none();
                if fresh_episode {
                    // Entering an episode from Steady: arm the first retry.
                    // The backoff delay rides out transient dips that heal
                    // on their own; an unexplained collapse re-trains at
                    // the next opportunity instead.
                    self.attempts = 0;
                    self.episode_floor_db = f64::INFINITY;
                    self.next_attempt_s = if urgent {
                        t_s
                    } else {
                        t_s + self.cfg.backoff_base_s
                    };
                }
                self.episode = Some((kind, since_s));
                if cause == TransitionCause::RetryBudgetExhausted {
                    self.fallback_active = true;
                }
            }
            LinkState::Recovering { .. } => {
                // Improvement-triggered attempts restart the budget.
                if cause == TransitionCause::ConditionsImproved {
                    self.attempts = 0;
                    self.episode_floor_db = f64::INFINITY;
                }
                // An immediate re-train on a fresh collapse opens a new
                // outage episode — a failed attempt falls back there.
                if from == LinkState::Steady {
                    self.attempts = 0;
                    self.episode_floor_db = f64::INFINITY;
                    self.episode = Some((LinkStateKind::Outage, t_s));
                }
            }
            LinkState::Acquiring => {}
        }
        self.state = to;
        let tr = Transition {
            t_s,
            from,
            to,
            cause,
        };
        self.log.push(tr);
        #[cfg(feature = "telemetry")]
        if self.tracer.wants_events() {
            self.tracer.event(mmwave_telemetry::TraceEvent::Lifecycle {
                t_s,
                from: from.kind().name(),
                to: to.kind().name(),
                cause: format!("{cause:?}"),
            });
            // Every change to the retry clock is a scheduling decision
            // worth a trace line: which attempt was armed and for when.
            if self.next_attempt_s != next_attempt_before {
                self.tracer.event(mmwave_telemetry::TraceEvent::Decision {
                    t_s,
                    what: format!(
                        "retrain attempt {} armed for t={:.3}s (backoff {:.3}s)",
                        self.attempts + 1,
                        self.next_attempt_s,
                        self.next_attempt_s - t_s
                    ),
                });
            }
        }
        Some(tr)
    }

    /// Decides whether a degraded/outage round starts a re-training attempt.
    fn schedule_retrain(
        &self,
        snr_db: f64,
        t_s: f64,
        _since_s: f64,
        _kind: LinkStateKind,
    ) -> Option<(LinkState, TransitionCause)> {
        // The improvement re-arm only applies in the wide-beam fallback —
        // it is the fallback's designed exit path. A normal episode whose
        // SNR is rising is healing on its own (beam readmission, blocker
        // leaving); scanning mid-heal wastes airtime the backoff schedule
        // exists to protect.
        let improved = self.fallback_active
            && self.episode_floor_db.is_finite()
            && snr_db >= self.episode_floor_db + self.cfg.improve_rearm_db;
        if improved {
            return Some((
                LinkState::Recovering { attempt: 1 },
                TransitionCause::ConditionsImproved,
            ));
        }
        if t_s >= self.next_attempt_s {
            return Some((
                LinkState::Recovering {
                    attempt: self.attempts + 1,
                },
                TransitionCause::RetrainScheduled,
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LifecycleConfig {
        LifecycleConfig::default()
    }

    fn est(ok: bool, snr: f64) -> LinkSignal {
        LinkSignal::EstablishResult { ok, snr_db: snr }
    }

    fn snr(snr: f64, r: f64) -> LinkSignal {
        LinkSignal::SnrReport {
            snr_db: snr,
            ref_db: r,
            unexplained_drop: false,
        }
    }

    fn snr_urgent(snr: f64, r: f64) -> LinkSignal {
        LinkSignal::SnrReport {
            snr_db: snr,
            ref_db: r,
            unexplained_drop: true,
        }
    }

    #[test]
    fn acquire_then_steady() {
        let mut lc = LinkLifecycle::new(cfg());
        assert_eq!(lc.state().kind(), LinkStateKind::Acquiring);
        assert!(lc.should_scan(0.0));
        let tr = lc.apply(est(true, 27.0), 0.03).unwrap();
        assert_eq!(tr.cause, TransitionCause::Established);
        assert_eq!(lc.state(), LinkState::Steady);
    }

    #[test]
    fn failed_acquire_backs_off_exponentially() {
        let mut lc = LinkLifecycle::new(cfg());
        let mut t = 0.0;
        let mut gaps = Vec::new();
        for _ in 0..3 {
            assert!(lc.should_scan(t));
            lc.apply(est(false, -60.0), t);
            let next = lc.next_attempt_s;
            gaps.push(next - t);
            assert!(!lc.should_scan(t), "must wait out the backoff");
            t = next;
        }
        assert!(gaps[1] > gaps[0] && gaps[2] > gaps[1], "gaps {gaps:?}");
        assert_eq!(lc.state().kind(), LinkStateKind::Acquiring);
    }

    #[test]
    fn backoff_is_capped() {
        let mut lc = LinkLifecycle::new(cfg());
        let mut t = 0.0;
        for _ in 0..24 {
            lc.apply(est(false, -60.0), t);
            t = lc.next_attempt_s;
        }
        assert!(lc.next_attempt_s - t <= 0.0 + 1e-12);
        let last_gap = {
            let before = t;
            lc.apply(est(false, -60.0), t);
            lc.next_attempt_s - before
        };
        assert!(
            (last_gap - cfg().backoff_max_s).abs() < 1e-9,
            "gap {last_gap}"
        );
    }

    #[test]
    fn snr_collapse_enters_outage_then_bounded_retries() {
        let c = cfg();
        let mut lc = LinkLifecycle::new(c);
        lc.apply(est(true, 27.0), 0.0);
        let tr = lc.apply(snr(-10.0, 27.0), 0.1).unwrap();
        assert_eq!(tr.cause, TransitionCause::SnrCollapsed);
        // Walk time forward through an endless outage; count scans.
        let mut t = 0.1;
        let mut scans = 0;
        for _ in 0..200 {
            t += 0.01;
            if let Some(tr) = lc.apply(snr(-10.0, 27.0), t) {
                if matches!(tr.to, LinkState::Recovering { .. }) {
                    scans += 1;
                    lc.apply(est(false, -60.0), t);
                }
            }
            if t > 2.0 {
                break;
            }
        }
        // 4 budget attempts (20/40/80/160 ms) + ceiling-cadence heartbeats
        // over ~1.9 s: bounded, nothing like one per round.
        assert!(
            (4..=10).contains(&scans),
            "expected bounded retries, got {scans}"
        );
        assert!(lc.fallback_active(), "fallback after budget exhaustion");
    }

    #[test]
    fn unexplained_collapse_retries_immediately_then_backs_off() {
        let c = cfg();
        let mut lc = LinkLifecycle::new(c);
        lc.apply(est(true, 27.0), 0.0);
        // Unexplained fresh collapse: re-train scheduled the same round.
        let tr = lc.apply(snr_urgent(-10.0, 27.0), 0.1).unwrap();
        assert_eq!(tr.cause, TransitionCause::SnrCollapsed);
        assert_eq!(tr.to, LinkState::Recovering { attempt: 1 });
        // The attempt fails: back to Outage, and the next retry must wait
        // out the backoff even with the urgent evidence still present.
        let tr = lc.apply(est(false, -60.0), 0.13).unwrap();
        assert_eq!(tr.cause, TransitionCause::RetrainFailed);
        assert_eq!(tr.to.kind(), LinkStateKind::Outage);
        assert!(lc.apply(snr_urgent(-10.0, 27.0), 0.14).is_none());
        assert!(
            lc.next_attempt_s - 0.13 >= c.backoff_base_s,
            "second attempt must back off"
        );
        // Contrast: an *explained* collapse enters Outage and waits.
        let mut lc2 = LinkLifecycle::new(c);
        lc2.apply(est(true, 27.0), 0.0);
        let tr = lc2.apply(snr(-10.0, 27.0), 0.1).unwrap();
        assert_eq!(tr.to.kind(), LinkStateKind::Outage);
        assert!(lc2.apply(snr(-10.0, 27.0), 0.11).is_none());
    }

    #[test]
    fn improvement_rearms_recovery() {
        let mut lc = LinkLifecycle::new(cfg());
        lc.apply(est(true, 27.0), 0.0);
        lc.apply(snr(-10.0, 27.0), 0.1); // -> Outage
                                         // Exhaust the budget: walk far enough for all backed-off attempts.
        let mut t = 0.1;
        for _ in 0..120 {
            t += 0.02;
            if let Some(tr) = lc.apply(snr(-10.0, 27.0), t) {
                if matches!(tr.to, LinkState::Recovering { .. }) {
                    lc.apply(est(false, -20.0), t);
                }
            }
            if lc.fallback_active() {
                break;
            }
        }
        assert!(lc.fallback_active());
        // SNR jumps well above the episode floor (blockage passed, the wide
        // beam sees something again): immediate re-train even though the
        // heartbeat has not elapsed — and even though the link is still far
        // from healthy.
        let tr = lc.apply(snr(10.0, 27.0), t + 0.01).unwrap();
        assert_eq!(tr.cause, TransitionCause::ConditionsImproved);
        assert_eq!(tr.to, LinkState::Recovering { attempt: 1 });
        // And success clears the fallback.
        lc.apply(est(true, 26.0), t + 0.05);
        assert_eq!(lc.state(), LinkState::Steady);
        assert!(!lc.fallback_active());
    }

    #[test]
    fn persistent_degradation_detected_after_n_rounds() {
        let c = cfg();
        let mut lc = LinkLifecycle::new(c);
        lc.apply(est(true, 27.0), 0.0);
        let mut t = 0.0;
        let mut entered = None;
        for i in 0..(c.degraded_after_rounds + 2) {
            t += 0.01;
            if let Some(tr) = lc.apply(snr(15.0, 27.0), t) {
                entered = Some((i, tr));
                break;
            }
        }
        let (i, tr) = entered.expect("degradation must be detected");
        assert_eq!(i + 1, c.degraded_after_rounds);
        assert_eq!(tr.cause, TransitionCause::DegradationPersisted);
        // Recovery back to Steady once SNR returns.
        let tr = lc.apply(snr(26.0, 27.0), t + 0.01).unwrap();
        assert_eq!(tr.cause, TransitionCause::LinkRecovered);
    }

    #[test]
    fn healthy_rounds_reset_the_degradation_counter() {
        let c = cfg();
        let mut lc = LinkLifecycle::new(c);
        lc.apply(est(true, 27.0), 0.0);
        let mut t = 0.0;
        for round in 0..(4 * c.degraded_after_rounds) {
            t += 0.01;
            // Alternate low/high: never enough consecutive lows.
            let s = if round % 3 == 2 { 26.0 } else { 15.0 };
            assert!(lc.apply(snr(s, 27.0), t).is_none(), "round {round}");
        }
        assert_eq!(lc.state(), LinkState::Steady);
    }

    #[test]
    fn outage_partial_recovery_lands_in_degraded() {
        let mut lc = LinkLifecycle::new(cfg());
        lc.apply(est(true, 27.0), 0.0);
        lc.apply(snr(-10.0, 27.0), 0.1);
        assert_eq!(lc.state().kind(), LinkStateKind::Outage);
        let tr = lc.apply(snr(12.0, 27.0), 0.12).unwrap();
        assert_eq!(tr.cause, TransitionCause::PartialRecovery);
        assert_eq!(tr.to.kind(), LinkStateKind::Degraded);
    }

    #[test]
    fn legality_table_covers_every_state() {
        for from in LinkStateKind::ALL {
            let outgoing: Vec<LinkStateKind> = LinkStateKind::ALL
                .into_iter()
                .filter(|&to| is_legal_transition(from, to))
                .collect();
            assert!(
                !outgoing.is_empty(),
                "{from:?} must have at least one legal outgoing transition"
            );
        }
        // Spot-check forbidden edges.
        assert!(!is_legal_transition(
            LinkStateKind::Steady,
            LinkStateKind::Acquiring
        ));
        assert!(!is_legal_transition(
            LinkStateKind::Recovering,
            LinkStateKind::Acquiring
        ));
        assert!(!is_legal_transition(
            LinkStateKind::Outage,
            LinkStateKind::Acquiring
        ));
        assert!(!is_legal_transition(
            LinkStateKind::Acquiring,
            LinkStateKind::Degraded
        ));
        assert!(!is_legal_transition(
            LinkStateKind::Acquiring,
            LinkStateKind::Outage
        ));
    }

    #[test]
    fn every_logged_transition_is_legal() {
        // Fuzz the machine with a mixed signal tape; every transition the
        // log records must be legal and causally stamped in time order.
        let mut lc = LinkLifecycle::new(cfg());
        let mut t = 0.0;
        for i in 0..500u64 {
            t += 0.005;
            let sig = match i % 7 {
                0 => est(i % 3 == 0, 20.0),
                1 => snr(-20.0, 27.0),
                2 => snr(15.0, 27.0),
                3 => snr(26.0, 27.0),
                4 => snr(4.0, 27.0),
                5 => est(false, -60.0),
                _ => snr(10.0, 27.0),
            };
            lc.apply(sig, t);
        }
        let log = lc.log();
        assert!(!log.is_empty());
        for w in log.windows(2) {
            assert!(w[0].t_s <= w[1].t_s, "log out of order");
            // Consecutive log entries chain: to of one is from of the next.
            assert_eq!(w[0].to, w[1].from, "log must chain");
        }
        for tr in log {
            assert!(
                is_legal_transition(tr.from.kind(), tr.to.kind()),
                "illegal logged transition {tr:?}"
            );
        }
    }

    #[test]
    fn drain_log_empties() {
        let mut lc = LinkLifecycle::new(cfg());
        lc.apply(est(true, 27.0), 0.0);
        assert_eq!(lc.log().len(), 1);
        let drained = lc.drain_log();
        assert_eq!(drained.len(), 1);
        assert!(lc.log().is_empty());
    }

    #[test]
    fn serde_names_are_stable_and_round_trip() {
        // These strings are a wire format (history lines, admin tapes):
        // the literals are pinned here so a rename shows up as a test
        // diff, not a silent format change.
        let expected_states = ["acquiring", "steady", "degraded", "outage", "recovering"];
        for (k, want) in LinkStateKind::ALL.into_iter().zip(expected_states) {
            assert_eq!(k.name(), want);
            assert_eq!(LinkStateKind::parse(want), Some(k));
        }
        assert_eq!(LinkStateKind::parse("warp-drive"), None);
        let expected_causes = [
            "established",
            "acquire-failed",
            "snr-collapsed",
            "degradation-persisted",
            "link-recovered",
            "partial-recovery",
            "retrain-scheduled",
            "conditions-improved",
            "retrain-failed",
            "retry-budget-exhausted",
        ];
        for (c, want) in TransitionCause::ALL.into_iter().zip(expected_causes) {
            assert_eq!(c.name(), want);
            assert_eq!(TransitionCause::parse(want), Some(c));
        }
        assert_eq!(TransitionCause::parse("nope"), None);
    }

    #[test]
    fn config_validation() {
        let mut c = cfg();
        c.backoff_factor = 0.5;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.max_retrain_attempts = 0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.backoff_max_s = 1e-6;
        assert!(c.validate().is_err());
        assert!(cfg().validate().is_ok());
    }
}
