//! Property-based tests for the link lifecycle state machine: no signal
//! tape, however adversarial, may drive [`LinkLifecycle::apply`] through an
//! edge [`is_legal_transition`] forbids, and the drained log must replay the
//! applied transitions exactly, in order.

use mmreliable::linkstate::{
    is_legal_transition, LifecycleConfig, LinkLifecycle, LinkSignal, LinkState, Transition,
};
use proptest::prelude::*;

/// SNR values spanning deep outage to far above any reference, including
/// non-finite edge cases the controller itself would never produce.
fn arb_snr() -> impl Strategy<Value = f64> {
    prop_oneof![-80.0..60.0f64, Just(f64::NEG_INFINITY), Just(f64::INFINITY),]
}

fn arb_bool() -> impl Strategy<Value = bool> {
    (0u32..2).prop_map(|b| b == 1)
}

/// An arbitrary (possibly nonsensical) controller signal.
fn arb_signal() -> impl Strategy<Value = LinkSignal> {
    prop_oneof![
        (arb_bool(), arb_snr()).prop_map(|(ok, snr_db)| LinkSignal::EstablishResult { ok, snr_db }),
        (arb_snr(), -10.0..40.0f64, arb_bool()).prop_map(|(snr_db, ref_db, unexplained_drop)| {
            LinkSignal::SnrReport {
                snr_db,
                ref_db,
                unexplained_drop,
            }
        }),
    ]
}

/// A tape of signals with strictly positive inter-signal gaps (time moves
/// forward, as it does on a real front-end clock).
fn arb_tape() -> impl Strategy<Value = Vec<(LinkSignal, f64)>> {
    prop::collection::vec((arb_signal(), 1e-4..0.2f64), 1..200).prop_map(|steps| {
        let mut t = 0.0;
        steps
            .into_iter()
            .map(|(sig, dt)| {
                t += dt;
                (sig, t)
            })
            .collect()
    })
}

proptest! {
    /// Every transition any tape produces is a legal edge, chains from the
    /// previous state, and is stamped in non-decreasing time order.
    #[test]
    fn apply_never_takes_an_illegal_edge(tape in arb_tape()) {
        let mut lc = LinkLifecycle::new(LifecycleConfig::default());
        let mut state = lc.state();
        let mut t_prev = f64::NEG_INFINITY;
        for (sig, t_s) in tape {
            let before = lc.state();
            prop_assert_eq!(before, state, "state changed outside apply");
            if let Some(tr) = lc.apply(sig, t_s) {
                prop_assert!(
                    is_legal_transition(tr.from.kind(), tr.to.kind()),
                    "illegal transition {:?} -> {:?} via {:?}",
                    tr.from.kind(), tr.to.kind(), tr.cause
                );
                prop_assert_eq!(tr.from, before, "transition must start at the live state");
                prop_assert_eq!(tr.to, lc.state(), "transition must land on the live state");
                prop_assert!(tr.t_s >= t_prev, "transition stamped backwards in time");
                t_prev = tr.t_s;
            } else {
                prop_assert_eq!(lc.state(), before, "None must mean no state change");
            }
            state = lc.state();
        }
    }

    /// The drained log is exactly the sequence of transitions `apply`
    /// returned, in application order, and draining empties the log.
    #[test]
    fn drain_log_matches_apply_order(tape in arb_tape()) {
        let mut lc = LinkLifecycle::new(LifecycleConfig::default());
        let mut applied: Vec<Transition> = Vec::new();
        for (sig, t_s) in tape {
            if let Some(tr) = lc.apply(sig, t_s) {
                applied.push(tr);
            }
        }
        let drained = lc.drain_log();
        prop_assert_eq!(&drained, &applied, "log order must match apply order");
        prop_assert!(lc.log().is_empty(), "drain must empty the log");
        for w in drained.windows(2) {
            prop_assert_eq!(w[0].to, w[1].from, "logged transitions must chain");
        }
    }

    /// Whatever the tape did, the machine ends in a state with at least one
    /// legal outgoing edge, and an established-link claim is consistent.
    #[test]
    fn machine_never_wedges(tape in arb_tape()) {
        let mut lc = LinkLifecycle::new(LifecycleConfig::default());
        for (sig, t_s) in tape {
            lc.apply(sig, t_s);
        }
        let kind = lc.state().kind();
        prop_assert!(
            mmreliable::linkstate::has_legal_exit(kind),
            "{kind:?} has no legal exits"
        );
        prop_assert!(
            mmreliable::linkstate::check_transition_tape(lc.log()).is_ok(),
            "recorded tape violates the lifecycle contract"
        );
        prop_assert_eq!(
            lc.state().is_established(),
            !matches!(lc.state(), LinkState::Acquiring)
        );
    }
}
