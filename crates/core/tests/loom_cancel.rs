//! Loom model tests for the `CancelToken` watchdog handoff.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the CI `static-analysis`
//! job); `cargo test` without the flag builds an empty test binary. The
//! vendored `loom` is an offline schedule-stress shim with the real
//! loom's API (see `vendor/loom/src/lib.rs`): each `model` closure runs
//! [`loom::MODEL_ITERATIONS`] times with deterministic yield jitter, so
//! these are interleaving-sampling checks locally and become exhaustive
//! the day the real loom replaces the shim in `Cargo.toml`.
//!
//! What is being modeled — the supervisor/run handoff from PR 3:
//!
//! - a watchdog thread calls [`CancelToken::cancel`] (Release store);
//! - the run polls [`CancelToken::is_cancelled`] (Acquire load) at
//!   cooperative checkpoints and must *eventually and permanently*
//!   observe the cancellation — no lost wakeups, no un-cancelling;
//! - concurrent `note_tick` calls from racing maintenance loops must
//!   never lose a tick, because the tick budget is the deterministic
//!   replay clock: a lost increment would change where a replayed run
//!   times out.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use mmreliable::cancel::{is_cancel_unwind, CancelToken};

/// The watchdog's asynchronous cancel is always observed by the run, and
/// cancellation is sticky once seen.
#[test]
fn async_cancel_is_observed_and_sticky() {
    loom::model(|| {
        let token = CancelToken::new();
        let wd = token.clone();
        let watchdog = loom::thread::spawn(move || {
            loom::hint::yield_now_for(1);
            wd.cancel();
        });
        let mut spins = 0usize;
        while !token.is_cancelled() {
            spins += 1;
            assert!(spins < 10_000_000, "cancel never became visible");
            loom::thread::yield_now();
        }
        watchdog.join().unwrap();
        // Sticky: once observed, every later read agrees.
        assert!(token.is_cancelled());
        assert!(token.is_cancelled());
    });
}

/// Racing maintenance loops never lose ticks, and the tick budget
/// cancels at exactly the configured count whichever thread gets there.
#[test]
fn concurrent_ticks_are_never_lost() {
    const PER_THREAD: u64 = 50;
    loom::model(|| {
        let token = CancelToken::with_tick_budget(2 * PER_THREAD);
        let a = token.clone();
        let b = token.clone();
        let ta = loom::thread::spawn(move || {
            for _ in 0..PER_THREAD {
                a.note_tick();
            }
        });
        let tb = loom::thread::spawn(move || {
            for _ in 0..PER_THREAD {
                b.note_tick();
            }
        });
        ta.join().unwrap();
        tb.join().unwrap();
        assert_eq!(token.ticks(), 2 * PER_THREAD, "a tick increment was lost");
        assert!(
            token.is_cancelled(),
            "budget reached but token not cancelled"
        );
        let under = CancelToken::with_tick_budget(2 * PER_THREAD + 1);
        for _ in 0..2 * PER_THREAD {
            under.note_tick();
        }
        assert!(!under.is_cancelled(), "cancelled before budget exhausted");
    });
}

/// The full handoff: watchdog cancels, the run unwinds at its next
/// checkpoint with the dedicated payload, and the supervisor classifies
/// the unwind as a cancellation (not a crash) — across threads.
#[test]
fn checkpoint_unwind_classified_across_threads() {
    // The run thread unwinds deliberately on every iteration; keep the
    // default hook from printing hundreds of expected panic reports.
    std::panic::set_hook(Box::new(|_| {}));
    loom::model(|| {
        let token = CancelToken::new();
        let wd = token.clone();
        let observed = Arc::new(AtomicUsize::new(0));
        let obs = observed.clone();
        let run = loom::thread::spawn(move || {
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut spins = 0usize;
                loop {
                    wd.checkpoint();
                    spins += 1;
                    assert!(spins < 10_000_000, "checkpoint never fired");
                    loom::thread::yield_now();
                }
            }));
            let payload = res.expect_err("run must unwind at the checkpoint");
            assert!(
                is_cancel_unwind(payload.as_ref()),
                "unwind must carry CancelUnwind, not a crash payload"
            );
            obs.store(1, Ordering::Release);
        });
        loom::hint::yield_now_for(2);
        token.cancel();
        run.join().unwrap();
        assert_eq!(observed.load(Ordering::Acquire), 1);
    });
    let _ = std::panic::take_hook();
}
