//! Property-based tests for mmReliable's estimation algorithms.

use mmreliable::frontend::SnapshotFrontEnd;
use mmreliable::probing::full_relative;
use mmreliable::superres::{estimate_per_beam, SuperResConfig};
use mmreliable::tracking::BeamTracker;
use mmreliable::ue::{associate_beams, estimate_translation_misalign_deg, two_sided_loss_db};
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::pattern::ula_gain_rel;
use mmwave_channel::channel::{GeometricChannel, UeReceiver};
use mmwave_channel::path::{Path, PathKind};
use mmwave_dsp::complex::{c64, Complex64};
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::{db_from_pow, wrap_rad, FC_28GHZ};
use mmwave_phy::chanest::{ChannelSounder, ProbeObservation};
use proptest::prelude::*;
use std::f64::consts::PI;

fn synth_probe(
    alphas: &[(f64, f64)],
    rel_delays_ns: &[f64],
    tau0_ns: f64,
    seed: u64,
) -> ProbeObservation {
    let mut rng = Rng64::seed(seed);
    let n = 264;
    let spacing = 12.0 * 120e3;
    let freqs: Vec<f64> = (0..n)
        .map(|i| (i as f64 - (n as f64 - 1.0) / 2.0) * spacing)
        .collect();
    let cfo = rng.random_phasor();
    let csi: Vec<Complex64> = freqs
        .iter()
        .map(|&f| {
            let mut acc = Complex64::ZERO;
            for (k, &(a, ph)) in alphas.iter().enumerate() {
                let tau = (tau0_ns + rel_delays_ns[k]) * 1e-9;
                acc += Complex64::from_polar(a, ph) * Complex64::cis(-2.0 * PI * f * tau);
            }
            cfo * acc + rng.awgn(1e-6)
        })
        .collect();
    ProbeObservation {
        csi,
        freqs_hz: freqs,
        noise_power_mw: 1e-6,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn two_probe_estimator_recovers_any_channel(
        delta in 0.25..1.0f64,
        sigma in -3.0..3.0f64,
        seed in 0u64..200,
    ) {
        let base = 1.2e-4;
        let ch = GeometricChannel::new(
            vec![
                Path::new(0.0, 0.0, c64(base, 0.0), 23.0, PathKind::Los),
                Path::new(30.0, -30.0, Complex64::from_polar(base * delta, sigma), 23.5,
                          PathKind::Reflected { wall: 0 }),
            ],
            FC_28GHZ,
        );
        let mut fe = SnapshotFrontEnd::new(
            ch,
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(seed),
        );
        let (rel, _, _) = full_relative(&mut fe, 0.0, 30.0, 0.5);
        prop_assert!((rel.delta - delta).abs() < 0.1, "δ est {} truth {delta}", rel.delta);
        prop_assert!(
            wrap_rad(rel.sigma_rad - sigma).abs() < 0.3,
            "σ est {} truth {sigma}",
            rel.sigma_rad
        );
    }

    #[test]
    fn superres_powers_track_truth(
        a2 in 0.2..0.9f64,
        ph2 in -3.0..3.0f64,
        dt in 1.0..12.0f64,
        seed in 0u64..100,
    ) {
        let rel = [0.0, dt];
        let obs = synth_probe(&[(1.0, 0.1), (a2, ph2)], &rel, 25.0, seed);
        let est = estimate_per_beam(&obs, &rel, &SuperResConfig::default());
        prop_assert!((est.powers_mw[0] - 1.0).abs() < 0.15, "p0 {}", est.powers_mw[0]);
        prop_assert!(
            (est.powers_mw[1] - a2 * a2).abs() < 0.15,
            "p1 {} truth {}",
            est.powers_mw[1],
            a2 * a2
        );
    }

    #[test]
    fn superres_power_estimates_are_cfo_invariant(
        a2 in 0.3..0.8f64,
        seed_a in 0u64..50,
        seed_b in 50u64..100,
    ) {
        // Different CFO draws (different seeds ⇒ different common phases)
        // must yield nearly identical per-beam *power* estimates.
        let rel = [0.0, 7.0];
        let cfg = SuperResConfig::default();
        let ea = estimate_per_beam(&synth_probe(&[(1.0, 0.0), (a2, 1.0)], &rel, 25.0, seed_a), &rel, &cfg);
        let eb = estimate_per_beam(&synth_probe(&[(1.0, 0.0), (a2, 1.0)], &rel, 25.0, seed_b), &rel, &cfg);
        prop_assert!((ea.powers_mw[0] - eb.powers_mw[0]).abs() < 0.1);
        prop_assert!((ea.powers_mw[1] - eb.powers_mw[1]).abs() < 0.1);
    }

    #[test]
    fn tracker_inverts_pattern_for_any_in_lobe_deviation(
        steer in -20.0..20.0f64,
        frac in 0.1..0.8f64,
    ) {
        let geom = ArrayGeometry::ula(8);
        let null = mmwave_array::pattern::first_null_offset_deg(&geom, steer, 1.0);
        let dev = frac * null;
        let mut t = BeamTracker::new(steer, -50.0, 1.0, 5);
        let g = ula_gain_rel(8, 0.5, steer, steer + dev);
        let power_db = -50.0 + db_from_pow((g * g).max(1e-12));
        let mut est = None;
        for _ in 0..4 {
            est = t.update(&geom, power_db).deviation_deg;
        }
        prop_assert!(est.is_some());
        prop_assert!((est.unwrap() - dev).abs() < 0.5, "dev {dev} est {:?}", est);
    }

    #[test]
    fn ue_association_is_a_permutation_matching(
        tofs in prop::collection::vec(0.0..50.0f64, 1..5),
        shuffle_seed in 0u64..16,
    ) {
        // UE sees the same relative ToFs, permuted and slightly perturbed.
        let mut rng = Rng64::seed(shuffle_seed);
        let mut order: Vec<usize> = (0..tofs.len()).collect();
        // Fisher–Yates with the seeded RNG.
        for i in (1..order.len()).rev() {
            let j = rng.index(i + 1);
            order.swap(i, j);
        }
        let ue_tofs: Vec<f64> = order.iter().map(|&i| tofs[i] + rng.uniform_in(-0.01, 0.01)).collect();
        let pairs = associate_beams(&tofs, &ue_tofs);
        prop_assert_eq!(pairs.len(), tofs.len());
        // Only require correctness where the match is unambiguous (ToFs
        // separated by more than the perturbation scale).
        for &(g, u) in &pairs {
            let ambiguous = tofs
                .iter()
                .enumerate()
                .any(|(k, &t)| k != g && (t - tofs[g]).abs() < 0.05);
            if !ambiguous {
                prop_assert_eq!(order[u], g, "gnb {} matched ue {}", g, u);
            }
        }
    }

    #[test]
    fn translation_inversion_round_trips(
        gnb_steer in -25.0..25.0f64,
        ue_steer in -25.0..25.0f64,
        dev in 0.2..5.0f64,
    ) {
        let gnb = ArrayGeometry::ula(8);
        let ue = ArrayGeometry::ula(4);
        let drop = two_sided_loss_db(&gnb, gnb_steer, &ue, ue_steer, dev);
        prop_assume!(drop < 20.0); // inside both main lobes
        let est = estimate_translation_misalign_deg(&gnb, gnb_steer, &ue, ue_steer, drop);
        prop_assert!(est.is_some());
        prop_assert!((est.unwrap() - dev).abs() < 0.2, "dev {dev} est {:?}", est);
    }
}
