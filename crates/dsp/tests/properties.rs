//! Property-based tests for the DSP substrate.

use mmwave_dsp::complex::{c64, inner, norm, norm_sqr, normalize_in_place, Complex64};
use mmwave_dsp::fft::{dft_naive, fft, ifft};
use mmwave_dsp::fit::polyfit;
use mmwave_dsp::linalg::{ridge_least_squares, solve, CMatrix};
use mmwave_dsp::sinc::sinc;
use mmwave_dsp::stats;
use mmwave_dsp::units;
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e3..1e3f64
}

fn complex() -> impl Strategy<Value = Complex64> {
    (finite_f64(), finite_f64()).prop_map(|(re, im)| c64(re, im))
}

fn complex_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec(complex(), len)
}

proptest! {
    #[test]
    fn complex_mul_commutative(a in complex(), b in complex()) {
        let ab = a * b;
        let ba = b * a;
        prop_assert!((ab - ba).abs() <= 1e-9 * (1.0 + ab.abs()));
    }

    #[test]
    fn complex_conj_involution(a in complex()) {
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn complex_abs_multiplicative(a in complex(), b in complex()) {
        let lhs = (a * b).abs();
        let rhs = a.abs() * b.abs();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs));
    }

    #[test]
    fn triangle_inequality(a in complex(), b in complex()) {
        prop_assert!((a + b).abs() <= a.abs() + b.abs() + 1e-9);
    }

    #[test]
    fn polar_round_trip(r in 0.0..100.0f64, theta in -3.1..3.1f64) {
        let z = Complex64::from_polar(r, theta);
        prop_assert!((z.abs() - r).abs() < 1e-9);
        if r > 1e-6 {
            prop_assert!((units::wrap_rad(z.arg() - theta)).abs() < 1e-9);
        }
    }

    #[test]
    fn db_round_trip(db in -100.0..100.0f64) {
        prop_assert!((units::db_from_pow(units::pow_from_db(db)) - db).abs() < 1e-9);
        prop_assert!((units::db_from_amp(units::amp_from_db(db)) - db).abs() < 1e-9);
    }

    #[test]
    fn wrap_deg_in_range(deg in -1e4..1e4f64) {
        let w = units::wrap_deg(deg);
        prop_assert!(w > -180.0 - 1e-9 && w <= 180.0 + 1e-9);
        // wrapping preserves the angle modulo 360
        let diff = (deg - w).rem_euclid(360.0);
        prop_assert!(diff < 1e-6 || (360.0 - diff) < 1e-6);
    }

    #[test]
    fn fft_round_trip(x in complex_vec(1..65)) {
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn fft_matches_dft(x in complex_vec(1..33)) {
        let fast = fft(&x);
        let slow = dft_naive(&x);
        let scale: f64 = 1.0 + x.iter().map(|v| v.abs()).sum::<f64>();
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-7 * scale);
        }
    }

    #[test]
    fn fft_parseval(x in complex_vec(1..65)) {
        let y = fft(&x);
        let ex = norm_sqr(&x);
        let ey = norm_sqr(&y) / x.len() as f64;
        prop_assert!((ex - ey).abs() <= 1e-7 * (1.0 + ex));
    }

    #[test]
    fn normalize_gives_unit_norm(mut x in complex_vec(1..32)) {
        prop_assume!(norm(&x) > 1e-6);
        normalize_in_place(&mut x);
        prop_assert!((norm(&x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cauchy_schwarz(a in complex_vec(4..16), b in complex_vec(4..16)) {
        let n = a.len().min(b.len());
        let ip = inner(&a[..n], &b[..n]).abs();
        let bound = norm(&a[..n]) * norm(&b[..n]);
        prop_assert!(ip <= bound + 1e-6 * (1.0 + bound));
    }

    #[test]
    fn solve_then_verify(coeffs in prop::collection::vec(complex(), 9), rhs in prop::collection::vec(complex(), 3)) {
        let a = CMatrix::from_rows(3, 3, coeffs);
        if let Ok(x) = solve(&a, &rhs) {
            let back = a.mul_vec(&x);
            let scale: f64 = 1.0 + rhs.iter().map(|v| v.abs()).sum::<f64>()
                + x.iter().map(|v| v.abs()).sum::<f64>() * a.frobenius_norm();
            for (u, v) in back.iter().zip(&rhs) {
                prop_assert!((*u - *v).abs() < 1e-6 * scale);
            }
        }
    }

    #[test]
    fn ridge_never_worse_than_zero_vector(cols in prop::collection::vec(complex(), 12), rhs in prop::collection::vec(complex(), 4), lambda in 1e-6..10.0f64) {
        // The ridge objective at the solution must not exceed the objective
        // at x = 0 (which is ‖b‖²).
        let a = CMatrix::from_rows(4, 3, cols);
        if let Ok(x) = ridge_least_squares(&a, &rhs, lambda) {
            let resid: Vec<Complex64> = a
                .mul_vec(&x)
                .iter()
                .zip(&rhs)
                .map(|(u, v)| *u - *v)
                .collect();
            let obj = norm_sqr(&resid) + lambda * norm_sqr(&x);
            let zero_obj = norm_sqr(&rhs);
            prop_assert!(obj <= zero_obj * (1.0 + 1e-6) + 1e-9);
        }
    }

    #[test]
    fn sinc_bounded(x in -100.0..100.0f64) {
        prop_assert!(sinc(x).abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn percentile_within_range(data in prop::collection::vec(-1e3..1e3f64, 1..64), q in 0.0..100.0f64) {
        let p = stats::percentile(&data, q);
        let lo = stats::min(&data);
        let hi = stats::max(&data);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn reliability_complement(data in prop::collection::vec(-30.0..40.0f64, 1..128), thr in -10.0..20.0f64) {
        let below = stats::fraction_below(&data, thr);
        let above = data.iter().filter(|&&v| v >= thr).count() as f64 / data.len() as f64;
        prop_assert!((below + above - 1.0).abs() < 1e-12);
    }

    #[test]
    fn polyfit_exact_on_polynomial_data(c0 in -10.0..10.0f64, c1 in -10.0..10.0f64, c2 in -10.0..10.0f64) {
        let xs: Vec<f64> = (0..8).map(|i| i as f64 * 0.5 - 2.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let fit = polyfit(&xs, &ys, 2).unwrap();
        let scale = 1.0 + c0.abs() + c1.abs() + c2.abs();
        prop_assert!((fit.coeffs()[0] - c0).abs() < 1e-6 * scale);
        prop_assert!((fit.coeffs()[1] - c1).abs() < 1e-6 * scale);
        prop_assert!((fit.coeffs()[2] - c2).abs() < 1e-6 * scale);
    }
}
