//! Seeded random sampling helpers.
//!
//! A self-contained xoshiro256++ generator (seeded through SplitMix64) with
//! the distributions the simulator needs (standard normal via Box–Muller,
//! circularly-symmetric complex Gaussian), so that no external randomness
//! crate is required. Every stochastic component in the workspace takes one
//! of these explicitly — there is no global RNG, keeping simulations exactly
//! reproducible.

use crate::complex::{c64, Complex64};
use std::f64::consts::PI;

/// A seeded random source with DSP-oriented sampling methods.
///
/// The core generator is xoshiro256++ (Blackman & Vigna), whose 256-bit
/// state is expanded from the 64-bit seed with SplitMix64 — the standard
/// seeding recipe, which guarantees distinct, well-mixed states even for
/// adjacent seeds.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

/// One SplitMix64 step: advances `state` and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output (xoshiro256++).
    // xtask-allow(hot-path-panic): constant indices into the fixed [u64; 4] state are compile-time checked — no runtime bounds branch exists
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; useful for giving each
    /// experiment run or each subsystem its own stream.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s: u64 = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seed(s)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 top bits → the standard [0,1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() needs a non-empty range");
        // Multiply-shift bounded sampling (Lemire); the tiny modulo bias of
        // the plain widening multiply is irrelevant at simulation scale.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        // Guard against log(0).
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Circularly-symmetric complex Gaussian with unit variance
    /// (`E[|z|²] = 1`, i.e. each component has variance 1/2).
    pub fn complex_normal(&mut self) -> Complex64 {
        c64(
            self.normal() * std::f64::consts::FRAC_1_SQRT_2,
            self.normal() * std::f64::consts::FRAC_1_SQRT_2,
        )
    }

    /// Complex AWGN sample with total noise power `pow` (`E[|z|²] = pow`).
    pub fn awgn(&mut self, pow: f64) -> Complex64 {
        self.complex_normal().scale(pow.sqrt())
    }

    /// Uniform phase in `[0, 2π)` as a unit phasor.
    pub fn random_phasor(&mut self) -> Complex64 {
        Complex64::cis(self.uniform_in(0.0, 2.0 * PI))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng64::seed(123);
        let mut b = Rng64::seed(123);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed(1);
        let mut b = Rng64::seed(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::seed(7);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn complex_normal_unit_power() {
        let mut rng = Rng64::seed(8);
        let n = 100_000;
        let p: f64 = (0..n).map(|_| rng.complex_normal().norm_sqr()).sum::<f64>() / n as f64;
        assert!((p - 1.0).abs() < 0.03, "power {p}");
    }

    #[test]
    fn awgn_power_scales() {
        let mut rng = Rng64::seed(9);
        let n = 50_000;
        let p: f64 = (0..n).map(|_| rng.awgn(4.0).norm_sqr()).sum::<f64>() / n as f64;
        assert!((p - 4.0).abs() < 0.2, "power {p}");
    }

    #[test]
    fn uniform_in_bounds() {
        let mut rng = Rng64::seed(10);
        for _ in 0..1000 {
            let x = rng.uniform_in(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn index_in_bounds_and_covers() {
        let mut rng = Rng64::seed(13);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let i = rng.index(8);
            assert!(i < 8);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng64::seed(11);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0 + 1e-12)));
    }

    #[test]
    fn fork_streams_independent() {
        let mut root = Rng64::seed(5);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn random_phasor_unit_magnitude() {
        let mut rng = Rng64::seed(12);
        for _ in 0..100 {
            assert!((rng.random_phasor().abs() - 1.0).abs() < 1e-12);
        }
    }
}
