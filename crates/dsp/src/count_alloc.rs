//! A counting global allocator for zero-allocation regression tests.
//!
//! The hot-path contract (DESIGN.md §8) is that steady-state simulation
//! slots perform **zero** heap allocations. That property is only testable
//! if something counts allocator calls; [`CountingAllocator`] wraps the
//! system allocator and bumps a global counter on every `alloc`/`realloc`.
//! Install it in a test or bench binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//!
//! let before = allocation_count();
//! hot_path();
//! assert_eq!(allocation_count() - before, 0);
//! ```
//!
//! The counter is process-global and monotonic; concurrent tests only ever
//! over-count, so a zero delta is a sound (conservative) pass criterion.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of heap allocations (`alloc` + `realloc` calls) observed since
/// process start, when [`CountingAllocator`] is installed as the global
/// allocator. Always 0 otherwise.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A [`GlobalAlloc`] that forwards to [`System`] and counts allocations.
pub struct CountingAllocator;

// SAFETY: pure forwarding to `System`, plus a relaxed atomic increment;
// all GlobalAlloc contract obligations are inherited from `System`.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        // Without the allocator installed the counter stays flat, but the
        // API must still be callable and monotonic.
        let a = allocation_count();
        let b = allocation_count();
        assert!(b >= a);
    }
}
