//! Fast Fourier transforms.
//!
//! Provides an in-place radix-2 Cooley–Tukey FFT for power-of-two lengths and
//! a Bluestein chirp-z fallback for arbitrary lengths, plus a naive reference
//! DFT used in tests. Conventions:
//!
//! - Forward transform: `X[k] = Σ_n x[n]·e^{-j2πkn/N}` (no scaling).
//! - Inverse transform: `x[n] = (1/N)·Σ_k X[k]·e^{+j2πkn/N}`.
//!
//! The OFDM PHY uses power-of-two grids (512–4096), so the radix-2 path is
//! the hot one; Bluestein exists so channel-analysis code can transform
//! arbitrary-length CIR windows without padding artifacts.

use crate::complex::Complex64;
use std::f64::consts::PI;

/// Direction of the transform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Direction {
    Forward,
    Inverse,
}

/// In-place radix-2 FFT. Panics if `x.len()` is not a power of two.
pub fn fft_in_place(x: &mut [Complex64]) {
    radix2(x, Direction::Forward);
}

/// In-place radix-2 inverse FFT (includes the `1/N` scaling).
/// Panics if `x.len()` is not a power of two.
pub fn ifft_in_place(x: &mut [Complex64]) {
    radix2(x, Direction::Inverse);
    let scale = 1.0 / x.len() as f64;
    for v in x.iter_mut() {
        *v = v.scale(scale);
    }
}

/// Out-of-place FFT of arbitrary length (radix-2 when possible, Bluestein
/// otherwise).
pub fn fft(x: &[Complex64]) -> Vec<Complex64> {
    transform_any(x, Direction::Forward)
}

/// Out-of-place inverse FFT of arbitrary length (includes `1/N` scaling).
pub fn ifft(x: &[Complex64]) -> Vec<Complex64> {
    let mut out = transform_any(x, Direction::Inverse);
    let scale = 1.0 / x.len() as f64;
    for v in out.iter_mut() {
        *v = v.scale(scale);
    }
    out
}

/// Reference DFT in O(N²) — used by tests as ground truth and by callers
/// that need a handful of output bins only.
pub fn dft_naive(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (i, &v) in x.iter().enumerate() {
                let theta = -2.0 * PI * (k * i) as f64 / n as f64;
                acc += v * Complex64::cis(theta);
            }
            acc
        })
        .collect()
}

/// Circularly shifts `x` left by `k` positions (i.e. `out[i] = x[(i+k) % n]`).
pub fn circular_shift_left<T: Copy>(x: &[T], k: usize) -> Vec<T> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k % n;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[k..]);
    out.extend_from_slice(&x[..k]);
    out
}

/// `fftshift`: moves the zero-frequency bin to the center.
pub fn fftshift<T: Copy>(x: &[T]) -> Vec<T> {
    circular_shift_left(x, x.len().div_ceil(2))
}

// xtask-allow(hot-path-closure): the out-of-place API clones into its output buffer by contract; per-slot code uses fft_in_place/ifft_in_place
fn transform_any(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = x.len();
    if n.is_power_of_two() {
        let mut buf = x.to_vec();
        radix2(&mut buf, dir);
        buf
    } else {
        bluestein(x, dir)
    }
}

// xtask-allow(hot-path-panic): butterfly indices satisfy i + k + len/2 < n by the loop structure (len ≤ n, i steps by len, k < len/2); the power-of-two assert at entry is the only runtime check
fn radix2(x: &mut [Complex64], dir: Direction) {
    let n = x.len();
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT requires power-of-two length, got {n}"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            x.swap(i, j);
        }
    }
    // Iterative butterflies.
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = x[i + k];
                let v = x[i + k + len / 2] * w;
                x[i + k] = u + v;
                x[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Bluestein's algorithm: expresses a length-N DFT as a convolution, carried
/// out with a power-of-two FFT of length ≥ 2N−1.
// xtask-allow(hot-path-panic): all indices are bounded by n = x.len() and m ≥ 2n−1 by construction (k < n ≤ m, m − k > 0)
// xtask-allow(hot-path-closure): Bluestein owns its chirp/scratch buffers by design; only arbitrary-length analysis windows take this path — the per-slot OFDM grid is power-of-two and stays on in-place radix-2
fn bluestein(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    // Chirp: w[k] = e^{sign·jπk²/n}
    let chirp: Vec<Complex64> = (0..n)
        .map(|k| {
            // k² mod 2n to keep the angle argument small and precise.
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex64::cis(sign * PI * k2 as f64 / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex64::ZERO; m];
    let mut b = vec![Complex64::ZERO; m];
    for k in 0..n {
        a[k] = x[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    radix2(&mut a, Direction::Forward);
    radix2(&mut b, Direction::Forward);
    for k in 0..m {
        a[k] *= b[k];
    }
    radix2(&mut a, Direction::Inverse);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| a[k].scale(scale) * chirp[k]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn assert_vec_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch at {i}: {x} vs {y} (tol {tol})"
            );
        }
    }

    #[test]
    fn impulse_transforms_to_flat() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        fft_in_place(&mut x);
        for v in &x {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * PI * (k0 * i) as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (k, v) in y.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leakage at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn fft_matches_naive_dft_pow2() {
        let mut rng = Rng64::seed(7);
        let x: Vec<Complex64> = (0..32).map(|_| rng.complex_normal()).collect();
        let fast = fft(&x);
        let slow = dft_naive(&x);
        assert_vec_close(&fast, &slow, 1e-9);
    }

    #[test]
    fn bluestein_matches_naive_dft_non_pow2() {
        for n in [3usize, 5, 12, 17, 100, 33] {
            let mut rng = Rng64::seed(n as u64);
            let x: Vec<Complex64> = (0..n).map(|_| rng.complex_normal()).collect();
            let fast = fft(&x);
            let slow = dft_naive(&x);
            assert_vec_close(&fast, &slow, 1e-8);
        }
    }

    #[test]
    fn round_trip_pow2() {
        let mut rng = Rng64::seed(42);
        let x: Vec<Complex64> = (0..128).map(|_| rng.complex_normal()).collect();
        let y = ifft(&fft(&x));
        assert_vec_close(&x, &y, 1e-10);
    }

    #[test]
    fn round_trip_non_pow2() {
        let mut rng = Rng64::seed(43);
        let x: Vec<Complex64> = (0..37).map(|_| rng.complex_normal()).collect();
        let y = ifft(&fft(&x));
        assert_vec_close(&x, &y, 1e-8);
    }

    #[test]
    fn parseval_energy_conserved() {
        let mut rng = Rng64::seed(9);
        let x: Vec<Complex64> = (0..256).map(|_| rng.complex_normal()).collect();
        let y = fft(&x);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((ex - ey).abs() / ex < 1e-10);
    }

    #[test]
    fn linearity() {
        let mut rng = Rng64::seed(11);
        let a: Vec<Complex64> = (0..64).map(|_| rng.complex_normal()).collect();
        let b: Vec<Complex64> = (0..64).map(|_| rng.complex_normal()).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        let expect: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_vec_close(&fsum, &expect, 1e-9);
    }

    #[test]
    fn shift_helpers() {
        let v = [1, 2, 3, 4, 5];
        assert_eq!(circular_shift_left(&v, 2), vec![3, 4, 5, 1, 2]);
        assert_eq!(fftshift(&v), vec![4, 5, 1, 2, 3]);
        let e: [i32; 0] = [];
        assert!(circular_shift_left(&e, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn in_place_rejects_non_pow2() {
        let mut x = vec![Complex64::ZERO; 12];
        fft_in_place(&mut x);
    }
}
