//! Oscillator phase noise as a leaky Wiener process.
//!
//! A free-running LO's phase performs a random walk whose variance rate is
//! set by the Lorentzian linewidth: `σ²(Δt) = 2π·Δν·Δt` rad². A first-order
//! PLL pulls the phase back toward zero, which the leak factor models —
//! the discrete step is
//!
//! ```text
//! φ[k+1] = λ(Δt)·φ[k] + √(2π·Δν·Δt) · n[k],   n ~ N(0,1)
//! ```
//!
//! with `λ(Δt) = exp(-Δt/τ_pll)`. Two observable effects feed the
//! impairment layer:
//!
//! - the accumulated common rotation `e^{jφ}` on each probe's CSI (on top
//!   of the CFO phasor the sounder already applies), and
//! - an intra-symbol SNR ceiling: phase jitter over one OFDM symbol scales
//!   the coherent signal by `e^{-σ²_sym/2}` and converts the lost power
//!   into inter-carrier interference, `P_ici = P·(1 − e^{-σ²_sym})`.
//!
//! All randomness comes from the caller's seeded [`Rng64`]; advancing by
//! the same Δt sequence reproduces the same phase trajectory bit-for-bit.

use crate::complex::Complex64;
use crate::rng::Rng64;
use mmwave_hotpath::hot_path;

/// Leaky-Wiener LO phase state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WienerPhase {
    /// Current accumulated phase, radians (wrapped to `(-π, π]`).
    pub phi_rad: f64,
    /// Lorentzian linewidth `Δν`, Hz — sets the random-walk variance rate.
    pub linewidth_hz: f64,
    /// PLL pull-in time constant, seconds (`∞` = free-running).
    pub pll_tau_s: f64,
}

impl WienerPhase {
    /// Fresh phase state for a LO of the given linewidth with a PLL of
    /// time constant `pll_tau_s`.
    pub fn new(linewidth_hz: f64, pll_tau_s: f64) -> Self {
        Self {
            phi_rad: 0.0,
            linewidth_hz,
            pll_tau_s,
        }
    }

    /// Phase-increment standard deviation over `dt_s`, radians.
    pub fn step_sigma_rad(&self, dt_s: f64) -> f64 {
        (std::f64::consts::TAU * self.linewidth_hz * dt_s.max(0.0)).sqrt()
    }

    /// Advances the walk by `dt_s`, drawing one Gaussian step from `rng`,
    /// and returns the new phase.
    pub fn advance(&mut self, dt_s: f64, rng: &mut Rng64) -> f64 {
        let leak = if self.pll_tau_s.is_finite() && self.pll_tau_s > 0.0 {
            (-dt_s.max(0.0) / self.pll_tau_s).exp()
        } else {
            1.0
        };
        let phi = leak * self.phi_rad + self.step_sigma_rad(dt_s) * rng.normal();
        // Wrap to (-π, π]: the phase is only ever used through e^{jφ}, and
        // wrapping keeps a long free run from losing float precision.
        self.phi_rad = phi - std::f64::consts::TAU * (phi / std::f64::consts::TAU).round();
        self.phi_rad
    }

    /// Intra-symbol phase-jitter variance over one symbol of `t_sym_s`,
    /// rad² — the quantity that sets the coherent loss / ICI split.
    pub fn symbol_jitter_var(&self, t_sym_s: f64) -> f64 {
        std::f64::consts::TAU * self.linewidth_hz * t_sym_s.max(0.0)
    }
}

/// Applies the common rotation `e^{jφ}` plus the intra-symbol ICI penalty
/// to a CSI vector in place: every sample is scaled by the coherent factor
/// `e^{-σ²/2}` and rotated, then receives an independent complex-Gaussian
/// ICI term of power `|h|²·(1 − e^{-σ²})`. Allocation-free.
#[hot_path]
pub fn rotate_with_ici(csi: &mut [Complex64], phi_rad: f64, sigma2_sym: f64, rng: &mut Rng64) {
    let coherent = (-0.5 * sigma2_sym).exp();
    let ici_frac = 1.0 - (-sigma2_sym).exp();
    let rot = Complex64::cis(phi_rad).scale(coherent);
    for h in csi.iter_mut() {
        let p_ici = h.norm_sqr() * ici_frac;
        *h = *h * rot + rng.awgn(p_ici);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn deterministic_trajectory() {
        let walk = |seed| {
            let mut rng = Rng64::seed(seed);
            let mut pn = WienerPhase::new(200e3, f64::INFINITY);
            (0..64)
                .map(|_| pn.advance(1e-4, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(walk(5), walk(5));
        assert_ne!(walk(5), walk(6));
    }

    #[test]
    fn variance_scales_with_linewidth_and_time() {
        let pn = WienerPhase::new(100e3, f64::INFINITY);
        let s1 = pn.step_sigma_rad(1e-4);
        let s4 = pn.step_sigma_rad(4e-4);
        assert!((s4 / s1 - 2.0).abs() < 1e-12, "σ ∝ √Δt");
        let wide = WienerPhase::new(400e3, f64::INFINITY);
        assert!((wide.step_sigma_rad(1e-4) / s1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pll_leak_bounds_the_walk() {
        let mut rng = Rng64::seed(9);
        let mut free = WienerPhase::new(500e3, f64::INFINITY);
        let mut locked = WienerPhase::new(500e3, 1e-3);
        let mut free_acc = 0.0;
        let mut locked_acc = 0.0;
        for _ in 0..2000 {
            free_acc += free.advance(1e-4, &mut rng).abs();
            locked_acc += locked.advance(1e-4, &mut rng).abs();
        }
        assert!(
            locked_acc < free_acc,
            "PLL-locked phase must wander less ({locked_acc} vs {free_acc})"
        );
    }

    #[test]
    fn rotation_preserves_power_budget() {
        // With zero jitter the rotation is pure: magnitudes unchanged.
        let mut rng = Rng64::seed(3);
        let mut csi = vec![c64(1.0, 0.0); 32];
        rotate_with_ici(&mut csi, 0.7, 0.0, &mut rng);
        for h in &csi {
            assert!((h.abs() - 1.0).abs() < 1e-12);
            assert!((h.arg() - 0.7).abs() < 1e-12);
        }
        // With jitter, mean power is approximately preserved (coherent
        // part shrinks, ICI makes up the difference in expectation).
        let sigma2 = 0.2f64;
        let mut csi = vec![c64(1.0, 0.0); 4096];
        rotate_with_ici(&mut csi, 0.0, sigma2, &mut rng);
        let mean_pow: f64 = csi.iter().map(|h| h.norm_sqr()).sum::<f64>() / csi.len() as f64;
        assert!((mean_pow - 1.0).abs() < 0.05, "mean power {mean_pow}");
        // And the coherent mean shrank by e^{-σ²/2}.
        let mean: Complex64 = csi
            .iter()
            .fold(Complex64::ZERO, |a, &b| a + b)
            .scale(1.0 / csi.len() as f64);
        assert!((mean.abs() - (-0.5 * sigma2).exp()).abs() < 0.05);
    }

    #[test]
    fn phase_stays_wrapped() {
        let mut rng = Rng64::seed(11);
        let mut pn = WienerPhase::new(5e6, f64::INFINITY);
        for _ in 0..5000 {
            let phi = pn.advance(1e-3, &mut rng);
            assert!(phi.abs() <= std::f64::consts::PI + 1e-9);
        }
    }
}
