//! Dense complex linear algebra.
//!
//! Small, direct implementations sized for this workspace's problems: the
//! super-resolution solve (Eq. 23 of the paper) involves a dictionary with
//! K ≤ 4 columns, and the optimal-beamforming oracle works with N ≤ 256
//! element channels. Provides:
//!
//! - [`CMatrix`] — row-major dense complex matrix with the usual products,
//! - [`solve`] — Gaussian elimination with partial pivoting,
//! - [`cholesky_solve`] — for Hermitian positive-definite systems,
//! - [`ridge_least_squares`] — `argmin ‖Ax − b‖² + λ‖x‖²` via the normal
//!   equations (exactly the paper's regularized formulation).

use crate::complex::Complex64;

/// Row-major dense complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a zero matrix.
    // xtask-allow(hot-path-closure): constructor allocates by definition; steady-state reuses FitScratch/reset() buffers, only amortized tick-path solves construct (ROADMAP item 1)
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Creates a matrix from row-major data. Panics on a size mismatch.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Builds a matrix column-by-column (each column a slice of length `rows`).
    pub fn from_columns(columns: &[Vec<Complex64>]) -> Self {
        let cols = columns.len();
        assert!(cols > 0, "need at least one column");
        let rows = columns[0].len();
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "all columns must have equal length"
        );
        let mut m = Self::zeros(rows, cols);
        for (j, col) in columns.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Reshapes in place to a `rows × cols` zero matrix, reusing the
    /// existing allocation when it is large enough (hot-path scratch reuse,
    /// DESIGN.md §8).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, Complex64::ZERO);
    }

    /// Read-only view of the row-major backing storage.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the row-major backing storage (hot-path fills).
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Conjugate (Hermitian) transpose `Aᴴ`.
    pub fn hermitian(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Matrix–vector product `A·x`.
    pub fn mul_vec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|i| {
                let mut acc = Complex64::ZERO;
                for j in 0..self.cols {
                    acc += self[(i, j)] * x[j];
                }
                acc
            })
            .collect()
    }

    /// Matrix–matrix product `A·B`.
    pub fn mul_mat(&self, b: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, b.rows, "dimension mismatch in mul_mat");
        let mut out = CMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == Complex64::ZERO {
                    continue;
                }
                for j in 0..b.cols {
                    out[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        out
    }

    /// Gram matrix `AᴴA` (Hermitian positive semi-definite).
    ///
    /// Single pass over the rows with one accumulator per upper-triangle
    /// entry: each dot product still sums in row order from zero, so the
    /// result is bit-identical to computing the entries one at a time,
    /// but `A` is read once instead of `K(K+1)/2` times.
    pub fn gram(&self) -> CMatrix {
        debug_assert_eq!(self.data.len(), self.rows * self.cols);
        let mut g = CMatrix::zeros(self.cols, self.cols);
        for row in self.data.chunks_exact(self.cols) {
            for i in 0..self.cols {
                let ai = row[i].conj();
                for j in i..self.cols {
                    g[(i, j)] += ai * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in i + 1..self.cols {
                g[(j, i)] = g[(i, j)].conj();
            }
        }
        g
    }

    /// `Aᴴ·b`.
    ///
    /// Same single-pass layout as [`CMatrix::gram`]: one accumulator per
    /// output entry, each summing in row order — bit-identical to the
    /// column-at-a-time evaluation.
    // xtask-allow(hot-path-closure): returns an owned K-vector (K ≤ 4) from the amortized tick-path fit; not called per slot (ROADMAP item 1)
    pub fn hermitian_mul_vec(&self, b: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(b.len(), self.rows, "dimension mismatch");
        let mut acc = vec![Complex64::ZERO; self.cols];
        for (row, &bi) in self.data.chunks_exact(self.cols).zip(b) {
            for (a, &aij) in acc.iter_mut().zip(row) {
                *a += aij.conj() * bi;
            }
        }
        acc
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Error type for linear solves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinalgError {
    /// The system matrix is singular (or numerically so).
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// Input dimensions are inconsistent.
    DimensionMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
// xtask-allow(hot-path-panic): every index is bounded by the n×n dimension check at entry (bad dims return Err); the pivot expect scans the non-empty range col..n
// xtask-allow(hot-path-closure): the solver owns its working copy (clone + rhs vec) by design; reached only from amortized tick-path fits, not the per-slot loop (ROADMAP item 1)
pub fn solve(a: &CMatrix, b: &[Complex64]) -> Result<Vec<Complex64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot: pick the row with the largest magnitude in this column.
        let (pivot_row, pivot_mag) = (col..n)
            .map(|r| (r, m[(r, col)].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty range");
        if pivot_mag < 1e-14 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        let inv_piv = m[(col, col)].inv();
        for r in col + 1..n {
            let factor = m[(r, col)] * inv_piv;
            if factor == Complex64::ZERO {
                continue;
            }
            for j in col..n {
                let v = m[(col, j)];
                m[(r, j)] -= factor * v;
            }
            let bv = rhs[col];
            rhs[r] -= factor * bv;
        }
    }
    // Back substitution.
    let mut x = vec![Complex64::ZERO; n];
    for i in (0..n).rev() {
        let mut acc = rhs[i];
        for j in i + 1..n {
            acc -= m[(i, j)] * x[j];
        }
        x[i] = acc * m[(i, i)].inv();
    }
    Ok(x)
}

/// Solves `A·x = b` for Hermitian positive-definite `A` using a complex
/// Cholesky factorization `A = L·Lᴴ`.
// xtask-allow(hot-path-panic): every index is bounded by the n×n dimension check at entry (bad dims return Err)
// xtask-allow(hot-path-closure): factor and solution vectors are owned by design; reached only from amortized tick-path fits, not the per-slot loop (ROADMAP item 1)
pub fn cholesky_solve(a: &CMatrix, b: &[Complex64]) -> Result<Vec<Complex64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    // Factor.
    let mut l = CMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)].conj();
            }
            if i == j {
                // Diagonal entries of a Hermitian PD matrix are real positive.
                let d = sum.re;
                if d <= 0.0 || sum.im.abs() > 1e-9 * (1.0 + d.abs()) {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l[(i, j)] = Complex64::new(d.sqrt(), 0.0);
            } else {
                l[(i, j)] = sum * l[(j, j)].inv();
            }
        }
    }
    // Forward solve L·y = b.
    let mut y = vec![Complex64::ZERO; n];
    for i in 0..n {
        let mut acc = b[i];
        for k in 0..i {
            acc -= l[(i, k)] * y[k];
        }
        y[i] = acc * l[(i, i)].inv();
    }
    // Backward solve Lᴴ·x = y.
    let mut x = vec![Complex64::ZERO; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for k in i + 1..n {
            acc -= l[(k, i)].conj() * x[k];
        }
        x[i] = acc * l[(i, i)].inv();
    }
    Ok(x)
}

/// Ridge-regularized least squares:
/// `argmin_x ‖A·x − b‖² + λ‖x‖²`, solved via the normal equations
/// `(AᴴA + λI)·x = Aᴴb` with a Cholesky factorization.
///
/// This is exactly the convex program of the paper's Eq. 23 (the
/// super-resolution fit of per-beam amplitudes over a sinc dictionary).
pub fn ridge_least_squares(
    a: &CMatrix,
    b: &[Complex64],
    lambda: f64,
) -> Result<Vec<Complex64>, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch);
    }
    assert!(lambda >= 0.0, "ridge parameter must be non-negative");
    let mut gram = a.gram();
    debug_assert_eq!(gram.rows(), a.cols());
    for i in 0..gram.rows() {
        gram[(i, i)] += Complex64::new(lambda, 0.0);
    }
    let rhs = a.hermitian_mul_vec(b);
    cholesky_solve(&gram, &rhs).or_else(|_| solve(&gram, &rhs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::rng::Rng64;

    fn assert_close(a: Complex64, b: Complex64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    fn random_matrix(rng: &mut Rng64, rows: usize, cols: usize) -> CMatrix {
        let data = (0..rows * cols).map(|_| rng.complex_normal()).collect();
        CMatrix::from_rows(rows, cols, data)
    }

    #[test]
    fn identity_solve_is_identity() {
        let a = CMatrix::identity(4);
        let b = vec![c64(1.0, 2.0), c64(3.0, -1.0), c64(0.0, 0.5), c64(-2.0, 0.0)];
        let x = solve(&a, &b).unwrap();
        for (u, v) in x.iter().zip(&b) {
            assert_close(*u, *v, 1e-12);
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = Rng64::seed(3);
        for n in [2usize, 3, 5, 8] {
            let a = random_matrix(&mut rng, n, n);
            let x_true: Vec<Complex64> = (0..n).map(|_| rng.complex_normal()).collect();
            let b = a.mul_vec(&x_true);
            let x = solve(&a, &b).unwrap();
            for (u, v) in x.iter().zip(&x_true) {
                assert_close(*u, *v, 1e-8);
            }
        }
    }

    #[test]
    fn solve_detects_singular() {
        let mut a = CMatrix::zeros(3, 3);
        a[(0, 0)] = Complex64::ONE;
        a[(1, 1)] = Complex64::ONE;
        // Row 2 all zeros → singular.
        let b = vec![Complex64::ONE; 3];
        assert_eq!(solve(&a, &b), Err(LinalgError::Singular));
    }

    #[test]
    fn solve_rejects_bad_dims() {
        let a = CMatrix::zeros(3, 2);
        let b = vec![Complex64::ONE; 3];
        assert_eq!(solve(&a, &b), Err(LinalgError::DimensionMismatch));
    }

    #[test]
    fn hermitian_transpose() {
        let a = CMatrix::from_rows(
            2,
            2,
            vec![c64(1.0, 1.0), c64(2.0, 0.0), c64(0.0, 3.0), c64(4.0, -4.0)],
        );
        let h = a.hermitian();
        assert_close(h[(0, 0)], c64(1.0, -1.0), 1e-15);
        assert_close(h[(0, 1)], c64(0.0, -3.0), 1e-15);
        assert_close(h[(1, 0)], c64(2.0, 0.0), 1e-15);
    }

    #[test]
    fn gram_is_hermitian_psd() {
        let mut rng = Rng64::seed(4);
        let a = random_matrix(&mut rng, 6, 3);
        let g = a.gram();
        for i in 0..3 {
            assert!(g[(i, i)].re >= 0.0);
            assert!(g[(i, i)].im.abs() < 1e-12);
            for j in 0..3 {
                assert_close(g[(i, j)], g[(j, i)].conj(), 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_matches_gaussian() {
        let mut rng = Rng64::seed(5);
        let a = random_matrix(&mut rng, 8, 4);
        let mut g = a.gram();
        for i in 0..4 {
            g[(i, i)] += c64(0.1, 0.0); // ensure PD
        }
        let b: Vec<Complex64> = (0..4).map(|_| rng.complex_normal()).collect();
        let x1 = cholesky_solve(&g, &b).unwrap();
        let x2 = solve(&g, &b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert_close(*u, *v, 1e-9);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut m = CMatrix::identity(2);
        m[(1, 1)] = c64(-1.0, 0.0);
        let b = vec![Complex64::ONE; 2];
        assert_eq!(
            cholesky_solve(&m, &b),
            Err(LinalgError::NotPositiveDefinite)
        );
    }

    #[test]
    fn ridge_zero_lambda_matches_exact_ls() {
        // Overdetermined consistent system: ridge(0) recovers exact solution.
        let mut rng = Rng64::seed(6);
        let a = random_matrix(&mut rng, 10, 3);
        let x_true: Vec<Complex64> = (0..3).map(|_| rng.complex_normal()).collect();
        let b = a.mul_vec(&x_true);
        let x = ridge_least_squares(&a, &b, 0.0).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert_close(*u, *v, 1e-8);
        }
    }

    #[test]
    fn ridge_shrinks_solution() {
        let mut rng = Rng64::seed(7);
        let a = random_matrix(&mut rng, 10, 3);
        let b: Vec<Complex64> = (0..10).map(|_| rng.complex_normal()).collect();
        let x0 = ridge_least_squares(&a, &b, 0.0).unwrap();
        let x1 = ridge_least_squares(&a, &b, 10.0).unwrap();
        let n0: f64 = x0.iter().map(|v| v.norm_sqr()).sum();
        let n1: f64 = x1.iter().map(|v| v.norm_sqr()).sum();
        assert!(n1 < n0, "ridge must shrink: {n1} !< {n0}");
    }

    #[test]
    fn ridge_handles_rank_deficient_dictionary() {
        // Two identical columns: unregularized normal equations are singular,
        // ridge must still produce a finite solution.
        let col = vec![c64(1.0, 0.0), c64(0.5, 0.5), c64(0.0, 1.0)];
        let a = CMatrix::from_columns(&[col.clone(), col.clone()]);
        let b = vec![c64(1.0, 0.0), c64(0.5, 0.5), c64(0.0, 1.0)];
        let x = ridge_least_squares(&a, &b, 1e-6).unwrap();
        assert!(x.iter().all(|v| !v.is_bad()));
        // Symmetry: the two coefficients must match.
        assert_close(x[0], x[1], 1e-6);
    }

    #[test]
    fn mul_mat_identity() {
        let mut rng = Rng64::seed(8);
        let a = random_matrix(&mut rng, 4, 4);
        let i = CMatrix::identity(4);
        let p = a.mul_mat(&i);
        assert!((p.frobenius_norm() - a.frobenius_norm()).abs() < 1e-12);
        for r in 0..4 {
            for c in 0..4 {
                assert_close(p[(r, c)], a[(r, c)], 1e-12);
            }
        }
    }

    #[test]
    fn from_columns_layout() {
        let a = CMatrix::from_columns(&[
            vec![c64(1.0, 0.0), c64(2.0, 0.0)],
            vec![c64(3.0, 0.0), c64(4.0, 0.0)],
        ]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
        assert_close(a[(0, 1)], c64(3.0, 0.0), 1e-15);
        assert_close(a[(1, 0)], c64(2.0, 0.0), 1e-15);
    }
}
