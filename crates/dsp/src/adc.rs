//! Mid-rise ADC quantization + clipping for probe measurements.
//!
//! The receive chain digitizes each subcarrier's I and Q with a `b`-bit
//! mid-rise converter whose full-scale is set `headroom_db` above the RMS
//! of the incoming block (an AGC that levels on average power). Samples
//! inside full scale gain uniform quantization noise; samples outside are
//! clipped to the rail, which is the nonlinearity that actually hurts —
//! strong multipath taps saturate first.
//!
//! Deterministic (no dither), allocation-free, applied in place.

use crate::complex::{c64, Complex64};
use mmwave_hotpath::hot_path;

/// Quantizes one real rail to a `levels`-step mid-rise grid over
/// `[-full_scale, full_scale]`, returning the reconstruction value and
/// whether the sample clipped.
fn quantize_rail(x: f64, full_scale: f64, levels: f64) -> (f64, bool) {
    let step = 2.0 * full_scale / levels;
    // Mid-rise: decision boundaries at multiples of `step`, reconstruction
    // at bin centres. Indices outside the grid pin to the outermost bin.
    let idx = (x / step).floor();
    let max_idx = levels / 2.0 - 1.0;
    let clipped = idx > max_idx || idx < -levels / 2.0;
    let idx = idx.clamp(-levels / 2.0, max_idx);
    ((idx + 0.5) * step, clipped)
}

/// Quantizes the I/Q rails of every sample in place with a `bits`-bit
/// mid-rise ADC of the given full-scale amplitude. Returns the number of
/// rail-clip events (a sample whose I and Q both clip counts twice).
#[hot_path]
pub fn quantize_clip(csi: &mut [Complex64], full_scale: f64, bits: u32) -> usize {
    if full_scale <= 0.0 || bits == 0 {
        return 0;
    }
    let levels = (1u64 << bits.min(52)) as f64;
    let mut clips = 0usize;
    for h in csi.iter_mut() {
        let (re, clip_re) = quantize_rail(h.re, full_scale, levels);
        let (im, clip_im) = quantize_rail(h.im, full_scale, levels);
        *h = c64(re, im);
        clips += usize::from(clip_re) + usize::from(clip_im);
    }
    clips
}

/// RMS amplitude of a complex block (per rail, i.e. `√(P/2)` where `P` is
/// mean complex power) — the AGC reference that [`quantize_clip`]'s
/// full-scale is set against.
#[hot_path]
pub fn rail_rms(csi: &[Complex64]) -> f64 {
    if csi.is_empty() {
        return 0.0;
    }
    let pow: f64 = csi.iter().map(|h| h.norm_sqr()).sum();
    (pow / (2.0 * csi.len() as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_resolution_is_nearly_transparent() {
        let mut csi: Vec<Complex64> = (0..64)
            .map(|i| {
                c64(
                    (i as f64 * 0.013).sin() * 0.4,
                    (i as f64 * 0.029).cos() * 0.4,
                )
            })
            .collect();
        let orig = csi.clone();
        let clips = quantize_clip(&mut csi, 1.0, 14);
        assert_eq!(clips, 0);
        for (q, o) in csi.iter().zip(&orig) {
            assert!(
                (*q - *o).abs() < 1e-3,
                "14-bit ADC should be near-transparent"
            );
        }
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let full_scale = 1.0;
        let bits = 6;
        let step = 2.0 * full_scale / (1u64 << bits) as f64;
        for i in 0..495 {
            let x = -0.99 + i as f64 * 0.004; // inside full scale
            let mut v = [c64(x, 0.0)];
            quantize_clip(&mut v, full_scale, bits);
            assert!((v[0].re - x).abs() <= 0.5 * step + 1e-12);
        }
    }

    #[test]
    fn out_of_range_samples_clip_to_rail() {
        let mut v = [c64(3.0, -5.0), c64(0.1, 0.1)];
        let clips = quantize_clip(&mut v, 1.0, 8);
        assert_eq!(clips, 2);
        assert!(v[0].re < 1.0 && v[0].re > 0.9, "pinned just inside +rail");
        assert!(v[0].im > -1.0 && v[0].im < -0.9, "pinned just inside -rail");
    }

    #[test]
    fn deterministic_no_dither() {
        let mk = || {
            let mut v: Vec<Complex64> = (0..32)
                .map(|i| c64((i as f64).sin(), (i as f64).cos()))
                .collect();
            quantize_clip(&mut v, 0.8, 7);
            v
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn rail_rms_matches_definition() {
        let csi = vec![c64(1.0, 1.0); 16]; // per-sample power 2 → per-rail RMS 1
        assert!((rail_rms(&csi) - 1.0).abs() < 1e-12);
        assert_eq!(rail_rms(&[]), 0.0);
    }
}
