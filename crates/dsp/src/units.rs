//! dB/linear conversions and RF constants.
//!
//! Conventions used throughout the workspace:
//!
//! - *Power* quantities convert with `10·log10` ([`db_from_pow`] /
//!   [`pow_from_db`]).
//! - *Amplitude* quantities convert with `20·log10` ([`db_from_amp`] /
//!   [`amp_from_db`]).
//! - Angles at module boundaries are **degrees** (matching the paper's
//!   figures); internal trigonometry converts to radians explicitly.

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Standard noise reference temperature, K.
pub const T0_KELVIN: f64 = 290.0;

/// Carrier frequency of the paper's testbed, Hz (28 GHz, 5G NR FR2).
pub const FC_28GHZ: f64 = 28.0e9;

/// Carrier frequency of the 60 GHz comparison band (IEEE 802.11ad).
pub const FC_60GHZ: f64 = 60.0e9;

/// Converts a linear power ratio to dB.
#[inline]
pub fn db_from_pow(p: f64) -> f64 {
    10.0 * p.log10()
}

/// Converts dB to a linear power ratio.
#[inline]
pub fn pow_from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear amplitude ratio to dB.
#[inline]
pub fn db_from_amp(a: f64) -> f64 {
    20.0 * a.log10()
}

/// Converts dB to a linear amplitude ratio.
#[inline]
pub fn amp_from_db(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts milliwatts to dBm.
#[inline]
pub fn dbm_from_mw(mw: f64) -> f64 {
    db_from_pow(mw)
}

/// Converts dBm to milliwatts.
#[inline]
pub fn mw_from_dbm(dbm: f64) -> f64 {
    pow_from_db(dbm)
}

/// Wavelength (m) at carrier frequency `fc_hz`.
#[inline]
pub fn wavelength(fc_hz: f64) -> f64 {
    SPEED_OF_LIGHT / fc_hz
}

/// Degrees → radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg.to_radians()
}

/// Radians → degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad.to_degrees()
}

/// Wraps an angle in degrees to `(-180, 180]`.
pub fn wrap_deg(mut deg: f64) -> f64 {
    while deg > 180.0 {
        deg -= 360.0;
    }
    while deg <= -180.0 {
        deg += 360.0;
    }
    deg
}

/// Wraps an angle in radians to `(-π, π]`.
pub fn wrap_rad(rad: f64) -> f64 {
    deg_to_rad(wrap_deg(rad_to_deg(rad)))
}

/// Free-space path loss in dB at distance `d_m` (meters) and carrier
/// `fc_hz` (Hz): `20·log10(4πd/λ)`.
pub fn fspl_db(d_m: f64, fc_hz: f64) -> f64 {
    let lambda = wavelength(fc_hz);
    db_from_amp(4.0 * std::f64::consts::PI * d_m / lambda)
}

/// Thermal noise power in dBm over bandwidth `bw_hz` with noise figure
/// `nf_db`: `10·log10(kT·BW·1000) + NF`.
pub fn thermal_noise_dbm(bw_hz: f64, nf_db: f64) -> f64 {
    db_from_pow(BOLTZMANN * T0_KELVIN * bw_hz * 1_000.0) + nf_db
}

/// Shannon spectral efficiency (bits/s/Hz) at linear SNR.
pub fn shannon_se(snr_linear: f64) -> f64 {
    (1.0 + snr_linear).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn db_power_round_trip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0, 27.0] {
            assert!(close(db_from_pow(pow_from_db(db)), db, 1e-12));
        }
    }

    #[test]
    fn db_amplitude_round_trip() {
        for db in [-20.0, -6.0, 0.0, 6.0] {
            assert!(close(db_from_amp(amp_from_db(db)), db, 1e-12));
        }
    }

    #[test]
    fn three_db_is_half_power() {
        assert!(close(pow_from_db(-3.0103), 0.5, 1e-4));
    }

    #[test]
    fn six_db_is_half_amplitude() {
        assert!(close(amp_from_db(-6.0206), 0.5, 1e-4));
    }

    #[test]
    fn wavelength_at_28ghz() {
        // λ at 28 GHz ≈ 10.7 mm
        assert!(close(wavelength(FC_28GHZ), 0.010707, 1e-5));
    }

    #[test]
    fn fspl_matches_textbook() {
        // FSPL(100 m, 28 GHz) ≈ 101.4 dB
        assert!(close(fspl_db(100.0, FC_28GHZ), 101.4, 0.1));
        // FSPL grows 6 dB per distance doubling
        let d1 = fspl_db(10.0, FC_28GHZ);
        let d2 = fspl_db(20.0, FC_28GHZ);
        assert!(close(d2 - d1, 6.0206, 1e-3));
    }

    #[test]
    fn sixty_ghz_fspl_exceeds_28ghz() {
        // 60/28 GHz → 20·log10(60/28) ≈ 6.6 dB extra path loss
        let diff = fspl_db(10.0, FC_60GHZ) - fspl_db(10.0, FC_28GHZ);
        assert!(close(diff, 6.62, 0.05));
    }

    #[test]
    fn thermal_noise_reference_values() {
        // kTB for 1 Hz = -174 dBm
        assert!(close(thermal_noise_dbm(1.0, 0.0), -173.98, 0.05));
        // 400 MHz with 0 dB NF ≈ -88 dBm
        assert!(close(thermal_noise_dbm(400e6, 0.0), -87.96, 0.05));
    }

    #[test]
    fn wrap_degrees() {
        assert!(close(wrap_deg(190.0), -170.0, 1e-12));
        assert!(close(wrap_deg(-190.0), 170.0, 1e-12));
        assert!(close(wrap_deg(360.0), 0.0, 1e-12));
        assert!(close(wrap_deg(180.0), 180.0, 1e-12));
    }

    #[test]
    fn shannon_monotone() {
        assert!(close(shannon_se(1.0), 1.0, 1e-12));
        assert!(shannon_se(10.0) > shannon_se(1.0));
        assert!(close(shannon_se(0.0), 0.0, 1e-12));
    }
}
