//! # mmwave-dsp
//!
//! Self-contained digital-signal-processing substrate for the mmReliable
//! reproduction. The allowed dependency set contains no numeric/DSP crates,
//! so everything the upper layers need is implemented here from scratch:
//!
//! - [`Complex64`] — complex arithmetic (the workhorse type of every crate
//!   above this one),
//! - [`fft`] — radix-2 and Bluestein FFTs plus a reference DFT,
//! - [`linalg`] — dense complex matrices, Hermitian solves, ridge-regularized
//!   least squares (used by the paper's super-resolution step, Eq. 23),
//! - [`sinc`] — band-limited interpolation kernels (Eq. 22),
//! - [`fit`] — real polynomial least squares (tracking smoother, §6.1),
//! - [`stats`] — summary statistics, CDFs, EWMA,
//! - [`units`] — dB/linear conversions and RF constants,
//! - [`rng`] — seeded Gaussian / complex-Gaussian sampling,
//! - [`nonlinearity`] — Rapp PA AM/AM + AM/PM compression (impairment layer),
//! - [`phase_noise`] — leaky-Wiener oscillator phase noise + ICI penalty,
//! - [`adc`] — mid-rise ADC quantization and clipping for probe samples,
//! - [`count_alloc`] — a counting global allocator backing the
//!   zero-allocation hot-path regression tests.
//!
//! Everything is deterministic given a seed; no global state, no I/O.

#![warn(missing_docs)]
pub mod adc;
pub mod complex;
pub mod count_alloc;
pub mod fft;
pub mod fit;
pub mod linalg;
pub mod nonlinearity;
pub mod phase_noise;
pub mod rng;
pub mod sinc;
pub mod stats;
pub mod units;

pub use complex::Complex64;
pub use linalg::CMatrix;
