//! Summary statistics, empirical CDFs, and smoothing.
//!
//! Used by the evaluation harness (reliability = fraction of time above the
//! SNR outage threshold, Eq. 1), the measurement-style studies (Fig. 4a
//! reflector-attenuation CDF), and the tracking smoother (EWMA with
//! forgetting factor + quadratic fit, §6.1).

/// Arithmetic mean. Returns NaN on an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance. Returns NaN on an empty slice.
pub fn variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Linear-interpolated percentile, `q ∈ [0, 100]`. Returns NaN on empty input.
pub fn percentile(x: &[f64], q: f64) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    let mut sorted = x.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = q.clamp(0.0, 100.0);
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(x: &[f64]) -> f64 {
    percentile(x, 50.0)
}

/// Minimum of a slice, NaN-safe. Returns NaN on empty input.
pub fn min(x: &[f64]) -> f64 {
    x.iter()
        .copied()
        .fold(f64::NAN, |a, b| if a.is_nan() || b < a { b } else { a })
}

/// Maximum of a slice, NaN-safe. Returns NaN on empty input.
pub fn max(x: &[f64]) -> f64 {
    x.iter()
        .copied()
        .fold(f64::NAN, |a, b| if a.is_nan() || b > a { b } else { a })
}

/// Mean squared error between two equal-length slices.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse requires equal lengths");
    if a.is_empty() {
        return f64::NAN;
    }
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
}

/// Root-mean-square error.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    mse(a, b).sqrt()
}

/// Empirical CDF evaluated at `n_points` evenly spaced values across the data
/// range; returns `(value, P(X ≤ value))` pairs. Useful for Fig. 4a-style
/// CDF plots.
pub fn empirical_cdf(x: &[f64], n_points: usize) -> Vec<(f64, f64)> {
    if x.is_empty() || n_points == 0 {
        return Vec::new();
    }
    let mut sorted = x.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    let n = sorted.len() as f64;
    (0..n_points)
        .map(|i| {
            let v = if n_points == 1 {
                hi
            } else {
                lo + (hi - lo) * i as f64 / (n_points - 1) as f64
            };
            let count = sorted.partition_point(|&s| s <= v);
            (v, count as f64 / n)
        })
        .collect()
}

/// Fraction of samples strictly below `threshold` — the empirical outage
/// probability of paper Eq. 1 when applied to an SNR time series.
pub fn fraction_below(x: &[f64], threshold: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().filter(|&&v| v < threshold).count() as f64 / x.len() as f64
}

/// Exponentially-weighted moving average with forgetting factor
/// `alpha ∈ (0, 1]` (1 = no memory, track instantly).
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA filter. Panics unless `0 < alpha ≤ 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, state: None }
    }

    /// Feeds one sample, returns the filtered value.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.state {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.state = Some(next);
        next
    }

    /// Current filtered value, if any sample has been seen.
    pub fn value(&self) -> Option<f64> {
        self.state
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

/// Simple fixed-capacity sliding window with summary accessors — used by the
/// blockage detector (rate-of-change over the last few reference signals).
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    cap: usize,
    buf: Vec<f64>,
}

impl SlidingWindow {
    /// Creates a window holding at most `cap` samples. Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        Self {
            cap,
            buf: Vec::with_capacity(cap),
        }
    }

    /// Pushes a sample, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() == self.cap {
            self.buf.remove(0);
        }
        self.buf.push(x);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True once the window has filled to capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.cap
    }

    /// Oldest sample, if any.
    pub fn oldest(&self) -> Option<f64> {
        self.buf.first().copied()
    }

    /// Newest sample, if any.
    pub fn newest(&self) -> Option<f64> {
        self.buf.last().copied()
    }

    /// Newest − oldest (total change across the window).
    pub fn span_change(&self) -> Option<f64> {
        Some(self.newest()? - self.oldest()?)
    }

    /// Contents in arrival order.
    pub fn as_slice(&self) -> &[f64] {
        &self.buf
    }

    /// Clears all samples.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&x), 2.5);
        assert!((variance(&x) - 1.25).abs() < 1e-12);
        assert!((std_dev(&x) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
        assert!(percentile(&[], 50.0).is_nan());
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
    }

    #[test]
    fn percentiles() {
        let x = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&x, 0.0), 1.0);
        assert_eq!(percentile(&x, 100.0), 5.0);
        assert_eq!(median(&x), 3.0);
        assert_eq!(percentile(&x, 25.0), 2.0);
        // Interpolation between ranks.
        let y = [0.0, 10.0];
        assert_eq!(percentile(&y, 50.0), 5.0);
    }

    #[test]
    fn min_max() {
        let x = [3.0, -1.0, 7.0];
        assert_eq!(min(&x), -1.0);
        assert_eq!(max(&x), 7.0);
    }

    #[test]
    fn mse_rmse() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 5.0];
        assert!((mse(&a, &b) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&a, &b) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 7.3) % 13.0).collect();
        let cdf = empirical_cdf(&x, 25);
        assert_eq!(cdf.len(), 25);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be non-decreasing");
        }
        assert!(cdf.last().unwrap().1 >= 1.0 - 1e-12);
        assert!(cdf[0].1 >= 0.0);
    }

    #[test]
    fn fraction_below_threshold() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_below(&x, 2.5), 0.5);
        assert_eq!(fraction_below(&x, 0.0), 0.0);
        assert_eq!(fraction_below(&x, 100.0), 1.0);
        assert_eq!(fraction_below(&[], 1.0), 0.0);
        // strictly below: values equal to the threshold are not outages
        assert_eq!(fraction_below(&x, 1.0), 0.0);
    }

    #[test]
    fn ewma_tracks_and_smooths() {
        let mut f = Ewma::new(0.5);
        assert_eq!(f.update(10.0), 10.0); // first sample passes through
        let v = f.update(0.0);
        assert_eq!(v, 5.0);
        assert_eq!(f.value(), Some(5.0));
        f.reset();
        assert_eq!(f.value(), None);
    }

    #[test]
    fn ewma_alpha_one_is_passthrough() {
        let mut f = Ewma::new(1.0);
        f.update(3.0);
        assert_eq!(f.update(7.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn sliding_window_eviction() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert!(w.is_full());
        assert_eq!(w.as_slice(), &[2.0, 3.0, 4.0]);
        assert_eq!(w.oldest(), Some(2.0));
        assert_eq!(w.newest(), Some(4.0));
        assert_eq!(w.span_change(), Some(2.0));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.span_change(), None);
    }
}
