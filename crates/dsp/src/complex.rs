//! Complex arithmetic in `f64`.
//!
//! The workspace is not allowed to pull in `num-complex`, so this module
//! provides the small, fully-tested subset of complex arithmetic the rest of
//! the system needs. The representation is a plain `{ re, im }` pair and all
//! operations are `#[inline]` value semantics, so the optimizer treats it
//! like a pair of scalars.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor: `c64(re, im)`.
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// Additive identity.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// Multiplicative identity.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit `j` (electrical-engineering spelling of `i`).
    pub const J: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a complex number from polar form: `r * e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// `e^{jθ}` — a unit phasor at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Multiplicative inverse `1/z`. Returns NaN components when `z == 0`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        c64(self.re * k, self.im * k)
    }

    /// Returns `true` if either component is NaN or infinite.
    #[inline]
    pub fn is_bad(self) -> bool {
        !(self.re.is_finite() && self.im.is_finite())
    }

    /// Returns the unit phasor `z/|z|`, or zero when `|z| == 0`.
    #[inline]
    pub fn normalize(self) -> Self {
        let a = self.abs();
        if a == 0.0 {
            Self::ZERO
        } else {
            self.scale(1.0 / a)
        }
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    // Division by multiplication with the precomputed inverse is the
    // intended formula here, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        c64(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        c64(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + *b)
    }
}

/// Inner product `⟨a, b⟩ = Σ aᵢ* · bᵢ` (conjugate-linear in the first slot,
/// matching the paper's Eq. 14 convention).
pub fn inner(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x.conj() * *y).sum()
}

/// Squared Euclidean norm `Σ |xᵢ|²`.
pub fn norm_sqr(x: &[Complex64]) -> f64 {
    x.iter().map(|v| v.norm_sqr()).sum()
}

/// Euclidean norm `‖x‖`.
pub fn norm(x: &[Complex64]) -> f64 {
    norm_sqr(x).sqrt()
}

/// Scales a vector in place so that `‖x‖ = 1`. No-op on the zero vector.
pub fn normalize_in_place(x: &mut [Complex64]) {
    let n = norm(x);
    if n > 0.0 {
        let inv = 1.0 / n;
        for v in x.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_accessors() {
        let z = c64(3.0, -4.0);
        assert!(close(z.abs(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
        assert!(close(z.conj().im, 4.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), 0.7));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let theta = k as f64 * 0.41;
            assert!(close(Complex64::cis(theta).abs(), 1.0));
        }
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = c64(1.0, 2.0);
        let b = c64(-0.5, 3.0);
        let c = c64(4.0, -1.0);
        // distributivity
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        assert!(close(lhs.re, rhs.re) && close(lhs.im, rhs.im));
        // multiplicative inverse
        let p = a * a.inv();
        assert!(close(p.re, 1.0) && close(p.im, 0.0));
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = c64(5.0, -2.0);
        let b = c64(1.0, 1.0);
        let q = a / b;
        let back = q * b;
        assert!(close(back.re, a.re) && close(back.im, a.im));
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let z = (Complex64::J * std::f64::consts::PI).exp();
        assert!(close(z.re, -1.0));
        assert!(z.im.abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = c64(-3.0, 4.0);
        let r = z.sqrt();
        let sq = r * r;
        assert!(close(sq.re, z.re) && close(sq.im, z.im));
    }

    #[test]
    fn inner_product_conjugate_linear() {
        let a = [c64(0.0, 1.0), c64(1.0, 0.0)];
        let b = [c64(0.0, 1.0), c64(1.0, 0.0)];
        let ip = inner(&a, &b);
        assert!(close(ip.re, 2.0) && close(ip.im, 0.0));
    }

    #[test]
    fn norm_and_normalize() {
        let mut v = vec![c64(3.0, 0.0), c64(0.0, 4.0)];
        assert!(close(norm(&v), 5.0));
        normalize_in_place(&mut v);
        assert!(close(norm(&v), 1.0));
        // zero vector stays zero
        let mut z = vec![Complex64::ZERO; 4];
        normalize_in_place(&mut z);
        assert!(norm(&z) == 0.0);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", c64(1.0, 2.0)), "1+2j");
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1-2j");
    }

    #[test]
    fn sum_iterator() {
        let v = [c64(1.0, 1.0); 10];
        let s: Complex64 = v.iter().sum();
        assert!(close(s.re, 10.0) && close(s.im, 10.0));
    }

    #[test]
    fn is_bad_detects_nan_and_inf() {
        assert!(c64(f64::NAN, 0.0).is_bad());
        assert!(c64(0.0, f64::INFINITY).is_bad());
        assert!(!c64(1.0, -1.0).is_bad());
    }

    #[test]
    fn normalize_unit_phasor() {
        let z = c64(3.0, 4.0).normalize();
        assert!(close(z.abs(), 1.0));
        assert!(Complex64::ZERO.normalize() == Complex64::ZERO);
    }
}
