//! Band-limited (sinc) interpolation kernels.
//!
//! A receiver of bandwidth `B` observes each physical propagation path as a
//! sinc pulse in its sampled channel impulse response (paper Eq. 22):
//!
//! ```text
//! h_eff[n] = Σ_k α_k · sinc(B·(n·Ts − τ_k))
//! ```
//!
//! This module provides the normalized sinc, sampled sinc pulse trains, and
//! the dictionary builder used by the super-resolution solver.

use crate::complex::Complex64;
use crate::linalg::CMatrix;
use mmwave_hotpath::hot_path;
use std::f64::consts::PI;

/// Normalized sinc: `sin(πx)/(πx)`, with `sinc(0) = 1`.
#[inline]
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        let px = PI * x;
        px.sin() / px
    }
}

/// Samples a unit-amplitude sinc pulse centered at delay `tau_s` (seconds),
/// observed with bandwidth `bw_hz` at sampling interval `ts_s`, over `n`
/// taps starting at time 0.
///
/// `out[i] = sinc(bw · (i·Ts − τ))`
pub fn sinc_pulse(n: usize, bw_hz: f64, ts_s: f64, tau_s: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    sinc_pulse_into(n, bw_hz, ts_s, tau_s, &mut out);
    out
}

/// Write-into variant of [`sinc_pulse`]: clears `out` and fills it with the
/// `n` sampled taps, reusing its allocation.
#[hot_path]
pub fn sinc_pulse_into(n: usize, bw_hz: f64, ts_s: f64, tau_s: f64, out: &mut Vec<f64>) {
    out.clear();
    out.extend((0..n).map(|i| sinc(bw_hz * (i as f64 * ts_s - tau_s))));
}

/// Complex pulse train: `Σ_k α_k · sinc(bw·(i·Ts − τ_k))`.
/// This is the forward model the super-resolution step inverts.
pub fn pulse_train(n: usize, bw_hz: f64, ts_s: f64, taps: &[(Complex64, f64)]) -> Vec<Complex64> {
    let mut out = Vec::with_capacity(n);
    pulse_train_into(n, bw_hz, ts_s, taps, &mut out);
    out
}

/// Write-into variant of [`pulse_train`]: clears `out`, then accumulates the
/// sinc train into it without allocating (when capacity suffices).
#[hot_path]
pub fn pulse_train_into(
    n: usize,
    bw_hz: f64,
    ts_s: f64,
    taps: &[(Complex64, f64)],
    out: &mut Vec<Complex64>,
) {
    out.clear();
    out.resize(n, Complex64::ZERO);
    for &(alpha, tau) in taps {
        for (i, o) in out.iter_mut().enumerate() {
            *o += alpha * sinc(bw_hz * (i as f64 * ts_s - tau));
        }
    }
}

/// Builds the sinc dictionary `S` of Eq. 23: column `k` is a unit sinc pulse
/// at delay `delays_s[k]`, sampled on `n` taps.
pub fn sinc_dictionary(n: usize, bw_hz: f64, ts_s: f64, delays_s: &[f64]) -> CMatrix {
    let cols: Vec<Vec<Complex64>> = delays_s
        .iter()
        .map(|&tau| {
            sinc_pulse(n, bw_hz, ts_s, tau)
                .into_iter()
                .map(|v| Complex64::new(v, 0.0))
                .collect()
        })
        .collect();
    CMatrix::from_columns(&cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn sinc_at_zero_and_integers() {
        assert_eq!(sinc(0.0), 1.0);
        for k in 1..=10 {
            assert!(sinc(k as f64).abs() < 1e-12);
            assert!(sinc(-(k as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn sinc_symmetry() {
        for x in [0.1, 0.37, 1.5, 2.25] {
            assert!((sinc(x) - sinc(-x)).abs() < 1e-15);
        }
    }

    #[test]
    fn sinc_bounded_by_one() {
        let mut x = -10.0;
        while x < 10.0 {
            assert!(sinc(x).abs() <= 1.0 + 1e-12);
            x += 0.013;
        }
    }

    #[test]
    fn pulse_on_grid_is_kronecker() {
        // τ exactly on a sample instant → a single 1.0 at that tap.
        let bw = 400e6;
        let ts = 1.0 / bw;
        let p = sinc_pulse(16, bw, ts, 5.0 * ts);
        for (i, v) in p.iter().enumerate() {
            if i == 5 {
                assert!((v - 1.0).abs() < 1e-12);
            } else {
                assert!(v.abs() < 1e-12, "tap {i} = {v}");
            }
        }
    }

    #[test]
    fn off_grid_pulse_spreads() {
        let bw = 400e6;
        let ts = 1.0 / bw;
        let p = sinc_pulse(16, bw, ts, 5.5 * ts);
        // No single tap captures everything; neighbors share energy.
        assert!(p[5] > 0.5 && p[6] > 0.5);
        assert!(p[4] < 0.0 && p[7] < 0.0); // first sidelobes are negative
    }

    #[test]
    fn pulse_train_superposition() {
        let bw = 400e6;
        let ts = 1.0 / bw;
        let taps = [(c64(1.0, 0.0), 2.0 * ts), (c64(0.0, 0.5), 7.0 * ts)];
        let h = pulse_train(12, bw, ts, &taps);
        assert!((h[2] - c64(1.0, 0.0)).abs() < 1e-12);
        assert!((h[7] - c64(0.0, 0.5)).abs() < 1e-12);
        assert!(h[4].abs() < 1e-12);
    }

    #[test]
    fn dictionary_shape_and_columns() {
        let bw = 400e6;
        let ts = 1.0 / bw;
        let d = sinc_dictionary(8, bw, ts, &[0.0, 3.0 * ts]);
        assert_eq!(d.rows(), 8);
        assert_eq!(d.cols(), 2);
        assert!((d[(0, 0)] - Complex64::ONE).abs() < 1e-12);
        assert!((d[(3, 1)] - Complex64::ONE).abs() < 1e-12);
    }
}
