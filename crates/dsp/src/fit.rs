//! Real polynomial least-squares fitting.
//!
//! The paper's tracking pipeline smooths noisy per-beam power measurements by
//! fitting a quadratic polynomial over a short history window (§6.1:
//! "mmReliable takes time average of power values with a forgetting factor &
//! fits a quadratic polynomial to smooth the data"). This module provides
//! that fit plus evaluation helpers.

/// A real polynomial `c[0] + c[1]·x + c[2]·x² + …` (coefficients in
/// ascending-degree order).
#[derive(Clone, Debug, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Builds a polynomial from ascending-degree coefficients.
    pub fn new(coeffs: Vec<f64>) -> Self {
        assert!(
            !coeffs.is_empty(),
            "polynomial needs at least one coefficient"
        );
        Self { coeffs }
    }

    /// Degree of the polynomial (len − 1; trailing zeros are not trimmed).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Coefficients in ascending-degree order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// First derivative polynomial.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() == 1 {
            return Polynomial::new(vec![0.0]);
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| k as f64 * c)
                .collect(),
        )
    }

    /// Stationary point of a quadratic (`-b/2a`); `None` unless degree == 2
    /// with a nonzero leading coefficient.
    pub fn quadratic_vertex(&self) -> Option<f64> {
        if self.coeffs.len() != 3 || self.coeffs[2] == 0.0 {
            return None;
        }
        Some(-self.coeffs[1] / (2.0 * self.coeffs[2]))
    }
}

/// Least-squares polynomial fit of the given degree through `(x, y)` samples.
/// Solved via the normal equations over the Vandermonde matrix — adequate
/// for the low degrees (≤ 3) and short windows used here.
///
/// Returns `None` when there are fewer samples than coefficients or the
/// system is numerically singular.
// xtask-allow(hot-path-closure): the Vandermonde normal-equation scratch is per-fit by design; fits run on the amortized maintenance cadence, not the per-slot loop (ROADMAP item 1)
// xtask-allow(hot-path-panic): every index is bounded by m = degree + 1, the dimension used to size powers/ata/atb three lines up
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Option<Polynomial> {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let m = degree + 1;
    if xs.len() < m {
        return None;
    }
    // Normal equations: (VᵀV)·c = Vᵀy, with V[i][j] = x_i^j.
    let mut ata = vec![vec![0.0; m]; m];
    let mut atb = vec![0.0; m];
    for (&x, &y) in xs.iter().zip(ys) {
        let mut powers = vec![1.0; 2 * m - 1];
        for k in 1..2 * m - 1 {
            powers[k] = powers[k - 1] * x;
        }
        for i in 0..m {
            for (j, row) in ata.iter_mut().enumerate().take(m) {
                row[i] += powers[i + j];
            }
            atb[i] += powers[i] * y;
        }
    }
    solve_real(&mut ata, &mut atb).map(Polynomial::new)
}

/// In-place Gaussian elimination for small real systems; consumes its inputs.
// xtask-allow(hot-path-panic): all indices are bounded by n = b.len() and the square system polyfit constructs; the pivot max_by scans the non-empty range col..n
// xtask-allow(hot-path-closure): the solution vector is the fit's output; reached only from amortized tick-path fits (ROADMAP item 1)
fn solve_real(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot_row =
            (col..n).max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))?;
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let (pivot_rows, rest) = a.split_at_mut(col + 1);
        let prow = &pivot_rows[col];
        for (off, row) in rest.iter_mut().enumerate() {
            let f = row[col] / prow[col];
            for (x, &p) in row[col..n].iter_mut().zip(&prow[col..n]) {
                *x -= f * p;
            }
            b[col + 1 + off] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = b[i];
        for j in i + 1..n {
            acc -= a[i][j] * x[j];
        }
        x[i] = acc / a[i][i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn eval_horner() {
        // 1 + 2x + 3x²
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 6.0);
        assert_eq!(p.eval(2.0), 17.0);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn derivative() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]); // 1 + 2x + 3x²
        let d = p.derivative(); // 2 + 6x
        assert_eq!(d.coeffs(), &[2.0, 6.0]);
        let c = Polynomial::new(vec![5.0]).derivative();
        assert_eq!(c.coeffs(), &[0.0]);
    }

    #[test]
    fn vertex_of_quadratic() {
        // -(x-3)² + 4 = -x² + 6x - 5
        let p = Polynomial::new(vec![-5.0, 6.0, -1.0]);
        assert!(close(p.quadratic_vertex().unwrap(), 3.0, 1e-12));
        assert!(Polynomial::new(vec![1.0, 2.0]).quadratic_vertex().is_none());
    }

    #[test]
    fn fit_recovers_exact_quadratic() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.3 - 1.0).collect();
        let truth = Polynomial::new(vec![2.0, -1.5, 0.75]);
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let fit = polyfit(&xs, &ys, 2).unwrap();
        for (a, b) in fit.coeffs().iter().zip(truth.coeffs()) {
            assert!(close(*a, *b, 1e-9), "{a} vs {b}");
        }
    }

    #[test]
    fn fit_line_through_noisy_points() {
        // y = 3x + 1 with symmetric noise that cancels in LS.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.1, 3.9, 7.1, 9.9];
        let fit = polyfit(&xs, &ys, 1).unwrap();
        assert!(close(fit.coeffs()[1], 2.96, 0.05));
        assert!(close(fit.coeffs()[0], 1.06, 0.1));
    }

    #[test]
    fn underdetermined_returns_none() {
        assert!(polyfit(&[1.0, 2.0], &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn degenerate_x_values_return_none() {
        // All x equal → singular Vandermonde for degree ≥ 1.
        let xs = [2.0; 5];
        let ys = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(polyfit(&xs, &ys, 2).is_none());
    }

    #[test]
    fn constant_fit_is_mean() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [4.0, 6.0, 8.0];
        let fit = polyfit(&xs, &ys, 0).unwrap();
        assert!(close(fit.coeffs()[0], 6.0, 1e-12));
    }

    #[test]
    fn smoothing_noisy_beam_power() {
        // Deterministic pseudo-noise around a parabola — the fit must land
        // closer to the truth than the raw samples (this mirrors the
        // tracking smoother's use).
        let truth = Polynomial::new(vec![0.0, 0.0, -20.0]); // peak at 0
        let xs: Vec<f64> = (0..21).map(|i| (i as f64 - 10.0) / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| truth.eval(x) + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = polyfit(&xs, &ys, 2).unwrap();
        let fit_err: f64 = xs
            .iter()
            .map(|&x| (fit.eval(x) - truth.eval(x)).abs())
            .sum();
        let raw_err: f64 = ys
            .iter()
            .zip(&xs)
            .map(|(&y, &x)| (y - truth.eval(x)).abs())
            .sum();
        assert!(fit_err < raw_err / 3.0, "fit {fit_err} raw {raw_err}");
    }
}
