//! Memoryless power-amplifier nonlinearity (Rapp AM/AM + AM/PM).
//!
//! Every element of a mmWave front end drives its own PA, and the PA's
//! compression point is set relative to the *uniform* per-element drive of
//! a constant-modulus beam. Constructive multi-beams are deliberately
//! non-constant-modulus (the per-element amplitude taper is what steers
//! power into two lobes at once), so the same back-off that leaves a single
//! beam untouched pushes a multi-beam's amplitude peaks into compression —
//! the hardware effect the impairment ablation quantifies.
//!
//! The model is the standard Rapp solid-state PA ("Performance and
//! Impairment Modelling for Hardware Components in Millimetre-wave
//! Transceivers", arXiv:1803.05665):
//!
//! - AM/AM: `g(a) = a / (1 + (a/a_sat)^{2p})^{1/(2p)}` — smooth limiting at
//!   the saturation amplitude `a_sat`, knee sharpness `p`,
//! - AM/PM: `φ(a) = φ_max · (a/a_sat)² / (1 + (a/a_sat)²)` — amplitude-
//!   dependent phase rotation toward `φ_max` at deep saturation.
//!
//! Deterministic, allocation-free, applied in place.

use crate::complex::Complex64;
use mmwave_hotpath::hot_path;

/// A Rapp-model PA shared by every element of the array.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RappPa {
    /// Saturation amplitude (same units as the weight amplitudes).
    pub a_sat: f64,
    /// Knee sharpness `p` (2–3 is typical for mmWave SSPAs; larger is
    /// closer to an ideal hard limiter).
    pub smoothness: f64,
    /// Maximum AM/PM phase rotation at deep saturation, radians.
    pub am_pm_max_rad: f64,
}

impl RappPa {
    /// PA with `a_sat` referenced `backoff_db` above the uniform drive
    /// `uniform_amp` (the per-element amplitude of a constant-modulus
    /// unit-norm beam, `1/√N`). `backoff_db = 20` is essentially ideal;
    /// `backoff_db = 0` saturates at the uniform drive itself.
    pub fn with_backoff(
        uniform_amp: f64,
        backoff_db: f64,
        smoothness: f64,
        am_pm_deg: f64,
    ) -> Self {
        Self {
            a_sat: uniform_amp * crate::units::amp_from_db(backoff_db),
            smoothness,
            am_pm_max_rad: am_pm_deg.to_radians(),
        }
    }

    /// AM/AM compressed output amplitude for input amplitude `a`.
    pub fn am_am(&self, a: f64) -> f64 {
        if a <= 0.0 {
            return 0.0;
        }
        let r = a / self.a_sat;
        let p2 = 2.0 * self.smoothness;
        a / (1.0 + r.powf(p2)).powf(1.0 / p2)
    }

    /// AM/PM phase rotation for input amplitude `a`, radians.
    pub fn am_pm(&self, a: f64) -> f64 {
        let r2 = (a / self.a_sat) * (a / self.a_sat);
        self.am_pm_max_rad * r2 / (1.0 + r2)
    }

    /// Compression of a single sample, dB (input power over output power;
    /// `0` for an uncompressed sample).
    pub fn compression_db(&self, a: f64) -> f64 {
        if a <= 0.0 {
            return 0.0;
        }
        crate::units::db_from_pow((a / self.am_am(a)).powi(2))
    }

    /// Applies the PA element-wise in place and returns the worst
    /// per-element compression observed, dB. Allocation-free: the per-slot
    /// weight path runs this on the reused radiated-weight scratch.
    #[hot_path]
    pub fn apply(&self, w: &mut [Complex64]) -> f64 {
        let mut worst_db = 0.0f64;
        for x in w.iter_mut() {
            let a = x.abs();
            if a <= 0.0 {
                continue;
            }
            let g = self.am_am(a);
            let dphi = self.am_pm(a);
            *x *= Complex64::cis(dphi).scale(g / a);
            let c_db = crate::units::db_from_pow((a / g) * (a / g));
            if c_db > worst_db {
                worst_db = c_db;
            }
        }
        worst_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn pa() -> RappPa {
        RappPa::with_backoff(0.125, 3.0, 3.0, 5.0)
    }

    #[test]
    fn small_signals_pass_linearly() {
        let pa = pa();
        let a = 0.01;
        assert!((pa.am_am(a) - a).abs() / a < 1e-3);
        assert!(pa.am_pm(a).abs() < 1e-3);
        assert!(pa.compression_db(a) < 0.01);
    }

    #[test]
    fn large_signals_saturate_at_a_sat() {
        let pa = pa();
        // Far above saturation the output pins to a_sat.
        assert!((pa.am_am(10.0 * pa.a_sat) - pa.a_sat) / pa.a_sat < 0.02);
        // AM/PM approaches its ceiling.
        assert!(pa.am_pm(10.0 * pa.a_sat) > 0.9 * pa.am_pm_max_rad);
    }

    #[test]
    fn am_am_is_monotone() {
        let pa = pa();
        let mut prev = 0.0;
        for i in 1..200 {
            let out = pa.am_am(i as f64 * 0.005);
            assert!(out >= prev, "AM/AM must be monotone");
            prev = out;
        }
    }

    #[test]
    fn apply_reports_worst_compression() {
        let pa = pa();
        // One strongly-driven element among weak ones.
        let mut w = [c64(0.01, 0.0), c64(0.5, 0.0), c64(0.0, 0.02)];
        let worst = pa.apply(&mut w);
        assert!((worst - pa.compression_db(0.5)).abs() < 1e-9);
        // Weak elements essentially untouched, strong one compressed.
        assert!((w[0].abs() - 0.01).abs() < 1e-4);
        assert!(w[1].abs() < 0.5 * 0.75);
        // Phase rotated on the hot element.
        assert!(w[1].arg().abs() > 1e-3);
    }

    #[test]
    fn backoff_scales_saturation_point() {
        let loose = RappPa::with_backoff(0.125, 10.0, 3.0, 0.0);
        let tight = RappPa::with_backoff(0.125, 0.0, 3.0, 0.0);
        assert!(loose.a_sat > tight.a_sat);
        assert!(loose.compression_db(0.125) < 0.1);
        assert!(tight.compression_db(0.125) > 1.0);
    }
}
