//! 2-D geometry primitives for the image-method ray tracer.
//!
//! Scenes live in a 2-D plan view (the paper's arrays beamform only in
//! azimuth, §5.1, so elevation adds nothing to the reproduction). Distances
//! are meters.

/// A 2-D point / vector.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Vec2 {
    /// x coordinate, meters.
    pub x: f64,
    /// y coordinate, meters.
    pub y: f64,
}

/// Shorthand constructor.
#[inline]
pub const fn v2(x: f64, y: f64) -> Vec2 {
    Vec2 { x, y }
}

impl Vec2 {
    /// Origin.
    pub const ZERO: Vec2 = v2(0.0, 0.0);

    /// Euclidean length.
    pub fn len(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Distance to another point.
    pub fn dist(self, other: Vec2) -> f64 {
        (self - other).len()
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction; `None` for the zero vector.
    pub fn normalized(self) -> Option<Vec2> {
        let l = self.len();
        if l < 1e-12 {
            None
        } else {
            Some(v2(self.x / l, self.y / l))
        }
    }

    /// Angle of this vector measured from the +y axis toward +x, degrees.
    ///
    /// This matches the array-boresight convention used throughout the
    /// workspace: the gNB array faces +y, so a target straight ahead is at
    /// 0°, to its right (+x) at +90°.
    pub fn bearing_deg(self) -> f64 {
        self.x.atan2(self.y).to_degrees()
    }
}

impl std::ops::Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        v2(self.x + o.x, self.y + o.y)
    }
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        v2(self.x - o.x, self.y - o.y)
    }
}

impl std::ops::Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, k: f64) -> Vec2 {
        v2(self.x * k, self.y * k)
    }
}

impl std::ops::Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        v2(-self.x, -self.y)
    }
}

/// A line segment (a wall face).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Vec2,
    /// Second endpoint.
    pub b: Vec2,
}

impl Segment {
    /// Constructs a segment. Panics on degenerate (zero-length) segments.
    pub fn new(a: Vec2, b: Vec2) -> Self {
        assert!(a.dist(b) > 1e-9, "degenerate segment");
        Self { a, b }
    }

    /// Segment length.
    pub fn len(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Mirror image of point `p` across the infinite line through this
    /// segment — the image-source construction.
    // xtask-allow(hot-path-panic): wall segments have distinct endpoints by scene construction; a degenerate wall is a scene bug worth the loud panic
    pub fn mirror(&self, p: Vec2) -> Vec2 {
        let d = (self.b - self.a).normalized().expect("non-degenerate");
        let ap = p - self.a;
        let proj = d * ap.dot(d);
        let foot = self.a + proj;
        foot + (foot - p)
    }

    /// Intersection point of this segment with the segment `p→q`, if the
    /// two properly intersect (interior crossing; endpoint touches count).
    pub fn intersect(&self, p: Vec2, q: Vec2) -> Option<Vec2> {
        let r = self.b - self.a;
        let s = q - p;
        let denom = r.cross(s);
        if denom.abs() < 1e-12 {
            return None; // parallel
        }
        let t = (p - self.a).cross(s) / denom;
        let u = (p - self.a).cross(r) / denom;
        if (-1e-9..=1.0 + 1e-9).contains(&t) && (-1e-9..=1.0 + 1e-9).contains(&u) {
            Some(self.a + r * t)
        } else {
            None
        }
    }

    /// Shortest distance from point `p` to this segment.
    pub fn dist_to_point(&self, p: Vec2) -> f64 {
        let ab = self.b - self.a;
        let t = ((p - self.a).dot(ab) / ab.dot(ab)).clamp(0.0, 1.0);
        (self.a + ab * t).dist(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn vclose(a: Vec2, b: Vec2) -> bool {
        a.dist(b) < 1e-9
    }

    #[test]
    fn vector_basics() {
        let a = v2(3.0, 4.0);
        assert!(close(a.len(), 5.0));
        assert!(close(a.dist(v2(0.0, 0.0)), 5.0));
        assert!(close(a.dot(v2(1.0, 0.0)), 3.0));
        assert!(close(a.cross(v2(1.0, 0.0)), -4.0));
        assert!(vclose(a.normalized().unwrap(), v2(0.6, 0.8)));
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn bearing_convention() {
        // +y is boresight (0°); +x is +90°.
        assert!(close(v2(0.0, 1.0).bearing_deg(), 0.0));
        assert!(close(v2(1.0, 0.0).bearing_deg(), 90.0));
        assert!(close(v2(-1.0, 0.0).bearing_deg(), -90.0));
        assert!(close(v2(1.0, 1.0).bearing_deg(), 45.0));
    }

    #[test]
    fn mirror_across_vertical_wall() {
        // Wall x = 5.
        let wall = Segment::new(v2(5.0, -10.0), v2(5.0, 10.0));
        assert!(vclose(wall.mirror(v2(0.0, 0.0)), v2(10.0, 0.0)));
        assert!(vclose(wall.mirror(v2(3.0, 7.0)), v2(7.0, 7.0)));
        // Points on the wall are fixed.
        assert!(vclose(wall.mirror(v2(5.0, 2.0)), v2(5.0, 2.0)));
    }

    #[test]
    fn mirror_is_involution() {
        let wall = Segment::new(v2(1.0, 2.0), v2(4.0, -1.0));
        let p = v2(-2.0, 3.5);
        assert!(vclose(wall.mirror(wall.mirror(p)), p));
    }

    #[test]
    fn intersection_basic() {
        let s = Segment::new(v2(0.0, 0.0), v2(10.0, 0.0));
        let hit = s.intersect(v2(5.0, -1.0), v2(5.0, 1.0)).unwrap();
        assert!(vclose(hit, v2(5.0, 0.0)));
        // Miss: crossing line beyond the segment.
        assert!(s.intersect(v2(11.0, -1.0), v2(11.0, 1.0)).is_none());
        // Parallel.
        assert!(s.intersect(v2(0.0, 1.0), v2(10.0, 1.0)).is_none());
    }

    #[test]
    fn intersection_endpoint_touch_counts() {
        let s = Segment::new(v2(0.0, 0.0), v2(10.0, 0.0));
        let hit = s.intersect(v2(0.0, -1.0), v2(0.0, 1.0));
        assert!(hit.is_some());
    }

    #[test]
    fn dist_to_point() {
        let s = Segment::new(v2(0.0, 0.0), v2(10.0, 0.0));
        assert!(close(s.dist_to_point(v2(5.0, 3.0)), 3.0));
        assert!(close(s.dist_to_point(v2(-4.0, 3.0)), 5.0)); // beyond endpoint
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_segment_rejected() {
        Segment::new(v2(1.0, 1.0), v2(1.0, 1.0));
    }
}
