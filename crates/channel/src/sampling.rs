//! Stochastic reflector-strength sampling — the measurement-study
//! reproduction (paper Fig. 4a).
//!
//! The paper scanned 10K data points across indoor (5–10 m) and outdoor
//! (10–80 m) locations and reports the CDF of the strongest reflector's
//! attenuation relative to the direct path: 1–10 dB with a median of
//! 7.2 dB indoors and 5 dB outdoors. We reproduce the protocol by sampling
//! UE positions in the preset scenes, jittering material quality per
//! location (real surfaces vary), and recording the same statistic.

use crate::environment::Scene;
use crate::geom2d::v2;
use crate::path::strongest_paths;
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::FC_28GHZ;

/// One sampled location's strongest-reflector statistic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReflectorSample {
    /// Attenuation of the strongest reflected path relative to the direct
    /// path, dB (positive = weaker than LOS).
    pub rel_attenuation_db: f64,
    /// Departure angle of that reflected path, degrees.
    pub aod_deg: f64,
    /// Link distance, meters.
    pub dist_m: f64,
}

/// Samples `n` indoor locations (conference room, 4–9.5 m links).
pub fn sample_indoor(rng: &mut Rng64, n: usize) -> Vec<ReflectorSample> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let mut scene = Scene::conference_room(FC_28GHZ);
        // Per-location surface-quality jitter.
        scene.extra_reflection_loss_db = rng.normal_with(0.0, 2.0).clamp(-3.0, 6.0);
        let ue = v2(rng.uniform_in(-3.0, 3.0), rng.uniform_in(4.0, 9.5));
        if let Some(s) = strongest_reflector(&scene, ue) {
            out.push(s);
        }
    }
    out
}

/// Samples `n` outdoor locations (street scene, 10–80 m links).
pub fn sample_outdoor(rng: &mut Rng64, n: usize) -> Vec<ReflectorSample> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let mut scene = Scene::outdoor_street(FC_28GHZ);
        scene.extra_reflection_loss_db = rng.normal_with(0.0, 2.0).clamp(-4.0, 6.0);
        let ue = v2(rng.uniform_in(-4.0, 4.0), rng.uniform_in(10.0, 80.0));
        if let Some(s) = strongest_reflector(&scene, ue) {
            out.push(s);
        }
    }
    out
}

fn strongest_reflector(scene: &Scene, ue: crate::geom2d::Vec2) -> Option<ReflectorSample> {
    let paths = scene.paths_to(ue, 180.0);
    let order = strongest_paths(&paths, paths.len());
    let los_idx = *order.first()?;
    if !paths[los_idx].is_los() {
        return None; // degenerate geometry; skip the sample
    }
    let refl_idx = order.iter().copied().find(|&i| !paths[i].is_los())?;
    Some(ReflectorSample {
        rel_attenuation_db: paths[refl_idx].rel_attenuation_db(&paths[los_idx]),
        aod_deg: paths[refl_idx].aod_deg,
        dist_m: scene.gnb.dist(ue),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::stats::{median, percentile};

    #[test]
    fn indoor_median_near_paper() {
        let mut rng = Rng64::seed(42);
        let samples = sample_indoor(&mut rng, 2000);
        let vals: Vec<f64> = samples.iter().map(|s| s.rel_attenuation_db).collect();
        let med = median(&vals);
        // Paper: 7.2 dB median indoors; accept a band around it.
        assert!((4.0..=10.0).contains(&med), "indoor median {med} dB");
    }

    #[test]
    fn outdoor_median_near_paper() {
        let mut rng = Rng64::seed(43);
        let samples = sample_outdoor(&mut rng, 2000);
        let vals: Vec<f64> = samples.iter().map(|s| s.rel_attenuation_db).collect();
        let med = median(&vals);
        // Paper: 5 dB median outdoors.
        assert!((2.0..=8.0).contains(&med), "outdoor median {med} dB");
    }

    #[test]
    fn outdoor_reflectors_stronger_than_indoor() {
        // The paper's key observation: outdoor buildings are *better*
        // reflectors (5 dB median) than indoor surfaces (7.2 dB).
        let mut rng = Rng64::seed(44);
        let ind: Vec<f64> = sample_indoor(&mut rng, 1500)
            .iter()
            .map(|s| s.rel_attenuation_db)
            .collect();
        let out: Vec<f64> = sample_outdoor(&mut rng, 1500)
            .iter()
            .map(|s| s.rel_attenuation_db)
            .collect();
        assert!(
            median(&out) < median(&ind),
            "outdoor {} indoor {}",
            median(&out),
            median(&ind)
        );
    }

    #[test]
    fn most_samples_in_one_to_ten_db_band() {
        let mut rng = Rng64::seed(45);
        let vals: Vec<f64> = sample_indoor(&mut rng, 1000)
            .iter()
            .map(|s| s.rel_attenuation_db)
            .collect();
        let p10 = percentile(&vals, 10.0);
        let p90 = percentile(&vals, 90.0);
        assert!(
            p10 > 0.0,
            "reflections should not beat LOS often, p10 {p10}"
        );
        assert!(p90 < 15.0, "p90 {p90}");
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let a = sample_indoor(&mut Rng64::seed(7), 50);
        let b = sample_indoor(&mut Rng64::seed(7), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn distances_within_protocol() {
        let mut rng = Rng64::seed(46);
        for s in sample_outdoor(&mut rng, 200) {
            assert!(s.dist_m >= 9.0 && s.dist_m <= 81.0);
        }
    }
}
