//! # mmwave-channel
//!
//! The wireless-channel substrate of the mmReliable reproduction. The paper
//! evaluated on a physical 28 GHz testbed in a 7 m × 10 m conference room and
//! an outdoor 30–80 m street; neither is available here, so this crate
//! builds the closest synthetic equivalent:
//!
//! - [`geom2d`] — 2-D geometry primitives (points, segments, mirror images),
//! - [`path`] — one sparse propagation path (AoD/AoA/complex gain/ToF),
//! - [`channel`] — the paper's own channel model (Eq. 25/26): per-element
//!   frequency response, effective scalar channel under beamforming,
//!   sampled CIR (Eq. 22),
//! - [`environment`] — first-order image-method scenes with material
//!   reflection losses, calibrated to the paper's measurement study
//!   (§3.2: median reflector attenuation 7.2 dB indoor / 5 dB outdoor),
//! - [`blockage`] — human-blocker processes matching the paper's empirical
//!   signature (10 dB over ~10 OFDM symbols, 100–500 ms durations),
//! - [`mobility`] — UE trajectories (rotation at VR-headset rates,
//!   translation at walking speed) with exact ground truth,
//! - [`cell`] — the fleet's shared cell environment: the UE-independent
//!   half of the image-source trace (per-wall gNB images) precomputed once
//!   and shared read-only across every UE of a multi-user cell,
//! - [`dynamics`] — the time-varying composition of all of the above,
//! - [`snapshot`] — the per-slot [`ChannelSnapshot`]: evaluate the dynamic
//!   channel once per time step, read the cached per-path quantities many
//!   times without reallocating (the hot-path contract of DESIGN.md §8),
//! - [`linkbudget`] — transmit/noise/path-loss budgets for 28 and 60 GHz,
//! - [`sampling`] — stochastic reflector-strength sampling for the
//!   measurement-study reproduction (Fig. 4a).

#![warn(missing_docs)]
pub mod blockage;
pub mod cell;
pub mod channel;
pub mod dynamics;
pub mod environment;
pub mod geom2d;
pub mod linkbudget;
pub mod mobility;
pub mod path;
pub mod sampling;
pub mod snapshot;

pub use cell::{SharedSceneCache, SharedSceneCounters};
pub use channel::{ChannelScratch, GeometricChannel, UeReceiver};
pub use dynamics::DynamicChannel;
pub use path::{Path, PathKind};
pub use snapshot::ChannelSnapshot;
