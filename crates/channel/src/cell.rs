//! Shared cell environment: one ray-trace geometry, many UEs.
//!
//! Every UE of a fleet-scale cell shares the same physical scene — the
//! same gNB, walls, and carrier. In the image-source method the expensive
//! UE-independent piece of a trace is the gNB image set: each wall's
//! mirror of the gNB (and, for double bounces, each wall pair's image of
//! an image) depends only on the gNB position and the wall segments,
//! never on the UE. [`SharedSceneCache`] precomputes those images once
//! per cell; the per-UE work that remains is only the endpoint term
//! (bounce-point intersection, distance, AoD/AoA against the UE pose).
//!
//! Bit-identity: [`crate::geom2d::Segment::mirror`] is a pure function,
//! so a cached image is bitwise equal to a freshly computed one — a trace
//! served from the cache is bit-identical to an uncached
//! [`crate::environment::Scene::paths_to_into`] trace. A fleet of size 1
//! therefore reproduces the single-link pipeline exactly.
//!
//! Amortization is observable: with the `perf-counters` feature the cache
//! counts the traces it served and the mirror evaluations those traces
//! skipped (shared, monotonic atomics — reads never perturb results).

use crate::environment::Scene;
use crate::geom2d::Vec2;
#[cfg(feature = "perf-counters")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Precomputed UE-independent ray-trace geometry for one [`Scene`],
/// shared read-only across every UE (and worker thread) of a cell.
#[derive(Debug, Default)]
pub struct SharedSceneCache {
    /// Per-wall gNB image, in scene wall order.
    images: Vec<Vec2>,
    /// Traces served from this cache (perf observability only).
    #[cfg(feature = "perf-counters")]
    traces_served: AtomicU64,
}

/// A snapshot of the cache's amortization counters. All zero without the
/// `perf-counters` feature.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedSceneCounters {
    /// gNB wall images precomputed at build time (once per cell).
    pub images_built: u64,
    /// Ray traces served from the cached images.
    pub traces_served: u64,
    /// Mirror evaluations the cache absorbed: every served trace would
    /// have recomputed each wall image.
    pub mirror_ops_saved: u64,
}

impl SharedSceneCache {
    /// Precomputes the gNB image set for `scene`. The cache is tied to the
    /// scene's gNB position and wall list; callers must rebuild it if
    /// either changes (registry scenes never do mid-run — gantry rotation
    /// is applied post-trace as an AoD shift).
    pub fn build(scene: &Scene) -> Self {
        Self {
            images: scene
                .walls
                .iter()
                .map(|w| w.seg.mirror(scene.gnb))
                .collect(),
            #[cfg(feature = "perf-counters")]
            traces_served: AtomicU64::new(0),
        }
    }

    /// The cached gNB image of wall `wall_idx`.
    pub fn image(&self, wall_idx: usize) -> Vec2 {
        debug_assert!(wall_idx < self.images.len());
        self.images[wall_idx]
    }

    /// Number of cached wall images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True for a scene with no walls (LOS-only; nothing to cache).
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Accounts one trace served from the cache. Compiled away without
    /// `perf-counters`.
    #[inline]
    pub fn note_trace(&self) {
        #[cfg(feature = "perf-counters")]
        self.traces_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Current amortization counters.
    pub fn counters(&self) -> SharedSceneCounters {
        #[cfg(feature = "perf-counters")]
        let served = self.traces_served.load(Ordering::Relaxed);
        #[cfg(not(feature = "perf-counters"))]
        let served = 0u64;
        SharedSceneCounters {
            images_built: self.images.len() as u64,
            traces_served: served,
            mirror_ops_saved: served.saturating_mul(self.images.len() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom2d::v2;
    use mmwave_dsp::units::FC_28GHZ;

    #[test]
    fn cached_images_match_fresh_mirrors_bitwise() {
        let scene = Scene::conference_room(FC_28GHZ);
        let cache = SharedSceneCache::build(&scene);
        assert_eq!(cache.len(), scene.walls.len());
        for (i, w) in scene.walls.iter().enumerate() {
            let fresh = w.seg.mirror(scene.gnb);
            assert_eq!(cache.image(i).x.to_bits(), fresh.x.to_bits());
            assert_eq!(cache.image(i).y.to_bits(), fresh.y.to_bits());
        }
    }

    #[test]
    fn cached_trace_is_bit_identical_to_uncached() {
        let scene = Scene::conference_room(FC_28GHZ);
        let cache = SharedSceneCache::build(&scene);
        let mut plain = Vec::new();
        let mut cached = Vec::new();
        for (ue, facing) in [
            (v2(0.9, 7.0), 180.0),
            (v2(-2.0, 4.5), 170.0),
            (v2(3.0, 9.0), 200.0),
        ] {
            scene.paths_to_into(ue, facing, &mut plain);
            scene.paths_to_cached_into(Some(&cache), ue, facing, &mut cached);
            assert_eq!(plain.len(), cached.len());
            for (a, b) in plain.iter().zip(&cached) {
                assert_eq!(a.aod_deg.to_bits(), b.aod_deg.to_bits());
                assert_eq!(a.aoa_deg.to_bits(), b.aoa_deg.to_bits());
                assert_eq!(a.gain.re.to_bits(), b.gain.re.to_bits());
                assert_eq!(a.gain.im.to_bits(), b.gain.im.to_bits());
                assert_eq!(a.tof_ns.to_bits(), b.tof_ns.to_bits());
                assert_eq!(a.kind, b.kind);
            }
        }
    }

    #[test]
    fn double_bounce_trace_matches_through_cache() {
        let mut scene = Scene::conference_room(FC_28GHZ);
        scene.max_bounces = 2;
        let cache = SharedSceneCache::build(&scene);
        let mut plain = Vec::new();
        let mut cached = Vec::new();
        scene.paths_to_into(v2(0.9, 7.0), 180.0, &mut plain);
        scene.paths_to_cached_into(Some(&cache), v2(0.9, 7.0), 180.0, &mut cached);
        assert_eq!(plain, cached);
    }

    #[cfg(feature = "perf-counters")]
    #[test]
    fn counters_track_served_traces() {
        let scene = Scene::conference_room(FC_28GHZ);
        let cache = SharedSceneCache::build(&scene);
        let mut out = Vec::new();
        for _ in 0..5 {
            scene.paths_to_cached_into(Some(&cache), v2(0.9, 7.0), 180.0, &mut out);
        }
        let c = cache.counters();
        assert_eq!(c.images_built, 4);
        assert_eq!(c.traces_served, 5);
        assert_eq!(c.mirror_ops_saved, 20);
    }
}
