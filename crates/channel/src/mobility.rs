//! UE mobility: position and orientation over time, with exact ground truth.
//!
//! The paper's gantry moves the UE with 1 cm / 0.1° precision (§5.1, §6);
//! a simulator's trajectories are exact by construction, so every tracking
//! experiment can compare estimates against truth directly. Speeds mirror
//! the paper: 24°/s rotation (VR-headset rate) and 1.5 m/s translation
//! indoors; cart speeds outdoors.

use crate::geom2d::{v2, Vec2};

/// UE pose at one instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pose {
    /// Position, meters.
    pub pos: Vec2,
    /// World bearing the UE array faces, degrees (same convention as
    /// [`crate::geom2d::Vec2::bearing_deg`]).
    pub facing_deg: f64,
}

/// A deterministic UE trajectory.
#[derive(Clone, Debug, PartialEq)]
pub enum Trajectory {
    /// Stationary UE.
    Static {
        /// Fixed pose.
        pose: Pose,
    },
    /// Pure rotation in place (VR-headset style).
    Rotation {
        /// Start pose.
        start: Pose,
        /// Rotation rate, degrees/second (positive = toward +x).
        rate_deg_s: f64,
    },
    /// Straight-line translation at constant speed, facing held constant.
    Translation {
        /// Start pose.
        start: Pose,
        /// Velocity vector, m/s.
        velocity: Vec2,
    },
    /// Translation combined with rotation.
    TranslateRotate {
        /// Start pose.
        start: Pose,
        /// Velocity vector, m/s.
        velocity: Vec2,
        /// Rotation rate, degrees/second.
        rate_deg_s: f64,
    },
    /// Piecewise-linear waypoint path — the paper's "natural motion"
    /// end-to-end runs (§6). Position and facing interpolate linearly
    /// between timestamped poses; the pose clamps at both ends.
    Waypoints {
        /// `(time_s, pose)` knots, strictly increasing in time.
        knots: Vec<(f64, Pose)>,
    },
}

impl Trajectory {
    /// The paper's indoor translation experiment: 1.5 m/s lateral motion
    /// (parallel to the gNB array face) starting at `start_pos`, facing the
    /// gNB.
    pub fn paper_translation(start_pos: Vec2) -> Self {
        Trajectory::Translation {
            start: Pose {
                pos: start_pos,
                facing_deg: 180.0,
            },
            velocity: v2(1.5, 0.0),
        }
    }

    /// The paper's rotation experiment: 24°/s in place (typical VR headset).
    pub fn paper_rotation(pos: Vec2) -> Self {
        Trajectory::Rotation {
            start: Pose {
                pos,
                facing_deg: 180.0,
            },
            rate_deg_s: 24.0,
        }
    }

    /// Pose at time `t_s`.
    pub fn pose_at(&self, t_s: f64) -> Pose {
        match *self {
            Trajectory::Static { pose } => pose,
            Trajectory::Rotation { start, rate_deg_s } => Pose {
                pos: start.pos,
                facing_deg: start.facing_deg + rate_deg_s * t_s,
            },
            Trajectory::Translation { start, velocity } => Pose {
                pos: start.pos + velocity * t_s,
                facing_deg: start.facing_deg,
            },
            Trajectory::TranslateRotate {
                start,
                velocity,
                rate_deg_s,
            } => Pose {
                pos: start.pos + velocity * t_s,
                facing_deg: start.facing_deg + rate_deg_s * t_s,
            },
            Trajectory::Waypoints { ref knots } => waypoint_pose(knots, t_s),
        }
    }

    /// True if the UE moves at all.
    pub fn is_mobile(&self) -> bool {
        match self {
            Trajectory::Static { .. } => false,
            Trajectory::Waypoints { knots } => knots.len() > 1,
            _ => true,
        }
    }
}

/// Linear interpolation over timestamped pose knots, clamped at the ends.
// xtask-allow(hot-path-panic): knots is non-empty (asserted at entry) and the two clamp returns leave hi in 1..len, so every knot index is in bounds
fn waypoint_pose(knots: &[(f64, Pose)], t_s: f64) -> Pose {
    assert!(
        !knots.is_empty(),
        "waypoint trajectory needs at least one knot"
    );
    if t_s <= knots[0].0 {
        return knots[0].1;
    }
    if t_s >= knots[knots.len() - 1].0 {
        return knots[knots.len() - 1].1;
    }
    let hi = knots.partition_point(|(t, _)| *t <= t_s);
    let (t0, p0) = knots[hi - 1];
    let (t1, p1) = knots[hi];
    let f = (t_s - t0) / (t1 - t0);
    Pose {
        pos: p0.pos + (p1.pos - p0.pos) * f,
        facing_deg: p0.facing_deg + (p1.facing_deg - p0.facing_deg) * f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_pose_constant() {
        let t = Trajectory::Static {
            pose: Pose {
                pos: v2(1.0, 7.0),
                facing_deg: 180.0,
            },
        };
        assert_eq!(t.pose_at(0.0), t.pose_at(5.0));
        assert!(!t.is_mobile());
    }

    #[test]
    fn rotation_accumulates() {
        let t = Trajectory::paper_rotation(v2(0.0, 7.0));
        let p = t.pose_at(0.5);
        assert_eq!(p.pos, v2(0.0, 7.0));
        assert!((p.facing_deg - 192.0).abs() < 1e-12); // 180 + 24·0.5
        assert!(t.is_mobile());
    }

    #[test]
    fn translation_advances_position() {
        let t = Trajectory::paper_translation(v2(-0.35, 7.0));
        let p = t.pose_at(1.0);
        assert!((p.pos.x - 1.15).abs() < 1e-12);
        assert_eq!(p.pos.y, 7.0);
        assert_eq!(p.facing_deg, 180.0);
    }

    #[test]
    fn combined_motion() {
        let t = Trajectory::TranslateRotate {
            start: Pose {
                pos: Vec2::ZERO,
                facing_deg: 0.0,
            },
            velocity: v2(1.0, 2.0),
            rate_deg_s: -10.0,
        };
        let p = t.pose_at(2.0);
        assert_eq!(p.pos, v2(2.0, 4.0));
        assert!((p.facing_deg + 20.0).abs() < 1e-12);
    }

    #[test]
    fn waypoints_interpolate_and_clamp() {
        let t = Trajectory::Waypoints {
            knots: vec![
                (
                    0.0,
                    Pose {
                        pos: v2(0.0, 7.0),
                        facing_deg: 180.0,
                    },
                ),
                (
                    1.0,
                    Pose {
                        pos: v2(1.0, 7.0),
                        facing_deg: 190.0,
                    },
                ),
                (
                    2.0,
                    Pose {
                        pos: v2(1.0, 8.0),
                        facing_deg: 170.0,
                    },
                ),
            ],
        };
        // Clamp before the first knot.
        assert_eq!(t.pose_at(-1.0), t.pose_at(0.0));
        // Midpoint of the first segment.
        let mid = t.pose_at(0.5);
        assert!((mid.pos.x - 0.5).abs() < 1e-12);
        assert!((mid.facing_deg - 185.0).abs() < 1e-12);
        // Midpoint of the second segment (direction change).
        let mid2 = t.pose_at(1.5);
        assert!((mid2.pos.y - 7.5).abs() < 1e-12);
        assert!((mid2.facing_deg - 180.0).abs() < 1e-12);
        // Clamp after the last knot.
        assert_eq!(t.pose_at(99.0), t.pose_at(2.0));
        assert!(t.is_mobile());
        let single = Trajectory::Waypoints {
            knots: vec![(
                0.0,
                Pose {
                    pos: v2(0.0, 7.0),
                    facing_deg: 180.0,
                },
            )],
        };
        assert!(!single.is_mobile());
    }

    #[test]
    fn translation_changes_aod_seen_from_gnb() {
        // A 1.5 m/s lateral move at 7 m changes the LOS bearing by
        // ≈ atan(1.5/7) ≈ 12° in one second — the order of misalignment the
        // paper's tracking has to absorb.
        let t = Trajectory::paper_translation(v2(0.0, 7.0));
        let p0 = t.pose_at(0.0).pos;
        let p1 = t.pose_at(1.0).pos;
        let aod0 = p0.bearing_deg();
        let aod1 = p1.bearing_deg();
        assert!(aod0.abs() < 1e-9);
        assert!((aod1 - 12.09).abs() < 0.1, "Δaod {}", aod1 - aod0);
    }
}
