//! Human-blockage processes.
//!
//! The paper's empirical signature (§4.1): a walking blocker drives a beam's
//! amplitude down ~10 dB within about 10 OFDM symbols (~0.9 ms at 120 kHz
//! SCS, i.e. a very steep ramp on the timescale of CSI-RS probes), the deep
//! fade can reach 20–30 dB (§3.1, MacCartney et al.), and experiment-scale
//! blockages last 100–500 ms (§6.2). We model a blockage event as a
//! trapezoid in dB: ramp down, hold, ramp up.

use crate::path::Path;
use mmwave_dsp::rng::Rng64;

/// A single blockage event applied to one path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockageEvent {
    /// Index of the affected path in the scene's path list.
    pub path_idx: usize,
    /// Event start time, seconds.
    pub start_s: f64,
    /// Ramp duration (down and up), seconds.
    pub ramp_s: f64,
    /// Depth of the fade at full blockage, dB.
    pub depth_db: f64,
    /// Duration of the fully-blocked hold, seconds.
    pub hold_s: f64,
}

impl BlockageEvent {
    /// The paper's nominal event: 10 dB/0.9 ms ramp to the given depth.
    /// Panics on invalid inputs (see [`BlockageEvent::validate`]).
    pub fn nominal(path_idx: usize, start_s: f64, depth_db: f64, hold_s: f64) -> Self {
        // 10 dB per 10 OFDM symbols (8.93 µs each) → scale ramp to depth.
        let ramp_s = depth_db / 10.0 * 10.0 * 8.93e-6;
        let e = Self {
            path_idx,
            start_s,
            ramp_s,
            depth_db,
            hold_s,
        };
        if let Err(msg) = e.validate() {
            panic!("invalid blockage event: {msg}");
        }
        e
    }

    /// Checks the event is physically meaningful: all times finite, start
    /// non-negative, ramp/hold non-negative, depth non-negative.
    // xtask-allow(hot-path-closure): error strings are built on the Err path only; a valid event allocates nothing
    pub fn validate(&self) -> Result<(), String> {
        if !self.start_s.is_finite() || self.start_s < 0.0 {
            return Err(format!("start_s {} must be finite and >= 0", self.start_s));
        }
        if !self.ramp_s.is_finite() || self.ramp_s < 0.0 {
            return Err(format!("ramp_s {} must be finite and >= 0", self.ramp_s));
        }
        if !self.hold_s.is_finite() || self.hold_s < 0.0 {
            return Err(format!("hold_s {} must be finite and >= 0", self.hold_s));
        }
        if !self.depth_db.is_finite() || self.depth_db < 0.0 {
            return Err(format!(
                "depth_db {} must be finite and >= 0",
                self.depth_db
            ));
        }
        Ok(())
    }

    /// Attenuation contributed by this event at time `t_s`, dB (≥ 0).
    pub fn attenuation_db(&self, t_s: f64) -> f64 {
        let dt = t_s - self.start_s;
        if dt < 0.0 {
            return 0.0;
        }
        if dt < self.ramp_s {
            return self.depth_db * dt / self.ramp_s;
        }
        let dt = dt - self.ramp_s;
        if dt < self.hold_s {
            return self.depth_db;
        }
        let dt = dt - self.hold_s;
        if dt < self.ramp_s {
            return self.depth_db * (1.0 - dt / self.ramp_s);
        }
        0.0
    }

    /// Time at which the event is fully over.
    pub fn end_s(&self) -> f64 {
        self.start_s + 2.0 * self.ramp_s + self.hold_s
    }
}

/// A set of blockage events over an experiment.
#[derive(Clone, Debug, Default)]
pub struct BlockageProcess {
    events: Vec<BlockageEvent>,
}

impl BlockageProcess {
    /// No blockage.
    pub fn none() -> Self {
        Self::default()
    }

    /// From explicit events. Panics if any event fails
    /// [`BlockageEvent::validate`].
    pub fn from_events(events: Vec<BlockageEvent>) -> Self {
        for (i, e) in events.iter().enumerate() {
            if let Err(msg) = e.validate() {
                panic!("invalid blockage event #{i}: {msg}");
            }
        }
        Self { events }
    }

    /// The paper's §6.2 protocol: one human blocker introduced midway
    /// through a 1-second experiment, blocking the given path for a duration
    /// drawn uniformly from 100–500 ms. Depth 25–35 dB: human bodies at
    /// mmWave block 25–40 dB (MacCartney et al.; Narayanan et al. report
    /// human blockage "always causes link outage" on single beams).
    pub fn paper_mobile_protocol(path_idx: usize, rng: &mut Rng64) -> Self {
        let hold = rng.uniform_in(0.1, 0.5);
        let depth = rng.uniform_in(25.0, 35.0);
        let start = rng.uniform_in(0.2, 0.5);
        Self::from_events(vec![BlockageEvent::nominal(path_idx, start, depth, hold)])
    }

    /// A walker crossing the whole link (Fig. 16): blocks the NLOS path
    /// first, then the LOS path, sequentially, each with the nominal depth
    /// for that path kind.
    pub fn walker_crossing(
        nlos_path_idx: usize,
        los_path_idx: usize,
        first_hit_s: f64,
        gap_s: f64,
        hold_s: f64,
    ) -> Self {
        Self::from_events(vec![
            BlockageEvent::nominal(nlos_path_idx, first_hit_s, 32.0, hold_s),
            BlockageEvent::nominal(los_path_idx, first_hit_s + gap_s, 32.0, hold_s),
        ])
    }

    /// Events list.
    pub fn events(&self) -> &[BlockageEvent] {
        &self.events
    }

    /// Adds an event. Panics if it fails [`BlockageEvent::validate`].
    // xtask-allow(hot-path-panic): an invalid blockage event is a scenario-configuration bug; failing loudly at setup is the contract
    pub fn push(&mut self, e: BlockageEvent) {
        if let Err(msg) = e.validate() {
            panic!("invalid blockage event: {msg}");
        }
        self.events.push(e);
    }

    /// Duplicates every event affecting `from_path` onto `to_path` as well —
    /// used when two rays share a physical corridor (e.g. the LOS and a
    /// far-wall bounce along almost the same line), so one human body
    /// blocks both.
    pub fn mirror_events(&mut self, from_path: usize, to_path: usize) {
        let cloned: Vec<BlockageEvent> = self
            .events
            .iter()
            .filter(|e| e.path_idx == from_path)
            .map(|e| BlockageEvent {
                path_idx: to_path,
                ..*e
            })
            .collect();
        self.events.extend(cloned);
    }

    /// Total attenuation on `path_idx` at time `t_s`, dB (events stack).
    pub fn attenuation_db(&self, path_idx: usize, t_s: f64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.path_idx == path_idx)
            .map(|e| e.attenuation_db(t_s))
            .sum()
    }

    /// Applies the process to a path list at time `t_s` (sets each path's
    /// `blockage_db`).
    pub fn apply(&self, paths: &mut [Path], t_s: f64) {
        for (i, p) in paths.iter_mut().enumerate() {
            p.blockage_db = self.attenuation_db(i, t_s);
        }
    }

    /// True if any event is active (attenuation > 0.5 dB) at `t_s`.
    pub fn any_active(&self, t_s: f64) -> bool {
        self.events.iter().any(|e| e.attenuation_db(t_s) > 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathKind;
    use mmwave_dsp::complex::c64;

    #[test]
    fn trapezoid_shape() {
        let e = BlockageEvent {
            path_idx: 0,
            start_s: 1.0,
            ramp_s: 0.1,
            depth_db: 20.0,
            hold_s: 0.3,
        };
        assert_eq!(e.attenuation_db(0.9), 0.0);
        assert!((e.attenuation_db(1.05) - 10.0).abs() < 1e-9); // mid-ramp
        assert_eq!(e.attenuation_db(1.2), 20.0); // hold
        assert!((e.attenuation_db(1.45) - 10.0).abs() < 1e-9); // mid-recovery
        assert_eq!(e.attenuation_db(2.0), 0.0);
        assert!((e.end_s() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn nominal_ramp_rate_matches_paper() {
        // 10 dB in 10 OFDM symbols (89.3 µs): a 25 dB event ramps in
        // 25/10 × 89.3 µs ≈ 223 µs.
        let e = BlockageEvent::nominal(0, 0.0, 25.0, 0.2);
        assert!((e.ramp_s - 223.25e-6).abs() < 1e-6);
        // Rate check: attenuation after 89.3 µs is 10 dB.
        assert!((e.attenuation_db(89.3e-6) - 10.0).abs() < 0.01);
    }

    #[test]
    fn process_sums_overlapping_events() {
        let p = BlockageProcess::from_events(vec![
            BlockageEvent {
                path_idx: 0,
                start_s: 0.0,
                ramp_s: 0.01,
                depth_db: 10.0,
                hold_s: 1.0,
            },
            BlockageEvent {
                path_idx: 0,
                start_s: 0.5,
                ramp_s: 0.01,
                depth_db: 5.0,
                hold_s: 1.0,
            },
        ]);
        assert!((p.attenuation_db(0, 0.6) - 15.0).abs() < 1e-9);
        assert!((p.attenuation_db(1, 0.6) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_ramps_sum_pointwise() {
        // Two events whose ramps overlap: attenuation is the pointwise sum
        // of the two trapezoids, not the max.
        let a = BlockageEvent {
            path_idx: 0,
            start_s: 0.0,
            ramp_s: 0.1,
            depth_db: 20.0,
            hold_s: 0.2,
        };
        let b = BlockageEvent {
            path_idx: 0,
            start_s: 0.05,
            ramp_s: 0.1,
            depth_db: 10.0,
            hold_s: 0.2,
        };
        let p = BlockageProcess::from_events(vec![a, b]);
        for t in [0.02, 0.08, 0.12, 0.25, 0.38] {
            let expect = a.attenuation_db(t) + b.attenuation_db(t);
            assert!(
                (p.attenuation_db(0, t) - expect).abs() < 1e-12,
                "t={t}: {} vs {expect}",
                p.attenuation_db(0, t)
            );
        }
        // Mid-overlap sanity: both ramps contribute partial depth.
        assert!(p.attenuation_db(0, 0.08) > 16.0);
    }

    #[test]
    fn mirrored_events_stack_independently_per_path() {
        let mut p = BlockageProcess::from_events(vec![BlockageEvent::nominal(0, 0.1, 30.0, 0.2)]);
        p.mirror_events(0, 3);
        assert_eq!(p.events().len(), 2);
        // Each path sees one copy at full depth, not a doubled stack.
        assert!((p.attenuation_db(0, 0.2) - 30.0).abs() < 1e-9);
        assert!((p.attenuation_db(3, 0.2) - 30.0).abs() < 1e-9);
        assert_eq!(p.attenuation_db(1, 0.2), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid blockage event")]
    fn nominal_rejects_negative_depth() {
        let _ = BlockageEvent::nominal(0, 0.1, -5.0, 0.2);
    }

    #[test]
    #[should_panic(expected = "invalid blockage event")]
    fn from_events_rejects_non_finite_times() {
        let _ = BlockageProcess::from_events(vec![BlockageEvent {
            path_idx: 0,
            start_s: f64::NAN,
            ramp_s: 0.01,
            depth_db: 10.0,
            hold_s: 0.1,
        }]);
    }

    #[test]
    #[should_panic(expected = "invalid blockage event")]
    fn push_rejects_negative_hold() {
        let mut p = BlockageProcess::none();
        p.push(BlockageEvent {
            path_idx: 0,
            start_s: 0.0,
            ramp_s: 0.01,
            depth_db: 10.0,
            hold_s: -0.1,
        });
    }

    #[test]
    fn zero_depth_event_is_valid_and_inert() {
        let e = BlockageEvent::nominal(0, 0.1, 0.0, 0.2);
        assert_eq!(e.ramp_s, 0.0);
        for t in [0.05, 0.1, 0.2, 0.4] {
            assert_eq!(e.attenuation_db(t), 0.0);
        }
    }

    #[test]
    fn apply_sets_blockage_on_paths() {
        let mut paths = vec![
            Path::new(0.0, 0.0, c64(1.0, 0.0), 20.0, PathKind::Los),
            Path::new(
                30.0,
                0.0,
                c64(0.5, 0.0),
                25.0,
                PathKind::Reflected { wall: 0 },
            ),
        ];
        let p = BlockageProcess::from_events(vec![BlockageEvent {
            path_idx: 1,
            start_s: 0.0,
            ramp_s: 0.001,
            depth_db: 30.0,
            hold_s: 1.0,
        }]);
        p.apply(&mut paths, 0.5);
        assert_eq!(paths[0].blockage_db, 0.0);
        assert_eq!(paths[1].blockage_db, 30.0);
    }

    #[test]
    fn walker_blocks_sequentially() {
        let p = BlockageProcess::walker_crossing(1, 0, 0.2, 0.3, 0.1);
        // At 0.25 s: NLOS blocked, LOS clear.
        assert!(p.attenuation_db(1, 0.28) > 10.0);
        assert!(p.attenuation_db(0, 0.28) == 0.0);
        // At 0.55 s: LOS blocked, NLOS recovering/clear.
        assert!(p.attenuation_db(0, 0.58) > 10.0);
    }

    #[test]
    fn paper_protocol_within_spec() {
        for seed in 0..50 {
            let mut rng = Rng64::seed(seed);
            let p = BlockageProcess::paper_mobile_protocol(0, &mut rng);
            let e = p.events()[0];
            assert!((0.1..=0.5).contains(&e.hold_s));
            assert!((25.0..=35.0).contains(&e.depth_db));
            assert!(e.end_s() < 1.1, "event must fit a ~1 s experiment");
        }
    }

    #[test]
    fn any_active_detects_windows() {
        let p = BlockageProcess::from_events(vec![BlockageEvent {
            path_idx: 0,
            start_s: 0.4,
            ramp_s: 0.05,
            depth_db: 20.0,
            hold_s: 0.2,
        }]);
        assert!(!p.any_active(0.1));
        assert!(p.any_active(0.5));
        assert!(!p.any_active(0.9));
    }
}
