//! A single sparse propagation path.
//!
//! mmWave channels are sparse (paper §3.3): two-to-three viable paths —
//! the direct (LOS) ray plus one or two strong environmental reflections.
//! Each is fully described by its departure angle at the gNB, arrival angle
//! at the UE, complex gain, and time of flight (paper Eq. 25).

use mmwave_dsp::complex::Complex64;
use mmwave_dsp::units::{db_from_amp, pow_from_db};

/// How a path came to exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathKind {
    /// Direct line-of-sight ray.
    Los,
    /// Single bounce off a reflector (wall index in the scene).
    Reflected {
        /// Index of the reflecting wall in the owning scene.
        wall: usize,
    },
    /// Two bounces: first off `first`, then off `second`.
    DoubleReflected {
        /// Index of the first reflecting wall.
        first: usize,
        /// Index of the second reflecting wall.
        second: usize,
    },
}

/// One propagation path of the sparse geometric channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Path {
    /// Angle of departure at the gNB array, degrees from boresight.
    pub aod_deg: f64,
    /// Angle of arrival at the UE, degrees from the UE's boresight.
    pub aoa_deg: f64,
    /// Complex amplitude gain (linear; includes carrier phase `e^{-j2πd/λ}`).
    pub gain: Complex64,
    /// Time of flight, nanoseconds.
    pub tof_ns: f64,
    /// Provenance.
    pub kind: PathKind,
    /// Extra time-varying attenuation imposed by blockage, dB (≥ 0).
    pub blockage_db: f64,
}

impl Path {
    /// Creates an unblocked path.
    pub fn new(aod_deg: f64, aoa_deg: f64, gain: Complex64, tof_ns: f64, kind: PathKind) -> Self {
        Self {
            aod_deg,
            aoa_deg,
            gain,
            tof_ns,
            kind,
            blockage_db: 0.0,
        }
    }

    /// Effective complex gain including current blockage attenuation.
    pub fn effective_gain(&self) -> Complex64 {
        if self.blockage_db <= 0.0 {
            self.gain
        } else {
            self.gain.scale(pow_from_db(-self.blockage_db).sqrt())
        }
    }

    /// Path power gain in dB (negative for lossy paths), including blockage.
    pub fn power_db(&self) -> f64 {
        db_from_amp(self.effective_gain().abs())
    }

    /// Attenuation of this path relative to a reference path, dB
    /// (positive when this path is weaker). This is the paper's `δ` in dB.
    pub fn rel_attenuation_db(&self, reference: &Path) -> f64 {
        db_from_amp(reference.effective_gain().abs() / self.effective_gain().abs())
    }

    /// The paper's relative-channel parameters w.r.t. a reference path:
    /// `(δ, σ)` with `h_this/h_ref = δ·e^{jσ}`.
    pub fn relative_to(&self, reference: &Path) -> (f64, f64) {
        let ratio = self.effective_gain() / reference.effective_gain();
        (ratio.abs(), ratio.arg())
    }

    /// True for the LOS path.
    pub fn is_los(&self) -> bool {
        matches!(self.kind, PathKind::Los)
    }
}

/// Returns indices of the `k` strongest paths (by effective gain),
/// strongest first.
pub fn strongest_paths(paths: &[Path], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..paths.len()).collect();
    idx.sort_by(|&a, &b| {
        paths[b]
            .effective_gain()
            .abs()
            .total_cmp(&paths[a].effective_gain().abs())
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::complex::c64;

    fn path_with_gain(amp: f64) -> Path {
        Path::new(0.0, 0.0, c64(amp, 0.0), 20.0, PathKind::Los)
    }

    #[test]
    fn blockage_attenuates_gain() {
        let mut p = path_with_gain(1.0);
        assert!((p.effective_gain().abs() - 1.0).abs() < 1e-12);
        p.blockage_db = 20.0;
        assert!((p.effective_gain().abs() - 0.1).abs() < 1e-12);
        assert!((p.power_db() + 20.0).abs() < 1e-9);
    }

    #[test]
    fn relative_parameters() {
        let reference = Path::new(0.0, 0.0, c64(1.0, 0.0), 20.0, PathKind::Los);
        let refl = Path::new(
            30.0,
            -20.0,
            Complex64::from_polar(0.5, 1.2),
            25.0,
            PathKind::Reflected { wall: 0 },
        );
        let (delta, sigma) = refl.relative_to(&reference);
        assert!((delta - 0.5).abs() < 1e-12);
        assert!((sigma - 1.2).abs() < 1e-12);
        assert!((refl.rel_attenuation_db(&reference) - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn strongest_paths_ordering() {
        let paths = vec![
            path_with_gain(0.3),
            path_with_gain(1.0),
            path_with_gain(0.6),
        ];
        assert_eq!(strongest_paths(&paths, 2), vec![1, 2]);
        assert_eq!(strongest_paths(&paths, 10), vec![1, 2, 0]);
    }

    #[test]
    fn strongest_respects_blockage() {
        let mut a = path_with_gain(1.0);
        a.blockage_db = 30.0;
        let b = path_with_gain(0.5);
        assert_eq!(strongest_paths(&[a, b], 1), vec![1]);
    }

    #[test]
    fn kind_queries() {
        assert!(path_with_gain(1.0).is_los());
        let r = Path::new(
            0.0,
            0.0,
            c64(1.0, 0.0),
            1.0,
            PathKind::Reflected { wall: 2 },
        );
        assert!(!r.is_los());
    }
}
