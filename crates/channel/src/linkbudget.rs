//! Link budgets for 28 GHz and 60 GHz.
//!
//! The channel crate produces *absolute* complex path amplitudes
//! (λ/(4πd) × reflection losses), so SNR follows from transmit power, the
//! array factor (already inside the effective scalar channel), receiver
//! noise figure, and bandwidth. 60 GHz additionally suffers oxygen
//! absorption (~15 dB/km at the 60 GHz O₂ resonance), which drives the
//! paper's Appendix B finding that 28 GHz outperforms 60 GHz by ~4.7× in
//! throughput at equal bandwidth.

use mmwave_dsp::units::{db_from_pow, pow_from_db, thermal_noise_dbm, FC_28GHZ, FC_60GHZ};

/// Transmit/receive budget of one link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkBudget {
    /// Carrier frequency, Hz.
    pub fc_hz: f64,
    /// Conducted transmit power, dBm (TRP; the array gain comes from the
    /// beamforming weights themselves).
    pub tx_power_dbm: f64,
    /// Signal bandwidth, Hz.
    pub bandwidth_hz: f64,
    /// Receiver noise figure, dB.
    pub noise_figure_db: f64,
}

impl LinkBudget {
    /// The paper's 28 GHz testbed: 400 MHz bandwidth. TRP chosen so a 7 m
    /// indoor single-beam link lands near the ~27 dB SNR the paper measures
    /// (Fig. 15a).
    pub fn paper_28ghz() -> Self {
        Self {
            fc_hz: FC_28GHZ,
            tx_power_dbm: 5.0,
            bandwidth_hz: 400e6,
            noise_figure_db: 5.0,
        }
    }

    /// The outdoor USRP-based setup: 100 MHz bandwidth (§5.2).
    pub fn paper_outdoor_100mhz() -> Self {
        Self {
            fc_hz: FC_28GHZ,
            tx_power_dbm: 10.0,
            bandwidth_hz: 100e6,
            noise_figure_db: 5.0,
        }
    }

    /// 60 GHz comparison system with the same bandwidth as
    /// [`LinkBudget::paper_28ghz`] (Appendix B).
    pub fn sixty_ghz_400mhz() -> Self {
        Self {
            fc_hz: FC_60GHZ,
            tx_power_dbm: 5.0,
            bandwidth_hz: 400e6,
            noise_figure_db: 5.0,
        }
    }

    /// Noise power at the receiver, dBm.
    pub fn noise_dbm(&self) -> f64 {
        thermal_noise_dbm(self.bandwidth_hz, self.noise_figure_db)
    }

    /// Oxygen absorption over `dist_m` meters, dB. Significant only near
    /// the 60 GHz O₂ resonance (≈ 15 dB/km); negligible at 28 GHz
    /// (≈ 0.06 dB/km).
    pub fn atmospheric_absorption_db(&self, dist_m: f64) -> f64 {
        let db_per_km = if self.fc_hz > 55e9 && self.fc_hz < 65e9 {
            15.0
        } else {
            0.06
        };
        db_per_km * dist_m / 1000.0
    }

    /// Linear SNR given a *channel power gain* (the squared magnitude of the
    /// effective scalar channel — beamforming and path loss included) and a
    /// propagation distance for atmospheric absorption.
    pub fn snr_linear(&self, channel_power_gain: f64, dist_m: f64) -> f64 {
        let rx_dbm = self.tx_power_dbm + db_from_pow(channel_power_gain.max(1e-300))
            - self.atmospheric_absorption_db(dist_m);
        pow_from_db(rx_dbm - self.noise_dbm())
    }

    /// SNR in dB; `-inf`-safe (floors at −60 dB).
    pub fn snr_db(&self, channel_power_gain: f64, dist_m: f64) -> f64 {
        db_from_pow(self.snr_linear(channel_power_gain, dist_m)).max(-60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::units::{amp_from_db, fspl_db};

    #[test]
    fn noise_floor_reference() {
        let b = LinkBudget::paper_28ghz();
        // −174 + 10·log10(400e6) + 5 ≈ −83 dBm
        assert!(
            (b.noise_dbm() + 83.0).abs() < 0.2,
            "noise {}",
            b.noise_dbm()
        );
    }

    #[test]
    fn indoor_7m_snr_near_paper_value() {
        // Single-beam 8×8 (64-element) array on a 7 m LOS link should land
        // in the paper's ~27 dB region (Fig. 15a).
        let b = LinkBudget::paper_28ghz();
        let chan_amp = amp_from_db(-fspl_db(7.0, b.fc_hz)); // λ/(4πd)
        let array_gain = 64.0; // |AF|² of a 64-element conjugate beam
        let snr = b.snr_db(chan_amp * chan_amp * array_gain, 7.0);
        assert!((snr - 27.0).abs() < 4.0, "snr {snr} dB");
    }

    #[test]
    fn snr_monotone_in_gain() {
        let b = LinkBudget::paper_28ghz();
        assert!(b.snr_linear(1e-8, 10.0) > b.snr_linear(1e-9, 10.0));
    }

    #[test]
    fn sixty_ghz_suffers_absorption() {
        let b60 = LinkBudget::sixty_ghz_400mhz();
        let b28 = LinkBudget::paper_28ghz();
        assert!(b60.atmospheric_absorption_db(1000.0) > 10.0);
        assert!(b28.atmospheric_absorption_db(1000.0) < 0.1);
        // Same channel gain → 60 GHz link is worse over distance.
        let snr60 = b60.snr_db(1e-9, 500.0);
        let snr28 = b28.snr_db(1e-9, 500.0);
        assert!(snr28 - snr60 > 5.0);
    }

    #[test]
    fn zero_gain_floors() {
        let b = LinkBudget::paper_28ghz();
        assert_eq!(b.snr_db(0.0, 10.0), -60.0);
    }
}
