//! The sparse geometric channel (paper Eq. 25/26) and the observables the
//! PHY derives from it.
//!
//! Everything upstream (PHY, controller) sees the channel only through
//! the quantities computed here:
//!
//! - per-element frequency response `h[n](f)` (what an ideal per-antenna
//!   sounding would measure — used only by the oracle baseline),
//! - effective scalar channel `y(f) = Σ_l γ_l·g_rx(θ_l)·e^{-j2πfτ_l}·a(φ_l)ᵀw`
//!   under a given transmit beam (what reference signals actually measure),
//! - the band-limited sampled CIR (paper Eq. 22).

use crate::path::Path;
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::steering::steering_vector_into;
use mmwave_array::weights::BeamWeights;
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::sinc::pulse_train_into;
use mmwave_hotpath::hot_path;
use std::f64::consts::PI;

/// The receive side of the link.
#[derive(Clone, Debug)]
pub enum UeReceiver {
    /// Quasi-omni UE (the paper's default, §4): unit gain from every angle.
    Omni,
    /// Directional UE with its own phased array and receive beam (§4.4).
    Array {
        /// UE array geometry.
        geom: ArrayGeometry,
        /// UE combining weights (unit norm for a fair comparison).
        weights: BeamWeights,
    },
}

impl UeReceiver {
    /// Complex receive gain toward an arrival angle (degrees from the UE's
    /// boresight).
    pub fn gain_toward(&self, aoa_deg: f64) -> Complex64 {
        let mut scratch = Vec::new();
        self.gain_toward_with(aoa_deg, &mut scratch)
    }

    /// Allocation-free variant of [`UeReceiver::gain_toward`]: `steer` is a
    /// caller-owned scratch buffer reused for the UE steering vector (unused
    /// for an omni UE).
    pub fn gain_toward_with(&self, aoa_deg: f64, steer: &mut Vec<Complex64>) -> Complex64 {
        match self {
            UeReceiver::Omni => Complex64::ONE,
            UeReceiver::Array { geom, weights } => {
                steering_vector_into(geom, aoa_deg, steer);
                weights.apply(steer)
            }
        }
    }
}

/// Caller-owned scratch buffers for the allocation-free
/// [`GeometricChannel`] kernels. One instance serves any number of calls;
/// buffers grow to a high-water mark on first use and are then reused.
#[derive(Clone, Debug, Default)]
pub struct ChannelScratch {
    /// gNB-side steering vector (one path at a time).
    pub steer: Vec<Complex64>,
    /// UE-side steering vector (directional receivers only).
    pub ue_steer: Vec<Complex64>,
    /// Per-path compound coefficients `(α_l, τ_l)`.
    pub alphas: Vec<(Complex64, f64)>,
}

/// A frozen snapshot of the multipath channel at one instant.
#[derive(Clone, Debug)]
pub struct GeometricChannel {
    /// Sparse path set (LOS + reflections), already including blockage.
    pub paths: Vec<Path>,
    /// Carrier frequency, Hz.
    pub fc_hz: f64,
}

impl GeometricChannel {
    /// Creates a channel snapshot.
    pub fn new(paths: Vec<Path>, fc_hz: f64) -> Self {
        Self { paths, fc_hz }
    }

    /// Per-path compound coefficient under a transmit beam and receive
    /// pattern, paired with the path delay in seconds:
    /// `α_l = γ_l · g_rx(θ_l) · a(φ_l)ᵀ·w` (paper Eq. 21's per-beam terms).
    pub fn path_alphas(
        &self,
        geom: &ArrayGeometry,
        w: &BeamWeights,
        rx: &UeReceiver,
    ) -> Vec<(Complex64, f64)> {
        let mut steer = Vec::new();
        let mut ue_steer = Vec::new();
        let mut out = Vec::with_capacity(self.paths.len());
        self.path_alphas_into(geom, w, rx, &mut steer, &mut ue_steer, &mut out);
        out
    }

    /// Write-into variant of [`GeometricChannel::path_alphas`]: clears `out`
    /// and fills it, reusing `out` plus the gNB-side (`steer`) and UE-side
    /// (`ue_steer`) steering scratch buffers. Bit-identical to the
    /// allocating version (same per-path expression and association order).
    #[hot_path]
    pub fn path_alphas_into(
        &self,
        geom: &ArrayGeometry,
        w: &BeamWeights,
        rx: &UeReceiver,
        steer: &mut Vec<Complex64>,
        ue_steer: &mut Vec<Complex64>,
        out: &mut Vec<(Complex64, f64)>,
    ) {
        out.clear();
        for p in &self.paths {
            steering_vector_into(geom, p.aod_deg, steer);
            let af = w.apply(steer);
            let alpha = p.effective_gain() * rx.gain_toward_with(p.aoa_deg, ue_steer) * af;
            out.push((alpha, p.tof_ns * 1e-9));
        }
    }

    /// Effective scalar channel at baseband frequency offset `freq_hz`
    /// under transmit weights `w`.
    pub fn scalar(
        &self,
        geom: &ArrayGeometry,
        w: &BeamWeights,
        rx: &UeReceiver,
        freq_hz: f64,
    ) -> Complex64 {
        self.path_alphas(geom, w, rx)
            .into_iter()
            .map(|(alpha, tau)| alpha * Complex64::cis(-2.0 * PI * freq_hz * tau))
            .sum()
    }

    /// Channel state information across a set of baseband subcarrier
    /// frequencies (Hz offsets from carrier), under transmit weights `w`.
    pub fn csi(
        &self,
        geom: &ArrayGeometry,
        w: &BeamWeights,
        rx: &UeReceiver,
        freqs_hz: &[f64],
    ) -> Vec<Complex64> {
        let mut scratch = ChannelScratch::default();
        let mut out = Vec::with_capacity(freqs_hz.len());
        self.csi_into(geom, w, rx, freqs_hz, &mut scratch, &mut out);
        out
    }

    /// Write-into variant of [`GeometricChannel::csi`]: clears `out` and
    /// fills it with one response per frequency, reusing `out` and the
    /// `scratch` buffers. Bit-identical to the allocating version.
    #[hot_path]
    pub fn csi_into(
        &self,
        geom: &ArrayGeometry,
        w: &BeamWeights,
        rx: &UeReceiver,
        freqs_hz: &[f64],
        scratch: &mut ChannelScratch,
        out: &mut Vec<Complex64>,
    ) {
        let ChannelScratch {
            steer,
            ue_steer,
            alphas,
        } = scratch;
        self.path_alphas_into(geom, w, rx, steer, ue_steer, alphas);
        Self::csi_from_alphas(alphas, freqs_hz, out);
    }

    /// CSI across `freqs_hz` from precomputed per-path `(α_l, τ_l)` pairs —
    /// the frequency-sweep core shared by [`GeometricChannel::csi_into`] and
    /// the per-slot [`crate::snapshot::ChannelSnapshot`].
    pub fn csi_from_alphas(
        alphas: &[(Complex64, f64)],
        freqs_hz: &[f64],
        out: &mut Vec<Complex64>,
    ) {
        out.clear();
        out.extend(freqs_hz.iter().map(|&f| {
            alphas
                .iter()
                .map(|&(alpha, tau)| alpha * Complex64::cis(-2.0 * PI * f * tau))
                .sum::<Complex64>()
        }));
    }

    /// Band-limited sampled channel impulse response (paper Eq. 22):
    /// `h_eff[n] = Σ_l α_l · sinc(B·(n·Ts − τ_l))`, with delays re-referenced
    /// to the earliest path (plus `guard_s` of leading margin so early sinc
    /// sidelobes are visible).
    // xtask-allow(hot-path-closure): owned-output variant for analysis callers; the slot loop uses cir_into with reused scratch
    pub fn cir(
        &self,
        geom: &ArrayGeometry,
        w: &BeamWeights,
        rx: &UeReceiver,
        bw_hz: f64,
        n_taps: usize,
        guard_s: f64,
    ) -> Vec<Complex64> {
        let mut scratch = ChannelScratch::default();
        let mut out = Vec::with_capacity(n_taps);
        self.cir_into(geom, w, rx, bw_hz, n_taps, guard_s, &mut scratch, &mut out);
        out
    }

    /// Write-into variant of [`GeometricChannel::cir`]: clears `out` and
    /// fills it with `n_taps` samples, reusing `out` and the `scratch`
    /// buffers (the delay re-referencing happens in place on
    /// `scratch.alphas`).
    #[allow(clippy::too_many_arguments)]
    #[hot_path]
    pub fn cir_into(
        &self,
        geom: &ArrayGeometry,
        w: &BeamWeights,
        rx: &UeReceiver,
        bw_hz: f64,
        n_taps: usize,
        guard_s: f64,
        scratch: &mut ChannelScratch,
        out: &mut Vec<Complex64>,
    ) {
        let ChannelScratch {
            steer,
            ue_steer,
            alphas,
        } = scratch;
        self.path_alphas_into(geom, w, rx, steer, ue_steer, alphas);
        let t0 = alphas
            .iter()
            .map(|&(_, tau)| tau)
            .fold(f64::INFINITY, f64::min);
        let ts = 1.0 / bw_hz;
        for tap in alphas.iter_mut() {
            tap.1 = tap.1 - t0 + guard_s;
        }
        pulse_train_into(n_taps, bw_hz, ts, alphas, out);
    }

    /// Per-element narrowband channel vector `h[n]` at band center
    /// (including the UE pattern): what a genie with per-antenna RF chains
    /// would measure. Used by the oracle MRT baseline.
    pub fn element_response(&self, geom: &ArrayGeometry, rx: &UeReceiver) -> Vec<Complex64> {
        self.element_response_at(geom, rx, 0.0)
    }

    /// Per-element channel vector at baseband frequency offset `freq_hz`.
    // xtask-allow(hot-path-closure): owned-output variant for analysis callers; the slot loop uses element_response_at_into with reused scratch
    pub fn element_response_at(
        &self,
        geom: &ArrayGeometry,
        rx: &UeReceiver,
        freq_hz: f64,
    ) -> Vec<Complex64> {
        let mut scratch = ChannelScratch::default();
        let mut h = Vec::with_capacity(geom.num_elements());
        self.element_response_at_into(geom, rx, freq_hz, &mut scratch, &mut h);
        h
    }

    /// Write-into variant of [`GeometricChannel::element_response_at`]:
    /// clears `out` and fills it with one entry per gNB element, reusing
    /// `out` and the `scratch` buffers. Bit-identical to the allocating
    /// version.
    #[hot_path]
    pub fn element_response_at_into(
        &self,
        geom: &ArrayGeometry,
        rx: &UeReceiver,
        freq_hz: f64,
        scratch: &mut ChannelScratch,
        out: &mut Vec<Complex64>,
    ) {
        let n = geom.num_elements();
        out.clear();
        out.resize(n, Complex64::ZERO);
        for p in &self.paths {
            steering_vector_into(geom, p.aod_deg, &mut scratch.steer);
            let coeff = p.effective_gain()
                * rx.gain_toward_with(p.aoa_deg, &mut scratch.ue_steer)
                * Complex64::cis(-2.0 * PI * freq_hz * p.tof_ns * 1e-9);
            for (hi, ai) in out.iter_mut().zip(&scratch.steer) {
                *hi += coeff * *ai;
            }
        }
    }

    /// The best *fixed* (frequency-flat) unit-norm transmit weights for
    /// band-averaged received power over the given comb: the principal
    /// eigenvector of the band covariance `R = Σ_f h*(f)·hᵀ(f)`, found by
    /// power iteration. For a narrowband channel this reduces to MRT
    /// (Eq. 4); in wideband multipath it is the true upper bound for any
    /// analog (single-RF-chain, phase-shifter) beamformer.
    // xtask-allow(hot-path-closure): oracle weight synthesis is a genie baseline computed on channel updates, not in the per-slot loop
    pub fn wideband_oracle_weights(
        &self,
        geom: &ArrayGeometry,
        rx: &UeReceiver,
        freqs_hz: &[f64],
    ) -> BeamWeights {
        let n = geom.num_elements();
        if self.paths.is_empty() || freqs_hz.is_empty() {
            return self.optimal_weights(geom, rx);
        }
        let rows: Vec<Vec<Complex64>> = freqs_hz
            .iter()
            .map(|&f| self.element_response_at(geom, rx, f))
            .collect();
        // Power iteration on R·w = Σ_f h*(f)·(h(f)ᵀ·w), starting from MRT.
        let mut w: Vec<Complex64> = self.optimal_weights(geom, rx).into_vec();
        for _ in 0..40 {
            let mut next = vec![Complex64::ZERO; n];
            for h in &rows {
                let proj: Complex64 = h.iter().zip(&w).map(|(a, b)| *a * *b).sum();
                for (nx, hv) in next.iter_mut().zip(h) {
                    *nx += hv.conj() * proj;
                }
            }
            mmwave_dsp::complex::normalize_in_place(&mut next);
            if mmwave_dsp::complex::norm(&next) == 0.0 {
                break;
            }
            w = next;
        }
        BeamWeights::from_vec_normalized(w)
    }

    /// Optimal (maximum-ratio) transmit weights `w = h*/‖h‖` (paper Eq. 4).
    // xtask-allow(hot-path-closure): MRT weights are a genie-baseline product built on channel updates, not in the per-slot loop
    pub fn optimal_weights(&self, geom: &ArrayGeometry, rx: &UeReceiver) -> BeamWeights {
        let h = self.element_response(geom, rx);
        BeamWeights::from_vec_normalized(h.into_iter().map(|v| v.conj()).collect())
    }

    /// Received signal power (linear, relative to unit transmit power) at
    /// band center under weights `w`.
    pub fn received_power(&self, geom: &ArrayGeometry, w: &BeamWeights, rx: &UeReceiver) -> f64 {
        self.scalar(geom, w, rx, 0.0).norm_sqr()
    }

    /// Largest achievable received power: `‖h‖²` (Cauchy–Schwarz bound,
    /// attained by [`GeometricChannel::optimal_weights`]).
    pub fn optimal_power(&self, geom: &ArrayGeometry, rx: &UeReceiver) -> f64 {
        mmwave_dsp::complex::norm_sqr(&self.element_response(geom, rx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathKind;
    use mmwave_array::multibeam::MultiBeam;
    use mmwave_array::steering::single_beam;
    use mmwave_dsp::complex::c64;
    use mmwave_dsp::units::FC_28GHZ;

    fn two_path_channel(delta: f64, sigma: f64) -> GeometricChannel {
        GeometricChannel::new(
            vec![
                Path::new(0.0, 0.0, c64(1.0, 0.0), 20.0, PathKind::Los),
                Path::new(
                    30.0,
                    -40.0,
                    Complex64::from_polar(delta, sigma),
                    25.0,
                    PathKind::Reflected { wall: 0 },
                ),
            ],
            FC_28GHZ,
        )
    }

    #[test]
    fn single_beam_on_single_path_is_optimal() {
        let ch = GeometricChannel::new(
            vec![Path::new(12.0, 0.0, c64(0.8, 0.0), 20.0, PathKind::Los)],
            FC_28GHZ,
        );
        let g = ArrayGeometry::ula(8);
        let w = single_beam(&g, 12.0);
        let p = ch.received_power(&g, &w, &UeReceiver::Omni);
        let opt = ch.optimal_power(&g, &UeReceiver::Omni);
        assert!(
            (p - opt).abs() < 1e-9 * opt,
            "single beam {p} vs optimal {opt}"
        );
        // N·|γ|² = 8·0.64
        assert!((p - 8.0 * 0.64).abs() < 1e-9);
    }

    #[test]
    fn multibeam_snr_gain_follows_one_plus_delta_sq() {
        // Paper Eq. 9: optimal SNR ≈ (1+δ²)·|h|² vs single-beam |h|².
        let g = ArrayGeometry::ula(16);
        for delta in [0.25, 0.5, 1.0] {
            let ch = two_path_channel(delta, 0.9);
            let rx = UeReceiver::Omni;
            let single = ch.received_power(&g, &single_beam(&g, 0.0), &rx);
            let opt = ch.optimal_power(&g, &rx);
            let gain = opt / single;
            assert!(
                (gain - (1.0 + delta * delta)).abs() < 0.02,
                "δ={delta}: gain {gain}"
            );
        }
    }

    #[test]
    fn constructive_multibeam_approaches_oracle() {
        let g = ArrayGeometry::ula(16);
        let delta = 0.7;
        let sigma = -0.7;
        let ch = two_path_channel(delta, sigma);
        let rx = UeReceiver::Omni;
        // Constructive multi-beam built from the true (δ, σ).
        let mb = MultiBeam::two_beam(0.0, 30.0, delta, sigma).weights(&g);
        let p_mb = ch.received_power(&g, &mb, &rx);
        let p_opt = ch.optimal_power(&g, &rx);
        assert!(p_mb > 0.98 * p_opt, "multi-beam {p_mb} vs oracle {p_opt}");
    }

    #[test]
    fn optimal_weights_attain_cauchy_schwarz_bound() {
        let g = ArrayGeometry::ula(8);
        let ch = two_path_channel(0.6, 2.0);
        let rx = UeReceiver::Omni;
        let w = ch.optimal_weights(&g, &rx);
        let p = ch.received_power(&g, &w, &rx);
        assert!((p - ch.optimal_power(&g, &rx)).abs() < 1e-9);
    }

    #[test]
    fn csi_varies_across_band_for_multipath() {
        // Two delays 5 ns apart → frequency-selective CSI.
        let g = ArrayGeometry::ula(8);
        let ch = two_path_channel(1.0, 0.0);
        let w = MultiBeam::two_beam(0.0, 30.0, 1.0, 0.0).weights(&g);
        let freqs: Vec<f64> = (0..100).map(|i| -200e6 + 4e6 * i as f64).collect();
        let csi = ch.csi(&g, &w, &UeReceiver::Omni, &freqs);
        let powers: Vec<f64> = csi.iter().map(|v| v.norm_sqr()).collect();
        let ripple = mmwave_dsp::stats::max(&powers) / mmwave_dsp::stats::min(&powers);
        assert!(
            ripple > 2.0,
            "expected frequency selectivity, ripple {ripple}"
        );
    }

    #[test]
    fn cir_shows_two_taps_at_path_delays() {
        let g = ArrayGeometry::ula(8);
        let ch = two_path_channel(0.8, 0.0);
        let w = MultiBeam::two_beam(0.0, 30.0, 0.8, 0.0).weights(&g);
        let bw = 400e6;
        let ts = 1.0 / bw; // 2.5 ns
                           // Δτ = 5 ns = 2 taps; guard of 2 taps.
        let cir = ch.cir(&g, &w, &UeReceiver::Omni, bw, 16, 2.0 * ts);
        let mags: Vec<f64> = cir.iter().map(|v| v.abs()).collect();
        // Peaks at taps 2 (LOS) and 4 (reflection).
        assert!(mags[2] > mags[3] && mags[2] > mags[1]);
        assert!(mags[4] > mags[5] && mags[4] > mags[3]);
        assert!(mags[2] > mags[4], "LOS tap should dominate");
    }

    #[test]
    fn blocked_path_drops_from_alphas() {
        let g = ArrayGeometry::ula(8);
        let mut ch = two_path_channel(0.8, 0.0);
        let w = single_beam(&g, 0.0);
        let p_before = ch.received_power(&g, &w, &UeReceiver::Omni);
        ch.paths[0].blockage_db = 30.0;
        let p_after = ch.received_power(&g, &w, &UeReceiver::Omni);
        assert!(p_after < p_before / 100.0, "{p_after} vs {p_before}");
    }

    #[test]
    fn directional_ue_adds_gain() {
        let g = ArrayGeometry::ula(8);
        let ch = GeometricChannel::new(
            vec![Path::new(0.0, 10.0, c64(1.0, 0.0), 20.0, PathKind::Los)],
            FC_28GHZ,
        );
        let w = single_beam(&g, 0.0);
        let omni = ch.received_power(&g, &w, &UeReceiver::Omni);
        let ue_geom = ArrayGeometry::ula(4);
        let rx = UeReceiver::Array {
            geom: ue_geom,
            weights: single_beam(&ue_geom, 10.0),
        };
        let dir = ch.received_power(&g, &w, &rx);
        // UE array of 4 at unit norm: gain 4 in power.
        assert!((dir / omni - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_channel_is_silent() {
        let g = ArrayGeometry::ula(8);
        let ch = GeometricChannel::new(Vec::new(), FC_28GHZ);
        let w = single_beam(&g, 0.0);
        assert_eq!(ch.received_power(&g, &w, &UeReceiver::Omni), 0.0);
        assert_eq!(ch.optimal_power(&g, &UeReceiver::Omni), 0.0);
    }
}
