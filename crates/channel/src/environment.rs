//! Image-method scenes: rooms, streets, and their reflected paths.
//!
//! The paper's experiments ran in a 7 m × 10 m conference room (glass walls,
//! whiteboard) and on an outdoor 30–80 m link beside a glass-walled building
//! (§6, Fig. 13). We reproduce both as 2-D plan-view scenes: walls are
//! segments with a material; propagation is the direct ray plus first-order
//! specular reflections computed with the image-source method. Reflection
//! losses are calibrated to the paper's measurement study (§3.2: common
//! reflectors attenuate 1–10 dB relative to the direct path, median 7.2 dB
//! indoor / 5 dB outdoor).
//!
//! Geometry conventions: the gNB sits at [`Scene::gnb`] facing +y; angles of
//! departure are bearings from +y (see [`crate::geom2d::Vec2::bearing_deg`]).
//! The UE faces a configurable world bearing.

use crate::cell::SharedSceneCache;
use crate::geom2d::{v2, Segment, Vec2};
use crate::path::{Path, PathKind};
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::units::{amp_from_db, wavelength, wrap_deg, SPEED_OF_LIGHT};
use std::f64::consts::PI;

/// Reflector material with a nominal specular reflection loss.
///
/// Values follow the measurement studies the paper cites: metal is nearly
/// lossless, tinted glass and concrete reflect strongly (≈5–7 dB), drywall
/// and wood are weaker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Material {
    /// Metal sheet / whiteboard backing: ~1 dB.
    Metal,
    /// Tinted architectural glass: ~5 dB.
    TintedGlass,
    /// Interior glass wall: ~7 dB.
    Glass,
    /// Concrete / brick: ~6 dB.
    Concrete,
    /// Painted drywall: ~10 dB.
    Drywall,
    /// Wooden furniture: ~13 dB.
    Wood,
}

impl Material {
    /// Nominal specular reflection loss, dB. Values calibrated so the
    /// Fig. 4a reproduction lands on the paper's medians (7.2 dB indoor /
    /// 5 dB outdoor *relative to the LOS*, which also includes the
    /// reflection's extra free-space loss).
    pub fn reflection_loss_db(self) -> f64 {
        match self {
            Material::Metal => 1.0,
            Material::TintedGlass => 3.5,
            Material::Glass => 5.5,
            Material::Concrete => 5.0,
            Material::Drywall => 10.0,
            Material::Wood => 13.0,
        }
    }
}

/// A wall: a segment plus a material.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Wall {
    /// Wall face.
    pub seg: Segment,
    /// Surface material.
    pub material: Material,
}

/// A static plan-view scene.
#[derive(Clone, Debug)]
pub struct Scene {
    /// Carrier frequency, Hz.
    pub fc_hz: f64,
    /// gNB position (array faces +y).
    pub gnb: Vec2,
    /// Reflecting walls.
    pub walls: Vec<Wall>,
    /// Extra per-reflection loss offset applied to every wall, dB
    /// (lets experiments sweep reflector quality; 0 by default).
    pub extra_reflection_loss_db: f64,
    /// Maximum reflection order (1 = single bounce, the default; 2 adds
    /// wall-pair double bounces — each pays both materials' losses plus
    /// the longer flight, so they matter mostly in metal-rich rooms).
    pub max_bounces: u8,
}

impl Scene {
    /// Creates an empty scene (LOS only).
    pub fn open(fc_hz: f64, gnb: Vec2) -> Self {
        Self {
            fc_hz,
            gnb,
            walls: Vec::new(),
            extra_reflection_loss_db: 0.0,
            max_bounces: 1,
        }
    }

    /// The paper's indoor setting: a 7 m × 10 m conference room with glass
    /// side walls, a metal-backed whiteboard on the far wall, and drywall
    /// behind the gNB. The gNB sits against the near wall at the origin
    /// facing +y (into the room).
    pub fn conference_room(fc_hz: f64) -> Self {
        let walls = vec![
            // Left wall (x = −3.5): glass.
            Wall {
                seg: Segment::new(v2(-3.5, 0.0), v2(-3.5, 10.0)),
                material: Material::Glass,
            },
            // Right wall (x = +3.5): glass.
            Wall {
                seg: Segment::new(v2(3.5, 0.0), v2(3.5, 10.0)),
                material: Material::Glass,
            },
            // Far wall (y = 10): painted drywall. (A strong specular far
            // wall would put a second, much-delayed ray inside the LOS
            // beam's lobe — the paper's sparse 2–3-path channels don't show
            // that, so the strong reflectors here are the side walls.)
            Wall {
                seg: Segment::new(v2(-3.5, 10.0), v2(3.5, 10.0)),
                material: Material::Drywall,
            },
            // Near wall (y = 0), behind the gNB: whiteboard. Sits in the
            // array's back hemisphere, so it never produces a path.
            Wall {
                seg: Segment::new(v2(-3.5, 0.0), v2(3.5, 0.0)),
                material: Material::Metal,
            },
        ];
        Self {
            fc_hz,
            gnb: v2(0.0, 0.2),
            walls,
            extra_reflection_loss_db: 0.0,
            max_bounces: 1,
        }
    }

    /// The paper's outdoor setting: a long link running beside a large
    /// building with tinted-glass walls ~12 m to the side (Fig. 13c).
    pub fn outdoor_street(fc_hz: f64) -> Self {
        let walls = vec![
            // Building facade parallel to the link at x = 12.
            Wall {
                seg: Segment::new(v2(12.0, 0.0), v2(12.0, 100.0)),
                material: Material::TintedGlass,
            },
            // A second, farther building on the other side.
            Wall {
                seg: Segment::new(v2(-18.0, 0.0), v2(-18.0, 100.0)),
                material: Material::Concrete,
            },
        ];
        Self {
            fc_hz,
            gnb: v2(0.0, 0.0),
            walls,
            extra_reflection_loss_db: 0.0,
            max_bounces: 1,
        }
    }

    /// Appendix B's Wireless-Insite scenario: a 10 m link with one concrete
    /// reflecting surface placed so the reflection departs at ~60°.
    pub fn appendix_b(fc_hz: f64) -> Self {
        let walls = vec![Wall {
            // Vertical wall to the right of the link, placed so the bounce
            // departs at 60° for a UE at 10 m (bounce point (8.66, 5)).
            seg: Segment::new(v2(8.66, 0.0), v2(8.66, 20.0)),
            material: Material::Concrete,
        }];
        // Appendix B's surface is a large smooth concrete facade — a
        // slightly better specular reflector than the nominal material
        // (without this the 60 GHz reflector falls below the decode
        // threshold and the band comparison loses its meaning).
        Self {
            fc_hz,
            gnb: v2(0.0, 0.0),
            walls,
            extra_reflection_loss_db: -2.0,
            max_bounces: 1,
        }
    }

    /// Free-space amplitude gain over distance `d_m`: `λ/(4πd)`.
    fn fs_amp(&self, d_m: f64) -> f64 {
        wavelength(self.fc_hz) / (4.0 * PI * d_m)
    }

    /// Complex gain of a ray of total length `d_m` with extra amplitude
    /// attenuation `extra_loss_db`: free-space amplitude × carrier phase
    /// `e^{-j2πd/λ}`.
    fn ray_gain(&self, d_m: f64, extra_loss_db: f64) -> Complex64 {
        let amp = self.fs_amp(d_m) * amp_from_db(-extra_loss_db);
        let phase = -2.0 * PI * d_m / wavelength(self.fc_hz);
        Complex64::from_polar(amp, phase)
    }

    /// Sparse path set from the gNB to a UE at `ue`, whose array faces the
    /// world bearing `ue_facing_deg` (the AoA of each path is reported
    /// relative to that facing). Returns the LOS ray plus one first-order
    /// specular reflection per wall that geometrically supports one.
    ///
    /// First-order simplification (documented in DESIGN.md): inter-wall
    /// occlusion is not modeled — blockage is injected explicitly by the
    /// [`crate::blockage`] processes, mirroring how the paper's experiments
    /// introduce human blockers on specific paths.
    pub fn paths_to(&self, ue: Vec2, ue_facing_deg: f64) -> Vec<Path> {
        let mut out = Vec::with_capacity(1 + self.walls.len());
        self.paths_to_into(ue, ue_facing_deg, &mut out);
        out
    }

    /// Write-into variant of [`Scene::paths_to`]: clears `out` and fills it,
    /// reusing its allocation. The hot-path kernel behind
    /// [`crate::dynamics::DynamicChannel`]'s per-slot snapshot rebuild.
    pub fn paths_to_into(&self, ue: Vec2, ue_facing_deg: f64, out: &mut Vec<Path>) {
        self.paths_to_cached_into(None, ue, ue_facing_deg, out);
    }

    /// [`Scene::paths_to_into`] with an optional precomputed gNB image set
    /// (the fleet's shared cell environment). `Segment::mirror` is pure, so
    /// the cached and freshly-computed images are bitwise equal and the two
    /// trace paths produce identical results; the cache only removes the
    /// per-trace mirror work that is UE-independent.
    pub fn paths_to_cached_into(
        &self,
        cache: Option<&SharedSceneCache>,
        ue: Vec2,
        ue_facing_deg: f64,
        out: &mut Vec<Path>,
    ) {
        if let Some(c) = cache {
            debug_assert_eq!(c.len(), self.walls.len(), "cache built for another scene");
            c.note_trace();
        }
        out.clear();
        // LOS.
        let d = self.gnb.dist(ue);
        let los_aod = (ue - self.gnb).bearing_deg();
        if d > 1e-6 && los_aod.abs() <= 88.0 {
            let aod = los_aod;
            let aoa = wrap_deg((self.gnb - ue).bearing_deg() - ue_facing_deg);
            out.push(Path::new(
                aod,
                aoa,
                self.ray_gain(d, 0.0),
                d / SPEED_OF_LIGHT * 1e9,
                PathKind::Los,
            ));
        }
        // First-order reflections.
        for (wi, wall) in self.walls.iter().enumerate() {
            let image = match cache {
                Some(c) => c.image(wi),
                None => wall.seg.mirror(self.gnb),
            };
            let Some(pt) = wall.seg.intersect(image, ue) else {
                continue;
            };
            let total = image.dist(ue);
            if total < 1e-6 || self.gnb.dist(pt) < 1e-6 || ue.dist(pt) < 1e-6 {
                continue;
            }
            let loss = wall.material.reflection_loss_db() + self.extra_reflection_loss_db;
            let aod = (pt - self.gnb).bearing_deg();
            // The gNB's patch array has a ground plane: it only radiates
            // into its front (+y) hemisphere. Rays departing backwards
            // would otherwise alias into front angles through sin(φ).
            if aod.abs() > 88.0 {
                continue;
            }
            let aoa = wrap_deg((pt - ue).bearing_deg() - ue_facing_deg);
            out.push(Path::new(
                aod,
                aoa,
                self.ray_gain(total, loss),
                total / SPEED_OF_LIGHT * 1e9,
                PathKind::Reflected { wall: wi },
            ));
        }
        // Second-order reflections (image-of-image construction).
        if self.max_bounces >= 2 {
            self.push_double_bounces(cache, ue, ue_facing_deg, out);
        }
    }

    /// Appends valid wall-pair double bounces: gNB → wall `i` → wall `j`
    /// → UE, found by mirroring the gNB across wall `i`, then that image
    /// across wall `j`, and unfolding the straight ray. The first-order
    /// image comes from the shared cache when one is installed; the
    /// image-of-image stays per-trace (registry scenes are single-bounce,
    /// so the pair table is not worth caching).
    fn push_double_bounces(
        &self,
        cache: Option<&SharedSceneCache>,
        ue: Vec2,
        ue_facing_deg: f64,
        out: &mut Vec<Path>,
    ) {
        for (i, wi) in self.walls.iter().enumerate() {
            let image1 = match cache {
                Some(c) => c.image(i),
                None => wi.seg.mirror(self.gnb),
            };
            for (j, wj) in self.walls.iter().enumerate() {
                if i == j {
                    continue;
                }
                let image2 = wj.seg.mirror(image1);
                // Last leg: image2 → UE must cross wall j at the second
                // bounce point…
                let Some(p_j) = wj.seg.intersect(image2, ue) else {
                    continue;
                };
                // …and the unfolded middle leg image1 → p_j must cross
                // wall i at the first bounce point.
                let Some(p_i) = wi.seg.intersect(image1, p_j) else {
                    continue;
                };
                let total = image2.dist(ue);
                if total < 1e-6
                    || self.gnb.dist(p_i) < 1e-6
                    || p_i.dist(p_j) < 1e-6
                    || ue.dist(p_j) < 1e-6
                {
                    continue;
                }
                let aod = (p_i - self.gnb).bearing_deg();
                if aod.abs() > 88.0 {
                    continue;
                }
                let loss = wi.material.reflection_loss_db()
                    + wj.material.reflection_loss_db()
                    + 2.0 * self.extra_reflection_loss_db;
                let aoa = wrap_deg((p_j - ue).bearing_deg() - ue_facing_deg);
                out.push(Path::new(
                    aod,
                    aoa,
                    self.ray_gain(total, loss),
                    total / SPEED_OF_LIGHT * 1e9,
                    PathKind::DoubleReflected {
                        first: i,
                        second: j,
                    },
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::strongest_paths;
    use mmwave_dsp::units::{db_from_amp, FC_28GHZ};

    #[test]
    fn open_scene_has_only_los() {
        let s = Scene::open(FC_28GHZ, Vec2::ZERO);
        let paths = s.paths_to(v2(0.0, 7.0), 180.0);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].is_los());
        assert!((paths[0].aod_deg - 0.0).abs() < 1e-9);
        // UE faces the gNB (bearing 180°) → AoA 0.
        assert!((paths[0].aoa_deg - 0.0).abs() < 1e-9);
        // ToF of 7 m ≈ 23.3 ns.
        assert!((paths[0].tof_ns - 23.35).abs() < 0.05);
    }

    #[test]
    fn conference_room_produces_multipath() {
        let s = Scene::conference_room(FC_28GHZ);
        let paths = s.paths_to(v2(0.0, 7.0), 180.0);
        // LOS + 4 walls (all geometrically visible for a centered UE).
        assert!(paths.len() >= 4, "got {} paths", paths.len());
        assert!(paths.iter().filter(|p| p.is_los()).count() == 1);
        // LOS is the strongest.
        assert_eq!(strongest_paths(&paths, 1)[0], 0);
    }

    #[test]
    fn side_wall_reflection_geometry() {
        // gNB at (0, 0.2), UE at (0, 7): right glass wall at x = 3.5 →
        // image at (7, 0.2); bounce point where segment image→UE crosses
        // x = 3.5 → AoD = bearing of bounce − gnb.
        let s = Scene::conference_room(FC_28GHZ);
        let paths = s.paths_to(v2(0.0, 7.0), 180.0);
        let right = paths
            .iter()
            .find(|p| matches!(p.kind, PathKind::Reflected { wall: 1 }))
            .expect("right-wall path");
        // Symmetric setup: AoD ≈ atan2(7, 3.4) from +y ≈ 45.8°.
        assert!(
            right.aod_deg > 30.0 && right.aod_deg < 60.0,
            "aod {}",
            right.aod_deg
        );
        // Reflection is longer than LOS.
        assert!(right.tof_ns > paths[0].tof_ns);
        // And weaker.
        assert!(right.effective_gain().abs() < paths[0].effective_gain().abs());
    }

    #[test]
    fn reflector_attenuation_in_paper_range() {
        // §3.2: common reflectors attenuate 1–10 dB relative to the direct
        // path; check the conference room's strongest reflector.
        let s = Scene::conference_room(FC_28GHZ);
        let paths = s.paths_to(v2(1.0, 6.0), 180.0);
        let idx = strongest_paths(&paths, 3);
        assert!(paths[idx[0]].is_los());
        let rel_db = paths[idx[1]].rel_attenuation_db(&paths[idx[0]]);
        assert!(
            (1.0..=12.0).contains(&rel_db),
            "strongest reflector at {rel_db} dB"
        );
    }

    #[test]
    fn outdoor_long_link() {
        let s = Scene::outdoor_street(FC_28GHZ);
        let paths = s.paths_to(v2(0.0, 80.0), 180.0);
        assert!(paths.len() >= 2);
        let los_db = db_from_amp(paths[0].effective_gain().abs());
        // FSPL at 80 m, 28 GHz ≈ 99.5 dB.
        assert!((los_db + 99.5).abs() < 1.0, "los {los_db} dB");
    }

    #[test]
    fn gain_scales_inversely_with_distance() {
        let s = Scene::open(FC_28GHZ, Vec2::ZERO);
        let near = s.paths_to(v2(0.0, 5.0), 180.0)[0].effective_gain().abs();
        let far = s.paths_to(v2(0.0, 10.0), 180.0)[0].effective_gain().abs();
        assert!((near / far - 2.0).abs() < 1e-9);
    }

    #[test]
    fn carrier_phase_tracks_distance() {
        // Moving λ/2 further flips the carrier phase by π.
        let s = Scene::open(FC_28GHZ, Vec2::ZERO);
        let lambda = wavelength(FC_28GHZ);
        let p1 = s.paths_to(v2(0.0, 5.0), 180.0)[0].gain;
        let p2 = s.paths_to(v2(0.0, 5.0 + lambda / 2.0), 180.0)[0].gain;
        let dphase = wrap_deg((p2.arg() - p1.arg()).to_degrees());
        assert!((dphase.abs() - 180.0).abs() < 0.1, "Δphase {dphase}");
    }

    #[test]
    fn ue_facing_shifts_aoa() {
        let s = Scene::open(FC_28GHZ, Vec2::ZERO);
        let a0 = s.paths_to(v2(0.0, 7.0), 180.0)[0].aoa_deg;
        let a10 = s.paths_to(v2(0.0, 7.0), 190.0)[0].aoa_deg;
        assert!(((a0 - a10) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn appendix_b_reflection_near_60_degrees() {
        let s = Scene::appendix_b(FC_28GHZ);
        let paths = s.paths_to(v2(0.0, 10.0), 180.0);
        let refl = paths.iter().find(|p| !p.is_los()).expect("reflection");
        assert!(
            (refl.aod_deg - 60.0).abs() < 1.0,
            "aod {} (paper: reflecting surface at 60°)",
            refl.aod_deg
        );
    }

    #[test]
    fn double_bounce_geometry() {
        // Opposite glass walls: gNB → left wall → right wall → UE exists
        // and is longer/weaker than both single bounces.
        let mut s = Scene::conference_room(FC_28GHZ);
        s.max_bounces = 2;
        let paths = s.paths_to(v2(0.9, 7.0), 180.0);
        let single: Vec<&Path> = paths
            .iter()
            .filter(|p| matches!(p.kind, PathKind::Reflected { .. }))
            .collect();
        let double: Vec<&Path> = paths
            .iter()
            .filter(|p| matches!(p.kind, PathKind::DoubleReflected { .. }))
            .collect();
        assert!(!double.is_empty(), "expected wall-pair double bounces");
        let max_double = double
            .iter()
            .map(|p| p.effective_gain().abs())
            .fold(0.0f64, f64::max);
        let max_single = single
            .iter()
            .map(|p| p.effective_gain().abs())
            .fold(0.0f64, f64::max);
        assert!(max_double < max_single, "double bounces must be weaker");
        for d in &double {
            // Longer flight than the LOS by construction.
            assert!(d.tof_ns > paths[0].tof_ns);
        }
    }

    #[test]
    fn double_bounce_unfolded_length_consistent() {
        // The unfolded image distance must equal the three-leg polyline.
        let mut s = Scene::conference_room(FC_28GHZ);
        s.max_bounces = 2;
        let ue = v2(0.9, 7.0);
        let paths = s.paths_to(ue, 180.0);
        for p in paths
            .iter()
            .filter(|p| matches!(p.kind, PathKind::DoubleReflected { .. }))
        {
            let d_m = p.tof_ns * 1e-9 * SPEED_OF_LIGHT;
            // Any double bounce is at least as long as LOS + wall spacing
            // margin; sanity bound: between the LOS length and 5× it.
            let los = s.gnb.dist(ue);
            assert!(d_m > los && d_m < 5.0 * los, "length {d_m}");
        }
    }

    #[test]
    fn default_scene_has_no_double_bounces() {
        let s = Scene::conference_room(FC_28GHZ);
        assert!(s
            .paths_to(v2(0.9, 7.0), 180.0)
            .iter()
            .all(|p| !matches!(p.kind, PathKind::DoubleReflected { .. })));
    }

    #[test]
    fn extra_reflection_loss_weakens_reflections_only() {
        let mut s = Scene::conference_room(FC_28GHZ);
        let base = s.paths_to(v2(0.0, 7.0), 180.0);
        s.extra_reflection_loss_db = 10.0;
        let weak = s.paths_to(v2(0.0, 7.0), 180.0);
        assert_eq!(base[0].effective_gain(), weak[0].effective_gain()); // LOS untouched
        for (b, w) in base.iter().zip(&weak).skip(1) {
            assert!(
                (db_from_amp(b.effective_gain().abs() / w.effective_gain().abs()) - 10.0).abs()
                    < 1e-6
            );
        }
    }
}
