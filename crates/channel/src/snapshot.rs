//! Per-slot channel snapshot: evaluate the environment once, read it many
//! times.
//!
//! The simulator's original per-slot dataflow re-derived everything from
//! [`DynamicChannel`] at each consumer: the sounder, the strategy's truth
//! observer, and the SNR metric each called
//! [`DynamicChannel::channel_at`] (which itself traces the scene twice —
//! once for the current pose, once for the t = 0 reference list) and then
//! rebuilt per-path steering vectors from scratch. [`ChannelSnapshot`]
//! hoists all of that into one `rebuild` per time step:
//!
//! - the frozen [`GeometricChannel`] (path list with blockage applied),
//! - the cached t = 0 reference path list (time-invariant — traced once per
//!   run, not once per query),
//! - per-path gNB steering rows `a(φ_l)` (flat `n_paths × n_elements`),
//! - per-path beam-independent coefficients `γ_l·g_rx(θ_l)`,
//! - per-path delays `τ_l` (seconds),
//! - the per-element response at band center (oracle baselines).
//!
//! Every reader then costs only inner products against the cached rows; no
//! buffer is reallocated in steady state. **Invalidation rule (DESIGN.md
//! §8): advancing simulation time invalidates the snapshot** — callers must
//! `rebuild` before reading at a new `t_s`. [`ChannelSnapshot::is_valid_at`]
//! makes the rule checkable.
//!
//! Bit-identity: all derived quantities use the same expressions and the
//! same floating-point association order as the allocating
//! [`GeometricChannel`] methods they replace, so fixed-seed runs are
//! bit-identical whichever route computes them.

use crate::channel::{GeometricChannel, UeReceiver};
use crate::dynamics::DynamicChannel;
use crate::path::Path;
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::steering::steering_vector_into;
use mmwave_array::weights::BeamWeights;
use mmwave_dsp::complex::Complex64;
use mmwave_hotpath::hot_path;
use std::f64::consts::PI;

/// A reusable, per-slot view of the channel: path list plus every
/// beam-independent per-path quantity, computed once per time step.
#[derive(Clone, Debug)]
pub struct ChannelSnapshot {
    /// Simulation time this snapshot is valid for (`None` until the first
    /// rebuild).
    t_s: Option<f64>,
    /// Frozen channel at `t_s` (paths rebuilt in place each slot).
    channel: GeometricChannel,
    /// Cached t = 0 reference path list (blockage index space).
    reference: Vec<Path>,
    reference_built: bool,
    /// Cached pristine scene trace and the pose key
    /// `(pos.x, pos.y, facing_deg)` bits it was traced for. Static
    /// trajectories hit this cache on every slot, skipping the ray trace.
    traced: Vec<Path>,
    traced_pose: Option<(u64, u64, u64)>,
    /// AoD list the steering rows were built for (bitwise): rows are
    /// reused while no path's AoD moves.
    row_aods: Vec<f64>,
    /// Per-path gNB steering rows, flat `n_paths × n_elements`.
    steer_rows: Vec<Complex64>,
    /// Cached CSI phase table `cis(-2π·f·τ)`, flat `n_freqs × n_paths`,
    /// keyed bitwise by the frequency comb and delay list it was built
    /// for. Delays only move when the pose moves, so static slots and
    /// repeated probes on the same comb skip all the `cis` calls.
    phase_freqs: Vec<f64>,
    phase_delays: Vec<f64>,
    phase_table: Vec<Complex64>,
    /// Per-path beam-independent coefficient `γ_l · g_rx(θ_l)`.
    coeffs: Vec<Complex64>,
    /// Per-path delay, seconds.
    delays_s: Vec<f64>,
    /// Per-element response at band center (what the oracle measures).
    elem_response: Vec<Complex64>,
    n_elements: usize,
    /// Scratch: UE-side steering vector (directional receivers only).
    ue_steer: Vec<Complex64>,
    /// Scratch: per-path `(α_l, τ_l)` for a given transmit beam.
    alphas: Vec<(Complex64, f64)>,
}

impl Default for ChannelSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl ChannelSnapshot {
    /// Creates an empty snapshot; invalid until the first
    /// [`ChannelSnapshot::rebuild`].
    pub fn new() -> Self {
        Self {
            t_s: None,
            channel: GeometricChannel::new(Vec::new(), 0.0),
            reference: Vec::new(),
            reference_built: false,
            traced: Vec::new(),
            traced_pose: None,
            row_aods: Vec::new(),
            steer_rows: Vec::new(),
            phase_freqs: Vec::new(),
            phase_delays: Vec::new(),
            phase_table: Vec::new(),
            coeffs: Vec::new(),
            delays_s: Vec::new(),
            elem_response: Vec::new(),
            n_elements: 0,
            ue_steer: Vec::new(),
            alphas: Vec::new(),
        }
    }

    /// Re-evaluates the environment at `t_s` and refreshes every cached
    /// quantity, reusing all internal buffers. Call once per time step,
    /// before any reader; `geom` and `rx` must be the same link-constant
    /// values on every call (the cached rows are specific to them).
    #[hot_path]
    // xtask-allow(hot-path-panic): coeffs/delays_s are rebuilt in lockstep from the same path list a few lines down, so the enumerate indices are in bounds
    pub fn rebuild(
        &mut self,
        dynamic: &DynamicChannel,
        geom: &ArrayGeometry,
        rx: &UeReceiver,
        t_s: f64,
    ) {
        if !self.reference_built {
            dynamic.reference_paths_into(&mut self.reference);
            self.reference_built = true;
        }
        // Trace the scene only when the pose actually moved (bitwise key):
        // for static trajectories the trace is time-invariant and only the
        // blockage/rotation effects vary.
        let pose = dynamic.pose_at(t_s);
        let pose_key = (
            pose.pos.x.to_bits(),
            pose.pos.y.to_bits(),
            pose.facing_deg.to_bits(),
        );
        if self.traced_pose != Some(pose_key) {
            // Routed through the dynamic channel so a fleet's shared cell
            // cache (precomputed gNB images) serves the trace when
            // installed; bit-identical to the direct scene trace.
            dynamic.trace_pose_into(&pose, &mut self.traced);
            self.traced_pose = Some(pose_key);
        }
        self.channel.paths.clear();
        self.channel.paths.extend_from_slice(&self.traced);
        dynamic.apply_time_effects(t_s, &self.reference, &mut self.channel.paths);
        self.channel.fc_hz = dynamic.scene.fc_hz;
        self.n_elements = geom.num_elements();

        // Steering rows depend only on the AoD list: reuse them while every
        // AoD is bitwise-unchanged (blockage varies attenuation, not
        // geometry), rebuild otherwise.
        let rows_valid = self.row_aods.len() == self.channel.paths.len()
            && self.steer_rows.len() == self.row_aods.len() * self.n_elements
            && self
                .row_aods
                .iter()
                .zip(&self.channel.paths)
                .all(|(a, p)| a.to_bits() == p.aod_deg.to_bits());
        if !rows_valid {
            self.steer_rows.clear();
            self.row_aods.clear();
            for p in &self.channel.paths {
                // `steering_vector_into` needs a whole Vec; build the row in
                // the UE scratch and append, so rows stay one flat
                // allocation.
                steering_vector_into(geom, p.aod_deg, &mut self.ue_steer);
                self.steer_rows.extend_from_slice(&self.ue_steer);
                self.row_aods.push(p.aod_deg);
            }
        }

        // Per-path beam-independent coefficient and delay (cheap; the
        // coefficient carries the time-varying blockage attenuation).
        self.coeffs.clear();
        self.delays_s.clear();
        for p in &self.channel.paths {
            self.coeffs
                .push(p.effective_gain() * rx.gain_toward_with(p.aoa_deg, &mut self.ue_steer));
            self.delays_s.push(p.tof_ns * 1e-9);
        }

        // Band-center per-element response, identical expression to
        // `GeometricChannel::element_response_at(…, 0.0)`.
        self.elem_response.clear();
        self.elem_response.resize(self.n_elements, Complex64::ZERO);
        let chunk = self.n_elements.max(1);
        for (i, row) in self.steer_rows.chunks_exact(chunk).enumerate() {
            let coeff = self.coeffs[i] * Complex64::cis(-2.0 * PI * 0.0 * self.delays_s[i]);
            for (hi, ai) in self.elem_response.iter_mut().zip(row) {
                *hi += coeff * *ai;
            }
        }

        self.t_s = Some(t_s);
    }

    /// True if the snapshot was last rebuilt at exactly `t_s` (bitwise
    /// comparison — the simulator's clock is deterministic).
    pub fn is_valid_at(&self, t_s: f64) -> bool {
        self.t_s.map(f64::to_bits) == Some(t_s.to_bits())
    }

    /// Simulation time of the last rebuild.
    pub fn time_s(&self) -> Option<f64> {
        self.t_s
    }

    /// The frozen channel at the snapshot time. Panics if never rebuilt.
    pub fn channel(&self) -> &GeometricChannel {
        assert!(self.t_s.is_some(), "snapshot read before first rebuild");
        &self.channel
    }

    /// Cached t = 0 reference path list.
    pub fn reference_paths(&self) -> &[Path] {
        &self.reference
    }

    /// Number of paths at the snapshot time.
    pub fn num_paths(&self) -> usize {
        self.channel.paths.len()
    }

    /// Per-path gNB steering rows.
    fn rows(&self) -> impl Iterator<Item = &[Complex64]> {
        self.steer_rows.chunks_exact(self.n_elements.max(1))
    }

    /// Per-element channel vector at band center — what
    /// [`GeometricChannel::element_response`] computes, read from cache.
    pub fn element_response(&self) -> &[Complex64] {
        &self.elem_response
    }

    /// Per-path compound coefficients `(α_l, τ_l)` under transmit weights
    /// `w`, written into `out` — the snapshot-backed equivalent of
    /// [`GeometricChannel::path_alphas`], with the steering inner products
    /// read from the cached rows.
    #[hot_path]
    pub fn path_alphas_into(&self, w: &BeamWeights, out: &mut Vec<(Complex64, f64)>) {
        debug_assert_eq!(self.coeffs.len(), self.delays_s.len());
        out.clear();
        for (i, row) in self.rows().enumerate() {
            let af = w.apply(row);
            out.push((self.coeffs[i] * af, self.delays_s[i]));
        }
    }

    /// CSI across `freqs_hz` under transmit weights `w`, written into
    /// `out` — the snapshot-backed equivalent of
    /// [`GeometricChannel::csi`]. Bit-identical to querying the frozen
    /// channel directly.
    #[hot_path]
    pub fn csi_into(&mut self, w: &BeamWeights, freqs_hz: &[f64], out: &mut Vec<Complex64>) {
        debug_assert!(self.t_s.is_some(), "snapshot read before first rebuild");
        // Split-borrow: alphas is scratch, the rest is read-only.
        let mut alphas = std::mem::take(&mut self.alphas);
        self.path_alphas_into(w, &mut alphas);
        self.ensure_phase_table(freqs_hz);
        out.clear();
        if alphas.is_empty() {
            out.resize(freqs_hz.len(), Complex64::ZERO);
        } else {
            // Same association order as `GeometricChannel::csi_from_alphas`
            // (fold from zero, paths in order), with the `cis` factors read
            // from the cached phase table — bit-identical, `cis`-free.
            out.extend(self.phase_table.chunks_exact(alphas.len()).map(|row| {
                let mut acc = Complex64::ZERO;
                for (&(alpha, _), &e) in alphas.iter().zip(row) {
                    acc += alpha * e;
                }
                acc
            }));
        }
        self.alphas = alphas;
    }

    /// Rebuilds the cached phase table unless it already matches
    /// `freqs_hz` × current delays bitwise.
    fn ensure_phase_table(&mut self, freqs_hz: &[f64]) {
        let valid = self.phase_freqs.len() == freqs_hz.len()
            && self.phase_delays.len() == self.delays_s.len()
            && self
                .phase_freqs
                .iter()
                .zip(freqs_hz)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self
                .phase_delays
                .iter()
                .zip(&self.delays_s)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if valid {
            return;
        }
        self.phase_freqs.clear();
        self.phase_freqs.extend_from_slice(freqs_hz);
        self.phase_delays.clear();
        self.phase_delays.extend_from_slice(&self.delays_s);
        self.phase_table.clear();
        for &f in freqs_hz {
            for &tau in &self.delays_s {
                self.phase_table.push(Complex64::cis(-2.0 * PI * f * tau));
            }
        }
    }

    /// Received signal power (linear) at band center under `w` — the
    /// snapshot-backed [`GeometricChannel::received_power`].
    #[hot_path]
    pub fn received_power(&self, w: &BeamWeights) -> f64 {
        debug_assert_eq!(self.coeffs.len(), self.delays_s.len());
        let mut y = Complex64::ZERO;
        for (i, row) in self.rows().enumerate() {
            let af = w.apply(row);
            let alpha = self.coeffs[i] * af;
            y += alpha * Complex64::cis(-2.0 * PI * 0.0 * self.delays_s[i]);
        }
        y.norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockage::BlockageProcess;
    use crate::environment::Scene;
    use crate::mobility::Trajectory;
    use mmwave_array::steering::single_beam;
    use mmwave_dsp::units::FC_28GHZ;

    fn walker() -> DynamicChannel {
        DynamicChannel::new(
            Scene::conference_room(FC_28GHZ),
            Trajectory::paper_translation(crate::geom2d::v2(0.0, 7.0)),
            BlockageProcess::none(),
        )
    }

    #[test]
    fn snapshot_csi_matches_direct_query_bitwise() {
        let dc = walker();
        let geom = ArrayGeometry::paper_8x8();
        let rx = UeReceiver::Omni;
        let w = single_beam(&geom, 5.0);
        let freqs: Vec<f64> = (0..33).map(|i| -200e6 + 12.5e6 * i as f64).collect();
        let mut snap = ChannelSnapshot::new();
        let mut got = Vec::new();
        for t in [0.0, 0.13, 0.57] {
            snap.rebuild(&dc, &geom, &rx, t);
            snap.csi_into(&w, &freqs, &mut got);
            let want = dc.channel_at(t).csi(&geom, &w, &rx, &freqs);
            assert_eq!(got.len(), want.len());
            for (g, e) in got.iter().zip(&want) {
                assert_eq!(g.re.to_bits(), e.re.to_bits(), "t={t}");
                assert_eq!(g.im.to_bits(), e.im.to_bits(), "t={t}");
            }
        }
    }

    #[test]
    fn snapshot_element_response_matches_direct() {
        let dc = walker();
        let geom = ArrayGeometry::paper_8x8();
        let rx = UeReceiver::Omni;
        let mut snap = ChannelSnapshot::new();
        snap.rebuild(&dc, &geom, &rx, 0.25);
        let want = dc.channel_at(0.25).element_response(&geom, &rx);
        for (g, e) in snap.element_response().iter().zip(&want) {
            assert_eq!(g.re.to_bits(), e.re.to_bits());
            assert_eq!(g.im.to_bits(), e.im.to_bits());
        }
    }

    #[test]
    fn snapshot_received_power_matches_direct() {
        let dc = walker();
        let geom = ArrayGeometry::paper_8x8();
        let rx = UeReceiver::Omni;
        let w = single_beam(&geom, 0.0);
        let mut snap = ChannelSnapshot::new();
        snap.rebuild(&dc, &geom, &rx, 0.4);
        let want = dc.channel_at(0.4).received_power(&geom, &w, &rx);
        let got = snap.received_power(&w);
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn validity_follows_rebuild_time() {
        let dc = walker();
        let geom = ArrayGeometry::paper_8x8();
        let mut snap = ChannelSnapshot::new();
        assert!(!snap.is_valid_at(0.0));
        snap.rebuild(&dc, &geom, &UeReceiver::Omni, 0.1);
        assert!(snap.is_valid_at(0.1));
        assert!(!snap.is_valid_at(0.2));
        snap.rebuild(&dc, &geom, &UeReceiver::Omni, 0.2);
        assert!(snap.is_valid_at(0.2));
    }

    #[test]
    fn directional_ue_snapshot_matches_direct() {
        let dc = walker();
        let geom = ArrayGeometry::paper_8x8();
        let ue_geom = ArrayGeometry::ula(4);
        let rx = UeReceiver::Array {
            geom: ue_geom,
            weights: single_beam(&ue_geom, 0.0),
        };
        let w = single_beam(&geom, 10.0);
        let freqs = [-100e6, 0.0, 100e6];
        let mut snap = ChannelSnapshot::new();
        snap.rebuild(&dc, &geom, &rx, 0.3);
        let mut got = Vec::new();
        snap.csi_into(&w, &freqs, &mut got);
        let want = dc.channel_at(0.3).csi(&geom, &w, &rx, &freqs);
        for (g, e) in got.iter().zip(&want) {
            assert_eq!(g.re.to_bits(), e.re.to_bits());
            assert_eq!(g.im.to_bits(), e.im.to_bits());
        }
    }
}
