//! Time-varying channel: scene × trajectory × blockage.
//!
//! [`DynamicChannel`] is the single source of truth the simulator steps:
//! given a time instant it produces the frozen [`GeometricChannel`] snapshot
//! that the PHY then observes through reference signals. Ground truth
//! (true path angles, pose) is exposed for evaluation only — the
//! beam-management algorithms never see it.

use crate::blockage::BlockageProcess;
use crate::cell::SharedSceneCache;
use crate::channel::GeometricChannel;
use crate::environment::Scene;
use crate::mobility::{Pose, Trajectory};
use crate::path::Path;
use mmwave_hotpath::hot_path;
use std::sync::Arc;

/// A fully-specified dynamic link environment.
#[derive(Clone, Debug)]
pub struct DynamicChannel {
    /// Static scene (gNB, walls, carrier).
    pub scene: Scene,
    /// UE trajectory.
    pub trajectory: Trajectory,
    /// Blockage process (indices refer to the path order returned by
    /// [`Scene::paths_to`], which is stable over time: LOS first, then one
    /// entry per wall in scene order).
    pub blockage: BlockageProcess,
    /// Rotation rate of the gNB array itself, degrees/second (the paper's
    /// gantry rotation experiments, Fig. 17a: every path's AoD shifts by
    /// −ω·t in the rotating array's frame). 0 for a fixed gNB.
    pub gnb_rotation_deg_s: f64,
    /// Environment clock offset: motion and blockage schedules are
    /// evaluated at `max(0, t − start_delay_s)`. Lets an experiment give
    /// every scheme a warm-up window (initial beam training) before the
    /// authored events begin — the paper trains *before* each 1-s
    /// measurement (§6).
    pub start_delay_s: f64,
    /// Shared UE-independent ray-trace geometry (the fleet's cell cache).
    /// `None` — the single-link default — recomputes the gNB images per
    /// trace; the cached and uncached trace paths are bit-identical.
    shared: Option<Arc<SharedSceneCache>>,
}

impl DynamicChannel {
    /// Creates a dynamic channel with a fixed gNB.
    pub fn new(scene: Scene, trajectory: Trajectory, blockage: BlockageProcess) -> Self {
        Self {
            scene,
            trajectory,
            blockage,
            gnb_rotation_deg_s: 0.0,
            start_delay_s: 0.0,
            shared: None,
        }
    }

    /// Installs a shared cell-environment cache (built for this channel's
    /// scene). Every subsequent trace is served through the cached gNB
    /// image set — bit-identical to the uncached trace, but the
    /// UE-independent mirror work is done once per cell instead of once
    /// per (UE, pose).
    pub fn set_shared_cache(&mut self, cache: Arc<SharedSceneCache>) {
        assert_eq!(
            cache.len(),
            self.scene.walls.len(),
            "shared cache built for a different scene"
        );
        self.shared = Some(cache);
    }

    /// The installed shared cache, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedSceneCache>> {
        self.shared.as_ref()
    }

    /// Pristine scene trace at `pose`, routed through the shared cell
    /// cache when one is installed. The kernel behind both the per-slot
    /// snapshot rebuild and the reference trace.
    #[hot_path]
    pub fn trace_pose_into(&self, pose: &Pose, out: &mut Vec<Path>) {
        self.scene
            .paths_to_cached_into(self.shared.as_deref(), pose.pos, pose.facing_deg, out);
    }

    /// Delays all authored dynamics (motion, blockage, rotation) by
    /// `delay_s` — the warm-up window.
    pub fn with_start_delay(mut self, delay_s: f64) -> Self {
        self.start_delay_s = delay_s;
        self
    }

    /// Environment-clock time for a simulation time.
    fn env_time(&self, t_s: f64) -> f64 {
        (t_s - self.start_delay_s).max(0.0)
    }

    /// Adds gNB (gantry) rotation.
    pub fn with_gnb_rotation(mut self, rate_deg_s: f64) -> Self {
        self.gnb_rotation_deg_s = rate_deg_s;
        self
    }

    /// UE pose at time `t_s` (ground truth).
    pub fn pose_at(&self, t_s: f64) -> Pose {
        self.trajectory.pose_at(self.env_time(t_s))
    }

    /// Raw path list at time `t_s`, with blockage applied.
    ///
    /// Note on stability: [`Scene::paths_to`] can drop a reflection when the
    /// UE moves past the wall's geometric support. To keep blockage indices
    /// meaningful, paths are matched by provenance (`PathKind`), not list
    /// position: the blockage process indexes the path list of the
    /// *initial* pose.
    pub fn paths_at(&self, t_s: f64) -> Vec<Path> {
        let mut out = Vec::new();
        self.paths_at_into(t_s, &self.reference_paths(), &mut out);
        out
    }

    /// Write-into variant of [`DynamicChannel::paths_at`]: clears `out` and
    /// fills it, reusing the allocation. `reference` must be the (time-
    /// invariant) list from [`DynamicChannel::reference_paths`]; passing it
    /// in lets per-slot callers cache it instead of re-tracing the t = 0
    /// scene on every query.
    #[hot_path]
    pub fn paths_at_into(&self, t_s: f64, reference: &[Path], out: &mut Vec<Path>) {
        let pose = self.pose_at(t_s);
        self.trace_pose_into(&pose, out);
        self.apply_time_effects(t_s, reference, out);
    }

    /// Applies the time-varying effects — blockage attenuation and gNB
    /// gantry rotation — to a *pristine* scene trace for time `t_s` (the
    /// output of [`Scene::paths_to_into`] at the pose of `t_s`). Split out
    /// so per-slot callers that know the pose hasn't moved (static
    /// trajectories) can cache the trace and re-apply only these effects.
    pub fn apply_time_effects(&self, t_s: f64, reference: &[Path], paths: &mut [Path]) {
        let te = self.env_time(t_s);
        for p in paths.iter_mut() {
            if let Some(ref_idx) = reference.iter().position(|r| r.kind == p.kind) {
                p.blockage_db = self.blockage.attenuation_db(ref_idx, te);
            }
            // gNB gantry rotation shifts every AoD in the array frame.
            p.aod_deg -= self.gnb_rotation_deg_s * te;
        }
    }

    /// The path list at t = 0, used as the index space for blockage events
    /// and as "which beams exist" ground truth.
    pub fn reference_paths(&self) -> Vec<Path> {
        let mut out = Vec::new();
        self.reference_paths_into(&mut out);
        out
    }

    /// Write-into variant of [`DynamicChannel::reference_paths`]. The result
    /// is time-invariant, so hot-path callers compute it once and cache it.
    pub fn reference_paths_into(&self, out: &mut Vec<Path>) {
        let pose = self.pose_at(0.0);
        self.trace_pose_into(&pose, out);
    }

    /// Frozen channel snapshot at time `t_s`.
    pub fn channel_at(&self, t_s: f64) -> GeometricChannel {
        GeometricChannel::new(self.paths_at(t_s), self.scene.fc_hz)
    }

    /// Ground-truth AoD (degrees) at `t_s` of the path whose provenance
    /// matches reference-path index `ref_idx`, if it still exists.
    pub fn true_aod_deg(&self, ref_idx: usize, t_s: f64) -> Option<f64> {
        let reference = self.reference_paths();
        let kind = reference.get(ref_idx)?.kind;
        self.paths_at(t_s)
            .iter()
            .find(|p| p.kind == kind)
            .map(|p| p.aod_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockage::BlockageEvent;
    use crate::geom2d::v2;
    use crate::mobility::Pose;
    use mmwave_dsp::units::FC_28GHZ;

    fn base() -> DynamicChannel {
        DynamicChannel::new(
            Scene::conference_room(FC_28GHZ),
            Trajectory::Static {
                pose: Pose {
                    pos: v2(0.0, 7.0),
                    facing_deg: 180.0,
                },
            },
            BlockageProcess::none(),
        )
    }

    #[test]
    fn static_channel_is_time_invariant() {
        let dc = base();
        let a = dc.channel_at(0.0);
        let b = dc.channel_at(0.7);
        assert_eq!(a.paths.len(), b.paths.len());
        for (x, y) in a.paths.iter().zip(&b.paths) {
            assert_eq!(x.aod_deg, y.aod_deg);
            assert_eq!(x.gain, y.gain);
        }
    }

    #[test]
    fn translation_moves_aod_over_time() {
        let mut dc = base();
        dc.trajectory = Trajectory::paper_translation(v2(0.0, 7.0));
        let aod0 = dc.true_aod_deg(0, 0.0).unwrap();
        let aod1 = dc.true_aod_deg(0, 1.0).unwrap();
        assert!(aod0.abs() < 1e-9);
        assert!(aod1 > 10.0, "LOS AoD after 1 s: {aod1}");
    }

    #[test]
    fn per_path_deviations_differ_under_translation() {
        // Fig. 10: each beam of a multi-beam misaligns by a *different*
        // angle under the same UE motion.
        let mut dc = base();
        dc.trajectory = Trajectory::paper_translation(v2(0.0, 7.0));
        let d_los = dc.true_aod_deg(0, 1.0).unwrap() - dc.true_aod_deg(0, 0.0).unwrap();
        // Reference index 1 = left glass wall reflection.
        let d_nlos = dc.true_aod_deg(1, 1.0).unwrap() - dc.true_aod_deg(1, 0.0).unwrap();
        assert!(
            (d_los - d_nlos).abs() > 1.0,
            "LOS Δ {d_los} vs NLOS Δ {d_nlos} should differ"
        );
    }

    #[test]
    fn blockage_applies_by_reference_index() {
        let mut dc = base();
        dc.blockage = BlockageProcess::from_events(vec![BlockageEvent {
            path_idx: 0, // LOS
            start_s: 0.0,
            ramp_s: 0.001,
            depth_db: 25.0,
            hold_s: 1.0,
        }]);
        let ch = dc.channel_at(0.5);
        assert_eq!(ch.paths[0].blockage_db, 25.0);
        assert!(ch.paths[1..].iter().all(|p| p.blockage_db == 0.0));
    }

    #[test]
    fn rotation_changes_aoa_not_aod() {
        let mut dc = base();
        dc.trajectory = Trajectory::paper_rotation(v2(0.0, 7.0));
        let p0 = dc.paths_at(0.0);
        let p1 = dc.paths_at(0.5);
        assert!((p0[0].aod_deg - p1[0].aod_deg).abs() < 1e-9);
        assert!((p0[0].aoa_deg - p1[0].aoa_deg).abs() > 10.0);
    }
}
