//! Property-based tests for the channel substrate.

use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::steering::single_beam;
use mmwave_channel::blockage::BlockageEvent;
use mmwave_channel::channel::{GeometricChannel, UeReceiver};
use mmwave_channel::environment::Scene;
use mmwave_channel::geom2d::{v2, Segment};
use mmwave_channel::path::{Path, PathKind};
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::units::FC_28GHZ;
use proptest::prelude::*;

fn pos() -> impl Strategy<Value = (f64, f64)> {
    ((-3.0..3.0f64), (2.0..9.0f64))
}

proptest! {
    #[test]
    fn mirror_involution((px, py) in pos(), (ax, ay) in pos(), (bx, by) in pos()) {
        prop_assume!(v2(ax, ay).dist(v2(bx, by)) > 0.1);
        let s = Segment::new(v2(ax, ay), v2(bx, by));
        let p = v2(px, py);
        let back = s.mirror(s.mirror(p));
        prop_assert!(back.dist(p) < 1e-9);
    }

    #[test]
    fn mirror_preserves_distance_to_wall((px, py) in pos(), (ax, ay) in pos(), (bx, by) in pos()) {
        prop_assume!(v2(ax, ay).dist(v2(bx, by)) > 0.1);
        let s = Segment::new(v2(ax, ay), v2(bx, by));
        let p = v2(px, py);
        let m = s.mirror(p);
        prop_assert!((s.dist_to_point(p) - s.dist_to_point(m)).abs() < 1e-6);
    }

    #[test]
    fn optimal_power_is_cauchy_schwarz_bound(
        aod1 in -50.0..50.0f64,
        aod2 in -50.0..50.0f64,
        delta in 0.05..1.0f64,
        sigma in 0.0..std::f64::consts::TAU,
        steer in -50.0..50.0f64,
    ) {
        let ch = GeometricChannel::new(
            vec![
                Path::new(aod1, 0.0, Complex64::ONE, 20.0, PathKind::Los),
                Path::new(aod2, 0.0, Complex64::from_polar(delta, sigma), 25.0,
                          PathKind::Reflected { wall: 0 }),
            ],
            FC_28GHZ,
        );
        let g = ArrayGeometry::ula(8);
        let rx = UeReceiver::Omni;
        // No weight vector can beat the MRT bound.
        let w = single_beam(&g, steer);
        let p = ch.received_power(&g, &w, &rx);
        let bound = ch.optimal_power(&g, &rx);
        prop_assert!(p <= bound * (1.0 + 1e-9), "p {p} > bound {bound}");
    }

    #[test]
    fn blockage_event_attenuation_nonnegative_and_bounded(
        start in 0.0..1.0f64, ramp in 1e-4..0.2f64, depth in 0.0..40.0f64,
        hold in 0.0..0.5f64, t in -0.5..3.0f64
    ) {
        let e = BlockageEvent { path_idx: 0, start_s: start, ramp_s: ramp, depth_db: depth, hold_s: hold };
        let a = e.attenuation_db(t);
        prop_assert!(a >= 0.0 && a <= depth + 1e-9);
        // Fully outside the event window → exactly zero.
        prop_assert!(e.attenuation_db(start - 0.01) == 0.0);
        prop_assert!(e.attenuation_db(e.end_s() + 0.01) == 0.0);
    }

    #[test]
    fn scene_paths_los_always_strongest_without_blockage((ux, uy) in pos()) {
        prop_assume!(uy > 3.0);
        let s = Scene::conference_room(FC_28GHZ);
        let paths = s.paths_to(v2(ux, uy), 180.0);
        prop_assume!(!paths.is_empty());
        let los = paths.iter().find(|p| p.is_los()).unwrap();
        for p in paths.iter().filter(|p| !p.is_los()) {
            prop_assert!(p.effective_gain().abs() <= los.effective_gain().abs() + 1e-12);
        }
    }

    #[test]
    fn path_tofs_consistent_with_geometry((ux, uy) in pos()) {
        prop_assume!(uy > 3.0);
        let s = Scene::conference_room(FC_28GHZ);
        let paths = s.paths_to(v2(ux, uy), 180.0);
        let los = paths.iter().find(|p| p.is_los()).unwrap();
        let d = s.gnb.dist(v2(ux, uy));
        prop_assert!((los.tof_ns - d / 0.299_792_458).abs() < 1e-6);
        // Every reflection is longer than LOS.
        for p in paths.iter().filter(|p| !p.is_los()) {
            prop_assert!(p.tof_ns > los.tof_ns);
        }
    }

    #[test]
    fn csi_magnitude_invariant_to_common_phase(
        delta in 0.1..1.0f64, sigma in 0.0..std::f64::consts::TAU, extra_phase in 0.0..std::f64::consts::TAU
    ) {
        // CFO/SFO add a common phase to all paths; |CSI| must not change —
        // this is why the paper estimates from magnitudes only (§3.3).
        let mk = |common: f64| {
            GeometricChannel::new(
                vec![
                    Path::new(0.0, 0.0, Complex64::cis(common), 20.0, PathKind::Los),
                    Path::new(30.0, 0.0, Complex64::from_polar(delta, sigma + common), 25.0,
                              PathKind::Reflected { wall: 0 }),
                ],
                FC_28GHZ,
            )
        };
        let g = ArrayGeometry::ula(8);
        let w = single_beam(&g, 0.0);
        let freqs: Vec<f64> = (0..16).map(|i| i as f64 * 10e6).collect();
        let a = mk(0.0).csi(&g, &w, &UeReceiver::Omni, &freqs);
        let b = mk(extra_phase).csi(&g, &w, &UeReceiver::Omni, &freqs);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.abs() - y.abs()).abs() < 1e-9);
        }
    }
}
