//! Property-based tests for the PHY layer.

use mmwave_dsp::rng::Rng64;
use mmwave_phy::grid::ResourceGrid;
use mmwave_phy::mcs::{shannon_se_db, McsTable};
use mmwave_phy::modulation::Modulation;
use mmwave_phy::numerology::Numerology;
use mmwave_phy::ofdm::{apply_fir_channel, OfdmModem};
use mmwave_phy::refsignal::ProbeBudget;
use proptest::prelude::*;

fn any_modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Qpsk),
        Just(Modulation::Qam16),
        Just(Modulation::Qam64),
        Just(Modulation::Qam256),
    ]
}

proptest! {
    #[test]
    fn qam_round_trip_random_bits(m in any_modulation(), seed in 0u64..1000) {
        let mut rng = Rng64::seed(seed);
        let n_bits = m.bits_per_symbol() * 32;
        let bits: Vec<u8> = (0..n_bits).map(|_| rng.chance(0.5) as u8).collect();
        let syms = m.map_stream(&bits);
        prop_assert_eq!(m.demap_stream(&syms), bits);
    }

    #[test]
    fn qam_symbols_bounded_energy(m in any_modulation(), seed in 0u64..100) {
        let mut rng = Rng64::seed(seed);
        let bits: Vec<u8> = (0..m.bits_per_symbol() * 16).map(|_| rng.chance(0.5) as u8).collect();
        for s in m.map_stream(&bits) {
            // Peak-to-average symbol energy of square QAM is
            // 3(√M−1)/(√M+1) < 3 (corner points of 256-QAM reach ≈2.65).
            prop_assert!(s.norm_sqr() < 3.0);
        }
    }

    #[test]
    fn mcs_se_monotone_and_subshannon(snr1 in -10.0..40.0f64, snr2 in -10.0..40.0f64) {
        let t = McsTable::nr_table();
        let (lo, hi) = if snr1 < snr2 { (snr1, snr2) } else { (snr2, snr1) };
        prop_assert!(t.spectral_efficiency(lo) <= t.spectral_efficiency(hi));
        let se = t.spectral_efficiency(hi);
        if se > 0.0 {
            prop_assert!(se <= shannon_se_db(hi));
        }
    }

    #[test]
    fn grid_frequencies_centered_and_ordered(n_rb in 2usize..300) {
        let g = ResourceGrid { numerology: Numerology::paper_mu3(), n_subcarriers: n_rb * 12 };
        let f = g.all_freqs();
        prop_assert!((f[0] + f[f.len() - 1]).abs() < 1e-3);
        for w in f.windows(2) {
            prop_assert!((w[1] - w[0] - 120e3).abs() < 1e-6);
        }
    }

    #[test]
    fn ofdm_loopback_error_free_within_cp(seed in 0u64..50, delay in 0usize..20) {
        let grid = ResourceGrid { numerology: Numerology::paper_mu3(), n_subcarriers: 120 };
        let modem = OfdmModem::new(grid);
        prop_assume!(delay < modem.cp_len());
        let mut rng = Rng64::seed(seed);
        let m = Modulation::Qpsk;
        let bits: Vec<u8> = (0..grid.n_subcarriers * 2).map(|_| rng.chance(0.5) as u8).collect();
        let syms = m.map_stream(&bits);
        let frame = modem.modulate(&syms, 1);
        let mut taps = vec![mmwave_dsp::complex::Complex64::ZERO; delay + 1];
        taps[delay] = mmwave_dsp::complex::Complex64::ONE;
        let rx = apply_fir_channel(&frame.samples, &taps, 0.0, &mut rng);
        let rx_points = modem.demodulate(&rx, 1);
        let nfft = modem.grid.fft_size();
        let h: Vec<mmwave_dsp::complex::Complex64> = (0..grid.n_subcarriers)
            .map(|k| {
                let offset = k as i64 - (grid.n_subcarriers as i64) / 2;
                let bin = offset.rem_euclid(nfft as i64) as usize;
                mmwave_dsp::complex::Complex64::cis(
                    -2.0 * std::f64::consts::PI * (bin * delay) as f64 / nfft as f64,
                )
            })
            .collect();
        let eq = modem.equalize(&rx_points, &h);
        prop_assert_eq!(m.demap_stream(&eq), bits);
    }

    #[test]
    fn mmreliable_probe_count_linear_in_beams(k in 1usize..8) {
        let probes = ProbeBudget::mmreliable_probes(k);
        if k == 1 {
            prop_assert_eq!(probes, 1);
        } else {
            prop_assert_eq!(probes, 2 * (k - 1) + 1);
        }
        // And always far below an exhaustive 64-beam SSB scan.
        let b = ProbeBudget::paper();
        let csi = mmwave_phy::refsignal::CsiRsConfig::default();
        let ssb = mmwave_phy::refsignal::SsbConfig::default();
        prop_assert!(b.mmreliable_maintenance_s(k, &csi) < b.exhaustive_scan_s(64, &ssb));
    }
}
