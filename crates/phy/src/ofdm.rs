//! CP-OFDM waveform modulation and demodulation.
//!
//! The rest of the system works at CSI level, but the PHY is real: this
//! module generates an actual time-domain CP-OFDM symbol stream over the
//! workspace FFT, passes it through a multipath FIR, and demodulates with
//! one-tap equalization — proving the grid/numerology/modulation stack
//! end-to-end (used by the quickstart example and loopback tests).

use crate::grid::ResourceGrid;
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::fft::{fft_in_place, ifft_in_place};
use mmwave_dsp::rng::Rng64;

/// A modulated OFDM symbol stream plus the grid that produced it.
#[derive(Clone, Debug)]
pub struct OfdmFrame {
    /// Time-domain samples (CP included), concatenated symbols.
    pub samples: Vec<Complex64>,
    /// Subcarriers per symbol actually carrying data.
    pub n_data_sc: usize,
    /// FFT size used.
    pub fft_size: usize,
    /// Cyclic-prefix length in samples.
    pub cp_len: usize,
    /// Number of OFDM symbols.
    pub n_symbols: usize,
}

/// OFDM modulator/demodulator bound to a resource grid.
#[derive(Clone, Debug)]
pub struct OfdmModem {
    /// Frequency-domain layout.
    pub grid: ResourceGrid,
    /// CP length as a fraction of the FFT size (NR normal CP ≈ 7%).
    pub cp_fraction: f64,
}

impl OfdmModem {
    /// Modem on the given grid with NR-like 7% CP.
    pub fn new(grid: ResourceGrid) -> Self {
        Self {
            grid,
            cp_fraction: 0.07,
        }
    }

    /// CP length in samples.
    pub fn cp_len(&self) -> usize {
        (self.grid.fft_size() as f64 * self.cp_fraction).round() as usize
    }

    /// Modulates QAM symbols onto `n_symbols` OFDM symbols. `data` must
    /// contain exactly `n_symbols × n_subcarriers` QAM points.
    pub fn modulate(&self, data: &[Complex64], n_symbols: usize) -> OfdmFrame {
        let n_sc = self.grid.n_subcarriers;
        assert_eq!(data.len(), n_symbols * n_sc, "data size mismatch");
        let nfft = self.grid.fft_size();
        let cp = self.cp_len();
        let mut samples = Vec::with_capacity(n_symbols * (nfft + cp));
        for s in 0..n_symbols {
            let mut spectrum = vec![Complex64::ZERO; nfft];
            // Centered mapping: subcarrier k ↔ FFT bin (k − n_sc/2) mod nfft.
            for k in 0..n_sc {
                let offset = k as i64 - (n_sc as i64) / 2;
                let bin = offset.rem_euclid(nfft as i64) as usize;
                spectrum[bin] = data[s * n_sc + k];
            }
            ifft_in_place(&mut spectrum);
            // Prepend CP.
            samples.extend_from_slice(&spectrum[nfft - cp..]);
            samples.extend_from_slice(&spectrum);
        }
        OfdmFrame {
            samples,
            n_data_sc: n_sc,
            fft_size: nfft,
            cp_len: cp,
            n_symbols,
        }
    }

    /// Demodulates a received sample stream back to per-subcarrier QAM
    /// points (no equalization).
    pub fn demodulate(&self, rx: &[Complex64], n_symbols: usize) -> Vec<Complex64> {
        let nfft = self.grid.fft_size();
        let cp = self.cp_len();
        let n_sc = self.grid.n_subcarriers;
        let sym_len = nfft + cp;
        assert!(rx.len() >= n_symbols * sym_len, "short receive buffer");
        let mut out = Vec::with_capacity(n_symbols * n_sc);
        for s in 0..n_symbols {
            let start = s * sym_len + cp;
            let mut spectrum = rx[start..start + nfft].to_vec();
            fft_in_place(&mut spectrum);
            for k in 0..n_sc {
                let offset = k as i64 - (n_sc as i64) / 2;
                let bin = offset.rem_euclid(nfft as i64) as usize;
                out.push(spectrum[bin]);
            }
        }
        out
    }

    /// One-tap equalization given per-subcarrier channel estimates
    /// (repeated across symbols).
    pub fn equalize(&self, rx_points: &[Complex64], h_est: &[Complex64]) -> Vec<Complex64> {
        let n_sc = self.grid.n_subcarriers;
        assert_eq!(h_est.len(), n_sc, "channel estimate per subcarrier");
        rx_points
            .iter()
            .enumerate()
            .map(|(i, &y)| y / h_est[i % n_sc])
            .collect()
    }
}

/// Applies a sample-spaced FIR channel (with AWGN) to a sample stream —
/// a minimal time-domain propagation model for loopback tests.
pub fn apply_fir_channel(
    tx: &[Complex64],
    taps: &[Complex64],
    noise_pow: f64,
    rng: &mut Rng64,
) -> Vec<Complex64> {
    assert!(!taps.is_empty());
    let mut out = vec![Complex64::ZERO; tx.len()];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (d, &t) in taps.iter().enumerate() {
            if i >= d {
                acc += t * tx[i - d];
            }
        }
        *o = acc
            + if noise_pow > 0.0 {
                rng.awgn(noise_pow)
            } else {
                Complex64::ZERO
            };
    }
    out
}

/// Error vector magnitude between reference and received constellations.
pub fn evm(reference: &[Complex64], received: &[Complex64]) -> f64 {
    assert_eq!(reference.len(), received.len());
    let err: f64 = reference
        .iter()
        .zip(received)
        .map(|(a, b)| (*a - *b).norm_sqr())
        .sum();
    let sig: f64 = reference.iter().map(|v| v.norm_sqr()).sum();
    (err / sig).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::Modulation;
    use crate::numerology::Numerology;

    fn small_grid() -> ResourceGrid {
        ResourceGrid {
            numerology: Numerology::paper_mu3(),
            n_subcarriers: 120,
        }
    }

    fn random_qam(rng: &mut Rng64, n: usize, m: Modulation) -> (Vec<u8>, Vec<Complex64>) {
        let bits: Vec<u8> = (0..n * m.bits_per_symbol())
            .map(|_| rng.chance(0.5) as u8)
            .collect();
        let syms = m.map_stream(&bits);
        (bits, syms)
    }

    #[test]
    fn loopback_ideal_channel() {
        let modem = OfdmModem::new(small_grid());
        let mut rng = Rng64::seed(1);
        let m = Modulation::Qam64;
        let (bits, syms) = random_qam(&mut rng, 120 * 4, m);
        let frame = modem.modulate(&syms, 4);
        let rx = modem.demodulate(&frame.samples, 4);
        let demapped = m.demap_stream(&rx);
        assert_eq!(demapped, bits, "ideal loopback must be error-free");
    }

    #[test]
    fn loopback_through_multipath_with_equalizer() {
        let modem = OfdmModem::new(small_grid());
        let mut rng = Rng64::seed(2);
        let m = Modulation::Qam16;
        let (bits, syms) = random_qam(&mut rng, 120 * 2, m);
        let frame = modem.modulate(&syms, 2);
        // Two-tap channel, delay spread well within the CP.
        let taps = vec![
            Complex64::from_polar(1.0, 0.3),
            Complex64::from_polar(0.4, -1.2),
        ];
        let rx = apply_fir_channel(&frame.samples, &taps, 0.0, &mut rng);
        let rx_points = modem.demodulate(&rx, 2);
        // Perfect CSI: channel frequency response at each subcarrier.
        let nfft = modem.grid.fft_size();
        let h_est: Vec<Complex64> = (0..modem.grid.n_subcarriers)
            .map(|k| {
                let offset = k as i64 - (modem.grid.n_subcarriers as i64) / 2;
                let bin = offset.rem_euclid(nfft as i64) as usize;
                taps.iter()
                    .enumerate()
                    .map(|(d, &t)| {
                        t * Complex64::cis(
                            -2.0 * std::f64::consts::PI * (bin * d) as f64 / nfft as f64,
                        )
                    })
                    .sum()
            })
            .collect();
        let eq = modem.equalize(&rx_points, &h_est);
        assert_eq!(m.demap_stream(&eq), bits, "equalized multipath loopback");
    }

    #[test]
    fn noise_raises_evm_but_qpsk_survives() {
        let modem = OfdmModem::new(small_grid());
        let mut rng = Rng64::seed(3);
        let m = Modulation::Qpsk;
        let (bits, syms) = random_qam(&mut rng, 120, m);
        let frame = modem.modulate(&syms, 1);
        // SNR ≈ 20 dB per sample.
        let sig_pow: f64 =
            frame.samples.iter().map(|v| v.norm_sqr()).sum::<f64>() / frame.samples.len() as f64;
        let rx = apply_fir_channel(&frame.samples, &[Complex64::ONE], sig_pow / 100.0, &mut rng);
        let rx_points = modem.demodulate(&rx, 1);
        let e = evm(&syms, &rx_points);
        assert!(e > 0.01 && e < 0.3, "evm {e}");
        assert_eq!(m.demap_stream(&rx_points), bits);
    }

    #[test]
    fn cp_absorbs_delay_up_to_cp_len() {
        let modem = OfdmModem::new(small_grid());
        let mut rng = Rng64::seed(4);
        let m = Modulation::Qpsk;
        let (bits, syms) = random_qam(&mut rng, 120, m);
        let frame = modem.modulate(&syms, 1);
        // Pure delay channel at the CP limit: a cyclic shift per symbol,
        // equalized by a linear phase.
        let d = modem.cp_len() - 1;
        let mut taps = vec![Complex64::ZERO; d + 1];
        taps[d] = Complex64::ONE;
        let rx = apply_fir_channel(&frame.samples, &taps, 0.0, &mut rng);
        let rx_points = modem.demodulate(&rx, 1);
        let nfft = modem.grid.fft_size();
        let h: Vec<Complex64> = (0..modem.grid.n_subcarriers)
            .map(|k| {
                let offset = k as i64 - (modem.grid.n_subcarriers as i64) / 2;
                let bin = offset.rem_euclid(nfft as i64) as usize;
                Complex64::cis(-2.0 * std::f64::consts::PI * (bin * d) as f64 / nfft as f64)
            })
            .collect();
        let eq = modem.equalize(&rx_points, &h);
        assert_eq!(m.demap_stream(&eq), bits);
    }

    #[test]
    fn evm_zero_for_identical() {
        let v = vec![Complex64::ONE; 8];
        assert_eq!(evm(&v, &v), 0.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn modulate_checks_data_len() {
        let modem = OfdmModem::new(small_grid());
        modem.modulate(&[Complex64::ONE; 10], 1);
    }
}
