//! Channel sounding and estimation — the only window the beam-management
//! layer has onto the channel.
//!
//! A [`ChannelSounder`] turns a frozen channel snapshot plus a transmit
//! beam into a [`ProbeObservation`]: least-squares CSI estimates on the
//! reference-signal comb, corrupted by
//!
//! - per-subcarrier AWGN at the link budget's noise floor, and
//! - an unknown common phase rotation per probe (CFO/SFO residuals — the
//!   impairment that forces the paper's magnitude-only two-probe estimator,
//!   §3.3: "hardware offsets … cause time-varying and sometimes
//!   unpredictable channel phases … The channel magnitude is the one thing
//!   that remains fixed").

use crate::grid::ResourceGrid;
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::weights::BeamWeights;
use mmwave_channel::channel::{ChannelScratch, GeometricChannel, UeReceiver};
use mmwave_channel::linkbudget::LinkBudget;
use mmwave_channel::snapshot::ChannelSnapshot;
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::fft::ifft;
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::{db_from_pow, mw_from_dbm, SPEED_OF_LIGHT};
use mmwave_hotpath::hot_path;

/// One probe's worth of estimated CSI.
#[derive(Clone, Debug)]
pub struct ProbeObservation {
    /// Estimated CSI per sounded subcarrier, in √mW units (so
    /// `|csi|²/noise_power_mw` is the per-subcarrier SNR).
    pub csi: Vec<Complex64>,
    /// Sounded subcarrier frequencies (Hz offsets from carrier).
    pub freqs_hz: Vec<f64>,
    /// Per-subcarrier noise power, mW (known at the receiver).
    pub noise_power_mw: f64,
}

impl ProbeObservation {
    /// An empty observation, suitable as reusable scratch for
    /// [`ChannelSounder::probe_snapshot_into`]-style fillers: the `Vec`
    /// buffers grow to the comb size on first use and are reused after.
    pub fn empty() -> Self {
        Self {
            csi: Vec::new(),
            freqs_hz: Vec::new(),
            noise_power_mw: 0.0,
        }
    }

    /// Mean received power across the comb, mW, de-biased by the noise
    /// floor (floored at 0).
    pub fn mean_power_mw(&self) -> f64 {
        if self.csi.is_empty() {
            return 0.0;
        }
        let raw: f64 = self.csi.iter().map(|v| v.norm_sqr()).sum::<f64>() / self.csi.len() as f64;
        (raw - self.noise_power_mw).max(0.0)
    }

    /// Wideband SNR estimate (linear).
    pub fn snr_linear(&self) -> f64 {
        self.mean_power_mw() / self.noise_power_mw
    }

    /// Wideband SNR estimate, dB (floored at −60).
    pub fn snr_db(&self) -> f64 {
        db_from_pow(self.snr_linear().max(1e-6)).max(-60.0)
    }

    /// Band-limited CIR obtained by inverse-DFT of the sounded comb.
    /// Tap spacing is `1/(n·Δf)` where `Δf` is the comb spacing; the
    /// unambiguous delay range is `1/Δf`.
    pub fn cir(&self) -> Vec<Complex64> {
        ifft(&self.csi)
    }

    /// Frequency step of the sounding comb, Hz.
    // xtask-allow(hot-path-panic): the len < 2 early return guarantees indices 0 and 1 exist
    pub fn comb_spacing_hz(&self) -> f64 {
        if self.freqs_hz.len() < 2 {
            return 0.0;
        }
        self.freqs_hz[1] - self.freqs_hz[0]
    }
}

/// The sounding front end: budget + grid + impairments.
#[derive(Clone, Debug)]
pub struct ChannelSounder {
    /// Link budget (TX power, noise).
    pub budget: LinkBudget,
    /// OFDM grid being sounded.
    pub grid: ResourceGrid,
    /// Sound every `decimation`-th subcarrier (CSI-RS comb density).
    pub decimation: usize,
    /// Apply the CFO/SFO common-phase impairment per probe.
    pub cfo_impairment: bool,
    /// Extra estimation-noise factor (1.0 = thermal only); lets failure-
    /// injection tests degrade estimation quality.
    pub noise_boost: f64,
}

impl ChannelSounder {
    /// The paper's indoor sounder: 400 MHz grid, CSI-RS comb of one
    /// subcarrier per RB (decimation 12), CFO impairment on.
    pub fn paper_indoor() -> Self {
        Self {
            budget: LinkBudget::paper_28ghz(),
            grid: ResourceGrid::paper_400mhz(),
            decimation: 12,
            cfo_impairment: true,
            noise_boost: 1.0,
        }
    }

    /// The outdoor 100 MHz sounder.
    pub fn paper_outdoor() -> Self {
        Self {
            budget: LinkBudget::paper_outdoor_100mhz(),
            grid: ResourceGrid::paper_100mhz(),
            decimation: 12,
            cfo_impairment: true,
            noise_boost: 1.0,
        }
    }

    /// Per-subcarrier noise power in mW after the estimation-noise boost.
    pub fn noise_power_mw(&self) -> f64 {
        // Thermal noise over one subcarrier's bandwidth.
        let per_sc_db = mmwave_dsp::units::thermal_noise_dbm(
            self.grid.numerology.scs_hz(),
            self.budget.noise_figure_db,
        );
        mw_from_dbm(per_sc_db) * self.noise_boost
    }

    /// Sounds the channel under transmit weights `w`, returning the noisy
    /// probe observation. One call = one reference-signal transmission.
    // xtask-allow(hot-path-closure): owned-output variant for one-shot callers; the slot loop uses probe_into with reused scratch
    pub fn probe(
        &self,
        ch: &GeometricChannel,
        geom: &ArrayGeometry,
        w: &BeamWeights,
        rx: &UeReceiver,
        rng: &mut Rng64,
    ) -> ProbeObservation {
        let mut scratch = ChannelScratch::default();
        let mut obs = ProbeObservation {
            csi: Vec::new(),
            freqs_hz: Vec::new(),
            noise_power_mw: 0.0,
        };
        self.probe_into(ch, geom, w, rx, rng, &mut scratch, &mut obs);
        obs
    }

    /// Write-into variant of [`ChannelSounder::probe`]: refreshes `obs` in
    /// place, reusing its buffers plus the channel `scratch`. Draws from
    /// `rng` in the same order as the allocating version (common phasor
    /// first, then one AWGN sample per sounded subcarrier), so fixed-seed
    /// runs are bit-identical through either entry point.
    #[allow(clippy::too_many_arguments)]
    #[hot_path]
    pub fn probe_into(
        &self,
        ch: &GeometricChannel,
        geom: &ArrayGeometry,
        w: &BeamWeights,
        rx: &UeReceiver,
        rng: &mut Rng64,
        scratch: &mut ChannelScratch,
        obs: &mut ProbeObservation,
    ) {
        self.grid
            .sounding_freqs_into(self.decimation, &mut obs.freqs_hz);
        ch.csi_into(geom, w, rx, &obs.freqs_hz, scratch, &mut obs.csi);
        self.corrupt(link_distance_m(ch), rng, obs);
    }

    /// Snapshot-backed probe: reads the true CSI from a per-slot
    /// [`ChannelSnapshot`] (already rebuilt at the probe instant) instead of
    /// re-deriving per-path steering from the raw channel. Bit-identical to
    /// [`ChannelSounder::probe`] on the snapshot's frozen channel.
    #[hot_path]
    pub fn probe_snapshot_into(
        &self,
        snap: &mut ChannelSnapshot,
        w: &BeamWeights,
        rng: &mut Rng64,
        obs: &mut ProbeObservation,
    ) {
        self.grid
            .sounding_freqs_into(self.decimation, &mut obs.freqs_hz);
        snap.csi_into(w, &obs.freqs_hz, &mut obs.csi);
        self.corrupt(link_distance_m(snap.channel()), rng, obs);
    }

    /// The impairment tail shared by every probe entry point: scales the
    /// true CSI in `obs.csi` by the per-subcarrier transmit amplitude and
    /// atmospheric absorption, applies the common CFO phasor, and adds
    /// per-subcarrier AWGN.
    fn corrupt(&self, link_distance_m: f64, rng: &mut Rng64, obs: &mut ProbeObservation) {
        // Per-subcarrier transmit amplitude: total power spread evenly.
        // Transmit power spread evenly over the occupied grid; per-subcarrier
        // SNR then equals the wideband budget SNR (noise scales the same way).
        let tx_mw = mw_from_dbm(self.budget.tx_power_dbm);
        let per_sc_amp = (tx_mw / self.grid.n_subcarriers as f64).sqrt();
        let atmo =
            mmwave_dsp::units::amp_from_db(-self.budget.atmospheric_absorption_db(link_distance_m));
        let common = if self.cfo_impairment {
            rng.random_phasor()
        } else {
            Complex64::ONE
        };
        let noise_mw = self.noise_power_mw();
        for h in obs.csi.iter_mut() {
            *h = common * h.scale(per_sc_amp * atmo) + rng.awgn(noise_mw);
        }
        obs.noise_power_mw = noise_mw;
    }
}

/// Straight-line link distance implied by the earliest path's ToF.
fn link_distance_m(ch: &GeometricChannel) -> f64 {
    ch.paths
        .iter()
        .map(|p| p.tof_ns)
        .fold(f64::INFINITY, f64::min)
        .max(0.0)
        * 1e-9
        * SPEED_OF_LIGHT
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_array::steering::single_beam;
    use mmwave_channel::path::{Path, PathKind};
    use mmwave_dsp::complex::c64;
    use mmwave_dsp::units::{amp_from_db, fspl_db, FC_28GHZ};

    fn los_channel(dist_m: f64) -> GeometricChannel {
        let amp = amp_from_db(-fspl_db(dist_m, FC_28GHZ));
        GeometricChannel::new(
            vec![Path::new(
                0.0,
                0.0,
                c64(amp, 0.0),
                dist_m / SPEED_OF_LIGHT * 1e9,
                PathKind::Los,
            )],
            FC_28GHZ,
        )
    }

    #[test]
    fn probe_snr_matches_link_budget() {
        // 7 m LOS with a 64-element beam → the paper's ~27 dB region.
        let sounder = ChannelSounder::paper_indoor();
        let geom = ArrayGeometry::paper_8x8();
        let w = single_beam(&geom, 0.0);
        let ch = los_channel(7.0);
        let mut rng = Rng64::seed(1);
        let obs = sounder.probe(&ch, &geom, &w, &UeReceiver::Omni, &mut rng);
        let snr = obs.snr_db();
        assert!((snr - 27.0).abs() < 4.0, "snr {snr} dB");
    }

    #[test]
    fn snr_estimate_consistent_across_probes() {
        let sounder = ChannelSounder::paper_indoor();
        let geom = ArrayGeometry::paper_8x8();
        let w = single_beam(&geom, 0.0);
        let ch = los_channel(7.0);
        let mut rng = Rng64::seed(2);
        let snrs: Vec<f64> = (0..20)
            .map(|_| {
                sounder
                    .probe(&ch, &geom, &w, &UeReceiver::Omni, &mut rng)
                    .snr_db()
            })
            .collect();
        let spread = mmwave_dsp::stats::max(&snrs) - mmwave_dsp::stats::min(&snrs);
        assert!(spread < 1.0, "probe-to-probe spread {spread} dB");
    }

    #[test]
    fn cfo_randomizes_phase_but_not_magnitude() {
        let sounder = ChannelSounder::paper_indoor();
        let geom = ArrayGeometry::paper_8x8();
        let w = single_beam(&geom, 0.0);
        let ch = los_channel(7.0);
        let mut rng = Rng64::seed(3);
        let a = sounder.probe(&ch, &geom, &w, &UeReceiver::Omni, &mut rng);
        let b = sounder.probe(&ch, &geom, &w, &UeReceiver::Omni, &mut rng);
        let dphase = (a.csi[0].arg() - b.csi[0].arg()).abs();
        // Phases differ probe-to-probe (almost surely)…
        assert!(dphase > 1e-3, "phases should be unreliable across probes");
        // …magnitude-derived power doesn't.
        assert!((a.snr_db() - b.snr_db()).abs() < 1.0);
    }

    #[test]
    fn disabling_cfo_gives_stable_phase() {
        let mut sounder = ChannelSounder::paper_indoor();
        sounder.cfo_impairment = false;
        sounder.noise_boost = 1e-6; // near-noiseless
        let geom = ArrayGeometry::paper_8x8();
        let w = single_beam(&geom, 0.0);
        let ch = los_channel(7.0);
        let mut rng = Rng64::seed(4);
        let a = sounder.probe(&ch, &geom, &w, &UeReceiver::Omni, &mut rng);
        let b = sounder.probe(&ch, &geom, &w, &UeReceiver::Omni, &mut rng);
        assert!((a.csi[5].arg() - b.csi[5].arg()).abs() < 1e-3);
    }

    #[test]
    fn mean_power_debiases_noise() {
        // With zero channel, the de-biased mean power must sit near zero,
        // not at the noise floor.
        let sounder = ChannelSounder::paper_indoor();
        let geom = ArrayGeometry::paper_8x8();
        let w = single_beam(&geom, 0.0);
        let ch = GeometricChannel::new(Vec::new(), FC_28GHZ);
        let mut rng = Rng64::seed(5);
        let obs = sounder.probe(&ch, &geom, &w, &UeReceiver::Omni, &mut rng);
        assert!(obs.mean_power_mw() < obs.noise_power_mw * 0.3);
    }

    #[test]
    fn cir_peak_at_path_delay() {
        let mut sounder = ChannelSounder::paper_indoor();
        sounder.cfo_impairment = false;
        let geom = ArrayGeometry::paper_8x8();
        let w = single_beam(&geom, 0.0);
        let ch = los_channel(7.0);
        let mut rng = Rng64::seed(6);
        let obs = sounder.probe(&ch, &geom, &w, &UeReceiver::Omni, &mut rng);
        let cir = obs.cir();
        // LOS delay 23.35 ns; tap spacing 1/(264·1.44MHz)=2.63ns → tap ≈ 9.
        let peak = cir
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap()
            .0;
        let tap_s = 1.0 / (obs.comb_spacing_hz() * cir.len() as f64);
        let delay_ns = peak as f64 * tap_s * 1e9;
        assert!(
            (delay_ns - 23.35).abs() < 2.0 * tap_s * 1e9,
            "peak at {delay_ns} ns"
        );
    }

    #[test]
    fn noise_boost_degrades_snr() {
        let geom = ArrayGeometry::paper_8x8();
        let w = single_beam(&geom, 0.0);
        let ch = los_channel(7.0);
        let mut clean = ChannelSounder::paper_indoor();
        clean.noise_boost = 1.0;
        let mut dirty = clean.clone();
        dirty.noise_boost = 100.0;
        let mut rng = Rng64::seed(7);
        let s_clean = clean
            .probe(&ch, &geom, &w, &UeReceiver::Omni, &mut rng)
            .snr_db();
        let s_dirty = dirty
            .probe(&ch, &geom, &w, &UeReceiver::Omni, &mut rng)
            .snr_db();
        assert!(s_clean - s_dirty > 15.0, "{s_clean} vs {s_dirty}");
    }
}
