//! QAM modulation and hard-decision demodulation.
//!
//! NR uses Gray-coded square QAM. We implement QPSK through 256-QAM with
//! unit average symbol energy; the bench OFDM loopback uses these to prove
//! the waveform path end-to-end.

use mmwave_dsp::complex::{c64, Complex64};

/// Modulation orders used by NR data channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Modulation {
    /// 2 bits/symbol.
    Qpsk,
    /// 4 bits/symbol.
    Qam16,
    /// 6 bits/symbol.
    Qam64,
    /// 8 bits/symbol.
    Qam256,
}

impl Modulation {
    /// Bits carried per symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
            Modulation::Qam256 => 8,
        }
    }

    /// Points per I/Q axis.
    fn side(self) -> usize {
        1 << (self.bits_per_symbol() / 2)
    }

    /// Normalization factor so that average symbol energy is 1.
    fn scale(self) -> f64 {
        let m = self.side() as f64;
        // E[|x|²] for PAM levels ±1, ±3, … on each axis = 2(m²−1)/3.
        (2.0 * (m * m - 1.0) / 3.0).sqrt().recip()
    }

    /// Maps `bits_per_symbol` bits (LSB-first within the slice) to a
    /// constellation point. Panics if `bits.len()` is wrong.
    // xtask-allow(hot-path-panic): the entry assert fixes bits.len() to bits_per_symbol, so both half-slices are in bounds
    pub fn map(self, bits: &[u8]) -> Complex64 {
        assert_eq!(
            bits.len(),
            self.bits_per_symbol(),
            "bit-group size mismatch"
        );
        let half = self.bits_per_symbol() / 2;
        let i = gray_to_pam(&bits[..half]);
        let q = gray_to_pam(&bits[half..]);
        c64(i, q) * self.scale()
    }

    /// Hard-decision demap: nearest constellation point's bits.
    pub fn demap(self, sym: Complex64) -> Vec<u8> {
        let half = self.bits_per_symbol() / 2;
        let side = self.side();
        let mut bits = pam_to_gray(sym.re / self.scale(), side, half);
        bits.extend(pam_to_gray(sym.im / self.scale(), side, half));
        bits
    }

    /// Maps a bit stream to symbols (stream length must divide evenly).
    pub fn map_stream(self, bits: &[u8]) -> Vec<Complex64> {
        assert_eq!(
            bits.len() % self.bits_per_symbol(),
            0,
            "stream length mismatch"
        );
        bits.chunks(self.bits_per_symbol())
            .map(|c| self.map(c))
            .collect()
    }

    /// Demaps a symbol stream to bits.
    pub fn demap_stream(self, syms: &[Complex64]) -> Vec<u8> {
        syms.iter().flat_map(|&s| self.demap(s)).collect()
    }
}

/// Gray-coded bits (LSB-first) → PAM level (±1, ±3, …).
fn gray_to_pam(bits: &[u8]) -> f64 {
    // Convert Gray to binary index.
    let mut gray = 0usize;
    for (i, &b) in bits.iter().enumerate() {
        gray |= (b as usize & 1) << i;
    }
    let mut bin = gray;
    let mut shift = gray >> 1;
    while shift != 0 {
        bin ^= shift;
        shift >>= 1;
    }
    let m = 1usize << bits.len();
    2.0 * bin as f64 - (m as f64 - 1.0)
}

/// PAM level → Gray-coded bits (LSB-first), nearest-neighbor decision.
fn pam_to_gray(level: f64, side: usize, n_bits: usize) -> Vec<u8> {
    let idx =
        (((level + (side as f64 - 1.0)) / 2.0).round() as i64).clamp(0, side as i64 - 1) as usize;
    let gray = idx ^ (idx >> 1);
    (0..n_bits).map(|i| ((gray >> i) & 1) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::rng::Rng64;

    const ALL: [Modulation; 4] = [
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
        Modulation::Qam256,
    ];

    #[test]
    fn unit_average_energy() {
        for m in ALL {
            let n = m.bits_per_symbol();
            let mut energy = 0.0;
            let count = 1usize << n;
            for v in 0..count {
                let bits: Vec<u8> = (0..n).map(|i| ((v >> i) & 1) as u8).collect();
                energy += m.map(&bits).norm_sqr();
            }
            let avg = energy / count as f64;
            assert!((avg - 1.0).abs() < 1e-12, "{m:?}: avg energy {avg}");
        }
    }

    #[test]
    fn map_demap_round_trip_all_points() {
        for m in ALL {
            let n = m.bits_per_symbol();
            for v in 0..(1usize << n) {
                let bits: Vec<u8> = (0..n).map(|i| ((v >> i) & 1) as u8).collect();
                let sym = m.map(&bits);
                assert_eq!(m.demap(sym), bits, "{m:?} point {v}");
            }
        }
    }

    #[test]
    fn demap_survives_small_noise() {
        let mut rng = Rng64::seed(5);
        for m in ALL {
            let n = m.bits_per_symbol();
            // Noise well inside half the minimum distance.
            let side = 1 << (n / 2);
            let dmin = 2.0 / ((2.0 * ((side * side) as f64 - 1.0) / 3.0).sqrt());
            for _ in 0..100 {
                let bits: Vec<u8> = (0..n).map(|_| rng.chance(0.5) as u8).collect();
                let sym = m.map(&bits) + rng.complex_normal().scale(dmin * 0.1);
                assert_eq!(m.demap(sym), bits);
            }
        }
    }

    #[test]
    fn gray_neighbors_differ_by_one_bit() {
        // Adjacent PAM levels must differ in exactly one bit (Gray property)
        // — this is what makes QAM BER ≈ bit errors ∝ symbol errors.
        for n_bits in [1usize, 2, 3, 4] {
            let side = 1usize << n_bits;
            for idx in 0..side - 1 {
                let a = idx ^ (idx >> 1);
                let b = (idx + 1) ^ ((idx + 1) >> 1);
                assert_eq!((a ^ b).count_ones(), 1);
            }
        }
    }

    #[test]
    fn stream_round_trip() {
        let mut rng = Rng64::seed(6);
        let m = Modulation::Qam64;
        let bits: Vec<u8> = (0..600).map(|_| rng.chance(0.5) as u8).collect();
        let syms = m.map_stream(&bits);
        assert_eq!(syms.len(), 100);
        assert_eq!(m.demap_stream(&syms), bits);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn map_checks_length() {
        Modulation::Qam16.map(&[0, 1]);
    }
}
