//! # mmwave-phy
//!
//! A 5G-NR-flavoured OFDM physical layer, standing in for the paper's FPGA
//! baseband (§5.2): 400 MHz / 100 MHz waveforms at numerology 3 (120 kHz
//! subcarrier spacing), SSB-based beam training probes, CSI-RS maintenance
//! probes, LS channel estimation, and NR modulation-and-coding throughput
//! mapping.
//!
//! Everything the beam-management layer learns about the world flows
//! through [`chanest::ProbeObservation`]s produced here, complete with the
//! impairments that shaped the paper's algorithm design: AWGN on every
//! estimate and an unknown common phase per probe (CFO/SFO — the reason
//! mmReliable estimates multi-beam parameters from channel *magnitudes*
//! only, §3.3).

#![warn(missing_docs)]
pub mod chanest;
pub mod grid;
pub mod mcs;
pub mod modulation;
pub mod numerology;
pub mod ofdm;
pub mod refsignal;

pub use chanest::{ChannelSounder, ProbeObservation};
pub use grid::ResourceGrid;
pub use mcs::McsTable;
pub use numerology::Numerology;
pub use refsignal::{CsiRsConfig, ProbeBudget, SsbConfig};
