//! Reference-signal scheduling and probing-overhead accounting.
//!
//! Two NR reference signals matter to beam management (§5.2, Fig. 2):
//!
//! - **SSB** (Synchronization Signal Block): the beam-training probe. A
//!   full sweep probes one beam per SSB; an SSB occupies 4 slots (0.5 ms)
//!   in our accounting (matching §6.2) and bursts repeat every 20 ms by
//!   default.
//! - **CSI-RS**: the maintenance probe. One CSI-RS occupies one slot
//!   (0.125 ms at 120 kHz SCS) and can be scheduled every 0.5–80 ms.
//!
//! [`ProbeBudget`] reproduces the paper's Fig. 18d overhead comparison:
//! a vanilla-NR re-scan needs probes proportional to (at best, with
//! logarithmic search) `log₂ N` SSBs, while mmReliable's maintenance needs
//! `2(K−1)+1` CSI-RS probes regardless of array size.

use crate::numerology::Numerology;

/// SSB (beam-training) configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SsbConfig {
    /// Burst periodicity, seconds (NR default 20 ms).
    pub period_s: f64,
    /// Slots consumed per SSB probe (paper accounting: 4 slots = 0.5 ms).
    pub slots_per_ssb: usize,
}

impl Default for SsbConfig {
    fn default() -> Self {
        Self {
            period_s: 20e-3,
            slots_per_ssb: 4,
        }
    }
}

/// CSI-RS (beam-maintenance) configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CsiRsConfig {
    /// Probe periodicity, seconds (0.5 ms – 80 ms allowed by NR).
    pub period_s: f64,
    /// Slots consumed per probe (one CSI-RS = 1 slot, §6.2).
    pub slots_per_probe: usize,
}

impl Default for CsiRsConfig {
    fn default() -> Self {
        Self {
            period_s: 20e-3,
            slots_per_probe: 1,
        }
    }
}

impl CsiRsConfig {
    /// Validates the periodicity against NR's allowed range.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.5e-3..=80e-3).contains(&self.period_s) {
            return Err(format!(
                "CSI-RS period {} ms outside NR's 0.5–80 ms",
                self.period_s * 1e3
            ));
        }
        Ok(())
    }
}

/// Probing-overhead accounting for one beam-management scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeBudget {
    /// Numerology (slot duration).
    pub numerology: Numerology,
}

impl ProbeBudget {
    /// Creates a budget at the paper's numerology.
    pub fn paper() -> Self {
        Self {
            numerology: Numerology::paper_mu3(),
        }
    }

    /// Slot duration, seconds.
    fn slot_s(&self) -> f64 {
        self.numerology.slot_duration_s()
    }

    /// Airtime of a full exhaustive SSB sweep over `n_beams` directions.
    pub fn exhaustive_scan_s(&self, n_beams: usize, ssb: &SsbConfig) -> f64 {
        n_beams as f64 * ssb.slots_per_ssb as f64 * self.slot_s()
    }

    /// Airtime of the best-known fast training (probes ∝ `2·log₂ N`,
    /// Hassanieh et al.) for an `n_antennas` base station — the
    /// "vanilla 5G NR" bar of Fig. 18d.
    pub fn nr_fast_scan_s(&self, n_antennas: usize, ssb: &SsbConfig) -> f64 {
        assert!(n_antennas >= 2, "need at least 2 antennas");
        let probes = 2.0 * (n_antennas as f64).log2().ceil();
        probes * ssb.slots_per_ssb as f64 * self.slot_s()
    }

    /// Number of CSI-RS probes one mmReliable maintenance round needs for a
    /// `k`-beam multi-beam: `2(K−1)` for (δ, σ) re-estimation plus one for
    /// motion-direction disambiguation (§4.2, §6.2).
    pub fn mmreliable_probes(k_beams: usize) -> usize {
        assert!(k_beams >= 1);
        if k_beams == 1 {
            1
        } else {
            2 * (k_beams - 1) + 1
        }
    }

    /// Airtime of one mmReliable maintenance round for `k` beams —
    /// independent of array size (the mmReliable bars of Fig. 18d).
    pub fn mmreliable_maintenance_s(&self, k_beams: usize, csi_rs: &CsiRsConfig) -> f64 {
        Self::mmreliable_probes(k_beams) as f64 * csi_rs.slots_per_probe as f64 * self.slot_s()
    }

    /// Fractional airtime overhead of a probing pattern that spends
    /// `probe_airtime_s` every `period_s`.
    pub fn overhead_fraction(probe_airtime_s: f64, period_s: f64) -> f64 {
        (probe_airtime_s / period_s).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig18d_nr_numbers() {
        // "The 5G NR probing overhead for eight antennas base station is
        //  3 ms, which increases to 6 ms for 64 antennas."
        let b = ProbeBudget::paper();
        let ssb = SsbConfig::default();
        assert!((b.nr_fast_scan_s(8, &ssb) - 3e-3).abs() < 1e-9);
        assert!((b.nr_fast_scan_s(64, &ssb) - 6e-3).abs() < 1e-9);
    }

    #[test]
    fn paper_fig18d_mmreliable_numbers() {
        // "the overhead of mmReliable remains as low as 0.4 ms for 2-beam &
        //  0.6 ms for 3-beam cases independent of the number of antennas"
        // (3 probes ×0.125 ms = 0.375 ms; 5 ×0.125 = 0.625 ms — the paper
        //  rounds to 0.4/0.6).
        let b = ProbeBudget::paper();
        let csi = CsiRsConfig::default();
        assert_eq!(ProbeBudget::mmreliable_probes(2), 3);
        assert_eq!(ProbeBudget::mmreliable_probes(3), 5);
        assert!((b.mmreliable_maintenance_s(2, &csi) - 0.375e-3).abs() < 1e-9);
        assert!((b.mmreliable_maintenance_s(3, &csi) - 0.625e-3).abs() < 1e-9);
    }

    #[test]
    fn mmreliable_overhead_flat_in_antennas() {
        // The whole point of Fig. 18d: NR grows with N, mmReliable doesn't.
        let b = ProbeBudget::paper();
        let ssb = SsbConfig::default();
        let csi = CsiRsConfig::default();
        assert!(b.nr_fast_scan_s(64, &ssb) > b.nr_fast_scan_s(8, &ssb));
        let m8 = b.mmreliable_maintenance_s(2, &csi);
        let m64 = b.mmreliable_maintenance_s(2, &csi);
        assert_eq!(m8, m64);
        assert!(m64 < b.nr_fast_scan_s(8, &ssb));
    }

    #[test]
    fn exhaustive_scan_cost() {
        // §2.2: "a beam-training phase could take up to 5 ms to probe 64
        //  beam directions" — 64 SSBs at 4 slots each would be 32 ms; the
        //  5 ms figure assumes time-multiplexed SSBs within bursts. Check
        //  the per-beam slot math instead: 10 beams = 5 ms at 4 slots.
        let b = ProbeBudget::paper();
        let ssb = SsbConfig::default();
        assert!((b.exhaustive_scan_s(10, &ssb) - 5e-3).abs() < 1e-9);
    }

    #[test]
    fn csi_rs_overhead_is_tiny() {
        // §5.2: one CSI-RS every 20 ms ⇒ < 0.7% airtime even counting the
        // full slot (the paper's 0.04% counts only the symbol).
        let b = ProbeBudget::paper();
        let csi = CsiRsConfig::default();
        let frac = ProbeBudget::overhead_fraction(
            csi.slots_per_probe as f64 * b.numerology.slot_duration_s(),
            csi.period_s,
        );
        assert!(frac < 0.007, "CSI-RS overhead {frac}");
    }

    #[test]
    fn csi_rs_period_validation() {
        assert!(CsiRsConfig {
            period_s: 20e-3,
            slots_per_probe: 1
        }
        .validate()
        .is_ok());
        assert!(CsiRsConfig {
            period_s: 0.1e-3,
            slots_per_probe: 1
        }
        .validate()
        .is_err());
        assert!(CsiRsConfig {
            period_s: 100e-3,
            slots_per_probe: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn single_beam_maintenance_needs_one_probe() {
        assert_eq!(ProbeBudget::mmreliable_probes(1), 1);
    }

    #[test]
    fn overhead_fraction_clamped() {
        assert_eq!(ProbeBudget::overhead_fraction(2.0, 1.0), 1.0);
        assert_eq!(ProbeBudget::overhead_fraction(0.0, 1.0), 0.0);
    }
}
