//! OFDM resource grid: subcarrier layout and sounding decimation.
//!
//! FR2 carriers at 400 MHz use 264 resource blocks = 3168 subcarriers at
//! 120 kHz (≈380 MHz occupied). Reference signals occupy only a subset of
//! subcarriers (CSI-RS density ≤ 1 per RB), so the sounder works on a
//! decimated comb of the grid — [`ResourceGrid::sounding_freqs`].

use crate::numerology::Numerology;
use mmwave_hotpath::hot_path;

/// An OFDM carrier's frequency-domain layout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResourceGrid {
    /// Numerology.
    pub numerology: Numerology,
    /// Number of occupied subcarriers.
    pub n_subcarriers: usize,
}

impl ResourceGrid {
    /// The paper's 400 MHz FR2 carrier: 264 RB × 12 = 3168 subcarriers.
    pub fn paper_400mhz() -> Self {
        Self {
            numerology: Numerology::paper_mu3(),
            n_subcarriers: 264 * 12,
        }
    }

    /// The outdoor 100 MHz carrier: 66 RB × 12 = 792 subcarriers.
    pub fn paper_100mhz() -> Self {
        Self {
            numerology: Numerology::paper_mu3(),
            n_subcarriers: 66 * 12,
        }
    }

    /// Occupied bandwidth, Hz.
    pub fn occupied_bw_hz(&self) -> f64 {
        self.n_subcarriers as f64 * self.numerology.scs_hz()
    }

    /// Baseband frequency offset of subcarrier `k` (0-based), Hz; the grid
    /// is centered on the carrier.
    pub fn subcarrier_freq_hz(&self, k: usize) -> f64 {
        assert!(k < self.n_subcarriers, "subcarrier index out of range");
        (k as f64 - (self.n_subcarriers as f64 - 1.0) / 2.0) * self.numerology.scs_hz()
    }

    /// All subcarrier frequencies (Hz offsets from carrier).
    pub fn all_freqs(&self) -> Vec<f64> {
        (0..self.n_subcarriers)
            .map(|k| self.subcarrier_freq_hz(k))
            .collect()
    }

    /// Frequencies of every `decimation`-th subcarrier — the comb a
    /// reference signal actually sounds. Panics if `decimation == 0`.
    pub fn sounding_freqs(&self, decimation: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.sounding_freqs_into(decimation, &mut out);
        out
    }

    /// Write-into variant of [`ResourceGrid::sounding_freqs`]: clears `out`
    /// and fills it, reusing the allocation. The grid is immutable in a run,
    /// so hot-path callers compute the comb once and keep it.
    #[hot_path]
    pub fn sounding_freqs_into(&self, decimation: usize, out: &mut Vec<f64>) {
        assert!(decimation > 0, "decimation must be ≥ 1");
        out.clear();
        out.extend(
            (0..self.n_subcarriers)
                .step_by(decimation)
                .map(|k| self.subcarrier_freq_hz(k)),
        );
    }

    /// FFT size that would carry this grid (next power of two).
    pub fn fft_size(&self) -> usize {
        self.n_subcarriers.next_power_of_two()
    }

    /// Sample rate of the IFFT output, Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.fft_size() as f64 * self.numerology.scs_hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_dimensions() {
        let g = ResourceGrid::paper_400mhz();
        assert_eq!(g.n_subcarriers, 3168);
        // ≈ 380 MHz occupied.
        assert!((g.occupied_bw_hz() - 380.16e6).abs() < 1e3);
        assert_eq!(g.fft_size(), 4096);
        assert!((g.sample_rate_hz() - 491.52e6).abs() < 1.0);
    }

    #[test]
    fn grid_is_centered() {
        let g = ResourceGrid::paper_100mhz();
        let lo = g.subcarrier_freq_hz(0);
        let hi = g.subcarrier_freq_hz(g.n_subcarriers - 1);
        assert!((lo + hi).abs() < 1e-6, "grid must be symmetric: {lo} {hi}");
        assert!((hi - lo - (g.n_subcarriers - 1) as f64 * 120e3).abs() < 1e-6);
    }

    #[test]
    fn sounding_comb() {
        let g = ResourceGrid::paper_400mhz();
        let comb = g.sounding_freqs(12);
        assert_eq!(comb.len(), 264);
        assert!((comb[1] - comb[0] - 12.0 * 120e3).abs() < 1e-6);
        assert_eq!(g.sounding_freqs(1).len(), 3168);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subcarrier_bounds() {
        ResourceGrid::paper_100mhz().subcarrier_freq_hz(792);
    }
}
