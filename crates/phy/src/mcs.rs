//! Modulation-and-coding (MCS) selection and throughput mapping.
//!
//! An NR link adapts its spectral efficiency to SNR. We use a CQI-style
//! table (modulation × code rate → spectral efficiency) with switching
//! thresholds placed a fixed implementation gap below Shannon capacity.
//! Below the lowest entry the link is in **outage** — the paper uses a
//! 6 dB SNR decode threshold (§6.1, Fig. 16) and we adopt the same.

use crate::modulation::Modulation;
use mmwave_dsp::units::pow_from_db;

/// One MCS table entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McsEntry {
    /// Modulation order.
    pub modulation: Modulation,
    /// Code rate (×1024, NR convention).
    pub code_rate_x1024: u32,
    /// Minimum SNR (dB) at which this entry is decodable.
    pub min_snr_db: f64,
}

impl McsEntry {
    /// Spectral efficiency, bits/s/Hz.
    pub fn spectral_efficiency(&self) -> f64 {
        self.modulation.bits_per_symbol() as f64 * self.code_rate_x1024 as f64 / 1024.0
    }
}

/// An MCS table ordered by increasing spectral efficiency.
#[derive(Clone, Debug)]
pub struct McsTable {
    entries: Vec<McsEntry>,
    /// SNR below `entries[0].min_snr_db` ⇒ outage.
    outage_snr_db: f64,
}

impl McsTable {
    /// A 15-level CQI-like table. The lowest decodable entry sits at the
    /// paper's 6 dB outage threshold; thresholds above follow Shannon with
    /// a ~3 dB implementation gap.
    pub fn nr_table() -> Self {
        use Modulation::*;
        let raw: [(Modulation, u32); 12] = [
            (Qpsk, 308),
            (Qpsk, 449),
            (Qpsk, 602),
            (Qam16, 378),
            (Qam16, 490),
            (Qam16, 616),
            (Qam64, 466),
            (Qam64, 567),
            (Qam64, 666),
            (Qam64, 772),
            (Qam256, 711),
            (Qam256, 797),
        ];
        // Shannon-shaped thresholds, shifted so the lowest MCS becomes
        // decodable exactly at the paper's 6 dB outage SNR. The resulting
        // implementation gap (≈6–9 dB) is realistic for FR2 hardware.
        let shannon_db = |se: f64| 10.0 * (2f64.powf(se) - 1.0).log10();
        let min_raw = shannon_db(raw[0].0.bits_per_symbol() as f64 * raw[0].1 as f64 / 1024.0);
        let shift = 6.0 - min_raw;
        let entries: Vec<McsEntry> = raw
            .iter()
            .map(|&(m, r)| {
                let se = m.bits_per_symbol() as f64 * r as f64 / 1024.0;
                McsEntry {
                    modulation: m,
                    code_rate_x1024: r,
                    min_snr_db: shannon_db(se) + shift,
                }
            })
            .collect();
        Self {
            outage_snr_db: 6.0,
            entries,
        }
    }

    /// Entries, lowest SE first.
    pub fn entries(&self) -> &[McsEntry] {
        &self.entries
    }

    /// The SNR (dB) below which the link is in outage.
    pub fn outage_snr_db(&self) -> f64 {
        self.outage_snr_db
    }

    /// Selects the highest decodable entry for `snr_db`; `None` = outage.
    pub fn select(&self, snr_db: f64) -> Option<&McsEntry> {
        self.entries.iter().rev().find(|e| snr_db >= e.min_snr_db)
    }

    /// Spectral efficiency achieved at `snr_db` (0 in outage), bits/s/Hz.
    pub fn spectral_efficiency(&self, snr_db: f64) -> f64 {
        self.select(snr_db)
            .map(|e| e.spectral_efficiency())
            .unwrap_or(0.0)
    }

    /// Link throughput in bits/s at `snr_db` over `bandwidth_hz`, after
    /// subtracting a fractional protocol `overhead` (0–1).
    pub fn throughput_bps(&self, snr_db: f64, bandwidth_hz: f64, overhead: f64) -> f64 {
        assert!((0.0..=1.0).contains(&overhead), "overhead is a fraction");
        self.spectral_efficiency(snr_db) * bandwidth_hz * (1.0 - overhead)
    }

    /// True when `snr_db` is below the decode threshold.
    pub fn is_outage(&self, snr_db: f64) -> bool {
        snr_db < self.outage_snr_db
    }
}

/// Shannon-bound sanity helper: capacity in bits/s/Hz at `snr_db`.
pub fn shannon_se_db(snr_db: f64) -> f64 {
    (1.0 + pow_from_db(snr_db)).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_monotone() {
        let t = McsTable::nr_table();
        let es = t.entries();
        for w in es.windows(2) {
            assert!(w[1].spectral_efficiency() > w[0].spectral_efficiency());
            assert!(w[1].min_snr_db > w[0].min_snr_db);
        }
    }

    #[test]
    fn outage_below_six_db() {
        let t = McsTable::nr_table();
        assert!(t.is_outage(5.9));
        assert!(!t.is_outage(6.0));
        assert!(t.select(5.0).is_none());
        assert_eq!(t.spectral_efficiency(3.0), 0.0);
        assert!(t.select(6.0).is_some());
    }

    #[test]
    fn se_below_shannon() {
        let t = McsTable::nr_table();
        for snr_db in [6.0, 10.0, 15.0, 20.0, 27.0, 35.0] {
            let se = t.spectral_efficiency(snr_db);
            assert!(
                se < shannon_se_db(snr_db),
                "SE {se} ≥ Shannon at {snr_db} dB"
            );
            assert!(se > 0.0);
        }
    }

    #[test]
    fn higher_snr_never_lowers_se() {
        let t = McsTable::nr_table();
        let mut prev = 0.0;
        let mut snr = 0.0;
        while snr < 40.0 {
            let se = t.spectral_efficiency(snr);
            assert!(se >= prev);
            prev = se;
            snr += 0.25;
        }
    }

    #[test]
    fn paper_scale_throughput() {
        // Paper §6.1 Fig. 17c: ~600 Mbps on the 400 MHz link at healthy SNR
        // → SE ≈ 1.5 bits/s/Hz region at ~12–14 dB SNR.
        let t = McsTable::nr_table();
        let tput = t.throughput_bps(13.0, 400e6, 0.01);
        assert!(
            (0.5e9..1.5e9).contains(&tput),
            "throughput at 13 dB: {} Mbps",
            tput / 1e6
        );
    }

    #[test]
    fn top_mcs_reached_at_high_snr() {
        let t = McsTable::nr_table();
        let top = t.select(40.0).unwrap();
        assert_eq!(top.modulation, Modulation::Qam256);
        assert!(top.spectral_efficiency() > 6.0);
    }

    #[test]
    fn overhead_scales_throughput() {
        let t = McsTable::nr_table();
        let full = t.throughput_bps(20.0, 100e6, 0.0);
        let half = t.throughput_bps(20.0, 100e6, 0.5);
        assert!((half * 2.0 - full).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn overhead_must_be_fraction() {
        McsTable::nr_table().throughput_bps(20.0, 1e6, 1.5);
    }
}
