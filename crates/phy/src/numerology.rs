//! 5G NR numerology and frame timing.
//!
//! NR scales its OFDM parameters by `μ`: subcarrier spacing `15·2^μ` kHz,
//! slot duration `1/2^μ` ms, 14 symbols per slot. The paper's testbed runs
//! FR2 numerology 3: 120 kHz SCS, 0.125 ms slots, 8.93 µs symbols (§5.2).

/// An NR numerology (μ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Numerology {
    /// The μ exponent (0–4 in NR; FR2 uses 2–3).
    pub mu: u8,
}

impl Numerology {
    /// Creates a numerology. Panics for μ > 4 (not defined by NR).
    pub fn new(mu: u8) -> Self {
        assert!(mu <= 4, "NR defines μ = 0..4");
        Self { mu }
    }

    /// The paper's numerology: μ = 3 (120 kHz SCS).
    pub fn paper_mu3() -> Self {
        Self::new(3)
    }

    /// Subcarrier spacing, Hz.
    pub fn scs_hz(&self) -> f64 {
        15_000.0 * (1u32 << self.mu) as f64
    }

    /// Slot duration, seconds (14 OFDM symbols).
    pub fn slot_duration_s(&self) -> f64 {
        1e-3 / (1u32 << self.mu) as f64
    }

    /// Slots per 10 ms radio frame.
    pub fn slots_per_frame(&self) -> usize {
        10 * (1usize << self.mu)
    }

    /// OFDM symbols per slot (normal cyclic prefix).
    pub fn symbols_per_slot(&self) -> usize {
        14
    }

    /// Average OFDM symbol duration including cyclic prefix, seconds.
    pub fn symbol_duration_s(&self) -> f64 {
        self.slot_duration_s() / self.symbols_per_slot() as f64
    }

    /// Useful (FFT) symbol duration, seconds — `1/SCS`.
    pub fn useful_symbol_s(&self) -> f64 {
        1.0 / self.scs_hz()
    }

    /// Nominal cyclic-prefix length, seconds.
    pub fn cp_s(&self) -> f64 {
        self.symbol_duration_s() - self.useful_symbol_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu3_matches_paper() {
        let n = Numerology::paper_mu3();
        assert_eq!(n.scs_hz(), 120_000.0);
        assert!((n.slot_duration_s() - 0.125e-3).abs() < 1e-12);
        // "8.93 µs @ 120 kHz" (§5.2)
        assert!((n.symbol_duration_s() - 8.93e-6).abs() < 0.02e-6);
        assert_eq!(n.slots_per_frame(), 80);
    }

    #[test]
    fn mu0_is_lte_like() {
        let n = Numerology::new(0);
        assert_eq!(n.scs_hz(), 15_000.0);
        assert!((n.slot_duration_s() - 1e-3).abs() < 1e-12);
        assert_eq!(n.slots_per_frame(), 10);
    }

    #[test]
    fn cp_positive_and_small() {
        for mu in 0..=4 {
            let n = Numerology::new(mu);
            assert!(n.cp_s() > 0.0);
            assert!(n.cp_s() < n.useful_symbol_s());
        }
    }

    #[test]
    #[should_panic(expected = "0..4")]
    fn rejects_big_mu() {
        Numerology::new(7);
    }
}
