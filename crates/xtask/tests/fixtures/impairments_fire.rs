// Fixture: determinism and hot-path violations as they would look in the
// hardware-impairment layer. Linted at the virtual path
// crates/sim/src/impairments.rs — never compiled.
use mmwave_hotpath::hot_path;
use std::collections::HashMap;
use std::time::Instant;

pub struct BadImpairedFrontEnd {
    stage_draws: HashMap<u32, u64>,
}

impl BadImpairedFrontEnd {
    // Wall-clock seeding breaks the per-stage salted-seed contract.
    pub fn corrupt_probe(&mut self) -> u64 {
        let t = Instant::now();
        self.stage_draws.insert(0, 1);
        t.elapsed().as_nanos() as u64
    }
}

// A per-slot stage that allocates violates the steady-state contract.
#[hot_path]
pub fn impair_weights(w: &mut [f64]) -> f64 {
    let scratch: Vec<f64> = w.to_vec();
    scratch.iter().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 1);
        assert_eq!(m.len(), 1);
    }
}
