// Fixture: the fleet scheduler's sanctioned idioms — StopWatch for
// latency-only wall time, order-preserving Vecs, intents queued through
// the handler's Io, reuse inside #[hot_path] kernels. Linted at the
// virtual path crates/sim/src/fleet.rs — never compiled.
use mmreliable::{Intent, IntentKind, Io, UeId};
use mmwave_hotpath::hot_path;
use mmwave_telemetry::{LatencyHist, StopWatch};

pub struct GoodFleetShard {
    // UE order is insertion order: deterministic across processes.
    lanes: Vec<(u32, f64)>,
    hist: LatencyHist,
}

impl GoodFleetShard {
    // Wall time flows only into the latency histogram (digest-excluded),
    // through the sanctioned StopWatch wrapper.
    pub fn timed_pass(&mut self, io: &mut dyn Io) {
        let watch = StopWatch::start();
        for (ue, snr) in self.lanes.iter() {
            // Lifecycle state is written by the StateHandler alone: the
            // fleet loop only queues typed intents.
            io.submit(Intent {
                ue: UeId(*ue),
                t_s: 0.0,
                kind: IntentKind::SnrReport {
                    snr_db: *snr,
                    ref_db: *snr,
                    unexplained_drop: false,
                },
            });
        }
        self.hist.record(watch.elapsed_ns());
    }
}

// The per-pass kernel mutates preallocated state only.
#[hot_path]
pub fn step_pass_cleanly(snrs: &mut [f64], acc: &mut f64) {
    for s in snrs.iter() {
        *acc += *s;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixture_is_illustrative_only() {
        assert!(true);
    }
}
