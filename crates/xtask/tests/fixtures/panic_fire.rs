//! Fires `hot-path-panic`: an unmarked function in the hot closure
//! unwraps an Option and indexes a slice with no `debug_assert` in sight.

#[hot_path]
pub fn tick(xs: &mut [f64]) {
    step(xs);
}

fn step(xs: &mut [f64]) {
    let first = xs.first().copied().unwrap();
    xs[0] = first + 1.0;
}
