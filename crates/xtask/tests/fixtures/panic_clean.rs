//! Clean twin of `panic_fire.rs`: the closure function states its bounds
//! with `debug_assert!` (the sanctioned idiom — release builds compile it
//! out, debug builds enforce the invariant), and holds the Option
//! invariant by `match` instead of unwrapping.

#[hot_path]
pub fn tick(xs: &mut [f64]) {
    step(xs);
}

fn step(xs: &mut [f64]) {
    debug_assert!(!xs.is_empty());
    let first = match xs.first() {
        Some(&v) => v,
        None => return,
    };
    xs[0] = first + 1.0;
}
