// Fixture: properly gated instrumentation — never compiled.
pub fn run_slot(tracer: &mmwave_telemetry::Tracer, clock: u64) {
    #[cfg(feature = "telemetry")]
    {
        tracer.begin();
        tracer.event("slot-start");
        tracer.end(clock);
    }
    let _ = (tracer, clock);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_record_unconditionally() {
        let tracer = mmwave_telemetry::Tracer::disabled();
        tracer.event("from-a-test");
    }
}
