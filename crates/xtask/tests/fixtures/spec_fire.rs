// Fixture: determinism violations as they would look in the scenario
// spec/fuzz modules. Linted at the virtual paths crates/sim/src/spec.rs
// and crates/sim/src/fuzz.rs — never compiled.
use std::collections::HashMap;
use std::time::Instant;

pub struct BadSpecRegistry {
    // Parse/serialize order of world forms must not be process-seeded:
    // the corpus artifact and error ordering must be stable.
    forms: HashMap<String, u32>,
}

impl BadSpecRegistry {
    // Stamping generated specs with wall-clock time makes the corpus
    // differ between two runs of the same named stream.
    pub fn corrupt_case_label(&mut self, spec: &str) -> u128 {
        let t = Instant::now();
        self.forms.insert(spec.to_string(), 1);
        t.elapsed().as_nanos()
    }

    // Seeding the generator from OS entropy breaks same-name-same-specs.
    pub fn corrupt_stream_seed(&self) -> u64 {
        use rand::SeedableRng;
        let rng = rand::rngs::StdRng::from_entropy();
        let _ = rng;
        0
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 1);
        assert_eq!(m.len(), 1);
    }
}
