//! Clean twin of `closure_fire.rs`: every function reachable from the
//! marked root reuses caller-provided buffers, so the transitive closure
//! walk finds nothing. The allocating function below is NOT reachable
//! from the root — proximity alone must not fire the lint.

#[hot_path]
pub fn tick(buf: &mut Vec<f64>) {
    buf.clear();
    stage(buf);
}

fn stage(buf: &mut Vec<f64>) {
    buf.push(1.0);
}

pub fn cold_setup() -> Vec<f64> {
    let mut v = Vec::new();
    v.push(0.0);
    v
}
