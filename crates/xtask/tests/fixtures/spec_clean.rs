// Fixture: the spec/fuzz modules' sanctioned idioms — BTreeMap for any
// keyed lookup, insertion-ordered Vec corpora, and all randomness drawn
// from a named deterministic stream. Linted at the virtual paths
// crates/sim/src/spec.rs and crates/sim/src/fuzz.rs — never compiled.
use proptest::test_runner::TestRng;
use std::collections::BTreeMap;

pub struct GoodSpecRegistry {
    // Deterministic iteration order: serializing the known forms yields
    // the same text on every process.
    forms: BTreeMap<String, u32>,
    corpus: Vec<String>,
}

impl GoodSpecRegistry {
    // Every generated case comes from the named stream: same name, same
    // specs, bit for bit.
    pub fn draw_case(&mut self, name: &str) -> u64 {
        let mut rng = TestRng::from_name(name);
        self.corpus.push(name.to_string());
        self.forms.insert(name.to_string(), 1);
        rng.below(1 << 32)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixture_is_illustrative_only() {
        assert!(true);
    }
}
