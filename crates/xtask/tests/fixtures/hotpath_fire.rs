// Fixture: allocating calls inside a #[hot_path] function — never compiled.
use mmwave_hotpath::hot_path;

#[hot_path]
pub fn slot_kernel(out: &mut Vec<f64>, input: &[f64]) -> Vec<f64> {
    let mut scratch = Vec::new();
    scratch.extend(input.iter().map(|x| x * 2.0));
    let label = format!("slot {}", scratch.len());
    drop(label);
    out.clone()
}

// Allocations in an unmarked function are legal and must not fire.
pub fn cold_setup() -> Vec<f64> {
    vec![0.0; 8]
}
