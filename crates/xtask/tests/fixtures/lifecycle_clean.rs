// Fixture: reading/holding transitions is unrestricted; only construction
// is single-writer. Never compiled.
pub struct TransitionLog {
    entries: Vec<Transition>,
}

impl TransitionLog {
    pub fn push(&mut self, t: Transition) {
        self.entries.push(t);
    }

    pub fn last_is_fault(&self) -> bool {
        self.entries
            .last()
            .map(|t| matches!(t.cause, TransitionCause::FaultBudget))
            .unwrap_or(false)
    }
}
