// Fixture: a reasonless allow is rejected AND does not suppress.
// Linted at the virtual path crates/channel/src/fixture.rs — never compiled.
pub fn timed() -> u64 {
    // xtask-allow(determinism)
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
