// Fixture: a Transition literal outside LinkLifecycle::apply.
// Linted at the virtual path crates/core/src/fixture.rs — never compiled.
pub fn forge() -> Option<Transition> {
    Some(Transition {
        from: LinkState::Up,
        to: LinkState::Down,
    })
}
