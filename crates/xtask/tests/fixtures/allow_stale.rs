// Fixture: an allow whose excuse is gone must be flagged as stale.
// Linted at the virtual path crates/channel/src/fixture.rs — never compiled.
pub fn clean() -> u64 {
    // xtask-allow(determinism): wall-clock removed in the workspace-buffer refactor
    42
}
