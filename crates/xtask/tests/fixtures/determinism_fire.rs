// Fixture: determinism violations in a digest-affecting path.
// Linted at the virtual path crates/channel/src/fixture.rs — never compiled.
use std::collections::HashMap;
use std::time::Instant;

pub fn digest_path() -> u64 {
    let t = Instant::now();
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    t.elapsed().as_nanos() as u64 + m.len() as u64
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 1);
        assert_eq!(m.len(), 1);
    }
}
