// Fixture: determinism, hot-path, and lifecycle-single-writer violations
// as they would look in the fleet scheduler. Linted at the virtual path
// crates/sim/src/fleet.rs — never compiled.
use mmwave_hotpath::hot_path;
use std::collections::HashMap;
use std::time::Instant;

pub struct BadFleetShard {
    // Iteration order of per-UE lanes must not be process-seeded.
    lanes: HashMap<u32, u64>,
}

impl BadFleetShard {
    // Reading the wall clock into pass scheduling makes the fleet digest
    // depend on machine load.
    pub fn corrupt_pass(&mut self) -> u64 {
        let t = Instant::now();
        self.lanes.insert(0, 1);
        t.elapsed().as_nanos() as u64
    }

    // Driving a lifecycle directly from the fleet loop bypasses the
    // StateHandler — the single writer of per-UE lifecycle state.
    pub fn corrupt_lifecycle(&mut self, lc: &mut mmreliable::linkstate::LinkLifecycle) {
        let _ = lc.apply(
            mmreliable::linkstate::LinkSignal::EstablishResult {
                ok: true,
                snr_db: 20.0,
            },
            0.0,
        );
    }
}

// A per-pass kernel that allocates violates the steady-state contract.
#[hot_path]
pub fn step_pass_badly(snrs: &mut [f64]) -> f64 {
    let scratch: Vec<f64> = snrs.to_vec();
    scratch.iter().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        // Tests may drive lifecycles directly with LinkSignal values.
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 1);
        assert_eq!(m.len(), 1);
    }
}
