// Fixture: a well-formed allow with a reason suppresses exactly its
// finding. Linted at the virtual path crates/channel/src/fixture.rs —
// never compiled.
pub fn timed() -> u64 {
    // xtask-allow(determinism): coarse timing feeds a log line only, never the digest
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
