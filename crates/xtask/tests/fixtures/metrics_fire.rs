// Fixture: ungated metrics-registry call sites.
// Linted at the virtual path crates/sim/src/fixture.rs — never compiled.
pub fn publish(handler: &Handler, reg: &mut mmwave_telemetry::MetricsRegistry) {
    handler.publish_metrics(reg);
    for line in reg.snapshot_jsonl() {
        println!("{line}");
    }
    let _ = reg.prometheus_text();
}
