// Fixture: ungated instrumentation call sites.
// Linted at the virtual path crates/sim/src/fixture.rs — never compiled.
pub fn run_slot(tracer: &mmwave_telemetry::Tracer, clock: u64) {
    tracer.begin();
    tracer.event("slot-start");
    tracer.end(clock);
}
