//! Regression for marker detection with stacked attributes: the
//! `#[hot_path]` marker must be recognized in any position in the
//! attribute stack, qualified or wrapped in `cfg_attr` — earlier engines
//! only saw it when it was the attribute directly before `fn`.

#[hot_path]
#[inline]
pub fn marker_first(buf: &mut Vec<f64>) {
    buf.push(1.0);
    let v = Vec::new();
    let _ = v;
}

#[inline]
#[mmwave_hotpath::hot_path]
#[must_use]
pub fn marker_qualified_in_middle(x: f64) -> f64 {
    let s = format!("{x}");
    s.len() as f64
}

#[cfg_attr(not(test), hot_path)]
pub fn marker_under_cfg_attr(buf: &mut Vec<f64>) {
    let other = buf.to_vec();
    let _ = other;
}
