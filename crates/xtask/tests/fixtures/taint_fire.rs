//! Fires `determinism-taint`: a digest-adjacent sink (name contains
//! `journal`) transitively reaches a wall-clock read. The tainted call is
//! two hops away, so only the graph walk can connect them.

pub fn journal_append(line: &str) -> u64 {
    let t = stamp();
    line.len() as u64 ^ t
}

fn stamp() -> u64 {
    now_ns()
}

fn now_ns() -> u64 {
    let t = std::time::Instant::now();
    let _ = t;
    0
}
