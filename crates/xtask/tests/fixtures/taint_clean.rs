//! Clean twin of `taint_fire.rs`: the journal sink reaches only
//! deterministic helpers, and the wall-clock read lives in a function the
//! sink never calls — reachability, not co-location, must decide.

pub fn journal_append(line: &str) -> u64 {
    fnv(line.as_bytes())
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

pub fn watchdog_ns() -> u64 {
    let t = std::time::Instant::now();
    let _ = t;
    0
}
