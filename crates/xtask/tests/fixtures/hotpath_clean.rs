// Fixture: the reuse idioms the hot-path lint must leave alone — never compiled.
use mmwave_hotpath::hot_path;

#[hot_path]
pub fn slot_kernel(out: &mut [f64], input: &[f64]) {
    out.copy_from_slice(input);
    for v in out.iter_mut() {
        *v *= 2.0;
    }
}

#[hot_path]
pub fn reuse(buf: &mut Vec<f64>, n: usize) {
    buf.clear();
    for i in 0..n {
        buf.push(i as f64);
    }
}
