// Fixture: the impairment layer's intended idioms — per-stage salted
// seeds, stack scratch, in-place per-slot transforms. Linted at the
// virtual path crates/sim/src/impairments.rs — never compiled.
use mmwave_hotpath::hot_path;

const SEED_SALT_OBS: u64 = 0x1AFE_1AFE_1AFE_1AFE;
const MAX_COUPLED_ELEMENTS: usize = 256;

pub struct GoodImpairedStage {
    gains: Vec<f64>,
    seed: u64,
}

impl GoodImpairedStage {
    // Construction-time allocation is fine; the tables are reused per slot.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            gains: vec![1.0; n],
            seed: seed ^ SEED_SALT_OBS,
        }
    }

    #[hot_path]
    pub fn impair_weights(&self, w: &mut [f64]) -> f64 {
        let mut scratch = [0.0f64; MAX_COUPLED_ELEMENTS];
        let used = w.len().min(MAX_COUPLED_ELEMENTS);
        scratch[..used].copy_from_slice(&w[..used]);
        let mut worst = 0.0f64;
        for (x, g) in w.iter_mut().zip(self.gains.iter()) {
            *x *= g;
            worst = worst.max(*x);
        }
        worst + self.seed as f64 * 0.0 + scratch[0] * 0.0
    }
}
