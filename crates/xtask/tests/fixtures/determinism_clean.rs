// Fixture: the deterministic idioms the lint must leave alone.
// Linted at the virtual path crates/channel/src/fixture.rs — never compiled.
use std::collections::BTreeMap;

pub fn digest_path(seed: u64) -> u64 {
    let mut m: BTreeMap<u64, u64> = BTreeMap::new();
    m.insert(seed, seed ^ 0x9e37_79b9_7f4a_7c15);
    m.values().sum()
}

// Forbidden names inside comments (HashMap, Instant::now) and inside
// strings must not fire — the scrubber blanks both.
pub const NAME: &str = "HashMap-free (Instant::now banned)";
