//! Fires `hot-path-closure`: a marked root reaches an unmarked helper
//! that allocates. The helper itself carries no `#[hot_path]` marker, so
//! the per-file `hot-path-alloc` pass cannot see it — only the transitive
//! closure walk can.

#[hot_path]
pub fn tick(buf: &mut Vec<f64>) {
    buf.clear();
    stage(buf);
}

fn stage(buf: &mut Vec<f64>) {
    let scratch = Vec::new();
    helper(&scratch);
    buf.extend_from_slice(&scratch);
}

fn helper(_scratch: &[f64]) {}
