// Fixture: properly gated metrics-registry call sites — never compiled.
pub fn publish(handler: &Handler) {
    #[cfg(feature = "telemetry")]
    {
        let mut reg = mmwave_telemetry::MetricsRegistry::new();
        handler.publish_metrics(&mut reg);
        let _ = (reg.snapshot_jsonl(), reg.prometheus_text());
    }
    let _ = handler;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_the_registry_unconditionally() {
        let reg = mmwave_telemetry::MetricsRegistry::new();
        assert!(reg.snapshot_jsonl().is_empty());
    }
}
