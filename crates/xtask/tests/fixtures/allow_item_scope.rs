//! Item-scoped allows: directives standing directly above a `fn` item
//! suppress that lint across the whole function — including stacked
//! directives for different lints and intervening doc comments/attributes.

#[hot_path]
pub fn tick(buf: &mut Vec<f64>) {
    buf.clear();
    stage(buf);
}

// xtask-allow(hot-path-closure): fixture — scratch is per-call by design
// xtask-allow(hot-path-panic): fixture — index 0 exists after the push
/// Doc comment between the directives and the item must not break scope.
#[inline]
fn stage(buf: &mut Vec<f64>) {
    let mut scratch = Vec::new();
    scratch.push(buf.len() as f64);
    buf.push(scratch[0]);
}
