//! Fixture corpus for the lint engine: every lint has a firing case and a
//! clean case, and the allow hatch has reject/stale/suppress cases. The
//! fixtures live in `tests/fixtures/` (skipped by `collect_workspace`, so
//! `cargo xtask lint` never sees them) and are linted here under *virtual*
//! workspace-relative paths so the scoping rules are exercised too.

use std::path::PathBuf;
use xtask::diag::Finding;
use xtask::{lint_file, SourceFile};

fn lint(rel: &str, src: &str) -> Vec<Finding> {
    lint_file(&SourceFile {
        rel: PathBuf::from(rel),
        src: src.to_string(),
    })
}

fn lints_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.lint).collect()
}

#[test]
fn determinism_fires_on_hashmap_and_instant() {
    let src = include_str!("fixtures/determinism_fire.rs");
    let found = lint("crates/channel/src/fixture.rs", src);
    assert_eq!(found.len(), 4, "findings: {found:#?}");
    assert!(found.iter().all(|f| f.lint == "determinism"));
    let instants = found
        .iter()
        .filter(|f| f.snippet.contains("Instant"))
        .count();
    assert_eq!(instants, 1, "exactly the Instant::now call");
    // The #[cfg(test)] module's HashMap uses are exempt: every finding
    // sits before the test module starts.
    let mod_line = src.lines().position(|l| l.contains("mod tests")).unwrap() + 1;
    assert!(
        found.iter().all(|f| f.line < mod_line),
        "findings: {found:#?}"
    );
}

#[test]
fn determinism_ignores_clean_idioms_and_scrubbed_text() {
    let src = include_str!("fixtures/determinism_clean.rs");
    let found = lint("crates/channel/src/fixture.rs", src);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn determinism_is_scoped_to_digest_crates() {
    // The same violating source outside the digest scope is legal.
    let src = include_str!("fixtures/determinism_fire.rs");
    let found = lint("crates/bench/src/fixture.rs", src);
    assert!(found.is_empty(), "findings: {found:#?}");
    // campaign.rs is the documented supervisor exemption within sim.
    let found = lint("crates/sim/src/campaign.rs", src);
    assert!(found.iter().all(|f| f.lint != "determinism"));
    // runner.rs is in scope.
    let found = lint("crates/sim/src/runner.rs", src);
    assert_eq!(found.len(), 4);
}

#[test]
fn impairment_layer_is_determinism_and_hotpath_scoped() {
    // The impairment module is digest-affecting: wall clocks, unordered
    // maps, and per-slot allocation must all fire at its path.
    let src = include_str!("fixtures/impairments_fire.rs");
    let found = lint("crates/sim/src/impairments.rs", src);
    let det = found.iter().filter(|f| f.lint == "determinism").count();
    let hot = found.iter().filter(|f| f.lint == "hot-path-alloc").count();
    assert_eq!(det, 3, "findings: {found:#?}");
    assert_eq!(hot, 1, "findings: {found:#?}");
    // The supervisor exemption must not leak to the impairment layer: the
    // same source under campaign.rs raises no determinism findings.
    let found = lint("crates/sim/src/campaign.rs", src);
    assert!(found.iter().all(|f| f.lint != "determinism"));
}

#[test]
fn impairment_idioms_stay_clean() {
    let src = include_str!("fixtures/impairments_clean.rs");
    let found = lint("crates/sim/src/impairments.rs", src);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn hotpath_fires_inside_marked_fn_only() {
    let src = include_str!("fixtures/hotpath_fire.rs");
    let found = lint("crates/dsp/src/fixture.rs", src);
    assert_eq!(found.len(), 3, "findings: {found:#?}");
    assert!(found.iter().all(|f| f.lint == "hot-path-alloc"));
    // The vec! in the unmarked cold_setup must not be among them.
    let cold_line = src
        .lines()
        .position(|l| l.contains("vec![0.0; 8]"))
        .unwrap()
        + 1;
    assert!(found.iter().all(|f| f.line != cold_line));
}

#[test]
fn hotpath_accepts_reuse_idioms() {
    let src = include_str!("fixtures/hotpath_clean.rs");
    let found = lint("crates/dsp/src/fixture.rs", src);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn telemetry_fires_on_ungated_call_sites() {
    let src = include_str!("fixtures/telemetry_fire.rs");
    let found = lint("crates/sim/src/fixture.rs", src);
    assert_eq!(found.len(), 3, "findings: {found:#?}");
    assert!(found.iter().all(|f| f.lint == "telemetry-hygiene"));
}

#[test]
fn telemetry_accepts_gated_and_test_call_sites() {
    let src = include_str!("fixtures/telemetry_clean.rs");
    let found = lint("crates/sim/src/fixture.rs", src);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn telemetry_fires_on_ungated_metrics_registry_sites() {
    let src = include_str!("fixtures/metrics_fire.rs");
    let found = lint("crates/sim/src/fixture.rs", src);
    assert_eq!(found.len(), 4, "findings: {found:#?}");
    assert!(found.iter().all(|f| f.lint == "telemetry-hygiene"));
    // The same code is fine in the campaign capture layer and in bench
    // binaries — the registry is populated there by design.
    assert!(lint("crates/sim/src/campaign.rs", src).is_empty());
    assert!(lint("crates/bench/src/admin.rs", src).is_empty());
}

#[test]
fn telemetry_accepts_gated_metrics_registry_sites() {
    let src = include_str!("fixtures/metrics_clean.rs");
    let found = lint("crates/core/src/fixture.rs", src);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn telemetry_is_scoped_to_byte_identity_crates() {
    let src = include_str!("fixtures/telemetry_fire.rs");
    // campaign.rs installs tracers unconditionally by design.
    let found = lint("crates/sim/src/campaign.rs", src);
    assert!(found.is_empty(), "findings: {found:#?}");
    // The telemetry crate itself obviously records unconditionally.
    let found = lint("crates/telemetry/src/fixture.rs", src);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn lifecycle_fires_on_foreign_transition_literal() {
    let src = include_str!("fixtures/lifecycle_fire.rs");
    let found = lint("crates/core/src/fixture.rs", src);
    assert_eq!(found.len(), 1, "findings: {found:#?}");
    assert_eq!(found[0].lint, "lifecycle-single-writer");
}

#[test]
fn lifecycle_permits_reads_and_the_state_machine_itself() {
    let clean = include_str!("fixtures/lifecycle_clean.rs");
    let found = lint("crates/core/src/fixture.rs", clean);
    assert!(found.is_empty(), "findings: {found:#?}");
    // The single writer is allowed to construct.
    let fire = include_str!("fixtures/lifecycle_fire.rs");
    let found = lint("crates/core/src/linkstate.rs", fire);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn fleet_scheduler_is_determinism_hotpath_and_lifecycle_scoped() {
    // The fleet module is digest-affecting (its digest must be invariant
    // to worker/shard count): wall clocks, unordered maps, per-pass
    // allocation, and direct lifecycle signalling must all fire at its
    // path.
    let src = include_str!("fixtures/fleet_fire.rs");
    let found = lint("crates/sim/src/fleet.rs", src);
    let det = found.iter().filter(|f| f.lint == "determinism").count();
    let hot = found.iter().filter(|f| f.lint == "hot-path-alloc").count();
    let lc = found
        .iter()
        .filter(|f| f.lint == "lifecycle-single-writer")
        .count();
    assert_eq!(det, 3, "findings: {found:#?}");
    assert_eq!(hot, 1, "findings: {found:#?}");
    assert_eq!(lc, 1, "findings: {found:#?}");
    // The LinkSignal finding is the direct-drive call, not the exempt
    // test module.
    let signal = found
        .iter()
        .find(|f| f.lint == "lifecycle-single-writer")
        .unwrap();
    assert!(
        signal.snippet.contains("LinkSignal"),
        "findings: {found:#?}"
    );
    // The supervisor exemption must not leak to the fleet scheduler: the
    // same source under campaign.rs raises no determinism findings.
    let found = lint("crates/sim/src/campaign.rs", src);
    assert!(found.iter().all(|f| f.lint != "determinism"));
}

#[test]
fn fleet_idioms_stay_clean() {
    // StopWatch wall time into a latency histogram, Vec-ordered lanes,
    // and intents queued through Io are the sanctioned spellings.
    let src = include_str!("fixtures/fleet_clean.rs");
    let found = lint("crates/sim/src/fleet.rs", src);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn spec_and_fuzz_modules_are_determinism_scoped() {
    // Spec round-trips promise bit-identical rebuilds and the fuzzer
    // promises same-name-same-specs: wall clocks, unordered maps, and OS
    // entropy must all fire at both module paths.
    let src = include_str!("fixtures/spec_fire.rs");
    for path in ["crates/sim/src/spec.rs", "crates/sim/src/fuzz.rs"] {
        let found = lint(path, src);
        let det = found.iter().filter(|f| f.lint == "determinism").count();
        // HashMap (use + field), Instant::now, from_entropy.
        assert_eq!(det, 4, "at {path}, findings: {found:#?}");
    }
    // The supervisor exemption must not leak: the same source under
    // campaign.rs raises no determinism findings.
    let found = lint("crates/sim/src/campaign.rs", src);
    assert!(found.iter().all(|f| f.lint != "determinism"));
}

#[test]
fn spec_and_fuzz_idioms_stay_clean() {
    // BTreeMap registries, Vec corpora, and named TestRng streams are the
    // sanctioned spellings.
    let src = include_str!("fixtures/spec_clean.rs");
    for path in ["crates/sim/src/spec.rs", "crates/sim/src/fuzz.rs"] {
        let found = lint(path, src);
        assert!(found.is_empty(), "at {path}, findings: {found:#?}");
    }
}

#[test]
fn core_owns_the_link_signal_vocabulary() {
    // The state machine, controller, and StateHandler (crates/core/src/)
    // are the allowed LinkSignal writers; everyone else must queue
    // intents.
    let src = include_str!("fixtures/fleet_fire.rs");
    let found = lint("crates/core/src/fixture.rs", src);
    assert!(
        found.iter().all(|f| f.lint != "lifecycle-single-writer"),
        "findings: {found:#?}"
    );
}

#[test]
fn reasonless_allow_is_rejected_and_does_not_suppress() {
    let src = include_str!("fixtures/allow_reasonless.rs");
    let found = lint("crates/channel/src/fixture.rs", src);
    let mut lints = lints_of(&found);
    lints.sort_unstable();
    assert_eq!(
        lints,
        vec!["determinism", "malformed-allow"],
        "findings: {found:#?}"
    );
}

#[test]
fn unused_allow_is_flagged_stale() {
    let src = include_str!("fixtures/allow_stale.rs");
    let found = lint("crates/channel/src/fixture.rs", src);
    assert_eq!(
        lints_of(&found),
        vec!["stale-allow"],
        "findings: {found:#?}"
    );
}

#[test]
fn reasoned_allow_suppresses_exactly_its_finding() {
    let src = include_str!("fixtures/allow_good.rs");
    let found = lint("crates/channel/src/fixture.rs", src);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn findings_render_rustc_style_and_as_json() {
    let src = include_str!("fixtures/lifecycle_fire.rs");
    let found = lint("crates/core/src/fixture.rs", src);
    let text = found[0].render();
    assert!(text.contains("error[xtask::lifecycle-single-writer]"));
    assert!(text.contains("crates/core/src/fixture.rs:"));
    let json = xtask::diag::report_json(&found);
    assert!(json.contains("\"lint\":\"lifecycle-single-writer\""));
    assert!(json.contains("\"file\":\"crates/core/src/fixture.rs\""));
}

// ---- Transitive (call-graph) lints ------------------------------------

fn lint_many(files: &[(&str, &str)]) -> Vec<Finding> {
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(rel, src)| SourceFile {
            rel: PathBuf::from(rel),
            src: src.to_string(),
        })
        .collect();
    xtask::lint_files(&sources)
}

#[test]
fn closure_lint_fires_transitively_and_shows_the_call_chain() {
    let src = include_str!("fixtures/closure_fire.rs");
    let found = lint_many(&[("crates/dsp/src/fixture.rs", src)]);
    assert_eq!(found.len(), 1, "findings: {found:#?}");
    assert_eq!(found[0].lint, "hot-path-closure");
    let msg = &found[0].message;
    assert!(
        msg.contains("reachable from a `#[hot_path]` root via"),
        "{msg}"
    );
    assert!(
        msg.contains("mmwave_dsp::fixture::tick → mmwave_dsp::fixture::stage"),
        "chain missing from: {msg}"
    );
    assert!(msg.contains("Vec::new"), "{msg}");
}

#[test]
fn closure_lint_ignores_unreachable_allocators() {
    let src = include_str!("fixtures/closure_clean.rs");
    let found = lint_many(&[("crates/dsp/src/fixture.rs", src)]);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn panic_lint_fires_on_unwrap_and_bare_indexing_in_closure() {
    let src = include_str!("fixtures/panic_fire.rs");
    let found = lint_many(&[("crates/dsp/src/fixture.rs", src)]);
    assert_eq!(found.len(), 2, "findings: {found:#?}");
    assert!(found.iter().all(|f| f.lint == "hot-path-panic"));
    assert!(found.iter().any(|f| f.message.contains(".unwrap()")));
    assert!(found.iter().any(|f| f.message.contains("slice indexing")));
}

#[test]
fn panic_lint_accepts_debug_assert_and_match_idioms() {
    let src = include_str!("fixtures/panic_clean.rs");
    let found = lint_many(&[("crates/dsp/src/fixture.rs", src)]);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn taint_lint_connects_journal_sink_to_wall_clock_source() {
    let src = include_str!("fixtures/taint_fire.rs");
    let found = lint_many(&[("crates/telemetry/src/fixture.rs", src)]);
    assert_eq!(found.len(), 1, "findings: {found:#?}");
    assert_eq!(found[0].lint, "determinism-taint");
    let msg = &found[0].message;
    assert!(msg.contains("journal_append"), "{msg}");
    assert!(msg.contains("Instant::now"), "{msg}");
}

#[test]
fn taint_lint_requires_reachability_not_colocation() {
    let src = include_str!("fixtures/taint_clean.rs");
    let found = lint_many(&[("crates/telemetry/src/fixture.rs", src)]);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn hot_path_marker_is_found_in_any_attribute_position() {
    let src = include_str!("fixtures/hotpath_attr_order.rs");
    let found = lint("crates/dsp/src/fixture.rs", src);
    assert_eq!(found.len(), 3, "findings: {found:#?}");
    assert!(found.iter().all(|f| f.lint == "hot-path-alloc"));
    // One finding per marked function: stacked-first, qualified-middle,
    // and cfg_attr-wrapped markers must all be recognized.
    assert!(found.iter().any(|f| f.message.contains("Vec::new")));
    assert!(found.iter().any(|f| f.message.contains("format!")));
    assert!(found.iter().any(|f| f.message.contains(".to_vec()")));
}

#[test]
fn item_scoped_allows_cover_whole_functions_and_stack() {
    let src = include_str!("fixtures/allow_item_scope.rs");
    let found = lint_many(&[("crates/dsp/src/fixture.rs", src)]);
    assert!(found.is_empty(), "findings: {found:#?}");
}

#[test]
fn callgraph_export_and_stats_describe_the_fixture_graph() {
    let sources = vec![SourceFile {
        rel: PathBuf::from("crates/dsp/src/fixture.rs"),
        src: include_str!("fixtures/closure_fire.rs").to_string(),
    }];
    let (scrubbed, g) = xtask::build_graph(&sources);
    let stats = g.stats(&scrubbed);
    assert_eq!(stats.hot_roots, 1);
    assert!(stats.hot_closure >= 2, "{stats:?}");
    assert!(stats.nodes >= 3, "{stats:?}");
    let json = g.to_json(&sources, &scrubbed);
    assert!(json.contains("\"nodes\""));
    assert!(json.contains("mmwave_dsp::fixture::tick"));
    let dot = g.to_dot(&scrubbed);
    assert!(dot.starts_with("digraph"));
}
