//! A position-preserving Rust source scrubber.
//!
//! The lint engine does not parse Rust — the workspace builds offline and
//! cannot pull in `syn` — so every lint works on a *scrubbed* copy of the
//! source in which the contents of comments, string literals, char
//! literals, and raw strings are replaced by spaces **of the same byte
//! length**. Token searches on the scrubbed text therefore cannot be
//! fooled by a forbidden name appearing inside a string or a comment, and
//! every match's byte offset maps 1:1 back to the original file for
//! rustc-style spans.
//!
//! Comments are additionally collected verbatim (with their line numbers)
//! so the `xtask-allow` directive parser can read them.

/// One comment from the original source, verbatim.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
}

/// The scrubbed view of one source file.
#[derive(Debug)]
pub struct Scrubbed {
    /// Same byte length as the original; comment bodies and literal
    /// contents replaced by spaces (newlines inside them are kept so line
    /// numbers stay aligned).
    pub text: String,
    /// All comments, in file order.
    pub comments: Vec<Comment>,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
}

impl Scrubbed {
    /// 1-based (line, column) for a byte offset.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// The original-length line containing `offset`, taken from `src`
    /// (the caller passes the *original* text to show real snippets).
    pub fn line_of<'a>(&self, src: &'a str, offset: usize) -> &'a str {
        let (line, _) = self.line_col(offset);
        let start = self.line_starts[line - 1];
        let end = src[start..]
            .find('\n')
            .map(|i| start + i)
            .unwrap_or(src.len());
        src[start..end].trim_end_matches('\r')
    }
}

fn push_blanked(out: &mut String, s: &str) {
    for c in s.chars() {
        if c == '\n' {
            out.push('\n');
        } else {
            // Replace by one space per byte so offsets stay aligned even
            // for multi-byte characters.
            for _ in 0..c.len_utf8() {
                out.push(' ');
            }
        }
    }
}

/// Scrubs `src`. Handles line/block (nested) comments, string literals
/// with escapes, raw strings `r"…"`/`r#"…"#…`, byte strings, char
/// literals, and distinguishes lifetimes (`'a`) from char literals.
pub fn scrub(src: &str) -> Scrubbed {
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut comments = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let rest = &src[i..];
        if rest.starts_with("//") {
            let end = rest.find('\n').map(|e| i + e).unwrap_or(src.len());
            let (line, _) = line_col_raw(src, i);
            comments.push(Comment {
                line,
                text: src[i..end].to_string(),
            });
            // Keep the `//` so "comment-shaped" positions stay visible.
            out.push_str("//");
            push_blanked(&mut out, &src[i + 2..end]);
            i = end;
        } else if rest.starts_with("/*") {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if src[j..].starts_with("/*") {
                    depth += 1;
                    j += 2;
                } else if src[j..].starts_with("*/") {
                    depth -= 1;
                    j += 2;
                } else {
                    j += src[j..].chars().next().map(|c| c.len_utf8()).unwrap_or(1);
                }
            }
            let (line, _) = line_col_raw(src, i);
            comments.push(Comment {
                line,
                text: src[i..j].to_string(),
            });
            out.push_str("/*");
            push_blanked(&mut out, &src[i + 2..j.saturating_sub(2).max(i + 2)]);
            if j >= i + 4 {
                out.push_str("*/");
            }
            i = j;
        } else if rest.starts_with('"') {
            let j = skip_string(src, i);
            out.push('"');
            push_blanked(&mut out, &src[i + 1..j.saturating_sub(1).max(i + 1)]);
            if j > i + 1 {
                out.push('"');
            }
            i = j;
        } else if is_raw_string_start(rest) {
            let j = skip_raw_string(src, i);
            // Blank the whole raw string including its r#…# fencing; no
            // lint cares about the fence characters.
            push_blanked(&mut out, &src[i..j]);
            i = j;
        } else if rest.starts_with('\'') {
            // Lifetime (`'a`, `'static`) vs char literal (`'x'`, `'\n'`).
            let after: Vec<char> = rest.chars().skip(1).take(2).collect();
            let is_lifetime = matches!(after.first(), Some(c) if c.is_alphabetic() || *c == '_')
                && after.get(1) != Some(&'\'');
            if is_lifetime {
                out.push('\'');
                i += 1;
            } else {
                let j = skip_char_literal(src, i);
                push_blanked(&mut out, &src[i..j]);
                i = j;
            }
        } else {
            let c = rest.chars().next().unwrap();
            out.push(c);
            i += c.len_utf8();
        }
    }
    let mut line_starts = vec![0usize];
    for (idx, b) in src.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(idx + 1);
        }
    }
    Scrubbed {
        text: out,
        comments,
        line_starts,
    }
}

fn line_col_raw(src: &str, offset: usize) -> (usize, usize) {
    let line = src[..offset].bytes().filter(|&b| b == b'\n').count() + 1;
    let start = src[..offset].rfind('\n').map(|i| i + 1).unwrap_or(0);
    (line, offset - start + 1)
}

fn is_raw_string_start(rest: &str) -> bool {
    let r = rest.strip_prefix('b').unwrap_or(rest);
    if let Some(r) = r.strip_prefix('r') {
        let r = r.trim_start_matches('#');
        r.starts_with('"') && (rest.starts_with('r') || rest.starts_with("br"))
    } else {
        false
    }
}

/// Returns the offset one past the closing quote of the plain string
/// starting at `i` (which must point at `"`).
fn skip_string(src: &str, i: usize) -> usize {
    let bytes = src.as_bytes();
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += src[j..].chars().next().map(|c| c.len_utf8()).unwrap_or(1),
        }
    }
    src.len()
}

/// Returns the offset one past the closing fence of the raw string
/// starting at `i` (which points at `r` or `b` of `r"`/`br"`/`r#"` …).
fn skip_raw_string(src: &str, i: usize) -> usize {
    let mut j = i;
    if src[j..].starts_with('b') {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0usize;
    while src[j..].starts_with('#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let closer: String = std::iter::once('"')
        .chain("#".repeat(hashes).chars())
        .collect();
    match src[j..].find(&closer) {
        Some(k) => j + k + closer.len(),
        None => src.len(),
    }
}

fn skip_char_literal(src: &str, i: usize) -> usize {
    let bytes = src.as_bytes();
    let mut j = i + 1;
    if j < bytes.len() && bytes[j] == b'\\' {
        j += 2;
        // \u{…} escapes.
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (j + 1).min(src.len());
    }
    j += src[j..].chars().next().map(|c| c.len_utf8()).unwrap_or(1);
    if j < bytes.len() && bytes[j] == b'\'' {
        j + 1
    } else {
        // Not actually a char literal (e.g. stray quote); move past the
        // opening quote only.
        i + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_strings_and_comments_preserving_offsets() {
        let src = "let x = \"Instant::now\"; // Instant::now\nuse std::time::Instant;\n";
        let s = scrub(src);
        assert_eq!(s.text.len(), src.len());
        // The forbidden token survives only in real code position.
        assert_eq!(s.text.matches("Instant").count(), 1);
        assert!(s.text.contains("use std::time::Instant;"));
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("Instant::now"));
        assert_eq!(s.comments[0].line, 1);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let y = r#\"HashMap\"#; let c = 'h'; }";
        let s = scrub(src);
        assert_eq!(s.text.len(), src.len());
        assert!(!s.text.contains("HashMap"));
        assert!(s.text.contains("<'a>"));
        assert!(s.text.contains("&'a str"));
        assert!(!s.text.contains('h'));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* HashMap */ still */ b";
        let s = scrub(src);
        assert_eq!(s.text.len(), src.len());
        assert!(!s.text.contains("HashMap"));
        assert!(s.text.ends_with(" b"));
        assert!(s.text.starts_with("a /*"));
    }

    #[test]
    fn line_col_roundtrip() {
        let src = "line one\nline two\nline three\n";
        let s = scrub(src);
        let off = src.find("two").unwrap();
        assert_eq!(s.line_col(off), (2, 6));
        assert_eq!(s.line_of(src, off), "line two");
    }
}
