//! Workspace call-graph extraction (the transitive-lint substrate).
//!
//! The per-file lints in `lints/*` check what a function *does*; the
//! transitive lints (`hot-path-closure`, `hot-path-panic`,
//! `determinism-taint`) check what a function *reaches*. This module
//! builds the reachability substrate: a lightweight item parser over the
//! position-preserving scrubbed view ([`crate::scrub`]) extracts every
//! `fn` item with its module path, attributes, and the call/method-call
//! tokens in its body; [`crate::resolve`] then resolves those tokens
//! against a workspace symbol table into edges.
//!
//! Like the rest of the engine this is AST-free by necessity (offline
//! build, no `syn`), which fixes the precision contract — documented in
//! DESIGN.md §16:
//!
//! - **Over-approximations** (may add edges that cannot execute): a
//!   method call `.f(…)` edges to *every* workspace method named `f`
//!   regardless of receiver type (this is also what makes trait-object
//!   dispatch sound); closure and nested-`fn` bodies are attributed to
//!   the enclosing item-level function.
//! - **Under-approximations** (may miss edges): calls through function
//!   pointers / stored closures, macro-generated calls, `<T as
//!   Trait>::f` qualified-path calls, and body-local `use` imports are
//!   not resolved — they are recorded as *external* calls, never
//!   silently dropped.
//!
//! Test code (files under `tests/` and `#[cfg(test)]` regions) is parsed
//! but flagged, and neither resolves as a call target nor participates
//! in any transitive analysis.

use crate::regions::{in_any, test_regions, Region};
use crate::scrub::Scrubbed;
use crate::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One `fn` item anywhere in the workspace.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the file list the graph was built from.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Simple name.
    pub name: String,
    /// `impl`/`trait` owner type, when the fn is a method.
    pub owner: Option<String>,
    /// Module path including the crate root, e.g. `mmwave_dsp::sinc`.
    pub module: String,
    /// Raw attribute texts (scrubbed: string contents blanked).
    pub attrs: Vec<String>,
    /// Body byte range on the scrubbed text; `None` for bodyless decls.
    pub body: Option<Region>,
    /// Carries the `hot_path` marker attribute (any spelling, any
    /// position in the attribute stack, including inside `cfg_attr`).
    pub hot_path: bool,
    /// Lives in a `tests/` tree or a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl FnNode {
    /// Qualified display path: `module::Owner::name` / `module::name`.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}::{}", self.module, o, self.name),
            None => format!("{}::{}", self.module, self.name),
        }
    }
}

/// How a call token is spelled at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `f(…)` — plain name.
    Bare,
    /// `a::b::f(…)` — qualified path.
    Path,
    /// `.f(…)` — method syntax.
    Method,
}

/// One call token inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub kind: CallKind,
    /// Path segments (single element for `Bare`/`Method`).
    pub path: Vec<String>,
    /// Byte offset of the first segment (for spans).
    pub offset: usize,
}

impl CallSite {
    pub fn display(&self) -> String {
        match self.kind {
            CallKind::Method => format!(".{}()", self.path[0]),
            _ => format!("{}()", self.path.join("::")),
        }
    }
}

/// Per-file resolution context: module path and `use` imports.
#[derive(Debug, Default)]
pub struct FileSyms {
    /// Module path of the file root, e.g. `mmwave_channel::snapshot`.
    pub module: String,
    /// Crate root for expanding `crate::` paths (differs from `module`'s
    /// first segment only for `src/bin/*` targets, which are their own
    /// crates).
    pub crate_root: String,
    /// `use` aliases: simple name → full (unexpanded) path.
    pub imports: BTreeMap<String, String>,
    /// `use path::*` glob targets.
    pub globs: Vec<String>,
}

/// The workspace call graph. `calls`, `edges`, and `external` are
/// parallel to `nodes`.
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// Raw call tokens per node.
    pub calls: Vec<Vec<CallSite>>,
    /// Resolved workspace-internal edges per node (sorted, deduped).
    pub edges: Vec<Vec<usize>>,
    /// Unresolved call spellings per node (sorted, deduped) — recorded,
    /// never silently dropped.
    pub external: Vec<Vec<String>>,
    /// Per-file symbol context (parallel to the file list).
    pub files: Vec<FileSyms>,
}

/// Crate-directory → library target name. The workspace is closed (no
/// path dependency leaves the repo) so a static table is exact; unknown
/// directories fall back to `dir` with `-` mapped to `_`.
const LIB_NAMES: &[(&str, &str)] = &[
    ("array", "mmwave_array"),
    ("baselines", "mmwave_baselines"),
    ("bench", "mmwave_bench"),
    ("channel", "mmwave_channel"),
    ("core", "mmreliable"),
    ("dsp", "mmwave_dsp"),
    ("hotpath", "mmwave_hotpath"),
    ("phy", "mmwave_phy"),
    ("sim", "mmwave_sim"),
    ("telemetry", "mmwave_telemetry"),
    ("xtask", "xtask"),
];

/// Module path and crate root for a workspace-relative file path.
/// Returns `(module, crate_root, is_test_tree)`.
pub fn file_module(rel: &str) -> (String, String, bool) {
    let rel = rel.replace('\\', "/");
    let parts: Vec<&str> = rel.split('/').collect();
    // Expected shapes: crates/<dir>/src/... or crates/<dir>/tests/...
    let (dir, rest) = if parts.len() >= 3 && parts[0] == "crates" {
        (parts[1], &parts[2..])
    } else {
        ("unknown", &parts[..])
    };
    let lib = LIB_NAMES
        .iter()
        .find(|(d, _)| *d == dir)
        .map(|(_, l)| l.to_string())
        .unwrap_or_else(|| dir.replace('-', "_"));
    let mut is_test = false;
    let mut mods: Vec<String> = Vec::new();
    let mut crate_root = lib.clone();
    if !rest.is_empty() {
        let tree = rest[0];
        let tail = &rest[1..];
        if tree == "tests" || tree == "benches" || tree == "examples" {
            is_test = tree == "tests";
            mods.push(tree.to_string());
        }
        for (i, seg) in tail.iter().enumerate() {
            let last = i + 1 == tail.len();
            if last {
                let stem = seg.strip_suffix(".rs").unwrap_or(seg);
                match stem {
                    "lib" | "main" | "mod" => {}
                    _ => mods.push(stem.to_string()),
                }
            } else if *seg == "bin" {
                // src/bin/<name>.rs is its own crate.
                mods.push("bin".to_string());
            } else {
                mods.push(seg.to_string());
            }
        }
        if tail.first() == Some(&"bin") {
            crate_root = std::iter::once(lib.clone())
                .chain(mods.iter().cloned())
                .collect::<Vec<_>>()
                .join("::");
        }
    }
    let module = std::iter::once(lib)
        .chain(mods)
        .collect::<Vec<_>>()
        .join("::");
    (module, crate_root, is_test)
}

/// Builds the call graph over `files` (parallel `scrubbed` views).
pub fn build(files: &[SourceFile], scrubbed: &[Scrubbed]) -> CallGraph {
    let mut nodes = Vec::new();
    let mut calls: Vec<Vec<CallSite>> = Vec::new();
    let mut syms = Vec::new();
    for (idx, (f, s)) in files.iter().zip(scrubbed).enumerate() {
        let tests = test_regions(s, &f.src);
        let rel = f.rel.display().to_string();
        let (module, crate_root, tree_is_test) = file_module(&rel);
        let mut p = Parser::new(idx, s, &tests);
        p.syms.module = module;
        p.syms.crate_root = crate_root;
        p.file_in_test = tree_is_test;
        p.parse();
        nodes.extend(p.nodes);
        calls.extend(p.calls);
        syms.push(p.syms);
    }
    let (edges, external) = crate::resolve::resolve(&nodes, &calls, &syms);
    CallGraph {
        nodes,
        calls,
        edges,
        external,
        files: syms,
    }
}

/// True when the attribute text applies the `hot_path` marker — any
/// spelling (`#[hot_path]`, `#[mmwave_hotpath::hot_path]`), any position
/// in the attribute stack, including `#[cfg_attr(…, hot_path)]`. String
/// contents were blanked by the scrubber, so doc-text mentions never
/// match.
pub fn attr_is_hot_path(attr: &str) -> bool {
    !crate::lints::find_token(attr, "hot_path").is_empty()
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum ScopeKind {
    Module(String),
    Owner(String), // impl or trait block
    Fn(usize),
    Other,
}

struct Scope {
    kind: ScopeKind,
    /// Brace depth *after* this scope's `{` was consumed; the matching
    /// `}` is the one seen at this depth.
    depth: usize,
}

struct Parser<'a> {
    file: usize,
    s: &'a Scrubbed,
    text: &'a str,
    bytes: &'a [u8],
    tests: &'a [Region],
    i: usize,
    depth: usize,
    /// Whole file lives in a test tree (`tests/`).
    file_in_test: bool,
    /// Paren/bracket nesting at item level (so `;` inside `[u8; N]`
    /// does not end an item).
    nest: i64,
    scopes: Vec<Scope>,
    pending_attrs: Vec<String>,
    pending_scope: Option<ScopeKind>,
    nodes: Vec<FnNode>,
    calls: Vec<Vec<CallSite>>,
    syms: FileSyms,
}

const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "in",
    "as", "mut", "ref", "move", "unsafe", "dyn", "impl", "where", "pub", "use", "mod", "struct",
    "enum", "union", "trait", "const", "static", "type", "async", "await", "yield", "box", "true",
    "false", "extern",
];

impl<'a> Parser<'a> {
    fn new(file: usize, s: &'a Scrubbed, tests: &'a [Region]) -> Self {
        Parser {
            file,
            s,
            text: &s.text,
            bytes: s.text.as_bytes(),
            tests,
            i: 0,
            depth: 0,
            file_in_test: false,
            nest: 0,
            scopes: Vec::new(),
            pending_attrs: Vec::new(),
            pending_scope: None,
            nodes: Vec::new(),
            calls: Vec::new(),
            syms: FileSyms::default(),
        }
    }

    fn current_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|sc| match sc.kind {
            ScopeKind::Fn(idx) => Some(idx),
            _ => None,
        })
    }

    fn current_owner(&self) -> Option<String> {
        self.scopes.iter().rev().find_map(|sc| match &sc.kind {
            ScopeKind::Owner(o) => Some(o.clone()),
            _ => None,
        })
    }

    fn current_module(&self) -> String {
        let mut m = self.syms.module.clone();
        for sc in &self.scopes {
            if let ScopeKind::Module(name) = &sc.kind {
                m.push_str("::");
                m.push_str(name);
            }
        }
        m
    }

    fn parse(&mut self) {
        while self.i < self.bytes.len() {
            let b = self.bytes[self.i];
            if b.is_ascii_whitespace() {
                self.i += 1;
            } else if self.text[self.i..].starts_with("//") {
                self.skip_line();
            } else if self.text[self.i..].starts_with("#[") || self.text[self.i..].starts_with("#!")
            {
                self.consume_attr();
            } else if b == b'{' {
                self.depth += 1;
                let kind = self.pending_scope.take().unwrap_or(ScopeKind::Other);
                if let ScopeKind::Fn(idx) = kind {
                    self.nodes[idx].body = Some(Region {
                        start: self.i,
                        end: self.i, // patched on close
                    });
                }
                self.scopes.push(Scope {
                    kind,
                    depth: self.depth,
                });
                self.i += 1;
            } else if b == b'}' {
                if let Some(top) = self.scopes.last() {
                    if top.depth == self.depth {
                        let top = self.scopes.pop().unwrap();
                        if let ScopeKind::Fn(idx) = top.kind {
                            if let Some(body) = &mut self.nodes[idx].body {
                                body.end = self.i + 1;
                            }
                        }
                    }
                }
                self.depth = self.depth.saturating_sub(1);
                self.i += 1;
            } else if b == b';' {
                if self.current_fn().is_none() && self.nest == 0 {
                    self.pending_scope = None;
                    self.pending_attrs.clear();
                }
                self.i += 1;
            } else if matches!(b, b'(' | b'[') {
                if self.current_fn().is_none() {
                    self.nest += 1;
                }
                self.i += 1;
            } else if matches!(b, b')' | b']') {
                if self.current_fn().is_none() {
                    self.nest -= 1;
                }
                self.i += 1;
            } else if b == b'\'' {
                // Lifetime tick (char literals were fully blanked).
                self.i += 1;
            } else if b.is_ascii_digit() {
                // Numbers (incl. float/dot-chain starts like `0..n`).
                while self.i < self.bytes.len()
                    && (self.bytes[self.i].is_ascii_alphanumeric()
                        || self.bytes[self.i] == b'_'
                        || self.bytes[self.i] == b'.')
                {
                    self.i += 1;
                }
            } else if b.is_ascii_alphabetic() || b == b'_' {
                let start = self.i;
                let word = self.read_ident();
                if self.current_fn().is_some() {
                    self.body_word(&word, start);
                } else {
                    self.item_word(&word);
                }
            } else {
                self.i += 1;
            }
        }
    }

    fn skip_line(&mut self) {
        while self.i < self.bytes.len() && self.bytes[self.i] != b'\n' {
            self.i += 1;
        }
    }

    fn read_ident(&mut self) -> String {
        let start = self.i;
        while self.i < self.bytes.len()
            && (self.bytes[self.i].is_ascii_alphanumeric() || self.bytes[self.i] == b'_')
        {
            self.i += 1;
        }
        self.text[start..self.i].to_string()
    }

    fn consume_attr(&mut self) {
        // `#[…]` or `#![…]`, bracket-matched.
        let start = self.i;
        let open = match self.text[self.i..].find('[') {
            Some(o) => self.i + o,
            None => {
                self.i += 1;
                return;
            }
        };
        let mut depth = 0usize;
        let mut j = open;
        while j < self.bytes.len() {
            match self.bytes[j] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if self.current_fn().is_none() && !self.text[start..].starts_with("#!") {
            self.pending_attrs.push(self.text[start..j].to_string());
        }
        self.i = j;
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while self.i < self.bytes.len() && self.bytes[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
            if self.text[self.i..].starts_with("//") {
                self.skip_line();
            } else {
                break;
            }
        }
    }

    // --- item level ---------------------------------------------------

    fn item_word(&mut self, word: &str) {
        match word {
            "use" => self.parse_use(),
            "mod" => {
                self.skip_ws_and_comments();
                let name = self.read_ident();
                if !name.is_empty() {
                    self.pending_scope = Some(ScopeKind::Module(name));
                }
                self.pending_attrs.clear();
            }
            "impl" => {
                let owner = self.parse_impl_header();
                self.pending_scope = Some(ScopeKind::Owner(owner));
                self.pending_attrs.clear();
            }
            "trait" => {
                self.skip_ws_and_comments();
                let name = self.read_ident();
                self.pending_scope = Some(ScopeKind::Owner(name));
                self.pending_attrs.clear();
            }
            "fn" => {
                self.skip_ws_and_comments();
                let name = self.read_ident();
                let sig_start = self.i - name.len();
                let (line, _) = self.s.line_col(sig_start);
                let attrs = std::mem::take(&mut self.pending_attrs);
                let hot = attrs.iter().any(|a| attr_is_hot_path(a));
                let in_test = self.file_in_test || in_any(self.tests, sig_start);
                let node = FnNode {
                    file: self.file,
                    line,
                    name,
                    owner: self.current_owner(),
                    module: self.current_module(),
                    attrs,
                    body: None,
                    hot_path: hot,
                    in_test,
                };
                self.nodes.push(node);
                self.calls.push(Vec::new());
                self.pending_scope = Some(ScopeKind::Fn(self.nodes.len() - 1));
            }
            "macro_rules" => self.skip_macro_rules(),
            "struct" | "enum" | "union" | "static" | "const" | "type" | "extern" => {
                self.pending_attrs.clear();
            }
            _ => {}
        }
    }

    fn parse_use(&mut self) {
        // Raw text to the terminating `;` (brace-aware for groups).
        let start = self.i;
        let mut depth = 0i64;
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                b';' if depth == 0 => break,
                _ => {}
            }
            self.i += 1;
        }
        let tree = self.text[start..self.i].to_string();
        parse_use_tree(&tree, "", &mut self.syms);
    }

    fn parse_impl_header(&mut self) -> String {
        // Grab text up to the opening `{` (or `;` for bodyless impls of
        // the form `impl Trait for Type;` — not real Rust, but be safe).
        let start = self.i;
        while self.i < self.bytes.len() && self.bytes[self.i] != b'{' && self.bytes[self.i] != b';'
        {
            self.i += 1;
        }
        let header = &self.text[start..self.i];
        // Drop the leading `<…>` generic-parameter list of the impl
        // itself, so `impl<T: Front> Faults<T>` names `Faults`, not ``.
        let header = strip_leading_generics(header);
        // `impl<T> Trait<U> for Type<T>` → the implementing type is what
        // follows the last top-level ` for `; otherwise the whole header
        // is the type (inherent impl).
        let subject = match split_top_level_for(header) {
            Some(after) => after,
            None => header,
        };
        last_type_name(subject)
    }

    fn skip_macro_rules(&mut self) {
        // `macro_rules! name { … }` — token soup; skip the whole body so
        // `fn`-shaped fragments inside don't create phantom nodes.
        while self.i < self.bytes.len() && self.bytes[self.i] != b'{' {
            self.i += 1;
        }
        let mut depth = 0usize;
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    // --- body level ---------------------------------------------------

    fn body_word(&mut self, word: &str, start: usize) {
        if word == "fn" {
            // Nested fn definition: skip its name so it doesn't read as a
            // call; its body is attributed to the enclosing item fn.
            self.skip_ws_and_comments();
            let _ = self.read_ident();
            return;
        }
        if NON_CALL_KEYWORDS.contains(&word) {
            return;
        }
        // Collect the `::`-joined path (with turbofish skipping).
        let mut path = vec![word.to_string()];
        loop {
            let save = self.i;
            self.skip_ws_and_comments();
            if self.text[self.i..].starts_with("::") {
                self.i += 2;
                self.skip_ws_and_comments();
                if self.text[self.i..].starts_with('<') {
                    if !self.skip_angles() {
                        self.i = save;
                        break;
                    }
                    continue;
                }
                let seg = self.read_ident();
                if seg.is_empty() {
                    self.i = save;
                    break;
                }
                path.push(seg);
            } else {
                self.i = save;
                break;
            }
        }
        // A call only if the next non-ws char is `(` (a `!` means macro —
        // its arguments get scanned as ordinary body text).
        let save = self.i;
        self.skip_ws_and_comments();
        let is_call = self.text[self.i..].starts_with('(');
        self.i = save;
        if !is_call {
            return;
        }
        // Previous non-ws char decides method-call syntax; a `..` range
        // before the name (`0..len(…)`) is not a method receiver.
        let mut k = start;
        let mut prev = None;
        while k > 0 {
            k -= 1;
            if !self.bytes[k].is_ascii_whitespace() {
                prev = Some(k);
                break;
            }
        }
        let kind = match prev {
            Some(p) if self.bytes[p] == b'.' && (p == 0 || self.bytes[p - 1] != b'.') => {
                CallKind::Method
            }
            _ if path.len() > 1 => CallKind::Path,
            _ => CallKind::Bare,
        };
        if kind == CallKind::Method && path.len() > 1 {
            // `x.seg::seg(` is not valid Rust; treat conservatively as a
            // path call.
            return self.push_call(CallKind::Path, path, start);
        }
        self.push_call(kind, path, start);
    }

    fn push_call(&mut self, kind: CallKind, path: Vec<String>, offset: usize) {
        if let Some(f) = self.current_fn() {
            self.calls[f].push(CallSite { kind, path, offset });
        }
    }

    /// Skips a balanced `<…>` group starting at `self.i` (which points at
    /// `<`). `>>` closes two levels; the `>` of `->` closes none.
    fn skip_angles(&mut self) -> bool {
        let mut depth = 0i64;
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'<' => depth += 1,
                b'>' => {
                    if self.i > 0 && self.bytes[self.i - 1] == b'-' {
                        // `->` inside fn-pointer types.
                    } else {
                        depth -= 1;
                        if depth == 0 {
                            self.i += 1;
                            return true;
                        }
                    }
                }
                b';' | b'{' => return false, // runaway: not a turbofish
                _ => {}
            }
            self.i += 1;
        }
        false
    }
}

/// Skips a leading balanced `<…>` group (the impl's own generic
/// parameters), returning the rest.
fn strip_leading_generics(header: &str) -> &str {
    let t = header.trim_start();
    if !t.starts_with('<') {
        return header;
    }
    let bytes = t.as_bytes();
    let mut depth = 0i64;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'<' => depth += 1,
            b'>' => {
                if i > 0 && bytes[i - 1] == b'-' {
                    // `->` in fn-trait bounds closes nothing.
                } else {
                    depth -= 1;
                    if depth == 0 {
                        return &t[i + 1..];
                    }
                }
            }
            _ => {}
        }
    }
    header
}

/// Splits `impl … for Type` at the top-level ` for `, returning the text
/// after it. Angle depth is respected so `Foo<for<'a> Fn(&'a u8)>` does
/// not split.
fn split_top_level_for(header: &str) -> Option<&str> {
    let bytes = header.as_bytes();
    let mut depth = 0i64;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' => {
                if i > 0 && bytes[i - 1] == b'-' {
                } else {
                    depth -= 1;
                }
            }
            b'f' if depth == 0
                && header[i..].starts_with("for")
                && i > 0
                && bytes[i - 1].is_ascii_whitespace()
                && header[i + 3..].starts_with(|c: char| c.is_whitespace()) =>
            {
                return Some(&header[i + 3..]);
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Last path segment of a type spelling, generics stripped:
/// `mmwave_dsp::complex::Complex64<T>` → `Complex64`.
fn last_type_name(s: &str) -> String {
    let s = s.trim();
    let s = match s.find(['<', '{']) {
        Some(p) => &s[..p],
        None => s,
    };
    let s = s.trim().trim_start_matches('&');
    s.rsplit("::")
        .next()
        .unwrap_or(s)
        .trim()
        .chars()
        .filter(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Parses one `use` tree (scrubbed text, `use` keyword already consumed,
/// no trailing `;`) into imports/globs. `prefix` is the joined leading
/// path of enclosing groups (no trailing `::`).
fn parse_use_tree(tree: &str, prefix: &str, syms: &mut FileSyms) {
    let tree = tree.trim();
    // Group: `a::b::{c, d as e, f::*}` — recurse on comma-split parts.
    if let Some(brace) = tree.find('{') {
        let head = tree[..brace].trim().trim_end_matches("::").trim();
        let joined = join_path(prefix, &strip_ws(head));
        let inner = match tree[brace + 1..].rfind('}') {
            Some(close) => &tree[brace + 1..brace + 1 + close],
            None => &tree[brace + 1..],
        };
        for part in split_top_level_commas(inner) {
            parse_use_tree(&part, &joined, syms);
        }
        return;
    }
    // `path as alias` — "as" is a keyword, so a word-bounded match is
    // unambiguous (path segments named exactly `as` cannot exist).
    let (path, alias) = match crate::lints::find_token(tree, "as").first() {
        Some(&pos) => (tree[..pos].trim(), Some(tree[pos + 2..].trim().to_string())),
        None => (tree, None),
    };
    let path = strip_ws(path);
    if path.is_empty() {
        return;
    }
    if path == "*" || path.ends_with("::*") {
        let base = join_path(prefix, path.trim_end_matches('*').trim_end_matches("::"));
        if !base.is_empty() {
            syms.globs.push(base);
        }
        return;
    }
    let full = join_path(prefix, &path);
    if full.is_empty() {
        return;
    }
    if full == "self" || full.ends_with("::self") {
        // `use a::b::{self}` imports module `b` under its own name.
        let parent = full.trim_end_matches("self").trim_end_matches("::");
        if parent.is_empty() {
            return;
        }
        let n = parent.rsplit("::").next().unwrap_or(parent).to_string();
        let target = alias.unwrap_or(n);
        syms.imports.insert(target, parent.to_string());
        return;
    }
    let name = match alias {
        Some(a) => a,
        None => full.rsplit("::").next().unwrap_or(&full).to_string(),
    };
    if !name.is_empty() && name != "_" {
        syms.imports.insert(name, full);
    }
}

fn strip_ws(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

fn join_path(prefix: &str, rest: &str) -> String {
    let rest = rest.trim().trim_start_matches("::");
    if prefix.is_empty() {
        rest.to_string()
    } else if rest.is_empty() {
        prefix.to_string()
    } else {
        format!("{prefix}::{rest}")
    }
}

/// Splits on commas at brace depth 0 (for `use a::{b, c::{d, e}}`).
fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '{' => {
                depth += 1;
                cur.push(c);
            }
            '}' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                if !cur.trim().is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

// ---------------------------------------------------------------------
// Closure, taint classification, and exports
// ---------------------------------------------------------------------

/// Determinism taint sources: the concrete spellings of nondeterminism
/// (same family the per-file `determinism` lint bans inside its crate
/// scope, plus the clippy-owned `SystemTime::now`).
pub const TAINT_SOURCES: &[&str] = &[
    "Instant::now",
    "SystemTime::now",
    "HashMap",
    "HashSet",
    "from_entropy",
    "OsRng",
];

impl CallGraph {
    /// Hot-path closure: every non-test node reachable from a
    /// `#[hot_path]` root. Returns the membership mask and a BFS parent
    /// map for reconstructing call chains (roots have no parent).
    pub fn hot_closure(&self) -> (Vec<bool>, Vec<Option<usize>>) {
        let roots: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].hot_path && !self.nodes[i].in_test)
            .collect();
        self.reach(&roots)
    }

    /// BFS over call edges from `roots`, never entering test nodes.
    pub fn reach(&self, roots: &[usize]) -> (Vec<bool>, Vec<Option<usize>>) {
        let mut seen = vec![false; self.nodes.len()];
        let mut parent = vec![None; self.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if !seen[m] && !self.nodes[m].in_test {
                    seen[m] = true;
                    parent[m] = Some(n);
                    queue.push_back(m);
                }
            }
        }
        (seen, parent)
    }

    /// Root-to-`node` call chain through a BFS parent map, as display
    /// names.
    pub fn chain(&self, node: usize, parent: &[Option<usize>]) -> Vec<String> {
        let mut idxs = vec![node];
        let mut cur = node;
        while let Some(p) = parent[cur] {
            idxs.push(p);
            cur = p;
        }
        idxs.reverse();
        idxs.iter().map(|&i| self.nodes[i].display()).collect()
    }

    /// Nodes whose body contains a taint-source token, with the tokens.
    pub fn taint_sources(
        &self,
        scrubbed: &[Scrubbed],
    ) -> BTreeMap<usize, Vec<(usize, &'static str)>> {
        let mut out: BTreeMap<usize, Vec<(usize, &'static str)>> = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.in_test {
                continue;
            }
            let Some(body) = &n.body else { continue };
            let text = &scrubbed[n.file].text[body.start..body.end];
            for tok in TAINT_SOURCES {
                for off in crate::lints::find_token(text, tok) {
                    out.entry(i).or_default().push((body.start + off, tok));
                }
            }
        }
        out
    }

    /// Determinism sinks: functions that produce digests, fingerprints,
    /// or journal lines — identified by name (or owner-type name), the
    /// repo's uniform spelling for its bit-identity surfaces.
    pub fn taint_sinks(&self) -> Vec<usize> {
        const SINK_STEMS: &[&str] = &["digest", "fingerprint", "journal"];
        (0..self.nodes.len())
            .filter(|&i| {
                let n = &self.nodes[i];
                if n.in_test {
                    return false;
                }
                let name = n.name.to_ascii_lowercase();
                let owner = n
                    .owner
                    .as_deref()
                    .map(str::to_ascii_lowercase)
                    .unwrap_or_default();
                SINK_STEMS
                    .iter()
                    .any(|s| name.contains(s) || owner.contains(s))
            })
            .collect()
    }

    /// Summary counts for `--stats` and the JSON export.
    pub fn stats(&self, scrubbed: &[Scrubbed]) -> GraphStats {
        let (closure, _) = self.hot_closure();
        let sources = self.taint_sources(scrubbed);
        GraphStats {
            nodes: self.nodes.len(),
            edges: self.edges.iter().map(Vec::len).sum(),
            external_calls: self.external.iter().map(Vec::len).sum(),
            hot_roots: self
                .nodes
                .iter()
                .filter(|n| n.hot_path && !n.in_test)
                .count(),
            hot_closure: closure.iter().filter(|&&b| b).count(),
            taint_sources: sources.values().map(Vec::len).sum(),
            taint_source_fns: sources.len(),
            taint_sinks: self.taint_sinks().len(),
        }
    }

    /// Machine-readable export (`results/callgraph.json`).
    pub fn to_json(&self, files: &[SourceFile], scrubbed: &[Scrubbed]) -> String {
        use std::fmt::Write as _;
        let (closure, _) = self.hot_closure();
        let sources = self.taint_sources(scrubbed);
        let sinks: BTreeSet<usize> = self.taint_sinks().into_iter().collect();
        let stats = self.stats(scrubbed);
        let mut s = String::from("{\n  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"id\":\"{}\",\"file\":\"{}\",\"line\":{},\"hot_path\":{},\"in_hot_closure\":{},\"taint_source\":{},\"taint_sink\":{},\"test\":{}}}",
                esc(&n.display()),
                esc(&files[n.file].rel.display().to_string()),
                n.line,
                n.hot_path,
                closure[i],
                sources.contains_key(&i),
                sinks.contains(&i),
                n.in_test,
            );
            s.push_str(if i + 1 < self.nodes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"edges\": [");
        let mut first = true;
        for (i, es) in self.edges.iter().enumerate() {
            for &e in es {
                if !first {
                    s.push(',');
                }
                first = false;
                let _ = write!(s, "[{i},{e}]");
            }
        }
        s.push_str("],\n  \"external\": [\n");
        let with_ext: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| !self.external[i].is_empty())
            .collect();
        for (k, &i) in with_ext.iter().enumerate() {
            let list = self.external[i]
                .iter()
                .map(|c| format!("\"{}\"", esc(c)))
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(s, "    {{\"node\":{i},\"calls\":[{list}]}}");
            s.push_str(if k + 1 < with_ext.len() { ",\n" } else { "\n" });
        }
        let _ = write!(
            s,
            "  ],\n  \"stats\": {{\"nodes\":{},\"edges\":{},\"external_calls\":{},\"hot_roots\":{},\"hot_closure\":{},\"taint_sources\":{},\"taint_source_fns\":{},\"taint_sinks\":{}}}\n}}",
            stats.nodes,
            stats.edges,
            stats.external_calls,
            stats.hot_roots,
            stats.hot_closure,
            stats.taint_sources,
            stats.taint_source_fns,
            stats.taint_sinks,
        );
        s
    }

    /// Graphviz export (`results/callgraph.dot`): nodes with at least one
    /// edge, hot-path closure / taint roles colored.
    pub fn to_dot(&self, scrubbed: &[Scrubbed]) -> String {
        use std::fmt::Write as _;
        let (closure, _) = self.hot_closure();
        let sources = self.taint_sources(scrubbed);
        let sinks: BTreeSet<usize> = self.taint_sinks().into_iter().collect();
        let mut keep = vec![false; self.nodes.len()];
        for (i, es) in self.edges.iter().enumerate() {
            if !es.is_empty() {
                keep[i] = true;
            }
            for &e in es {
                keep[e] = true;
            }
        }
        let mut s =
            String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            if !keep[i] || n.in_test {
                continue;
            }
            let color = if n.hot_path {
                ",style=filled,fillcolor=\"#e74c3c\",fontcolor=white"
            } else if closure[i] {
                ",style=filled,fillcolor=\"#f5b7b1\""
            } else if sinks.contains(&i) {
                ",style=filled,fillcolor=\"#aed6f1\""
            } else if sources.contains_key(&i) {
                ",style=filled,fillcolor=\"#f9e79f\""
            } else {
                ""
            };
            let _ = writeln!(s, "  n{} [label=\"{}\"{}];", i, esc(&n.display()), color);
        }
        for (i, es) in self.edges.iter().enumerate() {
            if self.nodes[i].in_test {
                continue;
            }
            for &e in es {
                if !self.nodes[e].in_test {
                    let _ = writeln!(s, "  n{i} -> n{e};");
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Summary counters for `--stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    pub external_calls: usize,
    pub hot_roots: usize,
    pub hot_closure: usize,
    pub taint_sources: usize,
    pub taint_source_fns: usize,
    pub taint_sinks: usize,
}

impl GraphStats {
    pub fn render(&self) -> String {
        format!(
            "callgraph: {} nodes, {} edges, {} external calls; hot-path: {} roots, {} in closure; taint: {} source tokens in {} fns, {} sinks",
            self.nodes,
            self.edges,
            self.external_calls,
            self.hot_roots,
            self.hot_closure,
            self.taint_sources,
            self.taint_source_fns,
            self.taint_sinks,
        )
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}
