//! `cargo xtask` — workspace automation. The only subcommand today is
//! `lint`, the invariant lint engine (see `lib.rs` for the lint table).
//!
//! Exit status: 0 when the workspace is clean, 1 when any finding
//! survives suppression, 2 on usage or I/O errors — so CI can tell
//! "violations" from "the tool itself broke".

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask lint [--json] [--graph] [--stats] [--root <path>]");
    eprintln!();
    eprintln!("  lint     run the invariant lints (determinism, hot-path-alloc,");
    eprintln!("           telemetry-hygiene, lifecycle-single-writer) plus the");
    eprintln!("           transitive call-graph lints (hot-path-closure,");
    eprintln!("           hot-path-panic, determinism-taint) over crates/");
    eprintln!("  --json   emit findings as a JSON array on stdout (for CI diffing)");
    eprintln!("  --graph  export the workspace call graph to results/callgraph.json");
    eprintln!("           and results/callgraph.dot");
    eprintln!("  --stats  print graph summary stats (nodes/edges, hot-path closure");
    eprintln!("           size, taint source/sink counts) on stderr");
    eprintln!("  --root   workspace root (default: parent of crates/xtask at build time,");
    eprintln!("           i.e. the repo checkout the binary was built from)");
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut graph = false;
    let mut stats = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--graph" => graph = true,
            "--stats" => stats = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown lint flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    // `cargo xtask` runs from wherever the user is; the workspace root is
    // two levels up from this crate's manifest.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("xtask lives at <root>/crates/xtask")
            .to_path_buf()
    });
    let files = match xtask::collect_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = xtask::lint_files(&files);
    if graph || stats {
        let (scrubbed, g) = xtask::build_graph(&files);
        if stats {
            eprintln!("{}", g.stats(&scrubbed).render());
        }
        if graph {
            let dir = root.join("results");
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("xtask lint: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
            let json_path = dir.join("callgraph.json");
            let dot_path = dir.join("callgraph.dot");
            if let Err(e) = std::fs::write(&json_path, g.to_json(&files, &scrubbed)) {
                eprintln!("xtask lint: cannot write {}: {e}", json_path.display());
                return ExitCode::from(2);
            }
            if let Err(e) = std::fs::write(&dot_path, g.to_dot(&scrubbed)) {
                eprintln!("xtask lint: cannot write {}: {e}", dot_path.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "xtask lint: wrote {} and {}",
                json_path.display(),
                dot_path.display()
            );
        }
    }
    if json {
        println!("{}", xtask::diag::report_json(&findings));
    } else {
        for f in &findings {
            eprint!("{}", f.render());
            eprintln!();
        }
    }
    if findings.is_empty() {
        if !json {
            eprintln!("xtask lint: workspace clean (all invariants hold)");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} finding(s)", findings.len());
        ExitCode::from(1)
    }
}
