//! `cargo xtask` — workspace automation. The only subcommand today is
//! `lint`, the invariant lint engine (see `lib.rs` for the lint table).
//!
//! Exit status: 0 when the workspace is clean, 1 when any finding
//! survives suppression, 2 on usage or I/O errors — so CI can tell
//! "violations" from "the tool itself broke".

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask lint [--json] [--root <path>]");
    eprintln!();
    eprintln!("  lint     run the invariant lints (determinism, hot-path-alloc,");
    eprintln!("           telemetry-hygiene, lifecycle-single-writer) over crates/");
    eprintln!("  --json   emit findings as a JSON array on stdout (for CI diffing)");
    eprintln!("  --root   workspace root (default: parent of crates/xtask at build time,");
    eprintln!("           i.e. the repo checkout the binary was built from)");
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown lint flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    // `cargo xtask` runs from wherever the user is; the workspace root is
    // two levels up from this crate's manifest.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("xtask lives at <root>/crates/xtask")
            .to_path_buf()
    });
    let findings = match xtask::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", xtask::diag::report_json(&findings));
    } else {
        for f in &findings {
            eprint!("{}", f.render());
            eprintln!();
        }
    }
    if findings.is_empty() {
        if !json {
            eprintln!("xtask lint: workspace clean (all invariants hold)");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} finding(s)", findings.len());
        ExitCode::from(1)
    }
}
