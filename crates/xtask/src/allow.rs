//! The `xtask-allow` escape hatch.
//!
//! A comment of the form
//!
//! ```text
//! // xtask-allow(<lint>): <non-empty reason>
//! ```
//!
//! suppresses findings of `<lint>` on the same line (trailing comment) or
//! on the next source line (standalone comment above the offending line).
//! When the directive stands directly above a `fn` item (attributes and
//! doc comments may sit between), it is *item-scoped*: it suppresses
//! findings of that lint anywhere in the function. Item scope exists for
//! the transitive lints (`hot-path-closure`, `hot-path-panic`,
//! `determinism-taint`), whose findings are properties of the whole
//! function's position in the call graph rather than of one line — a
//! per-line hatch would force one directive per token and bury the code.
//! The directive is itself linted:
//!
//! - a directive missing the lint name, the `:`, or a non-empty reason is
//!   a `malformed-allow` finding — suppressions must say *why*;
//! - a directive that suppressed nothing is a `stale-allow` finding, so
//!   allows cannot rot in place after the code they excused is gone.

use crate::diag::Finding;
use crate::scrub::Scrubbed;
use std::path::Path;

/// One parsed, well-formed directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Lint id this allow suppresses.
    pub lint: String,
    /// 1-based line the directive sits on.
    pub line: usize,
    /// The mandatory justification.
    pub reason: String,
}

/// Parses every `xtask-allow` directive in the file's comments. Malformed
/// directives become findings immediately.
pub fn parse_allows(rel: &Path, scrubbed: &Scrubbed, src: &str) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in &scrubbed.comments {
        // A directive must *lead* a plain comment. Doc comments and
        // mid-prose mentions (like this sentence naming xtask-allow) are
        // never directives.
        let body = if let Some(b) = c.text.strip_prefix("//") {
            if b.starts_with('/') || b.starts_with('!') {
                continue;
            }
            b
        } else if let Some(b) = c.text.strip_prefix("/*") {
            if b.starts_with('*') || b.starts_with('!') {
                continue;
            }
            b
        } else {
            continue;
        };
        let body = body.trim_start();
        let Some(rest) = body.strip_prefix("xtask-allow") else {
            continue;
        };
        let parsed = parse_directive(rest);
        match parsed {
            Ok((lint, reason)) => allows.push(Allow {
                lint,
                line: c.line,
                reason,
            }),
            Err(why) => findings.push(Finding {
                lint: "malformed-allow",
                file: rel.to_path_buf(),
                line: c.line,
                col: 1,
                snippet: line_text(src, scrubbed, c.line),
                message: format!("malformed `xtask-allow` directive: {why}"),
            }),
        }
    }
    (allows, findings)
}

fn parse_directive(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(<lint>)` after `xtask-allow`".into());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `(` in `xtask-allow(<lint>)`".into());
    };
    let lint = rest[..close].trim();
    if lint.is_empty() {
        return Err("empty lint name".into());
    }
    let after = rest[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return Err("missing `: <reason>` — every suppression must explain itself".into());
    };
    let reason = reason.trim().trim_end_matches("*/").trim();
    if reason.is_empty() {
        return Err("empty reason — every suppression must explain itself".into());
    }
    Ok((lint.to_string(), reason.to_string()))
}

/// Applies `allows` to `findings`: a finding is suppressed when an allow
/// for its lint sits on the same line or the line directly above, or —
/// when the allow stands directly above a `fn` item — anywhere within
/// that function (item scope). Returns the surviving findings plus a
/// `stale-allow` finding for every allow that suppressed nothing.
pub fn apply_allows(
    rel: &Path,
    src: &str,
    scrubbed: &Scrubbed,
    allows: &[Allow],
    findings: Vec<Finding>,
) -> Vec<Finding> {
    let scopes: Vec<Option<(usize, usize)>> = allows
        .iter()
        .map(|a| item_scope(scrubbed, a.line))
        .collect();
    let mut used = vec![false; allows.len()];
    let mut kept = Vec::new();
    for f in findings {
        let mut suppressed = false;
        for (i, a) in allows.iter().enumerate() {
            let line_hit = a.line == f.line || a.line + 1 == f.line;
            let item_hit = scopes[i]
                .map(|(lo, hi)| f.line >= lo && f.line <= hi)
                .unwrap_or(false);
            if a.lint == f.lint && (line_hit || item_hit) {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(f);
        }
    }
    for (i, a) in allows.iter().enumerate() {
        if !used[i] {
            kept.push(Finding {
                lint: "stale-allow",
                file: rel.to_path_buf(),
                line: a.line,
                col: 1,
                snippet: line_text(src, scrubbed, a.line),
                message: format!(
                    "stale `xtask-allow({})` — it no longer suppresses anything; delete it",
                    a.lint
                ),
            });
        }
    }
    kept
}

/// If the line after `allow_line` begins a `fn` item (attributes,
/// blanked doc comments, and visibility/qualifier keywords may precede
/// the `fn` keyword), returns the item's inclusive line range.
fn item_scope(scrubbed: &Scrubbed, allow_line: usize) -> Option<(usize, usize)> {
    // Start of the line after the directive.
    let start = *scrubbed.line_starts.get(allow_line)?;
    let text = &scrubbed.text;
    let bytes = text.as_bytes();
    let mut i = start;
    // Skip whitespace, intervening comments (the scrubber blanks their
    // bodies but keeps the `//` / `/*` introducers — e.g. another stacked
    // `xtask-allow` directive for a different lint), and attributes.
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if text[i..].starts_with("//") {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if text[i..].starts_with("/*") {
            match text[i..].find("*/") {
                Some(e) => {
                    i += e + 2;
                    continue;
                }
                None => return None,
            }
        }
        if text[i..].starts_with("#[") {
            let mut depth = 0usize;
            while i < bytes.len() {
                match bytes[i] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            break;
        }
    }
    // Visibility/qualifier keywords, then `fn`.
    let item_start = i;
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let ws = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        match &text[ws..i] {
            "fn" => break,
            "pub" => {
                // Optional `(crate)` / `(in path)` restriction.
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'(' {
                    while i < bytes.len() && bytes[i] != b')' {
                        i += 1;
                    }
                    i += 1;
                }
            }
            "const" | "unsafe" | "async" | "extern" => {}
            _ => return None,
        }
    }
    let end = crate::lints::hotpath::fn_extent(text, item_start)?;
    let (lo, _) = scrubbed.line_col(item_start);
    let (hi, _) = scrubbed.line_col(end.saturating_sub(1));
    Some((lo, hi))
}

fn line_text(src: &str, scrubbed: &Scrubbed, line: usize) -> String {
    let start = scrubbed.line_starts[line - 1];
    scrubbed.line_of(src, start).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;
    use std::path::PathBuf;

    fn finding(lint: &'static str, line: usize) -> Finding {
        Finding {
            lint,
            file: PathBuf::from("f.rs"),
            line,
            col: 1,
            snippet: String::new(),
            message: "m".into(),
        }
    }

    #[test]
    fn wellformed_directive_parses() {
        let src = "// xtask-allow(determinism): wall-clock only feeds the watchdog\nlet t = 0;\n";
        let s = scrub(src);
        let (allows, bad) = parse_allows(Path::new("f.rs"), &s, src);
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].lint, "determinism");
        assert!(allows[0].reason.contains("watchdog"));
    }

    #[test]
    fn reasonless_directive_is_rejected() {
        for src in [
            "// xtask-allow(determinism)\n",
            "// xtask-allow(determinism):\n",
            "// xtask-allow(determinism):   \n",
            "// xtask-allow(): because\n",
            "// xtask-allow determinism: because\n",
        ] {
            let s = scrub(src);
            let (allows, bad) = parse_allows(Path::new("f.rs"), &s, src);
            assert!(allows.is_empty(), "{src:?} must not parse");
            assert_eq!(bad.len(), 1, "{src:?} must be flagged");
            assert_eq!(bad[0].lint, "malformed-allow");
        }
    }

    #[test]
    fn allow_suppresses_same_and_next_line_only() {
        let src = "// xtask-allow(determinism): reason here\nx\ny\n";
        let s = scrub(src);
        let (allows, _) = parse_allows(Path::new("f.rs"), &s, src);
        let out = apply_allows(
            Path::new("f.rs"),
            src,
            &s,
            &allows,
            vec![finding("determinism", 2), finding("determinism", 3)],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn unused_allow_is_stale() {
        let src = "// xtask-allow(determinism): obsolete excuse\nlet x = 1;\n";
        let s = scrub(src);
        let (allows, _) = parse_allows(Path::new("f.rs"), &s, src);
        let out = apply_allows(Path::new("f.rs"), src, &s, &allows, vec![]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "stale-allow");
    }

    #[test]
    fn allow_for_wrong_lint_does_not_suppress() {
        let src = "// xtask-allow(hot-path-alloc): wrong lint\nx\n";
        let s = scrub(src);
        let (allows, _) = parse_allows(Path::new("f.rs"), &s, src);
        let out = apply_allows(
            Path::new("f.rs"),
            src,
            &s,
            &allows,
            vec![finding("determinism", 2)],
        );
        assert_eq!(out.len(), 2); // original finding + stale allow
    }
}
