//! Call resolution: raw [`crate::graph::CallSite`] tokens → workspace
//! call-graph edges.
//!
//! The symbol table indexes every non-test `fn` node three ways: free
//! functions by `(module, name)`, methods by `(owner type, name)`, and
//! everything by full display path. Resolution then applies, in order:
//!
//! 1. **Bare calls** `f(…)`: same-module free fn → `use`-imported name →
//!    glob-imported modules → external.
//! 2. **Path calls** `a::b::f(…)`: `crate`/`self`/`super`/`Self` heads
//!    are normalized against the calling file's module; a head matching
//!    a `use` alias is substituted; then full-path lookup →
//!    `(Type, method)` lookup on the last two segments → module-suffix
//!    match on free fns → external.
//! 3. **Method calls** `.f(…)`: receiver types are unknown without type
//!    inference, so the call edges to *every* workspace method named `f`
//!    (the over-approximation that also covers trait-object dispatch);
//!    no candidates → external.
//!
//! Test nodes are never resolution targets. Unresolved calls are
//! recorded per node (sorted, deduped), never silently dropped — the
//! JSON export carries them so precision loss stays visible.

use crate::graph::{CallKind, CallSite, FileSyms, FnNode};
use std::collections::{BTreeMap, BTreeSet};

struct SymbolTable {
    /// `(module, name)` → free-fn node indices.
    free: BTreeMap<(String, String), Vec<usize>>,
    /// `(owner type, name)` → method node indices.
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// method name → node indices (for `.name(…)` over-approximation).
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Full display path → node indices.
    full: BTreeMap<String, Vec<usize>>,
    /// name → node indices with that final segment (for suffix matching).
    by_last: BTreeMap<String, Vec<usize>>,
    /// node index → first module segment (its crate).
    crate_of: Vec<String>,
}

fn build_table(nodes: &[FnNode]) -> SymbolTable {
    let mut t = SymbolTable {
        free: BTreeMap::new(),
        methods: BTreeMap::new(),
        methods_by_name: BTreeMap::new(),
        full: BTreeMap::new(),
        by_last: BTreeMap::new(),
        crate_of: nodes
            .iter()
            .map(|n| first_seg(&n.module).to_string())
            .collect(),
    };
    for (i, n) in nodes.iter().enumerate() {
        if n.in_test {
            continue;
        }
        match &n.owner {
            Some(o) => {
                t.methods
                    .entry((o.clone(), n.name.clone()))
                    .or_default()
                    .push(i);
                t.methods_by_name.entry(n.name.clone()).or_default().push(i);
            }
            None => {
                t.free
                    .entry((n.module.clone(), n.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
        t.full.entry(n.display()).or_default().push(i);
        t.by_last.entry(n.name.clone()).or_default().push(i);
    }
    t
}

/// Resolves every call site of every node. Returns `(edges, external)`
/// parallel to `nodes`, both sorted and deduped.
pub fn resolve(
    nodes: &[FnNode],
    calls: &[Vec<CallSite>],
    syms: &[FileSyms],
) -> (Vec<Vec<usize>>, Vec<Vec<String>>) {
    let table = build_table(nodes);
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut external: Vec<Vec<String>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        let fs = &syms[n.file];
        let mut es: BTreeSet<usize> = BTreeSet::new();
        let mut ex: BTreeSet<String> = BTreeSet::new();
        for call in &calls[i] {
            let targets = resolve_call(call, n, fs, &table);
            if targets.is_empty() {
                ex.insert(call.display());
            } else {
                es.extend(targets.into_iter().filter(|&t| t != i));
            }
        }
        edges[i] = es.into_iter().collect();
        external[i] = ex.into_iter().collect();
    }
    (edges, external)
}

fn resolve_call(call: &CallSite, node: &FnNode, fs: &FileSyms, t: &SymbolTable) -> Vec<usize> {
    match call.kind {
        CallKind::Method => resolve_method(&call.path[0], node, fs, t),
        CallKind::Bare => resolve_bare(&call.path[0], node, fs, t),
        CallKind::Path => resolve_path(&call.path, node, fs, t),
    }
}

/// Method calls have no receiver type without inference, so `.f(…)`
/// over-approximates to every workspace method named `f` — but only in
/// crates the calling file can see: its own crate plus every crate named
/// by a `use` import or glob. A method on a type from crate B cannot be
/// called in crate A unless B's names are in scope somewhere in A, so
/// this keeps trait-object dispatch sound while preventing noise edges
/// into crates the caller does not even depend on.
fn resolve_method(name: &str, node: &FnNode, fs: &FileSyms, t: &SymbolTable) -> Vec<usize> {
    let cands = match t.methods_by_name.get(name) {
        Some(v) => v,
        None => return Vec::new(),
    };
    let mut visible: BTreeSet<&str> = BTreeSet::new();
    visible.insert(first_seg(&node.module));
    visible.insert(first_seg(&fs.crate_root));
    for target in fs.imports.values() {
        visible.insert(first_seg(target));
    }
    for g in &fs.globs {
        visible.insert(first_seg(g));
    }
    cands
        .iter()
        .copied()
        .filter(|&c| visible.contains(t.crate_of[c].as_str()))
        .collect()
}

fn first_seg(path: &str) -> &str {
    path.split("::").next().unwrap_or(path)
}

fn resolve_bare(name: &str, node: &FnNode, fs: &FileSyms, t: &SymbolTable) -> Vec<usize> {
    // Same module (the unqualified-call common case).
    if let Some(v) = t.free.get(&(node.module.clone(), name.to_string())) {
        return v.clone();
    }
    // Inline modules see their file-root siblings too.
    if node.module != fs.module {
        if let Some(v) = t.free.get(&(fs.module.clone(), name.to_string())) {
            return v.clone();
        }
    }
    // Explicitly imported name.
    if let Some(target) = fs.imports.get(name) {
        let full = expand_path(target, node, fs);
        if let Some(v) = t.full.get(&full) {
            return v.clone();
        }
    }
    // Glob-imported modules.
    for g in &fs.globs {
        let base = expand_path(g, node, fs);
        if let Some(v) = t.free.get(&(base, name.to_string())) {
            return v.clone();
        }
    }
    Vec::new()
}

fn resolve_path(path: &[String], node: &FnNode, fs: &FileSyms, t: &SymbolTable) -> Vec<usize> {
    // Normalize the head segment.
    let mut segs: Vec<String> = path.to_vec();
    match segs[0].as_str() {
        "crate" => segs[0] = fs.crate_root.clone(),
        "self" => segs[0] = node.module.clone(),
        "super" => {
            let parent = node
                .module
                .rsplit_once("::")
                .map(|(p, _)| p.to_string())
                .unwrap_or_else(|| node.module.clone());
            segs[0] = parent;
        }
        "Self" => {
            // `Self::method(…)` inside an impl block.
            if let (Some(owner), true) = (&node.owner, segs.len() == 2) {
                if let Some(v) = t.methods.get(&(owner.clone(), segs[1].clone())) {
                    return v.clone();
                }
            }
            return Vec::new();
        }
        head => {
            if let Some(target) = fs.imports.get(head) {
                segs[0] = expand_path(target, node, fs);
            }
        }
    }
    // Re-split: substituted heads may hold multi-segment paths.
    let joined = segs.join("::");
    let segs: Vec<&str> = joined.split("::").collect();

    // Exact full-path match (free fns and `Type::method` where the path
    // spells module::Type::method).
    if let Some(v) = t.full.get(&joined) {
        return v.clone();
    }
    // `Type::method(…)` — associated-function call through the type name
    // (possibly behind a module prefix the table doesn't key on).
    if segs.len() >= 2 {
        let (ty, m) = (segs[segs.len() - 2], segs[segs.len() - 1]);
        if let Some(v) = t.methods.get(&(ty.to_string(), m.to_string())) {
            return filter_by_suffix(v, &segs, t);
        }
    }
    // Free fn addressed by a module suffix (`snapshot::refresh(…)` after
    // `use mmwave_channel::snapshot`— already expanded — or relative
    // submodule paths the expansion didn't cover).
    if let Some(cands) = t.by_last.get(*segs.last().unwrap()) {
        let matched: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| {
                // The call path must be a `::`-boundary suffix of the
                // node's display path.
                let disp = path_of(c, t);
                disp.as_deref().map(|d| is_path_suffix(d, &joined)) == Some(true)
            })
            .collect();
        if !matched.is_empty() {
            return matched;
        }
    }
    Vec::new()
}

/// When a `(Type, method)` lookup returns methods on same-named types in
/// different modules, keep only those whose display path matches the
/// call path's module prefix, if any do.
fn filter_by_suffix(cands: &[usize], segs: &[&str], t: &SymbolTable) -> Vec<usize> {
    if segs.len() <= 2 {
        return cands.to_vec();
    }
    let joined = segs.join("::");
    let narrowed: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| path_of(c, t).as_deref().map(|d| is_path_suffix(d, &joined)) == Some(true))
        .collect();
    if narrowed.is_empty() {
        cands.to_vec()
    } else {
        narrowed
    }
}

/// Display path of a node via the full-path index (reverse lookup).
fn path_of(idx: usize, t: &SymbolTable) -> Option<String> {
    // The table is small enough that a scan is fine; this runs only on
    // suffix-match fallbacks.
    t.full
        .iter()
        .find(|(_, v)| v.contains(&idx))
        .map(|(k, _)| k.clone())
}

/// True when `suffix` equals `full` or ends it at a `::` boundary.
fn is_path_suffix(full: &str, suffix: &str) -> bool {
    full == suffix
        || full
            .strip_suffix(suffix)
            .map(|rest| rest.ends_with("::"))
            .unwrap_or(false)
}

/// Expands `crate`/`self`/`super` heads in a stored import path against
/// the calling context.
fn expand_path(path: &str, node: &FnNode, fs: &FileSyms) -> String {
    let mut segs: Vec<&str> = path.split("::").collect();
    let head_owned;
    match segs[0] {
        "crate" => segs[0] = &fs.crate_root,
        "self" => segs[0] = &fs.module,
        "super" => {
            head_owned = fs
                .module
                .rsplit_once("::")
                .map(|(p, _)| p.to_string())
                .unwrap_or_else(|| fs.module.clone());
            segs[0] = &head_owned;
        }
        _ => {}
    }
    let _ = node;
    segs.join("::")
}
