//! Attribute-gated region detection on scrubbed source.
//!
//! Several lints need to know whether a byte offset sits inside the item
//! (or statement, block, field, or match arm) that a `#[cfg(...)]`
//! attribute gates. Without an AST this is computed structurally: find the
//! attribute, skip any further attributes, then take the extent of the
//! thing that follows — up to the matching `}` of the first top-level
//! brace block (with `else`-chain continuation), or the first `;` or `,`
//! at nesting depth 0, whichever ends the construct first.
//!
//! Scrubbing has already blanked strings and comments, so brace counting
//! cannot be derailed by literals. String *contents* are blanked but the
//! attribute text itself (e.g. `feature = "telemetry"`) must be matched
//! against the **original** source; offsets agree byte-for-byte.

use crate::scrub::Scrubbed;

/// Half-open byte range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    pub start: usize,
    pub end: usize,
}

impl Region {
    pub fn contains(&self, offset: usize) -> bool {
        offset >= self.start && offset < self.end
    }
}

/// True when `offset` falls in any region.
pub fn in_any(regions: &[Region], offset: usize) -> bool {
    regions.iter().any(|r| r.contains(offset))
}

/// Finds the extent of every item gated by an attribute for which
/// `attr_matches` returns true when given the attribute's original text
/// (including the `#[` … `]`).
pub fn gated_regions<F>(scrubbed: &Scrubbed, src: &str, attr_matches: F) -> Vec<Region>
where
    F: Fn(&str) -> bool,
{
    let text = scrubbed.text.as_bytes();
    let mut regions = Vec::new();
    let mut i = 0;
    while let Some(off) = scrubbed.text[i..].find("#[") {
        let attr_start = i + off;
        let attr_end = match matching_bracket(text, attr_start + 1) {
            Some(e) => e + 1,
            None => break,
        };
        i = attr_end;
        if !attr_matches(&src[attr_start..attr_end]) {
            continue;
        }
        if let Some(end) = item_extent(&scrubbed.text, attr_end) {
            regions.push(Region {
                start: attr_start,
                end,
            });
        }
    }
    regions
}

/// Offset of the `]` matching the `[` at `open` (which must point at `[`).
fn matching_bracket(text: &[u8], open: usize) -> Option<usize> {
    debug_assert_eq!(text[open], b'[');
    let mut depth = 0usize;
    for (j, &b) in text.iter().enumerate().skip(open) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// End offset (exclusive) of the item starting after position `from`
/// (which points just past a gating attribute's `]`).
fn item_extent(text: &str, from: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut j = from;
    // Skip whitespace and any further attributes stacked on the item.
    loop {
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if text[j..].starts_with("#[") {
            j = matching_bracket(bytes, j + 1)? + 1;
        } else {
            break;
        }
    }
    // Walk to the end of the construct.
    let mut depth = 0i64;
    while j < bytes.len() {
        match bytes[j] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' => {
                if depth == 0 {
                    // A top-level block: the construct ends at its close,
                    // unless an `else` chain continues it.
                    let mut close = matching_brace(bytes, j)?;
                    loop {
                        let mut k = close + 1;
                        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                            k += 1;
                        }
                        if text[k..].starts_with("else") {
                            let next_open = text[k..].find('{').map(|o| k + o)?;
                            close = matching_brace(bytes, next_open)?;
                        } else {
                            return Some(close + 1);
                        }
                    }
                }
                depth += 1;
            }
            b'}' => {
                if depth == 0 {
                    // Enclosing scope closed before the construct did
                    // (e.g. a gated trailing expression): end here.
                    return Some(j);
                }
                depth -= 1;
            }
            b';' | b',' if depth == 0 => return Some(j + 1),
            _ => {}
        }
        j += 1;
    }
    Some(bytes.len())
}

/// Offset of the `}` matching the `{` at `open`.
fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    debug_assert_eq!(bytes[open], b'{');
    let mut depth = 0usize;
    for (j, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Regions gated by `#[cfg(test)]` (in-file test modules and helpers).
pub fn test_regions(scrubbed: &Scrubbed, src: &str) -> Vec<Region> {
    gated_regions(scrubbed, src, |attr| {
        attr.starts_with("#[cfg(") && attr.contains("test")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn telemetry_regions(src: &str) -> Vec<Region> {
        let s = scrub(src);
        gated_regions(&s, src, |attr| {
            attr.contains("feature") && attr.contains("\"telemetry\"")
        })
    }

    #[test]
    fn statement_gate_covers_to_semicolon() {
        let src = "fn f(t: &T) {\n    #[cfg(feature = \"telemetry\")]\n    t.end(clock, Stage::X, t0);\n    other();\n}\n";
        let r = telemetry_regions(src);
        assert_eq!(r.len(), 1);
        let end_call = src.find("t.end").unwrap();
        let other = src.find("other").unwrap();
        assert!(in_any(&r, end_call));
        assert!(!in_any(&r, other));
    }

    #[test]
    fn block_gate_covers_matching_brace_and_else() {
        let src = "fn f() {\n    #[cfg(feature = \"telemetry\")]\n    if x { a(); } else { b(); }\n    c();\n}\n";
        let r = telemetry_regions(src);
        assert_eq!(r.len(), 1);
        assert!(in_any(&r, src.find("a()").unwrap()));
        assert!(in_any(&r, src.find("b()").unwrap()));
        assert!(!in_any(&r, src.find("c()").unwrap()));
    }

    #[test]
    fn field_gate_covers_to_comma() {
        let src = "struct S {\n    #[cfg(feature = \"telemetry\")]\n    tracer: Tracer,\n    other: u32,\n}\n";
        let r = telemetry_regions(src);
        assert_eq!(r.len(), 1);
        assert!(in_any(&r, src.find("tracer:").unwrap()));
        assert!(!in_any(&r, src.find("other:").unwrap()));
    }

    #[test]
    fn fn_gate_covers_whole_body_with_stacked_attrs() {
        let src = "#[cfg(feature = \"telemetry\")]\n#[inline]\nfn traced() {\n    t.event(E::X);\n}\nfn plain() { t.event(E::Y); }\n";
        let r = telemetry_regions(src);
        assert_eq!(r.len(), 1);
        assert!(in_any(&r, src.find("E::X").unwrap()));
        assert!(!in_any(&r, src.find("E::Y").unwrap()));
    }

    #[test]
    fn cfg_test_mod_detected() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let s = scrub(src);
        let r = test_regions(&s, src);
        assert_eq!(r.len(), 1);
        assert!(in_any(&r, src.find("HashMap").unwrap()));
        assert!(!in_any(&r, src.find("real").unwrap()));
    }
}
