//! Workspace invariant lint engine (`cargo xtask lint`).
//!
//! Four repo-specific invariants that clippy cannot express, each born in
//! an earlier PR and previously enforced only by runtime tests:
//!
//! | lint | invariant | origin |
//! |------|-----------|--------|
//! | `determinism` | no wall clocks / seeded-order containers / OS entropy in digest-affecting crates | PR 3 (replay) |
//! | `hot-path-alloc` | no allocating calls in `#[hot_path]` functions | PR 2 (zero-alloc) |
//! | `telemetry-hygiene` | instrumentation call sites gated by `feature = "telemetry"` | PR 4 (byte-identity) |
//! | `lifecycle-single-writer` | `Transition` literals only in `linkstate.rs` | PR 1 (state machine) |
//!
//! Plus two meta-lints on the escape hatch itself: `malformed-allow`
//! (suppression without a reason) and `stale-allow` (suppression that no
//! longer suppresses anything).
//!
//! The engine is AST-free by necessity (offline build, no `syn`): lints
//! run over a position-preserving scrubbed view of each file ([`scrub`])
//! with structural region detection for cfg gates ([`regions`]). That is
//! exact for the token- and region-level contracts enforced here, and the
//! fixture corpus in `tests/fixtures/` pins both directions: known-bad
//! snippets must fire, known-clean idioms must not.

pub mod allow;
pub mod diag;
pub mod lints;
pub mod regions;
pub mod scrub;

use diag::Finding;
use std::path::{Path, PathBuf};

/// One workspace source file: its path relative to the workspace root
/// (used for lint scoping) and its contents.
pub struct SourceFile {
    pub rel: PathBuf,
    pub src: String,
}

/// Runs every lint pass plus the allow layer over one file.
pub fn lint_file(file: &SourceFile) -> Vec<Finding> {
    let scrubbed = scrub::scrub(&file.src);
    let (allows, mut findings) = allow::parse_allows(&file.rel, &scrubbed, &file.src);
    findings.extend(lints::determinism::run(&file.rel, &file.src, &scrubbed));
    findings.extend(lints::hotpath::run(&file.rel, &file.src, &scrubbed));
    findings.extend(lints::telemetry::run(&file.rel, &file.src, &scrubbed));
    findings.extend(lints::lifecycle::run(&file.rel, &file.src, &scrubbed));
    allow::apply_allows(&file.rel, &file.src, &scrubbed, &allows, findings)
}

/// Collects every `.rs` file under `root/crates`, skipping build output
/// and the lint engine's own deliberately-violating fixture corpus.
pub fn collect_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    walk(&root.join("crates"), root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .to_path_buf();
            out.push(SourceFile { rel, src });
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`; findings come back sorted
/// by (file, line, col) for stable text and JSON output.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let files = collect_workspace(root)?;
    let mut findings = Vec::new();
    for f in &files {
        findings.extend(lint_file(f));
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));
    Ok(findings)
}
