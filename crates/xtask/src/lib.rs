//! Workspace invariant lint engine (`cargo xtask lint`).
//!
//! Four repo-specific invariants that clippy cannot express, each born in
//! an earlier PR and previously enforced only by runtime tests:
//!
//! | lint | invariant | origin |
//! |------|-----------|--------|
//! | `determinism` | no wall clocks / seeded-order containers / OS entropy in digest-affecting crates | PR 3 (replay) |
//! | `hot-path-alloc` | no allocating calls in `#[hot_path]` functions | PR 2 (zero-alloc) |
//! | `telemetry-hygiene` | instrumentation call sites gated by `feature = "telemetry"` | PR 4 (byte-identity) |
//! | `lifecycle-single-writer` | `Transition` literals only in `linkstate.rs` | PR 1 (state machine) |
//!
//! Plus three *transitive* lints over the workspace call graph
//! ([`graph`]/[`resolve`]), which make the per-file contracts hold
//! across call boundaries:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `hot-path-closure` | everything *reachable from* a `#[hot_path]` root is allocation-free |
//! | `hot-path-panic` | no `unwrap`/`expect`/`panic!`/bare slice indexing in the hot-path closure |
//! | `determinism-taint` | no nondeterminism source reachable from a digest/fingerprint/journal sink |
//!
//! Plus two meta-lints on the escape hatch itself: `malformed-allow`
//! (suppression without a reason) and `stale-allow` (suppression that no
//! longer suppresses anything).
//!
//! The engine is AST-free by necessity (offline build, no `syn`): lints
//! run over a position-preserving scrubbed view of each file ([`scrub`])
//! with structural region detection for cfg gates ([`regions`]). That is
//! exact for the token- and region-level contracts enforced here, and the
//! fixture corpus in `tests/fixtures/` pins both directions: known-bad
//! snippets must fire, known-clean idioms must not.

pub mod allow;
pub mod diag;
pub mod graph;
pub mod lints;
pub mod regions;
pub mod resolve;
pub mod scrub;

use diag::Finding;
use std::path::{Path, PathBuf};

/// One workspace source file: its path relative to the workspace root
/// (used for lint scoping) and its contents.
pub struct SourceFile {
    pub rel: PathBuf,
    pub src: String,
}

/// Runs the per-file lint passes plus the allow layer over one file.
/// The transitive graph lints need the whole file set — use
/// [`lint_files`] for those.
pub fn lint_file(file: &SourceFile) -> Vec<Finding> {
    let scrubbed = scrub::scrub(&file.src);
    let (allows, mut findings) = allow::parse_allows(&file.rel, &scrubbed, &file.src);
    findings.extend(lints::determinism::run(&file.rel, &file.src, &scrubbed));
    findings.extend(lints::hotpath::run(&file.rel, &file.src, &scrubbed));
    findings.extend(lints::telemetry::run(&file.rel, &file.src, &scrubbed));
    findings.extend(lints::lifecycle::run(&file.rel, &file.src, &scrubbed));
    allow::apply_allows(&file.rel, &file.src, &scrubbed, &allows, findings)
}

/// Runs the full engine — per-file passes *and* the transitive
/// call-graph lints — over a file set, with the allow layer applied per
/// file after the union (so an `xtask-allow(hot-path-closure)` hatch
/// suppresses a graph finding exactly like a per-file one, and unused
/// hatches still surface as `stale-allow`).
pub fn lint_files(files: &[SourceFile]) -> Vec<Finding> {
    let scrubbed: Vec<scrub::Scrubbed> = files.iter().map(|f| scrub::scrub(&f.src)).collect();
    let mut raw: Vec<Finding> = Vec::new();
    let mut allows_per_file = Vec::with_capacity(files.len());
    for (f, s) in files.iter().zip(&scrubbed) {
        let (allows, bad) = allow::parse_allows(&f.rel, s, &f.src);
        allows_per_file.push(allows);
        raw.extend(bad);
        raw.extend(lints::determinism::run(&f.rel, &f.src, s));
        raw.extend(lints::hotpath::run(&f.rel, &f.src, s));
        raw.extend(lints::telemetry::run(&f.rel, &f.src, s));
        raw.extend(lints::lifecycle::run(&f.rel, &f.src, s));
    }
    let g = graph::build(files, &scrubbed);
    raw.extend(lints::closure::run(files, &scrubbed, &g));
    raw.extend(lints::panic::run(files, &scrubbed, &g));
    raw.extend(lints::taint::run(files, &scrubbed, &g));
    let mut findings = Vec::new();
    for ((f, s), allows) in files.iter().zip(&scrubbed).zip(&allows_per_file) {
        let mine: Vec<Finding> = raw.iter().filter(|fi| fi.file == f.rel).cloned().collect();
        findings.extend(allow::apply_allows(&f.rel, &f.src, s, allows, mine));
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));
    findings
}

/// Collects every `.rs` file under `root/crates`, skipping build output
/// and the lint engine's own deliberately-violating fixture corpus.
pub fn collect_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    walk(&root.join("crates"), root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .to_path_buf();
            out.push(SourceFile { rel, src });
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`; findings come back sorted
/// by (file, line, col) for stable text and JSON output.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    Ok(lint_files(&collect_workspace(root)?))
}

/// Builds the workspace call graph over a file set (scrubs internally).
/// Used by `cargo xtask lint --graph` / `--stats` and by tests.
pub fn build_graph(files: &[SourceFile]) -> (Vec<scrub::Scrubbed>, graph::CallGraph) {
    let scrubbed: Vec<scrub::Scrubbed> = files.iter().map(|f| scrub::scrub(&f.src)).collect();
    let g = graph::build(files, &scrubbed);
    (scrubbed, g)
}
