//! Findings and their two renderings: rustc-style text and machine JSON.

use std::fmt::Write as _;
use std::path::PathBuf;

/// One lint violation with a file:line:col span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint id, e.g. `determinism`, `hot-path-alloc`.
    pub lint: &'static str,
    /// Workspace-relative path.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// The offending source line, verbatim.
    pub snippet: String,
    /// Human explanation of what fired and why it matters.
    pub message: String,
}

impl Finding {
    /// rustc-style rendering:
    ///
    /// ```text
    /// error[xtask::determinism]: `Instant::now` in a digest-affecting path
    ///   --> crates/sim/src/runner.rs:42:17
    ///    |
    /// 42 |     let t = Instant::now();
    ///    |                 ^
    /// ```
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "error[xtask::{}]: {}", self.lint, self.message);
        let _ = writeln!(
            s,
            "  --> {}:{}:{}",
            self.file.display(),
            self.line,
            self.col
        );
        let gutter = self.line.to_string().len().max(2);
        let _ = writeln!(s, "{:gutter$} |", "");
        let _ = writeln!(s, "{:gutter$} | {}", self.line, self.snippet);
        let _ = writeln!(
            s,
            "{:gutter$} | {}^",
            "",
            " ".repeat(self.col.saturating_sub(1))
        );
        s
    }

    /// One JSON object per finding; the full report is a JSON array so CI
    /// can diff runs structurally.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"lint\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
            json_escape(self.lint),
            json_escape(&self.file.display().to_string()),
            self.line,
            self.col,
            json_escape(&self.message),
            json_escape(self.snippet.trim())
        )
    }
}

/// Renders the whole report as a JSON array (pretty enough to diff).
pub fn report_json(findings: &[Finding]) -> String {
    let mut s = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str("  ");
        s.push_str(&f.to_json());
        if i + 1 < findings.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push(']');
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            lint: "determinism",
            file: PathBuf::from("crates/x/src/a.rs"),
            line: 7,
            col: 13,
            snippet: "    let t = Instant::now();".into(),
            message: "`Instant::now` in a digest-affecting path".into(),
        }
    }

    #[test]
    fn render_has_span_and_caret() {
        let r = sample().render();
        assert!(r.contains("error[xtask::determinism]"));
        assert!(r.contains("--> crates/x/src/a.rs:7:13"));
        assert!(r.lines().last().unwrap().trim_end().ends_with('^'));
    }

    #[test]
    fn json_is_wellformed_enough_to_diff() {
        let j = report_json(&[sample()]);
        assert!(j.starts_with("[\n"));
        assert!(j.contains("\"lint\":\"determinism\""));
        assert!(j.contains("\"line\":7"));
        assert!(j.ends_with(']'));
        // Empty report is a valid empty array.
        assert_eq!(report_json(&[]), "[\n]");
    }
}
