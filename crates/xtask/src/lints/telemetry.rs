//! `telemetry-hygiene` — instrumentation call sites must be feature-gated.
//!
//! PR 4's guarantee: building without the `telemetry` feature produces a
//! byte-identical hot path, because the instrumentation call sites simply
//! do not exist. The `mmwave-telemetry` *types* are always available (the
//! crate is an unconditional dependency so signatures like `set_tracer`
//! stay stable), but the call sites that *record* — `tracer.begin()` /
//! `.end(…)` / `.event(…)` / `.slot(…)` and construction of
//! `Stage::` / `TraceEvent::` / `SlotTrace` values — must sit inside a
//! `#[cfg(feature = "telemetry")]`-gated item, statement, field, or block
//! (or the matching `#[cfg(not(...))]` fallback).
//!
//! The metrics registry (PR 9) follows the same contract: populating or
//! exporting a `MetricsRegistry` (`.publish_metrics(…)`,
//! `.snapshot_jsonl()`, `.prometheus_text()`) from the byte-identity
//! crates must be gated — the registry is observability, and the
//! feature-off fleet pass must not even look at it.
//!
//! Scope: the non-telemetry library crates whose hot paths carry the
//! byte-identity promise (`core`, `baselines`, and the sim's
//! runner/simulator/metrics). The campaign supervisor's trace *capture*
//! layer (`campaign.rs`) is feature-independent by design — tracers are
//! installed unconditionally and come back empty without the feature — so
//! it is out of scope; binaries (`crates/bench`) opt in via cargo
//! features, not cfg gates.

use crate::diag::Finding;
use crate::lints::{find_token, snippet_at};
use crate::regions::{gated_regions, in_any, test_regions};
use crate::scrub::Scrubbed;
use std::path::Path;

/// Instrumentation-shaped tokens that must be gated.
const GATED_TOKENS: &[&str] = &[
    ".begin()",
    ".end(clock",
    ".event(",
    ".slot(",
    "SlotTrace",
    "mmwave_telemetry::Stage",
    "mmwave_telemetry::TraceEvent",
    "MetricsRegistry",
    ".publish_metrics(",
    ".snapshot_jsonl(",
    ".prometheus_text(",
];

pub fn in_scope(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    if p.starts_with("crates/core/src/") || p.starts_with("crates/baselines/src/") {
        return true;
    }
    p.starts_with("crates/sim/src/") && p != "crates/sim/src/campaign.rs"
}

pub fn run(rel: &Path, src: &str, scrubbed: &Scrubbed) -> Vec<Finding> {
    if !in_scope(rel) {
        return Vec::new();
    }
    let gated = gated_regions(scrubbed, src, |attr| {
        attr.contains("feature") && attr.contains("\"telemetry\"")
    });
    let tests = test_regions(scrubbed, src);
    let mut out = Vec::new();
    for needle in GATED_TOKENS {
        for off in find_token(&scrubbed.text, needle) {
            if in_any(&gated, off) || in_any(&tests, off) {
                continue;
            }
            let (line, col) = scrubbed.line_col(off);
            out.push(Finding {
                lint: "telemetry-hygiene",
                file: rel.to_path_buf(),
                line,
                col,
                snippet: snippet_at(src, scrubbed, off),
                message: format!(
                    "`{needle}` instrumentation call site outside `#[cfg(feature = \"telemetry\")]`: \
                     the feature-off build must stay byte-identical"
                ),
            });
        }
    }
    out.sort_by_key(|f| (f.line, f.col));
    out.dedup_by_key(|f| (f.line, f.col));
    out
}
