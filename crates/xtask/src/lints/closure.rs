//! `hot-path-closure` — allocation-freedom is transitive.
//!
//! The per-file `hot-path-alloc` pass checks functions *marked*
//! `#[hot_path]`; this pass walks the call graph and applies the same
//! banned-spelling list ([`super::hotpath::FORBIDDEN`]) to every
//! **unmarked** function reachable from a marked root. Marked functions
//! are skipped here (the per-file pass already owns them), so the two
//! passes never double-report one site.
//!
//! Each finding carries the offending call chain (root → … → callee)
//! reconstructed from the reachability BFS, so the fix target is visible
//! at the diagnostic: either make the callee allocation-free and mark it
//! `#[hot_path]` (putting it under the per-file pass from then on), or
//! `xtask-allow(hot-path-closure): <reason>` the site when the path is
//! an over-approximation artifact or the allocation is warmup-only.

use crate::diag::Finding;
use crate::graph::CallGraph;
use crate::lints::{find_token, snippet_at};
use crate::scrub::Scrubbed;
use crate::SourceFile;

pub fn run(files: &[SourceFile], scrubbed: &[Scrubbed], g: &CallGraph) -> Vec<Finding> {
    let (closure, parent) = g.hot_closure();
    let mut out = Vec::new();
    for (idx, node) in g.nodes.iter().enumerate() {
        if !closure[idx] || node.hot_path || node.in_test {
            continue;
        }
        let Some(body) = &node.body else { continue };
        let s = &scrubbed[node.file];
        let chain = g.chain(idx, &parent).join(" → ");
        for (needle, why) in super::hotpath::FORBIDDEN {
            for off in find_token(&s.text[body.start..body.end], needle) {
                let off = body.start + off;
                let (line, col) = s.line_col(off);
                out.push(Finding {
                    lint: "hot-path-closure",
                    file: files[node.file].rel.clone(),
                    line,
                    col,
                    snippet: snippet_at(&files[node.file].src, s, off),
                    message: format!(
                        "`{needle}` in `{}`, which is reachable from a `#[hot_path]` root via {chain}: {why}; make it allocation-free and mark it `#[hot_path]`, or xtask-allow with a reason",
                        node.display()
                    ),
                });
            }
        }
    }
    out
}
