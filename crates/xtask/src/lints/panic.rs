//! `hot-path-panic` — the hot-path closure must be panic-free.
//!
//! A panic mid-slot tears down the link loop; the tick budget work in
//! ROADMAP item 1 refactors these kernels aggressively, so potential
//! panic sites must be declared, not latent. Inside the hot-path closure
//! (marked roots *and* everything reachable from them) this bans:
//!
//! - `.unwrap()` / `.expect(…)` — use caller-checked invariants or
//!   pattern matches;
//! - `panic!` (and its `unreachable!` cousin) — hot kernels return, they
//!   don't abort;
//! - slice indexing in `[…]` position — every `x[i]` is a hidden bounds
//!   branch-and-panic.
//!
//! Two idioms are exempt by design rather than by allow hatch:
//!
//! - a function whose body states its bounds with `debug_assert!` keeps
//!   its indexing (the declared-bounds idiom: the assert documents and
//!   checks the invariant in debug builds and compiles out of release
//!   builds, so the fix is fingerprint-safe);
//! - `get_unchecked` under an `xtask-allow(hot-path-panic)` with a
//!   safety comment, for sites where even the bounds branch is too hot.

use crate::diag::Finding;
use crate::graph::CallGraph;
use crate::lints::{find_token, snippet_at};
use crate::scrub::Scrubbed;
use crate::SourceFile;

const BANNED: &[(&str, &str)] = &[
    (
        ".unwrap()",
        "panics on None/Err; hot kernels must hold the invariant by construction or match",
    ),
    (
        ".expect(",
        "panics on None/Err; hot kernels must hold the invariant by construction or match",
    ),
    (
        "panic!",
        "aborts the slot loop; return an error from setup code instead",
    ),
    (
        "unreachable!",
        "aborts the slot loop if the 'impossible' case ever ships",
    ),
];

pub fn run(files: &[SourceFile], scrubbed: &[Scrubbed], g: &CallGraph) -> Vec<Finding> {
    let (closure, _) = g.hot_closure();
    let mut out = Vec::new();
    for (idx, node) in g.nodes.iter().enumerate() {
        if !closure[idx] || node.in_test {
            continue;
        }
        let Some(body) = &node.body else { continue };
        let s = &scrubbed[node.file];
        let text = &s.text[body.start..body.end];
        for (needle, why) in BANNED {
            for off in find_token(text, needle) {
                let off = body.start + off;
                let (line, col) = s.line_col(off);
                out.push(Finding {
                    lint: "hot-path-panic",
                    file: files[node.file].rel.clone(),
                    line,
                    col,
                    snippet: snippet_at(&files[node.file].src, s, off),
                    message: format!(
                        "`{needle}` in hot-path-closure function `{}`: {why}",
                        node.display()
                    ),
                });
            }
        }
        // Slice indexing — unless the function declares its bounds with
        // `debug_assert` (the sanctioned idiom; see module docs). The
        // `_eq`/`_ne` variants are separate word-bounded tokens.
        if ["debug_assert", "debug_assert_eq", "debug_assert_ne"]
            .iter()
            .any(|t| !find_token(text, t).is_empty())
        {
            continue;
        }
        for off in index_sites(text) {
            let off = body.start + off;
            let (line, col) = s.line_col(off);
            out.push(Finding {
                lint: "hot-path-panic",
                file: files[node.file].rel.clone(),
                line,
                col,
                snippet: snippet_at(&files[node.file].src, s, off),
                message: format!(
                    "slice indexing in hot-path-closure function `{}`: each `x[i]` hides a bounds branch-and-panic; declare the bounds with a leading `debug_assert!` (exempts the function), or xtask-allow with a reason",
                    node.display()
                ),
            });
        }
    }
    out
}

/// Keywords that may directly precede a `[` without being a receiver
/// (`&mut [f64]`, `return [a, b]`, `in [x, y]`, …).
const NON_RECEIVER_KEYWORDS: &[&str] = &[
    "mut", "in", "return", "as", "ref", "dyn", "else", "match", "if", "while", "impl", "where",
    "const", "static", "break", "continue", "move", "unsafe", "box", "await", "yield", "let",
    "loop", "for",
];

/// Byte offsets of `[` tokens in indexing position: the previous
/// non-whitespace token is a receiver expression — an identifier that is
/// not a keyword, or a closing `]`/`)`. Array literals/types (`[0.0;
/// N]`, `&mut [f64]`), macro brackets (`vec![…]`), and attributes
/// (`#[…]`) have no receiver and never match.
fn index_sites(text: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let mut k = i;
        let mut prev = None;
        while k > 0 {
            k -= 1;
            if !bytes[k].is_ascii_whitespace() {
                prev = Some(k);
                break;
            }
        }
        match prev {
            Some(p) if bytes[p] == b']' || bytes[p] == b')' => out.push(i),
            Some(p) if is_ident(bytes[p]) => {
                let mut w = p;
                while w > 0 && is_ident(bytes[w - 1]) {
                    w -= 1;
                }
                let word = &text[w..p + 1];
                if !NON_RECEIVER_KEYWORDS.contains(&word) {
                    out.push(i);
                }
            }
            _ => {}
        }
    }
    out
}
