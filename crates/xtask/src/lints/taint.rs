//! `determinism-taint` — nondeterminism must not reach a digest.
//!
//! The per-file `determinism` pass bans nondeterministic spellings
//! inside a fixed crate allowlist; this pass replaces that heuristic
//! scope with reachability. Sources are the spellings of nondeterminism
//! ([`crate::graph::TAINT_SOURCES`]: wall clocks, iteration-order
//! containers, OS entropy); sinks are the functions that produce the
//! repo's bit-identity surfaces — digests, fingerprints, journal lines —
//! identified by name stem (`digest` / `fingerprint` / `journal`, on the
//! function or its owner type). Any source token inside a function the
//! call graph proves reachable *from* a sink fires, with the sink→site
//! call chain in the message.
//!
//! This is callee-direction taint: a source inside anything a sink
//! calls (transitively) can corrupt what the sink writes. Data flowing
//! *into* a sink through arguments is not modeled (documented
//! under-approximation — the per-file pass still covers the
//! digest-affecting crates wholesale).

use crate::diag::Finding;
use crate::graph::CallGraph;
use crate::lints::snippet_at;
use crate::scrub::Scrubbed;
use crate::SourceFile;
use std::collections::BTreeSet;

pub fn run(files: &[SourceFile], scrubbed: &[Scrubbed], g: &CallGraph) -> Vec<Finding> {
    let sources = g.taint_sources(scrubbed);
    if sources.is_empty() {
        return Vec::new();
    }
    let sinks = g.taint_sinks();
    let mut out = Vec::new();
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
    for sink in sinks {
        let (reach, parent) = g.reach(&[sink]);
        for (&node, toks) in &sources {
            if !reach[node] {
                continue;
            }
            let chain = g.chain(node, &parent).join(" → ");
            let sink_node = &g.nodes[sink];
            let sink_loc = format!("{}:{}", files[sink_node.file].rel.display(), sink_node.line);
            for &(off, tok) in toks {
                if !reported.insert((node, off)) {
                    continue;
                }
                let s = &scrubbed[g.nodes[node].file];
                let (line, col) = s.line_col(off);
                out.push(Finding {
                    lint: "determinism-taint",
                    file: files[g.nodes[node].file].rel.clone(),
                    line,
                    col,
                    snippet: snippet_at(&files[g.nodes[node].file].src, s, off),
                    message: format!(
                        "`{tok}` is reachable from determinism sink `{}` ({sink_loc}) via {chain}: digests and journals must be bit-identical across runs; derive from sim time/seeds or BTree containers, or xtask-allow with a reason",
                        sink_node.display()
                    ),
                });
            }
        }
    }
    out
}
