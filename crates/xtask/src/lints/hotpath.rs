//! `hot-path-alloc` — no allocating calls inside `#[hot_path]` functions.
//!
//! PR 2 made the steady-state slot loop allocation-free (verified at
//! runtime by the counting-allocator test in `crates/sim/tests/
//! zero_alloc.rs`); this pass makes the contract visible at every
//! definition site. A function marked with the no-op marker attribute
//! `#[hot_path]` (from the `mmwave-hotpath` crate) may not contain the
//! allocating spellings below. Buffer *reuse* (`clear` + `push` /
//! `extend` into a caller-owned `Vec`, `copy_from_slice`) is the intended
//! idiom and stays legal: amortized growth reaches a fixed point after
//! warmup, which is exactly what the runtime test measures.
//!
//! The textual pass is deliberately stricter than the allocator: a
//! `.clone()` of a `Copy` scalar would also fire. That is what the
//! `xtask-allow(hot-path-alloc): <reason>` escape hatch is for — the
//! reviewer sees the justification at the call site.

use crate::diag::Finding;
use crate::lints::{find_token, snippet_at};
use crate::regions::Region;
use crate::scrub::Scrubbed;
use std::path::Path;

/// Allocating spellings banned in `#[hot_path]` functions. Shared with
/// the transitive `hot-path-closure` lint, which applies the same list
/// to every *unmarked* function the call graph proves reachable from a
/// marked root.
pub const FORBIDDEN: &[(&str, &str)] = &[
    (
        "Vec::new",
        "allocates a fresh Vec; reuse a caller-provided buffer",
    ),
    (
        "vec!",
        "allocates a fresh Vec; reuse a caller-provided buffer",
    ),
    (
        "with_capacity",
        "allocates; hoist the buffer into the owning workspace/scratch struct",
    ),
    (
        ".to_vec()",
        "clones into a fresh Vec; write into a reused output buffer",
    ),
    (
        ".clone()",
        "clones (usually allocating); borrow or copy_from into reused storage",
    ),
    (
        ".collect(",
        "collects into a fresh container; extend a reused buffer instead",
    ),
    (
        "format!",
        "allocates a String per call; hot paths must not format",
    ),
    (".to_string()", "allocates a String per call"),
    (".to_owned()", "allocates an owned copy per call"),
    ("String::new", "allocates; hot paths must not build strings"),
    (
        "String::from",
        "allocates; hot paths must not build strings",
    ),
    (
        "Box::new",
        "heap-allocates per call; preallocate at construction time",
    ),
];

/// Byte ranges of every `#[hot_path]`-marked function (attribute through
/// closing brace), on the scrubbed text.
///
/// Detection is structural rather than a fixed-spelling search: every
/// `#[…]` attribute is bracket-matched and recognized as a marker when
/// its text contains the word-bounded token `hot_path` — so the marker
/// fires regardless of position in the attribute stack (`#[inline]`
/// before or after), of path qualification (`#[hotpath::hot_path]`,
/// `#[mmwave_hotpath::hot_path]`), and inside conditional application
/// (`#[cfg_attr(…, hot_path)]`). String contents were blanked by the
/// scrubber, so doc text and literals cannot false-positive.
pub fn marked_fns(scrubbed: &Scrubbed) -> Vec<Region> {
    let mut regions = Vec::new();
    let text = &scrubbed.text;
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(off) = text[i..].find("#[") {
        let start = i + off;
        // Bracket-match the attribute.
        let mut depth = 0usize;
        let mut j = start + 1;
        while j < bytes.len() {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j.max(start + 2);
        if find_token(&text[start..j], "hot_path").is_empty() {
            continue;
        }
        if let Some(end) = fn_extent(text, j) {
            regions.push(Region { start, end });
        }
    }
    regions
}

/// End of the function item following a marker: skip stacked attributes
/// and the signature, then match the body's braces. Also used by the
/// allow layer to compute item-scoped suppression ranges.
pub(crate) fn fn_extent(text: &str, from: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut j = from;
    loop {
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if text[j..].starts_with("#[") {
            let mut depth = 0usize;
            while j < bytes.len() {
                match bytes[j] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        } else {
            break;
        }
    }
    // Find the body's opening brace at paren-depth 0 (skips where-clauses
    // and argument lists), then its match.
    let mut depth = 0i64;
    while j < bytes.len() {
        match bytes[j] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth == 0 => {
                let mut bd = 0usize;
                for (k, &b) in bytes.iter().enumerate().skip(j) {
                    match b {
                        b'{' => bd += 1,
                        b'}' => {
                            bd -= 1;
                            if bd == 0 {
                                return Some(k + 1);
                            }
                        }
                        _ => {}
                    }
                }
                return None;
            }
            b';' if depth == 0 => return None, // trait method without body
            _ => {}
        }
        j += 1;
    }
    None
}

pub fn run(rel: &Path, src: &str, scrubbed: &Scrubbed) -> Vec<Finding> {
    let fns = marked_fns(scrubbed);
    if fns.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (needle, why) in FORBIDDEN {
        for off in find_token(&scrubbed.text, needle) {
            if !fns.iter().any(|r| r.contains(off)) {
                continue;
            }
            let (line, col) = scrubbed.line_col(off);
            out.push(Finding {
                lint: "hot-path-alloc",
                file: rel.to_path_buf(),
                line,
                col,
                snippet: snippet_at(src, scrubbed, off),
                message: format!("`{needle}` inside a `#[hot_path]` function: {why}"),
            });
        }
    }
    out.sort_by_key(|f| (f.line, f.col));
    out
}
