//! `lifecycle-single-writer` — `LinkLifecycle::apply` is the only
//! transition construction site.
//!
//! PR 1's state machine routes every link-state change through one
//! decision point so the transition log is a complete, ordered record of
//! the link's history. That collapses the moment any other module builds
//! a [`Transition`] value by hand — the log would contain entries the
//! state machine never decided. This pass forbids `Transition { … }`
//! struct literals everywhere except:
//!
//! - `crates/core/src/linkstate.rs` itself (the state machine), and
//! - test code (`tests/` files and `#[cfg(test)]` regions), which builds
//!   transition tapes to drive property tests.
//!
//! Reading, matching, cloning, or draining transitions is unrestricted —
//! only *construction* is single-writer.

use crate::diag::Finding;
use crate::lints::snippet_at;
use crate::regions::{in_any, test_regions};
use crate::scrub::Scrubbed;
use std::path::Path;

pub fn in_scope(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    if p == "crates/core/src/linkstate.rs" {
        return false;
    }
    // Integration-test and fixture trees may construct transitions.
    if p.contains("/tests/") {
        return false;
    }
    p.starts_with("crates/") && p.contains("/src/")
}

pub fn run(rel: &Path, src: &str, scrubbed: &Scrubbed) -> Vec<Finding> {
    if !in_scope(rel) {
        return Vec::new();
    }
    let tests = test_regions(scrubbed, src);
    let mut out = Vec::new();
    // Match `Transition {` with any spacing, word-bounded on the left so
    // `TransitionCause {`-style names do not fire.
    let text = scrubbed.text.as_bytes();
    let mut i = 0;
    while let Some(off) = scrubbed.text[i..].find("Transition") {
        let start = i + off;
        i = start + "Transition".len();
        let before_ok =
            start == 0 || !(text[start - 1].is_ascii_alphanumeric() || text[start - 1] == b'_');
        let mut j = start + "Transition".len();
        if !before_ok || j >= text.len() {
            continue;
        }
        // Identifier continues (TransitionCause, Transitions) → not the type.
        if text[j].is_ascii_alphanumeric() || text[j] == b'_' {
            continue;
        }
        while j < text.len() && text[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= text.len() || text[j] != b'{' {
            continue;
        }
        if in_any(&tests, start) {
            continue;
        }
        let (line, col) = scrubbed.line_col(start);
        out.push(Finding {
            lint: "lifecycle-single-writer",
            file: rel.to_path_buf(),
            line,
            col,
            snippet: snippet_at(src, scrubbed, start),
            message: "`Transition { … }` constructed outside `LinkLifecycle::apply` \
                      (crates/core/src/linkstate.rs): the transition log must have one writer"
                .to_string(),
        });
    }
    out
}
